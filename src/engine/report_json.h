#ifndef TERMILOG_ENGINE_REPORT_JSON_H_
#define TERMILOG_ENGINE_REPORT_JSON_H_

#include <string>
#include <string_view>

#include "core/analyzer.h"
#include "engine/engine.h"
#include "util/status.h"
#include "util/string_util.h"  // JsonEscape lives there (shared with obs/)

namespace termilog {

struct ReportJsonOptions {
  /// Emit the report's spend counters ("spend": {work, elapsed_ms,
  /// bigint_limbs}). Off by default: elapsed_ms is wall-clock, so batch
  /// JSONL streams keep it out of the per-request lines to stay
  /// byte-identical across reruns and jobs settings (spend is reported in
  /// the run summary instead).
  bool include_spend = false;
  /// Per-request engine accounting (BatchItemResult::scc_tasks /
  /// cache_hits), rendered as "engine":{"scc_tasks":..,"cache_hits":..}
  /// when both are >= 0. Batch JSONL lines leave them out: they are
  /// scheduling-dependent under concurrency, so including them would break
  /// byte-identity across --jobs settings.
  int64_t scc_tasks = -1;
  int64_t cache_hits = -1;
  /// Same contract for the request's inference-task accounting
  /// (BatchItemResult::inference_tasks / inference_cache_hits), appended
  /// inside the same "engine" object when both are >= 0.
  int64_t inference_tasks = -1;
  int64_t inference_cache_hits = -1;
};

/// One-line JSON rendering of a single analysis outcome — the one
/// serializer shared by `termilog_cli --json`, `termilog_cli --batch`, and
/// the engine tests. `status` non-OK produces an error object
/// ({"name":..,"ok":false,"error":..}); otherwise the full report: verdict,
/// modes, per-SCC status with certificate and notes, report notes. All
/// rationals render exactly ("1/2"). Deterministic: equal reports produce
/// equal lines.
std::string ReportToJsonLine(const std::string& name, const std::string& query,
                             const Status& status,
                             const TerminationReport& report,
                             const ReportJsonOptions& options = {});

/// JSON object for a batch run's aggregate statistics.
std::string EngineStatsToJson(const EngineStats& stats, int jobs);

/// Appends the certificate's {"level":{..},"delta":{..}} object to `out`,
/// rendering predicate names through `program`. Shared with the
/// --conditions report serializer (src/condinf/) so witnesses render
/// byte-identically to per-SCC certificates here.
void AppendCertificateJson(const TerminationCertificate& certificate,
                           const Program& program, std::string* out);

}  // namespace termilog

#endif  // TERMILOG_ENGINE_REPORT_JSON_H_
