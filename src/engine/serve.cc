#include "engine/serve.h"

#include <condition_variable>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "condinf/condinf.h"
#include "engine/report_json.h"
#include "program/parser.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Writes response lines strictly in request order: a response for
// sequence K is held until every response before K has been written.
// Shed and error responses are produced by the reader thread while
// served responses come from the processing side, so ordering cannot be
// left to arrival time.
class ResponseSequencer {
 public:
  explicit ResponseSequencer(std::ostream& out) : out_(out) {}

  void Emit(int64_t seq, std::string line) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(seq, std::move(line));
    while (true) {
      auto it = pending_.find(next_);
      if (it == pending_.end()) break;
      out_ << it->second << '\n';
      out_.flush();
      pending_.erase(it);
      ++next_;
    }
  }

 private:
  std::ostream& out_;
  std::mutex mu_;
  std::map<int64_t, std::string> pending_;
  int64_t next_ = 0;
};

// Loads and parses the entry's program (inline "source" or "file").
Result<Program> LoadProgram(const gen::ManifestEntry& entry) {
  std::string source = entry.source;
  if (source.empty()) {
    std::ifstream in(entry.file);
    if (!in) return Status::InvalidArgument("cannot open program file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }
  return ParseProgram(source);
}

// Expands one admitted manifest entry into an engine request. Serve is a
// one-line-in / one-line-out protocol, so a file with several mode
// directives analyzes the first one; name a "query" to pick another.
Result<BatchRequest> BuildRequest(const gen::ManifestEntry& entry,
                                  const AnalysisOptions& base,
                                  std::string* query_text) {
  AnalysisOptions options = base;
  if (entry.has_limits) options.limits = entry.limits;
  Result<Program> parsed = LoadProgram(entry);
  if (!parsed.ok()) return parsed.status();
  std::string query = entry.query;
  if (query.empty()) {
    if (parsed->mode_decls().empty()) {
      return Status::InvalidArgument(
          "no \"query\" given and no :- mode(...) directive in the program");
    }
    const ModeDecl& decl = parsed->mode_decls().front();
    query = parsed->symbols().Name(decl.pred.symbol) + "(";
    for (size_t i = 0; i < decl.adornment.size(); ++i) {
      if (i > 0) query += ",";
      query += decl.adornment[i] == Mode::kBound ? "b" : "f";
    }
    query += ")";
  }
  Result<std::pair<PredId, Adornment>> parsed_query =
      ParseQuerySpec(*parsed, query);
  if (!parsed_query.ok()) return parsed_query.status();
  *query_text = query;
  BatchRequest request;
  request.name = entry.name;
  request.program = std::move(*parsed);
  request.query = parsed_query->first;
  request.adornment = parsed_query->second;
  request.options = options;
  return request;
}

}  // namespace

std::string ServeStats::ToJson() const {
  return StrCat("{\"lines\":", lines, ",\"served\":", served,
                ",\"shed\":", shed, ",\"errors\":", errors,
                ",\"overlong\":", overlong, ",\"conditions\":", conditions,
                "}");
}

std::string ServeErrorLine(const std::string& name, const Status& status) {
  return ReportToJsonLine(name, "", status, TerminationReport());
}

std::string ServeShedLine(const std::string& name, int queue_limit) {
  // The shed response is deterministic — same bytes for every shed
  // request — so clients can match on it; the retry-after note is advice,
  // not a wall-clock promise.
  return ServeErrorLine(
      name, Status::ResourceExhausted(StrCat(
                "server overloaded: waiting room full (queue_limit=",
                queue_limit, "); request shed, retry after the backlog "
                "drains")));
}

Status OverlongLineError(size_t line_number, size_t max_line_bytes) {
  return Status::InvalidArgument(
      StrCat("request line ", line_number, " exceeds the ", max_line_bytes,
             "-byte line cap; line discarded"));
}

bool ReadBoundedLine(std::istream& in, size_t max_bytes, std::string* line,
                     bool* overlong) {
  line->clear();
  *overlong = false;
  std::streambuf* buffer = in.rdbuf();
  bool any = false;
  while (true) {
    int c = buffer->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      return any;
    }
    any = true;
    if (c == '\n') return true;
    if (*overlong) continue;  // discarding: consume without storing
    line->push_back(static_cast<char>(c));
    if (line->size() > max_bytes) {
      *overlong = true;
      line->clear();
    }
  }
}

ServeChunkStats ProcessServeChunk(
    BatchEngine& engine, std::vector<ServeItem> items,
    const AnalysisOptions& base,
    const std::function<void(int64_t seq, std::string line)>& emit) {
  ServeChunkStats stats;
  std::vector<BatchRequest> requests;
  std::vector<int64_t> seqs;
  std::vector<std::string> queries;
  std::vector<condinf::ConditionsSweep> sweeps;
  std::vector<int64_t> sweep_seqs;
  requests.reserve(items.size());
  for (ServeItem& item : items) {
    if (!item.entry.error.ok()) {
      ++stats.errors;
      emit(item.seq, ServeErrorLine(item.entry.name, item.entry.error));
      continue;
    }
    if (item.entry.kind == "conditions") {
      // A conditions request sweeps the whole program's mode lattices
      // (docs/conditions.md); it shares this chunk's engine — and the
      // SCC cache every other request warms — through
      // RunConditionsSweeps below.
      Result<Program> program = LoadProgram(item.entry);
      if (!program.ok()) {
        ++stats.errors;
        condinf::ConditionsReport error_report;
        error_report.name = item.entry.name;
        error_report.status = program.status();
        emit(item.seq, condinf::ConditionsReportToJsonLine(error_report));
        continue;
      }
      condinf::ConditionsOptions conditions_options;
      conditions_options.analysis = base;
      if (item.entry.has_limits) {
        conditions_options.analysis.limits = item.entry.limits;
      }
      sweeps.emplace_back(item.entry.name, std::move(*program),
                          conditions_options);
      sweep_seqs.push_back(item.seq);
      continue;
    }
    std::string query_text;
    Result<BatchRequest> request =
        BuildRequest(item.entry, base, &query_text);
    if (!request.ok()) {
      ++stats.errors;
      emit(item.seq, ServeErrorLine(item.entry.name, request.status()));
      continue;
    }
    requests.push_back(std::move(*request));
    seqs.push_back(item.seq);
    queries.push_back(std::move(query_text));
  }
  if (!requests.empty()) {
    size_t index = 0;
    engine.Run(requests, [&](const BatchItemResult& result) {
      emit(seqs[index], ReportToJsonLine(result.name, queries[index],
                                         result.status, result.report));
      ++index;
    });
  }
  if (!sweeps.empty()) {
    std::vector<condinf::ConditionsReport> reports =
        condinf::RunConditionsSweeps(engine, sweeps);
    for (size_t i = 0; i < reports.size(); ++i) {
      emit(sweep_seqs[i], condinf::ConditionsReportToJsonLine(reports[i]));
    }
  }
  stats.served += static_cast<int64_t>(requests.size() + sweeps.size());
  stats.conditions += static_cast<int64_t>(sweeps.size());
  return stats;
}

ServeStats Serve(BatchEngine& engine, std::istream& in, std::ostream& out,
                 const ServeOptions& options) {
  const int queue_limit = options.queue_limit < 1 ? 1 : options.queue_limit;
  const int chunk = options.chunk < 1 ? 1 : options.chunk;
  const size_t max_line_bytes =
      options.max_line_bytes < 1 ? 1 : options.max_line_bytes;

  ServeStats stats;
  ResponseSequencer sequencer(out);

  std::mutex mu;
  std::condition_variable work_cv;
  std::deque<ServeItem> queue;
  bool reader_done = false;

  std::thread reader([&] {
    std::string line;
    size_t line_number = 0;
    int64_t seq = 0;
    bool overlong = false;
    while (ReadBoundedLine(in, max_line_bytes, &line, &overlong)) {
      ++line_number;
      if (overlong) {
        // Over-long line: the reader held at most max_line_bytes of it,
        // the rest was discarded in flight. One structured error
        // response, the loop keeps serving (docs/serve.md).
        int64_t this_seq = seq++;
        {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.lines;
          ++stats.errors;
          ++stats.overlong;
        }
        sequencer.Emit(this_seq,
                       ServeErrorLine(StrCat("manifest:", line_number),
                                      OverlongLineError(line_number,
                                                        max_line_bytes)));
        continue;
      }
      std::string_view stripped = StripWhitespace(line);
      if (stripped.empty()) continue;
      gen::ManifestEntry entry =
          gen::ParseManifestLine(stripped, line_number);
      if (entry.header) continue;
      int64_t this_seq = seq++;
      {
        std::lock_guard<std::mutex> lock(mu);
        ++stats.lines;
      }
      if (!entry.error.ok()) {
        // Unreadable line: one error response, loop keeps serving.
        {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.errors;
        }
        sequencer.Emit(this_seq, ServeErrorLine(entry.name, entry.error));
        continue;
      }
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (queue.size() < static_cast<size_t>(queue_limit)) {
          queue.push_back(ServeItem{this_seq, std::move(entry)});
          admitted = true;
        } else {
          ++stats.shed;
        }
      }
      if (admitted) {
        work_cv.notify_one();
      } else {
        sequencer.Emit(this_seq, ServeShedLine(entry.name, queue_limit));
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      reader_done = true;
    }
    work_cv.notify_all();
  });

  while (true) {
    std::vector<ServeItem> batch;
    {
      std::unique_lock<std::mutex> lock(mu);
      work_cv.wait(lock, [&] {
        if (options.drain_input_first && !reader_done) return false;
        return reader_done || !queue.empty();
      });
      if (queue.empty() && reader_done) break;
      while (!queue.empty() && batch.size() < static_cast<size_t>(chunk)) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    if (batch.empty()) continue;
    // Seats freed: arrivals during this chunk's analysis may be admitted.
    ServeChunkStats chunk_stats = ProcessServeChunk(
        engine, std::move(batch), options.base,
        [&](int64_t seq, std::string response) {
          sequencer.Emit(seq, std::move(response));
        });
    {
      std::lock_guard<std::mutex> lock(mu);
      stats.served += chunk_stats.served;
      stats.errors += chunk_stats.errors;
      stats.conditions += chunk_stats.conditions;
    }
  }

  reader.join();
  return stats;
}

}  // namespace termilog
