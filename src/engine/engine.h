#ifndef TERMILOG_ENGINE_ENGINE_H_
#define TERMILOG_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "engine/inference_cache.h"
#include "engine/scc_cache.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {

namespace persist {
class PersistentStore;
class StoreWriter;
}  // namespace persist

/// One unit of batch work: analyze `query` (with `adornment`) over
/// `program` under `options`. The engine deep-copies the program (fresh
/// symbol table) before any analysis, so many requests may share one
/// Program — and one symbol table — safely.
struct BatchRequest {
  /// Display identity carried through to the result (file name, corpus
  /// entry, "pred adornment", ...).
  std::string name;
  Program program;
  PredId query;
  Adornment adornment;
  AnalysisOptions options;
};

/// Result of one request, in request order.
struct BatchItemResult {
  std::string name;
  /// Non-OK when preparation failed (bad query, unsupported construct);
  /// `report` is then empty. Per-SCC resource trips are not errors — they
  /// degrade inside the report exactly as in TerminationAnalyzer::Analyze.
  Status status = Status::Ok();
  TerminationReport report;
  /// Recursive SCC tasks this request contributed, and how many of them
  /// were served from the content cache. Scheduling-dependent under
  /// concurrency (whichever request reaches a shared SCC first pays the
  /// miss), so these are accounting, not part of the deterministic report.
  int64_t scc_tasks = 0;
  int64_t cache_hits = 0;
  /// Same accounting for the request's inference tasks (one per SCC of the
  /// inter-argument inference plan).
  int64_t inference_tasks = 0;
  int64_t inference_cache_hits = 0;
  /// Service cost: thread-CPU microseconds (CLOCK_THREAD_CPUTIME_ID) spent
  /// on this request — its preparation plus each of its inference and SCC
  /// tasks. CPU time rather than a wall interval so the figure measures
  /// the work the request cost, not how oversubscribed the machine was
  /// (on a single core, wall-interval task times inflate roughly jobs-
  /// fold); it therefore excludes time blocked in single-flight waits.
  /// Wall-clock accounting — never part of the deterministic report bytes
  /// (bench_engine's p50/p95/p99 columns).
  int64_t latency_us = 0;
  /// Admission-to-completion wall microseconds: from the moment a worker
  /// picked up the request's preparation to the completion of its last
  /// task. With fair scheduling (a request's inference/SCC tasks run
  /// before later requests are admitted) this stays close to the service
  /// cost; under the old all-preparations-first order it approached the
  /// whole run's wall time for every request.
  int64_t e2e_us = 0;
};

/// Aggregate counters across every Run of one engine.
struct EngineStats {
  int64_t requests = 0;
  /// Recursive SCC tasks routed through the cache.
  int64_t scc_tasks = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t single_flight_waits = 0;
  /// Completed entries retained in the cache.
  int64_t unique_sccs = 0;
  /// Entries warm-started from an attached persistent store, and the
  /// cache hits those recovered entries served (docs/persistence.md).
  int64_t persisted_loaded = 0;
  int64_t persisted_hits = 0;
  /// Inter-argument inference tasks routed through the inference cache,
  /// and the same counter family as above for that cache.
  int64_t inference_tasks = 0;
  int64_t inference_cache_hits = 0;
  int64_t inference_cache_misses = 0;
  int64_t inference_single_flight_waits = 0;
  int64_t unique_inference_sccs = 0;
  int64_t inference_persisted_loaded = 0;
  int64_t inference_persisted_hits = 0;
  /// Summed governor work ticks across all per-task governors.
  int64_t total_work = 0;
  /// Wall time of the most recent Run only (overwritten each Run); see
  /// total_wall_ms for the engine-lifetime figure.
  int64_t wall_ms = 0;
  /// Wall time summed across every Run of this engine.
  int64_t total_wall_ms = 0;

  std::string ToString() const;
};

struct EngineOptions {
  /// Worker threads. Clamped to >= 1. Output is byte-identical for every
  /// value (see docs/engine.md for the determinism argument).
  int jobs = 1;
  /// Content-addressed SCC memoization (on by default; off forces every
  /// task to compute).
  bool use_cache = true;
};

/// Parallel batch-analysis engine: expands each request into its analysis
/// preparation, one task per SCC of the inter-argument inference plan
/// (scheduled bottom-up over the condensation DAG as dependencies
/// complete), and one task per recursive SCC of the dependency-graph
/// condensation; schedules the tasks onto a fixed-size worker pool; and
/// memoizes both inference and SCC outcomes in content-addressed caches
/// (CanonicalInferenceKey / CanonicalSccKey) so identical SCCs across
/// requests — repeated corpus entries, declared modes, re-submitted
/// programs — are solved once. Every task runs under its own
/// ResourceGovernor built from the request's limits.
///
/// The cache persists across Run calls: a second Run over the same
/// requests is served warm.
class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = EngineOptions());
  /// Drains the write-behind queue and flushes the store, if attached.
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Attaches a durable store (docs/persistence.md): every recovered
  /// entry warm-starts the cache (each already passed the store's
  /// per-record CRC and decode validation; Preload re-screens it), the
  /// cache is audited with SccCache::SelfCheck, and a write-behind
  /// thread persists newly computed outcomes without blocking workers.
  /// A SelfCheck failure is returned (the CLI maps it to exit code 5)
  /// and the store stays detached. Call before the first Run.
  Status AttachStore(std::unique_ptr<persist::PersistentStore> store);

  /// Blocks until every queued write-behind entry is on disk and the
  /// store is fsynced; returns the first persistence error seen. OK and
  /// a no-op when no store is attached — shutdown flushes implicitly,
  /// this is the explicit durability point for long-running serve mode.
  Status FlushStore();

  /// The attached store (null when none). The engine owns it.
  persist::PersistentStore* store() { return store_.get(); }

  /// Runs every request to completion; results are returned in request
  /// order. `on_result` (optional) is invoked in request order as results
  /// become available — with jobs > 1 a completed request may wait for an
  /// earlier one so the stream stays ordered and deterministic.
  std::vector<BatchItemResult> Run(
      const std::vector<BatchRequest>& requests,
      const std::function<void(const BatchItemResult&)>& on_result = nullptr);

  const EngineOptions& options() const { return options_; }
  const EngineStats& stats() const { return stats_; }
  SccCache& cache() { return cache_; }
  InferenceCache& inference_cache() { return inference_cache_; }

 private:
  EngineOptions options_;
  SccCache cache_;
  InferenceCache inference_cache_;
  EngineStats stats_;
  // Declaration order matters for shutdown: the writer drains into the
  // store on destruction, so it must die first (members are destroyed in
  // reverse order).
  std::unique_ptr<persist::PersistentStore> store_;
  std::unique_ptr<persist::StoreWriter> writer_;
};

}  // namespace termilog

#endif  // TERMILOG_ENGINE_ENGINE_H_
