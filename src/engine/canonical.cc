#include "engine/canonical.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace termilog {
namespace {

// Canonical display names V0, V1, ... for the rule-local variables. Rule
// variable indices are deterministic for a given source text, so renaming
// by index makes the rendering independent of the variable names the
// author chose while staying a pure function of the parsed rule.
std::vector<std::string> CanonicalVarNames(const Rule& rule) {
  std::vector<std::string> names(rule.num_vars());
  for (int v = 0; v < rule.num_vars(); ++v) names[v] = StrCat("V", v);
  return names;
}

void AppendPolyhedron(const Polyhedron& polyhedron, std::string* out) {
  std::function<std::string(int)> namer = [](int column) {
    return StrCat("a", column + 1);
  };
  *out += polyhedron.ToString(&namer);
  if (out->empty() || out->back() != '\n') *out += '\n';
}

}  // namespace

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::vector<PredId> CanonicalSccOrder(const Program& program,
                                      std::vector<PredId> preds) {
  std::sort(preds.begin(), preds.end(),
            [&program](const PredId& a, const PredId& b) {
              const std::string& na = program.symbols().Name(a.symbol);
              const std::string& nb = program.symbols().Name(b.symbol);
              if (na != nb) return na < nb;
              return a.arity < b.arity;
            });
  return preds;
}

std::vector<PredId> InferenceCalleePreds(const Program& program,
                                         const std::vector<PredId>& scc_preds) {
  std::set<PredId> scc_set(scc_preds.begin(), scc_preds.end());
  std::set<PredId> callees;
  for (const PredId& pred : scc_preds) {
    for (int r : program.RuleIndicesFor(pred)) {
      for (const Literal& lit : program.rules()[r].body) {
        if (!lit.positive) continue;  // negative subgoals carry no size info
        PredId callee = lit.atom.pred_id();
        if (scc_set.count(callee) == 0) callees.insert(callee);
      }
    }
  }
  return CanonicalSccOrder(program, {callees.begin(), callees.end()});
}

SccCacheKey CanonicalInferenceKey(const Program& program,
                                  const std::vector<PredId>& scc_preds,
                                  const ArgSizeDb& db,
                                  const AnalysisOptions& options) {
  std::string text;
  std::set<PredId> scc_set(scc_preds.begin(), scc_preds.end());

  // The SCC's predicates, in the canonical order entries are emitted in.
  // No adornments here: the fixpoint describes derivable facts, which do
  // not depend on the query direction (CanonicalInferenceKey doc comment).
  text += "inference-scc:";
  for (const PredId& pred : scc_preds) {
    text += StrCat(" ", program.PredName(pred));
  }
  text += '\n';

  // The SCC's rules in program order (RunScc iterates rule indices in
  // ascending order, and hull/widen results depend on iteration order),
  // with canonical variable names.
  text += "rules:\n";
  for (const Rule& rule : program.rules()) {
    if (scc_set.count(rule.head.pred_id()) == 0) continue;
    std::vector<std::string> vars = CanonicalVarNames(rule);
    text += StrCat("  ", rule.head.ToString(program.symbols(), vars));
    for (size_t k = 0; k < rule.body.size(); ++k) {
      text += k == 0 ? " :- " : ", ";
      text += rule.body[k].ToString(program.symbols(), vars);
    }
    text += ".\n";
  }

  // The polyhedra RuleTransfer instantiates for out-of-SCC positive
  // subgoals. A predicate with no db entry renders as "-" (RuleTransfer
  // then uses the nonnegative orthant): "no knowledge" is part of the
  // identity, distinct from an explicitly supplied orthant.
  text += "callees:\n";
  for (const PredId& pred : InferenceCalleePreds(program, scc_preds)) {
    text += StrCat("  ", program.PredName(pred), "\n");
    if (db.Has(pred)) {
      AppendPolyhedron(db.Get(pred), &text);
    } else {
      text += "-\n";
    }
  }

  // Every option the fixpoint reads: the inference knobs, its FM knobs,
  // and the governor limits (a budget can change a result — e.g. stop LP
  // pruning early — without tripping).
  const InferenceOptions& inference = options.inference;
  const GovernorLimits& limits = options.limits;
  text += StrCat("inference-options: widen_delay=", inference.widen_delay,
                 " max_sweeps=", inference.max_sweeps,
                 " fm_row_limit=", inference.fm.row_limit,
                 " lp_prune=", inference.fm.lp_prune ? 1 : 0,
                 " lp_prune_threshold=", inference.fm.lp_prune_threshold,
                 " deadline_ms=", limits.deadline_ms,
                 " work_budget=", limits.work_budget,
                 " limb_limit=", limits.bigint_limb_limit, "\n");

  SccCacheKey key;
  key.digest = Fnv1a64(text);
  key.text = std::move(text);
  return key;
}

SccCacheKey CanonicalSccKey(const Program& program,
                            const std::vector<PredId>& scc_preds,
                            const std::map<PredId, Adornment>& modes,
                            const ArgSizeDb& db,
                            const AnalysisOptions& options) {
  std::string text;
  std::set<PredId> scc_set(scc_preds.begin(), scc_preds.end());

  // The SCC's predicates, in the canonical order the analysis will use
  // (this fixes the theta column layout).
  text += "scc:";
  for (const PredId& pred : scc_preds) {
    text += StrCat(" ", program.PredName(pred));
    auto mode = modes.find(pred);
    text += StrCat(":", mode == modes.end()
                            ? std::string("-")
                            : AdornmentToString(mode->second));
  }
  text += '\n';

  // The SCC's rules, in program order (RuleSystemBuilder::BuildForScc walks
  // rules in program order, so the order is part of the task's identity),
  // with canonical variable names. Every predicate mentioned is collected
  // for the callee section below.
  std::set<PredId> mentioned;
  text += "rules:\n";
  for (const Rule& rule : program.rules()) {
    if (scc_set.count(rule.head.pred_id()) == 0) continue;
    std::vector<std::string> vars = CanonicalVarNames(rule);
    text += StrCat("  ", rule.head.ToString(program.symbols(), vars));
    mentioned.insert(rule.head.pred_id());
    for (size_t k = 0; k < rule.body.size(); ++k) {
      text += k == 0 ? " :- " : ", ";
      text += rule.body[k].ToString(program.symbols(), vars);
      mentioned.insert(rule.body[k].atom.pred_id());
    }
    text += ".\n";
  }

  // Adornment and inter-argument constraints of every mentioned predicate
  // (callees contribute their imported feasibility constraints to Eq. 1;
  // predicates without a db entry render as the nonnegative orthant, so
  // "no knowledge" is part of the identity too). Sorted by name for
  // program-order independence.
  std::vector<PredId> callees =
      CanonicalSccOrder(program, {mentioned.begin(), mentioned.end()});
  text += "callees:\n";
  for (const PredId& pred : callees) {
    auto mode = modes.find(pred);
    text += StrCat("  ", program.PredName(pred), ":",
                   mode == modes.end() ? std::string("-")
                                       : AdornmentToString(mode->second),
                   "\n");
    AppendPolyhedron(db.Get(pred), &text);
  }

  // Every AnalysisOptions field the per-SCC analysis reads. Governor limits
  // are included because a partially exhausted budget can change a result
  // without tripping (e.g. LP pruning stops early, leaving more rows).
  const GovernorLimits& limits = options.limits;
  text += StrCat("options: negdeltas=", options.allow_negative_deltas ? 1 : 0,
                 " validate=", options.validate_certificates ? 1 : 0,
                 " fm_row_limit=", options.fm.row_limit,
                 " lp_prune=", options.fm.lp_prune ? 1 : 0,
                 " lp_prune_threshold=", options.fm.lp_prune_threshold,
                 " deadline_ms=", limits.deadline_ms,
                 " work_budget=", limits.work_budget,
                 " limb_limit=", limits.bigint_limb_limit, "\n");

  SccCacheKey key;
  key.digest = Fnv1a64(text);
  key.text = std::move(text);
  return key;
}

}  // namespace termilog
