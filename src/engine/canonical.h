#ifndef TERMILOG_ENGINE_CANONICAL_H_
#define TERMILOG_ENGINE_CANONICAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "constraints/arg_size_db.h"
#include "core/analyzer.h"
#include "program/ast.h"

namespace termilog {

/// Content-addressed identity of one SCC analysis task. `text` is a full
/// canonical rendering of every input the per-SCC analysis reads — the SCC
/// rules (variables renamed canonically), the adornments of every predicate
/// they mention, the inter-argument constraints of every callee, and the
/// result-affecting AnalysisOptions — so two tasks with equal `text` are
/// guaranteed to produce identical reports. The cache keys on the full
/// text (true content addressing, no collision risk); `digest` is a 64-bit
/// FNV-1a of the text for logs and stats.
struct SccCacheKey {
  std::string text;
  uint64_t digest = 0;
};

/// Sorts SCC predicates into canonical (name, arity) order. The engine
/// analyzes every SCC in this order so that the theta column layout — and
/// therefore the certificate and the reduced-constraint rendering — is a
/// function of the SCC's content, not of the order in which the host
/// program happened to intern predicate symbols.
std::vector<PredId> CanonicalSccOrder(const Program& program,
                                      std::vector<PredId> preds);

/// Derives the cache key for analyzing the SCC `scc_preds` (already in
/// canonical order) of `program` under `modes`, the callee constraint store
/// `db`, and `options`.
SccCacheKey CanonicalSccKey(const Program& program,
                            const std::vector<PredId>& scc_preds,
                            const std::map<PredId, Adornment>& modes,
                            const ArgSizeDb& db,
                            const AnalysisOptions& options);

/// The callee predicates of an inference SCC: every predicate mentioned in
/// a positive body literal of the SCC's rules that is not itself a member
/// of the SCC, in canonical (name, arity) order. These are exactly the
/// predicates whose polyhedra RuleTransfer instantiates when iterating the
/// SCC, so their values (plus the rules) determine the fixpoint. Shared by
/// CanonicalInferenceKey and the engine's callee-snapshot step so the two
/// can never disagree about which polyhedra are inputs.
std::vector<PredId> InferenceCalleePreds(const Program& program,
                                         const std::vector<PredId>& scc_preds);

/// Derives the cache key for the [VG90] inference fixpoint of the SCC
/// `scc_preds` (already in canonical order) given the callee constraint
/// store `db` and `options`. Adornments are deliberately absent: inference
/// reads no modes (argument sizes are a property of the derivable facts,
/// not of the query direction), and adornment-conflict cloning renames
/// predicates, so clones already differ in the rules section.
SccCacheKey CanonicalInferenceKey(const Program& program,
                                  const std::vector<PredId>& scc_preds,
                                  const ArgSizeDb& db,
                                  const AnalysisOptions& options);

/// 64-bit FNV-1a, exposed for tests.
uint64_t Fnv1a64(const std::string& text);

}  // namespace termilog

#endif  // TERMILOG_ENGINE_CANONICAL_H_
