#include "engine/scc_cache.h"

#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace termilog {

CachedSccOutcome DehydrateSccReport(const SccReport& report,
                                    const Program& program) {
  CachedSccOutcome out;
  out.status = report.status;
  out.used_negative_deltas = report.used_negative_deltas;
  out.reduced_constraints = report.reduced_constraints;
  out.notes = report.notes;
  for (const auto& [pred, coeffs] : report.certificate.theta) {
    out.theta.push_back(
        {program.symbols().Name(pred.symbol), pred.arity, coeffs});
  }
  for (const auto& [edge, value] : report.certificate.delta) {
    out.delta.push_back({program.symbols().Name(edge.first.symbol),
                         edge.first.arity,
                         program.symbols().Name(edge.second.symbol),
                         edge.second.arity, value});
  }
  return out;
}

namespace {

PredId ResolvePred(const Program& program, const std::string& name,
                   int arity) {
  int symbol = program.symbols().Lookup(name);
  TERMILOG_CHECK_MSG(symbol >= 0,
                     "cached SCC outcome names a predicate absent from the "
                     "requesting program");
  return PredId{symbol, arity};
}

}  // namespace

SccReport RehydrateSccReport(const CachedSccOutcome& outcome,
                             const Program& program,
                             std::vector<PredId> scc_preds) {
  SccReport report;
  report.preds = std::move(scc_preds);
  report.status = outcome.status;
  report.used_negative_deltas = outcome.used_negative_deltas;
  report.reduced_constraints = outcome.reduced_constraints;
  report.notes = outcome.notes;
  for (const CachedSccOutcome::NamedTheta& theta : outcome.theta) {
    report.certificate.theta.emplace(
        ResolvePred(program, theta.name, theta.arity), theta.coeffs);
  }
  for (const CachedSccOutcome::NamedDelta& delta : outcome.delta) {
    report.certificate.delta.emplace(
        std::make_pair(ResolvePred(program, delta.from_name, delta.from_arity),
                       ResolvePred(program, delta.to_name, delta.to_arity)),
        delta.value);
  }
  return report;
}

CachedSccOutcome SccCache::GetOrCompute(
    const std::string& key, const std::function<CachedSccOutcome()>& compute,
    bool* served_from_cache) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.lookups;
    TERMILOG_COUNTER("cache.lookups", 1);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      if (entry->ready) {
        ++stats_.hits;
        TERMILOG_COUNTER("cache.hits", 1);
        if (entry->from_store) {
          ++stats_.persisted_hits;
          TERMILOG_COUNTER("cache.persisted_hits", 1);
        }
      } else {
        // Another worker is computing this key right now: wait for it
        // rather than solving the same SCC twice.
        ++stats_.single_flight_waits;
        TERMILOG_COUNTER("cache.single_flight_waits", 1);
        ready_cv_.wait(lock, [&entry] { return entry->ready; });
      }
      if (served_from_cache != nullptr) *served_from_cache = true;
      return entry->outcome;
    }
    entry = std::make_shared<Entry>();
    entries_.emplace(key, entry);
    ++stats_.misses;
    TERMILOG_COUNTER("cache.misses", 1);
  }

  // Compute outside the lock: other keys proceed concurrently, and waiters
  // on this key block on ready_cv_, not on the mutex.
  CachedSccOutcome outcome = compute();
  bool retained;
  std::function<void(const std::string&, const CachedSccOutcome&)> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->outcome = outcome;
    entry->ready = true;
    retained = outcome.status != SccStatus::kResourceLimit;
    if (!retained) {
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
    }
    listener = new_entry_listener_;
  }
  ready_cv_.notify_all();
  // Persistence hook, outside the lock so the write-behind queue's own
  // lock never nests inside the cache mutex. Only retained outcomes are
  // offered: a starved verdict must not outlive the run, on disk least
  // of all.
  if (retained && listener) listener(key, outcome);
  if (served_from_cache != nullptr) *served_from_cache = false;
  return outcome;
}

bool SccCache::Preload(const std::string& key, CachedSccOutcome outcome) {
  if (key.empty() || outcome.status == SccStatus::kResourceLimit) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) > 0) return false;
  auto entry = std::make_shared<Entry>();
  entry->ready = true;
  entry->from_store = true;
  entry->outcome = std::move(outcome);
  entries_.emplace(key, std::move(entry));
  ++stats_.persisted_loaded;
  TERMILOG_COUNTER("cache.persisted_loaded", 1);
  return true;
}

void SccCache::SetNewEntryListener(
    std::function<void(const std::string&, const CachedSccOutcome&)>
        listener) {
  std::lock_guard<std::mutex> lock(mu_);
  new_entry_listener_ = std::move(listener);
}

SccCache::Stats SccCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t SccCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry->ready) ++ready;
  }
  return ready;
}

Status SccCache::SelfCheck() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (key.empty()) {
      return Status::Internal("cache self-check: empty key retained");
    }
    if (entry == nullptr) {
      return Status::Internal("cache self-check: null entry retained");
    }
    if (!entry->ready) {
      return Status::Internal(
          "cache self-check: in-flight entry retained after run "
          "(abandoned single-flight slot)");
    }
    if (entry->outcome.status == SccStatus::kResourceLimit) {
      return Status::Internal(
          "cache self-check: kResourceLimit outcome retained (starved "
          "verdicts must never be served from cache)");
    }
  }
  if (stats_.lookups !=
      stats_.hits + stats_.misses + stats_.single_flight_waits) {
    return Status::Internal(
        "cache self-check: lookup accounting does not reconcile");
  }
  if (stats_.persisted_hits > stats_.hits) {
    return Status::Internal(
        "cache self-check: more persisted hits than hits");
  }
  int64_t from_store = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry->from_store) ++from_store;
  }
  if (from_store > stats_.persisted_loaded) {
    return Status::Internal(
        "cache self-check: more store-origin entries than Preload admitted");
  }
  return Status::Ok();
}

}  // namespace termilog
