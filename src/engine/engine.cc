#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "engine/canonical.h"
#include "obs/obs.h"
#include "persist/store.h"
#include "persist/writer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Private copy of a request's program with a fresh symbol table. Requests
// routinely share one Program (declared modes, repeated submissions), but
// preparation mutates the symbol table (adornment cloning, supplied
// constraints, transformations intern new names), so each request must own
// its table. Symbol ids are preserved by the copy, keeping the request's
// PredIds valid; term structure is immutable and stays shared.
Program PrivateCopy(const Program& program) {
  Program copy(std::make_shared<SymbolTable>(program.symbols()));
  for (const Rule& rule : program.rules()) copy.AddRule(rule);
  for (const ModeDecl& decl : program.mode_decls()) copy.AddModeDecl(decl);
  return copy;
}

// FIFO queue feeding the worker pool. Close() lets workers drain the
// remaining tasks and then exit.
class TaskQueue {
 public:
  void Push(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      TERMILOG_CHECK_MSG(!closed_, "task pushed after queue close");
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  std::optional<std::function<void()>> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
    if (tasks_.empty()) return std::nullopt;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    return task;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool closed_ = false;
};

// Mutable per-request state shared between the prep task, the SCC tasks,
// and the merge.
struct RequestState {
  const BatchRequest* request = nullptr;
  std::unique_ptr<TerminationAnalyzer> analyzer;
  Program program;  // private copy; stable once prep finishes

  // Placeholder until the prep task runs (Result forbids an OK status
  // without a value).
  Result<PreparedAnalysis> prepared =
      Status::Internal("request not yet prepared");
  std::vector<SccReport> slots;  // one per SccTask, condensation order

  std::atomic<int> pending_sccs{0};
  std::atomic<int64_t> work{0};
  std::atomic<int64_t> limb_high_water{0};
  std::atomic<int64_t> scc_tasks{0};
  std::atomic<int64_t> cache_hits{0};
  /// Worker microseconds spent on this request: its preparation plus each
  /// of its SCC tasks (cache lookups and single-flight waits included).
  /// Queue time between tasks is not billed, so over a large batch the
  /// distribution measures per-request service cost, not batch position.
  std::atomic<int64_t> busy_us{0};
  std::chrono::steady_clock::time_point started;
  // Set by finish_request (single writer: the worker that completes the
  // request), read by the merge loop after done[i] — the done_mu handoff
  // orders the accesses.
  std::chrono::steady_clock::time_point finished;
  // Per-request trace span: begun by the prep task, ended by the merge
  // loop on the main thread; SCC tasks attach to it explicitly.
  obs::SpanId span = 0;
};

void AccumulateSpend(RequestState* state, const GovernorSpend& spend) {
  // Mirror the spend into the metrics registry so metrics totals reconcile
  // with EngineStats::total_work (every per-task governor passes through
  // here exactly once).
  TERMILOG_COUNTER("governor.work", spend.work);
  TERMILOG_HISTOGRAM("governor.limb_high_water",
                     spend.bigint_limb_high_water);
  state->work.fetch_add(spend.work, std::memory_order_relaxed);
  int64_t seen = state->limb_high_water.load(std::memory_order_relaxed);
  while (spend.bigint_limb_high_water > seen &&
         !state->limb_high_water.compare_exchange_weak(
             seen, spend.bigint_limb_high_water, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string EngineStats::ToString() const {
  return StrCat("requests=", requests, " scc_tasks=", scc_tasks,
                " cache_hits=", cache_hits, " cache_misses=", cache_misses,
                " single_flight_waits=", single_flight_waits,
                " unique_sccs=", unique_sccs,
                " persisted_loaded=", persisted_loaded,
                " persisted_hits=", persisted_hits,
                " total_work=", total_work,
                " wall_ms=", wall_ms, " total_wall_ms=", total_wall_ms);
}

BatchEngine::BatchEngine(EngineOptions options) : options_(options) {
  if (options_.jobs < 1) options_.jobs = 1;
}

BatchEngine::~BatchEngine() = default;

Status BatchEngine::AttachStore(
    std::unique_ptr<persist::PersistentStore> store) {
  TERMILOG_CHECK_MSG(store != nullptr, "AttachStore wants a store");
  TERMILOG_CHECK_MSG(store_ == nullptr, "a store is already attached");
  for (const auto& [key, outcome] : store->entries()) {
    cache_.Preload(key, outcome);
  }
  // Automatic post-warm-start audit (docs/persistence.md): a store whose
  // recovered entries do not form a structurally sound cache must not be
  // served from. Preload screens each record, so in practice this only
  // fires on an engine bug — but the check is cheap and the alternative
  // is silently wrong verdicts.
  Status audit = cache_.SelfCheck();
  if (!audit.ok()) return audit;
  stats_.persisted_loaded = cache_.stats().persisted_loaded;
  store_ = std::move(store);
  writer_ = std::make_unique<persist::StoreWriter>(store_.get());
  cache_.SetNewEntryListener(
      [this](const std::string& key, const CachedSccOutcome& outcome) {
        writer_->Enqueue(key, outcome);
      });
  return Status::Ok();
}

Status BatchEngine::FlushStore() {
  if (writer_ == nullptr) return Status::Ok();
  return writer_->Drain();
}

std::vector<BatchItemResult> BatchEngine::Run(
    const std::vector<BatchRequest>& requests,
    const std::function<void(const BatchItemResult&)>& on_result) {
  const auto run_start = std::chrono::steady_clock::now();
  const size_t n = requests.size();
  obs::SpanId batch_span = obs::BeginSpan("batch.run", "engine");
  obs::SpanArg(batch_span, "requests", StrCat(n));
  obs::SpanArg(batch_span, "jobs", StrCat(options_.jobs));
  TERMILOG_COUNTER("engine.requests", static_cast<int64_t>(n));

  std::vector<std::unique_ptr<RequestState>> states;
  states.reserve(n);
  for (const BatchRequest& request : requests) {
    auto state = std::make_unique<RequestState>();
    state->request = &request;
    state->analyzer = std::make_unique<TerminationAnalyzer>(request.options);
    state->program = PrivateCopy(request.program);
    states.push_back(std::move(state));
  }

  // Completion tracking: workers flip done[i] under done_mu; the main
  // thread drains results strictly in request order.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::vector<bool> done(n, false);
  auto finish_request = [&](size_t i) {
    states[i]->finished = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(done_mu);
      done[i] = true;
    }
    done_cv.notify_all();
  };

  TaskQueue queue;

  // Analyzes SCC task `j` of request `i` (a recursive SCC), through the
  // content cache unless disabled or the SCC has an adornment conflict
  // (conflict verdicts are trivial, and conflict-ness is a property of the
  // request's mode dataflow, not of the SCC's content).
  auto run_scc_task = [&](size_t i, size_t j) {
    RequestState& state = *states[i];
    const auto task_start = std::chrono::steady_clock::now();
    obs::ScopedParent trace_parent(state.span);
    TERMILOG_TRACE("scc.task", "engine");
    TERMILOG_COUNTER("engine.scc_tasks", 1);
    const SccTask& task = state.prepared->sccs[j];
    // All SCC work runs over the report skeleton's analyzed_program (the
    // post-transformation program whose PredIds the SccTasks reference),
    // exactly as the serial TerminationAnalyzer::Analyze loop does.
    const TerminationReport& skeleton = state.prepared->report;
    const Program& program = skeleton.analyzed_program;
    std::vector<PredId> preds = CanonicalSccOrder(program, task.preds);

    auto compute = [&]() {
      ResourceGovernor governor(state.request->options.limits);
      SccReport fresh = state.analyzer->AnalyzeScc(
          program, preds, skeleton.modes, skeleton.arg_sizes,
          task.has_conflict, &governor);
      GovernorSpend spend = governor.Spend();
      AccumulateSpend(&state, spend);
      if (fresh.status == SccStatus::kResourceLimit) {
        // Deterministic spend note: work and limb counts are functions of
        // the task's inputs; elapsed_ms is deliberately omitted so batch
        // output stays byte-stable across jobs settings and reruns.
        fresh.notes.push_back(StrCat("task spend: work=", spend.work,
                                     " bigint_limbs=",
                                     spend.bigint_limb_high_water));
      }
      return DehydrateSccReport(fresh, program);
    };

    CachedSccOutcome outcome;
    if (options_.use_cache && !task.has_conflict) {
      SccCacheKey key = CanonicalSccKey(program, preds, skeleton.modes,
                                        skeleton.arg_sizes,
                                        state.request->options);
      bool served_from_cache = false;
      outcome = cache_.GetOrCompute(key.text, compute, &served_from_cache);
      if (served_from_cache) {
        state.cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      outcome = compute();
    }
    state.scc_tasks.fetch_add(1, std::memory_order_relaxed);
    state.slots[j] = RehydrateSccReport(outcome, program, std::move(preds));
    state.busy_us.fetch_add(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - task_start)
            .count(),
        std::memory_order_relaxed);
    if (state.pending_sccs.fetch_sub(1) == 1) finish_request(i);
  };

  auto run_prep_task = [&](size_t i) {
    RequestState& state = *states[i];
    const BatchRequest& request = *state.request;
    state.started = std::chrono::steady_clock::now();
    state.span = obs::BeginSpan("request", "engine", batch_span);
    obs::SpanArg(state.span, "name", request.name);
    obs::ScopedParent trace_parent(state.span);
    ResourceGovernor governor(request.options.limits);
    state.prepared = state.analyzer->Prepare(state.program, request.query,
                                             request.adornment, &governor);
    AccumulateSpend(&state, governor.Spend());
    // Billed before any SCC task can finish the request, so the merge
    // loop's read (ordered by the done_mu handoff) always sees the prep
    // share.
    auto bill_prep = [&state] {
      state.busy_us.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - state.started)
              .count(),
          std::memory_order_relaxed);
    };
    if (!state.prepared.ok()) {
      bill_prep();
      finish_request(i);
      return;
    }
    PreparedAnalysis& prepared = *state.prepared;
    state.slots.resize(prepared.sccs.size());
    int recursive = 0;
    for (size_t j = 0; j < prepared.sccs.size(); ++j) {
      const SccTask& task = prepared.sccs[j];
      if (task.recursive) {
        ++recursive;
        continue;
      }
      state.slots[j].preds = task.preds;
      state.slots[j].status = SccStatus::kNonRecursive;
    }
    if (recursive == 0) {
      bill_prep();
      finish_request(i);
      return;
    }
    state.pending_sccs.store(recursive);
    bill_prep();
    for (size_t j = 0; j < prepared.sccs.size(); ++j) {
      if (!prepared.sccs[j].recursive) continue;
      queue.Push([&run_scc_task, i, j] { run_scc_task(i, j); });
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options_.jobs));
  for (int w = 0; w < options_.jobs; ++w) {
    workers.emplace_back([&queue] {
      while (std::optional<std::function<void()>> task = queue.Pop()) {
        (*task)();
      }
    });
  }
  for (size_t i = 0; i < n; ++i) {
    queue.Push([&run_prep_task, i] { run_prep_task(i); });
  }

  // Merge: deterministic assembly in request order, streaming each result
  // as soon as it (and everything before it) is complete.
  std::vector<BatchItemResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&done, i] { return done[i]; });
    }
    RequestState& state = *states[i];
    BatchItemResult item;
    item.name = state.request->name;
    if (!state.prepared.ok()) {
      item.status = state.prepared.status();
    } else {
      TerminationReport report = std::move(state.prepared->report);
      report.proved = true;
      for (SccReport& scc : state.slots) {
        if (scc.status == SccStatus::kResourceLimit) {
          report.resource_limited = true;
          if (report.first_resource_trip.empty()) {
            report.first_resource_trip =
                scc.notes.empty() ? "resource budget tripped" : scc.notes.front();
          }
        }
        if (scc.status != SccStatus::kProved &&
            scc.status != SccStatus::kNonRecursive) {
          report.proved = false;
        }
        report.sccs.push_back(std::move(scc));
      }
      report.spend.work = state.work.load();
      report.spend.bigint_limb_high_water = state.limb_high_water.load();
      // Completion time, not merge time: an early request that finished
      // fast should not bill the wait for its slot in the ordered stream.
      report.spend.elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              state.finished - state.started)
              .count();
      item.report = std::move(report);
    }
    item.scc_tasks = state.scc_tasks.load();
    item.cache_hits = state.cache_hits.load();
    item.latency_us = state.busy_us.load(std::memory_order_relaxed);
    stats_.scc_tasks += item.scc_tasks;
    stats_.total_work += state.work.load();
    obs::EndSpan(state.span);
    if (on_result) on_result(item);
    results.push_back(std::move(item));
  }

  queue.Close();
  for (std::thread& worker : workers) worker.join();

  stats_.requests += static_cast<int64_t>(n);
  SccCache::Stats cache_stats = cache_.stats();
  stats_.cache_hits = cache_stats.hits + cache_stats.single_flight_waits;
  stats_.cache_misses = cache_stats.misses;
  stats_.single_flight_waits = cache_stats.single_flight_waits;
  stats_.unique_sccs = cache_.size();
  stats_.persisted_loaded = cache_stats.persisted_loaded;
  stats_.persisted_hits = cache_stats.persisted_hits;
  stats_.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - run_start)
                       .count();
  stats_.total_wall_ms += stats_.wall_ms;
  obs::EndSpan(batch_span);
  return results;
}

}  // namespace termilog
