#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <ctime>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "engine/canonical.h"
#include "obs/obs.h"
#include "persist/store.h"
#include "persist/writer.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Private copy of a request's program with a fresh symbol table. Requests
// routinely share one Program (declared modes, repeated submissions), but
// preparation mutates the symbol table (adornment cloning, supplied
// constraints, transformations intern new names), so each request must own
// its table. Symbol ids are preserved by the copy, keeping the request's
// PredIds valid; term structure is immutable and stays shared.
Program PrivateCopy(const Program& program) {
  Program copy(std::make_shared<SymbolTable>(program.symbols()));
  for (const Rule& rule : program.rules()) copy.AddRule(rule);
  for (const ModeDecl& decl : program.mode_decls()) copy.AddModeDecl(decl);
  return copy;
}

// CPU time of the calling thread, the unit of the engine's service-cost
// accounting (BatchItemResult::latency_us): unlike a wall interval it does
// not inflate when more workers than cores run concurrently.
int64_t ThreadCpuMicros() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000;
}

// Queue feeding the worker pool, with two priority classes. Child tasks
// (the inference and SCC tasks a request's preparation spawned) are
// drained before preparation tasks, so the task chains of admitted
// requests finish before new requests are admitted. Within a class the
// order is FIFO. This is the scheduling-fairness fix: with a single FIFO
// the batch ran every preparation first and every request's final task
// landed at the very end of the run, inflating admission-to-completion
// latency to the batch's wall time. Close() lets workers drain the
// remaining tasks and then exit.
class TaskQueue {
 public:
  void Push(std::function<void()> task) { PushClass(&preps_, std::move(task)); }

  void PushChild(std::function<void()> task) {
    PushClass(&children_, std::move(task));
  }

  std::optional<std::function<void()>> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      return closed_ || !children_.empty() || !preps_.empty();
    });
    std::deque<std::function<void()>>* source =
        !children_.empty() ? &children_ : &preps_;
    if (source->empty()) return std::nullopt;
    std::function<void()> task = std::move(source->front());
    source->pop_front();
    return task;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  void PushClass(std::deque<std::function<void()>>* tasks,
                 std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      TERMILOG_CHECK_MSG(!closed_, "task pushed after queue close");
      tasks->push_back(std::move(task));
    }
    cv_.notify_one();
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> children_;
  std::deque<std::function<void()>> preps_;
  bool closed_ = false;
};

// Mutable per-request state shared between the prep task, the inference
// tasks, the SCC tasks, and the merge.
struct RequestState {
  const BatchRequest* request = nullptr;
  std::unique_ptr<TerminationAnalyzer> analyzer;
  Program program;  // private copy; stable once prep finishes

  // Placeholder until the prep task runs (Result forbids an OK status
  // without a value).
  Result<PreparedAnalysis> prepared =
      Status::Internal("request not yet prepared");
  std::vector<SccReport> slots;  // one per SccTask, condensation order

  // Inference-plan scheduling state, set up by the prep task. db_mu
  // guards report.arg_sizes (the store every inference task snapshots
  // callee polyhedra from and applies its entries to), deps_left, and the
  // per-node warning/error slots. Readiness propagates along the
  // condensation DAG: a node is pushed when its last dependency's task
  // decrements deps_left to zero.
  std::mutex db_mu;
  std::vector<int> deps_left;              // per plan node
  std::vector<std::vector<int>> dependents;  // reverse dependency edges
  std::vector<std::string> inference_warnings;  // per node; "" = none
  std::vector<Status> inference_errors;         // per node; OK = none
  std::atomic<int> pending_inference{0};

  std::atomic<int> pending_sccs{0};
  std::atomic<int64_t> work{0};
  std::atomic<int64_t> limb_high_water{0};
  std::atomic<int64_t> scc_tasks{0};
  std::atomic<int64_t> cache_hits{0};
  std::atomic<int64_t> inference_tasks{0};
  std::atomic<int64_t> inference_hits{0};
  /// Thread-CPU microseconds spent on this request: its preparation plus
  /// each of its inference and SCC tasks. Time blocked in single-flight
  /// waits or in the queue does not accrue CPU, so over a large batch the
  /// distribution measures per-request service cost, not batch position
  /// or core oversubscription.
  std::atomic<int64_t> busy_us{0};
  std::chrono::steady_clock::time_point started;
  // Set by finish_request (single writer: the worker that completes the
  // request), read by the merge loop after done[i] — the done_mu handoff
  // orders the accesses.
  std::chrono::steady_clock::time_point finished;
  // Per-request trace span: begun by the prep task, ended by the merge
  // loop on the main thread; inference and SCC tasks attach to it
  // explicitly.
  obs::SpanId span = 0;
};

void AccumulateSpend(RequestState* state, const GovernorSpend& spend) {
  // Mirror the spend into the metrics registry so metrics totals reconcile
  // with EngineStats::total_work (every per-task governor passes through
  // here exactly once).
  TERMILOG_COUNTER("governor.work", spend.work);
  TERMILOG_HISTOGRAM("governor.limb_high_water",
                     spend.bigint_limb_high_water);
  state->work.fetch_add(spend.work, std::memory_order_relaxed);
  int64_t seen = state->limb_high_water.load(std::memory_order_relaxed);
  while (spend.bigint_limb_high_water > seen &&
         !state->limb_high_water.compare_exchange_weak(
             seen, spend.bigint_limb_high_water, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string EngineStats::ToString() const {
  return StrCat("requests=", requests, " scc_tasks=", scc_tasks,
                " cache_hits=", cache_hits, " cache_misses=", cache_misses,
                " single_flight_waits=", single_flight_waits,
                " unique_sccs=", unique_sccs,
                " persisted_loaded=", persisted_loaded,
                " persisted_hits=", persisted_hits,
                " inference_tasks=", inference_tasks,
                " inference_cache_hits=", inference_cache_hits,
                " inference_cache_misses=", inference_cache_misses,
                " inference_single_flight_waits=", inference_single_flight_waits,
                " unique_inference_sccs=", unique_inference_sccs,
                " inference_persisted_loaded=", inference_persisted_loaded,
                " inference_persisted_hits=", inference_persisted_hits,
                " total_work=", total_work,
                " wall_ms=", wall_ms, " total_wall_ms=", total_wall_ms);
}

BatchEngine::BatchEngine(EngineOptions options) : options_(options) {
  if (options_.jobs < 1) options_.jobs = 1;
}

BatchEngine::~BatchEngine() = default;

Status BatchEngine::AttachStore(
    std::unique_ptr<persist::PersistentStore> store) {
  TERMILOG_CHECK_MSG(store != nullptr, "AttachStore wants a store");
  TERMILOG_CHECK_MSG(store_ == nullptr, "a store is already attached");
  for (const auto& [key, outcome] : store->entries()) {
    cache_.Preload(key, outcome);
  }
  for (const auto& [key, outcome] : store->inference_entries()) {
    inference_cache_.Preload(key, outcome);
  }
  // Automatic post-warm-start audit (docs/persistence.md): a store whose
  // recovered entries do not form structurally sound caches must not be
  // served from. Preload screens each record, so in practice this only
  // fires on an engine bug — but the check is cheap and the alternative
  // is silently wrong verdicts.
  Status audit = cache_.SelfCheck();
  if (!audit.ok()) return audit;
  audit = inference_cache_.SelfCheck();
  if (!audit.ok()) return audit;
  stats_.persisted_loaded = cache_.stats().persisted_loaded;
  stats_.inference_persisted_loaded =
      inference_cache_.stats().persisted_loaded;
  store_ = std::move(store);
  writer_ = std::make_unique<persist::StoreWriter>(store_.get());
  cache_.SetNewEntryListener(
      [this](const std::string& key, const CachedSccOutcome& outcome) {
        writer_->Enqueue(key, outcome);
      });
  inference_cache_.SetNewEntryListener(
      [this](const std::string& key, const CachedInferenceOutcome& outcome) {
        writer_->EnqueueInference(key, outcome);
      });
  return Status::Ok();
}

Status BatchEngine::FlushStore() {
  if (writer_ == nullptr) return Status::Ok();
  return writer_->Drain();
}

std::vector<BatchItemResult> BatchEngine::Run(
    const std::vector<BatchRequest>& requests,
    const std::function<void(const BatchItemResult&)>& on_result) {
  const auto run_start = std::chrono::steady_clock::now();
  const size_t n = requests.size();
  obs::SpanId batch_span = obs::BeginSpan("batch.run", "engine");
  obs::SpanArg(batch_span, "requests", StrCat(n));
  obs::SpanArg(batch_span, "jobs", StrCat(options_.jobs));
  TERMILOG_COUNTER("engine.requests", static_cast<int64_t>(n));

  std::vector<std::unique_ptr<RequestState>> states;
  states.reserve(n);
  for (const BatchRequest& request : requests) {
    auto state = std::make_unique<RequestState>();
    state->request = &request;
    state->analyzer = std::make_unique<TerminationAnalyzer>(request.options);
    state->program = PrivateCopy(request.program);
    states.push_back(std::move(state));
  }

  // Completion tracking: workers flip done[i] under done_mu; the main
  // thread drains results strictly in request order.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::vector<bool> done(n, false);
  auto finish_request = [&](size_t i) {
    states[i]->finished = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(done_mu);
      done[i] = true;
    }
    done_cv.notify_all();
  };

  TaskQueue queue;

  // Analyzes SCC task `j` of request `i` (a recursive SCC), through the
  // content cache unless disabled or the SCC has an adornment conflict
  // (conflict verdicts are trivial, and conflict-ness is a property of the
  // request's mode dataflow, not of the SCC's content).
  auto run_scc_task = [&](size_t i, size_t j) {
    RequestState& state = *states[i];
    const int64_t cpu_start = ThreadCpuMicros();
    obs::ScopedParent trace_parent(state.span);
    TERMILOG_TRACE("scc.task", "engine");
    TERMILOG_COUNTER("engine.scc_tasks", 1);
    const SccTask& task = state.prepared->sccs[j];
    // All SCC work runs over the report skeleton's analyzed_program (the
    // post-transformation program whose PredIds the SccTasks reference),
    // exactly as the serial TerminationAnalyzer::Analyze loop does.
    const TerminationReport& skeleton = state.prepared->report;
    const Program& program = skeleton.analyzed_program;
    std::vector<PredId> preds = CanonicalSccOrder(program, task.preds);

    auto compute = [&]() {
      ResourceGovernor governor(state.request->options.limits);
      SccReport fresh = state.analyzer->AnalyzeScc(
          program, preds, skeleton.modes, skeleton.arg_sizes,
          task.has_conflict, &governor);
      GovernorSpend spend = governor.Spend();
      AccumulateSpend(&state, spend);
      if (fresh.status == SccStatus::kResourceLimit) {
        // Deterministic spend note: work and limb counts are functions of
        // the task's inputs; elapsed_ms is deliberately omitted so batch
        // output stays byte-stable across jobs settings and reruns.
        fresh.notes.push_back(StrCat("task spend: work=", spend.work,
                                     " bigint_limbs=",
                                     spend.bigint_limb_high_water));
      }
      return DehydrateSccReport(fresh, program);
    };

    CachedSccOutcome outcome;
    if (options_.use_cache && !task.has_conflict) {
      SccCacheKey key = CanonicalSccKey(program, preds, skeleton.modes,
                                        skeleton.arg_sizes,
                                        state.request->options);
      bool served_from_cache = false;
      outcome = cache_.GetOrCompute(key.text, compute, &served_from_cache);
      if (served_from_cache) {
        state.cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      outcome = compute();
    }
    state.scc_tasks.fetch_add(1, std::memory_order_relaxed);
    state.slots[j] = RehydrateSccReport(outcome, program, std::move(preds));
    state.busy_us.fetch_add(ThreadCpuMicros() - cpu_start,
                            std::memory_order_relaxed);
    if (state.pending_sccs.fetch_sub(1) == 1) finish_request(i);
  };

  // Fills the non-recursive slots and pushes one SCC task per recursive
  // SCC — the tail of request admission, run by the prep task when there
  // is no inference plan and by the last inference task otherwise. The
  // db writes of every inference task are visible here: each task writes
  // under db_mu before its seq_cst decrement of pending_inference, and
  // the queue mutex orders the pushes against the SCC workers.
  auto finalize_sccs = [&](size_t i) {
    RequestState& state = *states[i];
    PreparedAnalysis& prepared = *state.prepared;
    state.slots.resize(prepared.sccs.size());
    int recursive = 0;
    for (size_t j = 0; j < prepared.sccs.size(); ++j) {
      const SccTask& task = prepared.sccs[j];
      if (task.recursive) {
        ++recursive;
        continue;
      }
      state.slots[j].preds = task.preds;
      state.slots[j].status = SccStatus::kNonRecursive;
    }
    if (recursive == 0) {
      finish_request(i);
      return;
    }
    state.pending_sccs.store(recursive);
    for (size_t j = 0; j < prepared.sccs.size(); ++j) {
      if (!prepared.sccs[j].recursive) continue;
      queue.PushChild([&run_scc_task, i, j] { run_scc_task(i, j); });
    }
  };

  // Merges the inference phase into the skeleton report — exactly the
  // serial Prepare semantics: the first hard error (in plan-node order)
  // fails the request; budget trips degrade to per-node warning notes
  // in plan-node order.
  auto finalize_inference = [&](size_t i) {
    RequestState& state = *states[i];
    for (const Status& error : state.inference_errors) {
      if (!error.ok()) {
        state.prepared = error;
        finish_request(i);
        return;
      }
    }
    TerminationReport& report = state.prepared->report;
    for (const std::string& warning : state.inference_warnings) {
      if (warning.empty()) continue;
      report.notes.push_back(warning);
      report.resource_limited = true;
      if (report.first_resource_trip.empty()) {
        report.first_resource_trip = warning;
      }
    }
    state.prepared->inference.nodes.clear();
    finalize_sccs(i);
  };

  // Runs inference-plan node `k` of request `i`: one [VG90] fixpoint over
  // one SCC of the condensation, through the inference cache. Callee
  // polyhedra are snapshotted under db_mu; the dependency edges guarantee
  // every callee entry this SCC reads is final before the node is pushed,
  // so the snapshot — and with it the cache key and the result — is
  // deterministic regardless of worker interleaving. Declared as a
  // std::function so completed nodes can push their newly ready
  // dependents.
  std::function<void(size_t, int)> run_inference_task;
  run_inference_task = [&](size_t i, int k) {
    RequestState& state = *states[i];
    const int64_t cpu_start = ThreadCpuMicros();
    obs::ScopedParent trace_parent(state.span);
    TERMILOG_TRACE("inference.task", "engine");
    TERMILOG_COUNTER("engine.inference_tasks", 1);
    const InferencePlanNode& node = state.prepared->inference.nodes[k];
    TerminationReport& report = state.prepared->report;
    const Program& program = report.analyzed_program;
    std::vector<PredId> preds = CanonicalSccOrder(program, node.preds);

    ArgSizeDb snapshot;
    {
      std::lock_guard<std::mutex> lock(state.db_mu);
      for (const PredId& callee : InferenceCalleePreds(program, preds)) {
        if (report.arg_sizes.Has(callee)) {
          snapshot.Set(callee, report.arg_sizes.Get(callee));
        }
      }
    }

    auto compute = [&]() {
      ResourceGovernor governor(state.request->options.limits);
      InferenceOptions inference_options = state.request->options.inference;
      inference_options.fm.governor = &governor;
      Result<SccInferenceResult> result = ConstraintInference::RunScc(
          program, preds, snapshot, inference_options);
      AccumulateSpend(&state, governor.Spend());
      if (!result.ok()) {
        // Hard (non-budget) error: carried in the outcome so single-flight
        // waiters fail identically; never retained by the cache.
        CachedInferenceOutcome failed;
        failed.error = result.status();
        return failed;
      }
      return DehydrateInferenceResult(*result, program);
    };

    CachedInferenceOutcome outcome;
    if (options_.use_cache) {
      SccCacheKey key = CanonicalInferenceKey(program, preds, snapshot,
                                              state.request->options);
      bool served_from_cache = false;
      outcome =
          inference_cache_.GetOrCompute(key.text, compute, &served_from_cache);
      if (served_from_cache) {
        state.inference_hits.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      outcome = compute();
    }
    state.inference_tasks.fetch_add(1, std::memory_order_relaxed);

    std::vector<int> ready;
    {
      std::lock_guard<std::mutex> lock(state.db_mu);
      if (!outcome.error.ok()) {
        state.inference_errors[k] = outcome.error;
      } else if (outcome.resource_limited) {
        // Same warning text, composed from the same (plan-order) front
        // predicate, as the serial ConstraintInference::Run path.
        state.inference_warnings[k] =
            StrCat("inference skipped for SCC of ",
                   program.PredName(node.preds.front()),
                   " (left unconstrained): ", outcome.trip_message);
      } else {
        ApplyInferenceOutcome(outcome, program, &report.arg_sizes);
      }
      for (int dependent : state.dependents[k]) {
        if (--state.deps_left[dependent] == 0) ready.push_back(dependent);
      }
    }
    for (int dependent : ready) {
      queue.PushChild([&run_inference_task, i, dependent] {
        run_inference_task(i, dependent);
      });
    }
    state.busy_us.fetch_add(ThreadCpuMicros() - cpu_start,
                            std::memory_order_relaxed);
    if (state.pending_inference.fetch_sub(1) == 1) finalize_inference(i);
  };

  auto run_prep_task = [&](size_t i) {
    RequestState& state = *states[i];
    const BatchRequest& request = *state.request;
    state.started = std::chrono::steady_clock::now();
    const int64_t cpu_start = ThreadCpuMicros();
    state.span = obs::BeginSpan("request", "engine", batch_span);
    obs::SpanArg(state.span, "name", request.name);
    obs::ScopedParent trace_parent(state.span);
    ResourceGovernor governor(request.options.limits);
    state.prepared = state.analyzer->PrepareStructure(
        state.program, request.query, request.adornment, &governor);
    AccumulateSpend(&state, governor.Spend());
    // Billed before any child task can finish the request, so the merge
    // loop's read (ordered by the done_mu handoff) always sees the prep
    // share.
    state.busy_us.fetch_add(ThreadCpuMicros() - cpu_start,
                            std::memory_order_relaxed);
    if (!state.prepared.ok()) {
      finish_request(i);
      return;
    }

    // Inference phase. The whole-run skip failpoint fires here — once per
    // request, before any node runs — with the same degraded note as the
    // serial path; otherwise the plan's source nodes are pushed and the
    // rest schedule themselves as their dependencies complete.
    bool run_inference = request.options.run_inference;
    if (run_inference && TERMILOG_FAILPOINT_HIT("inference.run")) {
      TerminationReport& report = state.prepared->report;
      std::string message =
          StrCat("constraint inference skipped (",
                 FailpointRegistry::TripMessage("inference.run"),
                 "); predicates left unconstrained");
      report.notes.push_back(message);
      report.resource_limited = true;
      if (report.first_resource_trip.empty()) {
        report.first_resource_trip = message;
      }
      run_inference = false;
    }
    const InferencePlan& plan = state.prepared->inference;
    if (!run_inference || plan.nodes.empty()) {
      finalize_sccs(i);
      return;
    }
    const int num_nodes = static_cast<int>(plan.nodes.size());
    state.deps_left.assign(num_nodes, 0);
    state.dependents.assign(num_nodes, {});
    state.inference_warnings.assign(num_nodes, "");
    state.inference_errors.assign(num_nodes, Status::Ok());
    for (int k = 0; k < num_nodes; ++k) {
      state.deps_left[k] = static_cast<int>(plan.nodes[k].deps.size());
      for (int dep : plan.nodes[k].deps) state.dependents[dep].push_back(k);
    }
    state.pending_inference.store(num_nodes);
    // Initial readiness is read off the immutable plan, not deps_left: an
    // already-pushed source node can complete (cache hit) and decrement a
    // dependent's deps_left to zero while this loop is still running, and
    // reading that zero here would push the dependent a second time.
    for (int k = 0; k < num_nodes; ++k) {
      if (!plan.nodes[k].deps.empty()) continue;
      queue.PushChild(
          [&run_inference_task, i, k] { run_inference_task(i, k); });
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options_.jobs));
  for (int w = 0; w < options_.jobs; ++w) {
    workers.emplace_back([&queue] {
      while (std::optional<std::function<void()>> task = queue.Pop()) {
        (*task)();
      }
    });
  }
  for (size_t i = 0; i < n; ++i) {
    queue.Push([&run_prep_task, i] { run_prep_task(i); });
  }

  // Merge: deterministic assembly in request order, streaming each result
  // as soon as it (and everything before it) is complete.
  std::vector<BatchItemResult> results;
  results.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&done, i] { return done[i]; });
    }
    RequestState& state = *states[i];
    BatchItemResult item;
    item.name = state.request->name;
    if (!state.prepared.ok()) {
      item.status = state.prepared.status();
    } else {
      TerminationReport report = std::move(state.prepared->report);
      report.proved = true;
      for (SccReport& scc : state.slots) {
        if (scc.status == SccStatus::kResourceLimit) {
          report.resource_limited = true;
          if (report.first_resource_trip.empty()) {
            report.first_resource_trip =
                scc.notes.empty() ? "resource budget tripped" : scc.notes.front();
          }
        }
        if (scc.status != SccStatus::kProved &&
            scc.status != SccStatus::kNonRecursive) {
          report.proved = false;
        }
        report.sccs.push_back(std::move(scc));
      }
      report.spend.work = state.work.load();
      report.spend.bigint_limb_high_water = state.limb_high_water.load();
      // Completion time, not merge time: an early request that finished
      // fast should not bill the wait for its slot in the ordered stream.
      report.spend.elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              state.finished - state.started)
              .count();
      item.report = std::move(report);
    }
    item.scc_tasks = state.scc_tasks.load();
    item.cache_hits = state.cache_hits.load();
    item.inference_tasks = state.inference_tasks.load();
    item.inference_cache_hits = state.inference_hits.load();
    item.latency_us = state.busy_us.load(std::memory_order_relaxed);
    item.e2e_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      state.finished - state.started)
                      .count();
    stats_.scc_tasks += item.scc_tasks;
    stats_.inference_tasks += item.inference_tasks;
    stats_.total_work += state.work.load();
    obs::EndSpan(state.span);
    if (on_result) on_result(item);
    results.push_back(std::move(item));
  }

  queue.Close();
  for (std::thread& worker : workers) worker.join();

  stats_.requests += static_cast<int64_t>(n);
  SccCache::Stats cache_stats = cache_.stats();
  stats_.cache_hits = cache_stats.hits + cache_stats.single_flight_waits;
  stats_.cache_misses = cache_stats.misses;
  stats_.single_flight_waits = cache_stats.single_flight_waits;
  stats_.unique_sccs = cache_.size();
  stats_.persisted_loaded = cache_stats.persisted_loaded;
  stats_.persisted_hits = cache_stats.persisted_hits;
  InferenceCache::Stats inference_stats = inference_cache_.stats();
  stats_.inference_cache_hits =
      inference_stats.hits + inference_stats.single_flight_waits;
  stats_.inference_cache_misses = inference_stats.misses;
  stats_.inference_single_flight_waits = inference_stats.single_flight_waits;
  stats_.unique_inference_sccs = inference_cache_.size();
  stats_.inference_persisted_loaded = inference_stats.persisted_loaded;
  stats_.inference_persisted_hits = inference_stats.persisted_hits;
  stats_.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - run_start)
                       .count();
  stats_.total_wall_ms += stats_.wall_ms;
  obs::EndSpan(batch_span);
  return results;
}

}  // namespace termilog
