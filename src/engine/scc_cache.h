#ifndef TERMILOG_ENGINE_SCC_CACHE_H_
#define TERMILOG_ENGINE_SCC_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "program/ast.h"
#include "rational/rational.h"

namespace termilog {

/// A program-independent SccReport: predicates are stored by (name, arity)
/// instead of PredId, because symbol ids are an artifact of interning order
/// and differ between programs that contain the same SCC verbatim. The
/// cache stores outcomes in this form; Rehydrate maps them back onto the
/// requesting program's PredIds.
struct CachedSccOutcome {
  struct NamedTheta {
    std::string name;
    int arity = 0;
    std::vector<Rational> coeffs;
  };
  struct NamedDelta {
    std::string from_name;
    int from_arity = 0;
    std::string to_name;
    int to_arity = 0;
    Rational value;
  };

  SccStatus status = SccStatus::kNotProved;
  bool used_negative_deltas = false;
  std::string reduced_constraints;
  std::vector<std::string> notes;
  std::vector<NamedTheta> theta;
  std::vector<NamedDelta> delta;
};

/// Converts a freshly computed SccReport into cacheable form.
CachedSccOutcome DehydrateSccReport(const SccReport& report,
                                    const Program& program);

/// Reconstructs an SccReport for `program` from a cached outcome.
/// `scc_preds` (canonical order) supplies the report's predicate list;
/// every name in the outcome must resolve in `program`'s symbol table
/// (guaranteed when the outcome was keyed on the SCC's rules, which mention
/// exactly those names) — a failed resolution is a checked failure.
SccReport RehydrateSccReport(const CachedSccOutcome& outcome,
                             const Program& program,
                             std::vector<PredId> scc_preds);

/// Thread-safe content-addressed store of SCC outcomes with single-flight
/// deduplication: when several workers ask for the same key concurrently,
/// exactly one runs the compute function and the rest block until its
/// result is ready — the same SCC is never solved twice, not even
/// transiently. Keys are full canonical texts (see CanonicalSccKey), so a
/// lookup hit is a content match, not a hash match.
///
/// kResourceLimit outcomes are handed to in-flight waiters but never
/// retained: a starved verdict says the budget ran out, not what the SCC's
/// answer is, and external test-only state (failpoints) can force one
/// without being part of the key.
class SccCache {
 public:
  struct Stats {
    int64_t lookups = 0;
    /// Served from a completed entry.
    int64_t hits = 0;
    /// This caller ran the compute function.
    int64_t misses = 0;
    /// Served by blocking on another worker's in-flight computation.
    int64_t single_flight_waits = 0;
    /// Entries warm-started from a persistent store (Preload).
    int64_t persisted_loaded = 0;
    /// Subset of `hits` served by a preloaded entry — work some prior
    /// process paid for (docs/persistence.md).
    int64_t persisted_hits = 0;
  };

  SccCache() = default;
  SccCache(const SccCache&) = delete;
  SccCache& operator=(const SccCache&) = delete;

  /// Returns the outcome for `key`, running `compute` at most once across
  /// all threads per key lifetime. `served_from_cache` (optional) is set to
  /// true when the caller did not run `compute` itself.
  CachedSccOutcome GetOrCompute(
      const std::string& key,
      const std::function<CachedSccOutcome()>& compute,
      bool* served_from_cache = nullptr);

  /// Inserts a ready entry recovered from a persistent store, before any
  /// GetOrCompute traffic. Returns false (entry ignored) for an empty
  /// key, a kResourceLimit outcome, or a key that is already present —
  /// defensive layering on top of the store's own decode validation, so
  /// even a hostile store file can only ever produce cache misses.
  bool Preload(const std::string& key, CachedSccOutcome outcome);

  /// Registers a callback invoked (outside the cache lock, on the
  /// computing worker's thread) for every freshly computed outcome that
  /// the cache retains — the write-behind persistence hook. Preloaded
  /// and kResourceLimit outcomes never fire it. Must be set before
  /// concurrent GetOrCompute traffic begins; the callback must be
  /// thread-safe.
  void SetNewEntryListener(
      std::function<void(const std::string&, const CachedSccOutcome&)>
          listener);

  Stats stats() const;
  /// Number of completed entries currently retained.
  int64_t size() const;

  /// Post-run invariant audit, for the chaos/stress harness
  /// (docs/generator.md): with no computation in flight, every retained
  /// entry must be ready (no abandoned single-flight slots), no
  /// kResourceLimit outcome may be retained (a starved verdict is not an
  /// answer), every retained key must be non-empty, and the stats must
  /// reconcile (lookups == hits + misses + single_flight_waits). Returns
  /// the first violation as kInternal; OK means the cache survived the
  /// run — including injected faults — structurally intact.
  Status SelfCheck() const;

 private:
  struct Entry {
    bool ready = false;
    /// Warm-started from a persistent store rather than computed here.
    bool from_store = false;
    CachedSccOutcome outcome;
  };

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  Stats stats_;
  std::function<void(const std::string&, const CachedSccOutcome&)>
      new_entry_listener_;
};

}  // namespace termilog

#endif  // TERMILOG_ENGINE_SCC_CACHE_H_
