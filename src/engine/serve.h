#ifndef TERMILOG_ENGINE_SERVE_H_
#define TERMILOG_ENGINE_SERVE_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "engine/engine.h"
#include "gen/gen.h"

namespace termilog {

/// Options for the long-running request loop (docs/serve.md,
/// docs/engine.md, docs/persistence.md). The protocol reuses the --batch
/// JSONL framing: one manifest-entry object per input line ("source" or
/// "file", plus optional "name"/"query"/"limits"/"kind"), one report JSON
/// line per request on the output, in request order. EOF on the input
/// ends the loop. "kind":"conditions" answers with a termination-
/// condition sweep report (docs/conditions.md) instead of a single-mode
/// analysis; an unknown kind answers with the structured per-request
/// error shape.
struct ServeOptions {
  /// Base AnalysisOptions for every request; a request's own "limits"
  /// object overrides `base.limits`, so `--deadline-ms` supplies the
  /// per-request deadline default that the ResourceGovernor enforces.
  AnalysisOptions base;
  /// Requests allowed to wait for a worker before the server sheds.
  /// When the waiting room is full, a new request is answered
  /// immediately with a deterministic RESOURCE_EXHAUSTED error carrying
  /// a retry-after note — bounded memory and bounded latency instead of
  /// an unbounded queue that falls over (docs/engine.md, Overload).
  int queue_limit = 64;
  /// Max requests handed to one BatchEngine::Run call. Small chunks keep
  /// response latency low; the content cache carries warmth across
  /// chunks either way.
  int chunk = 16;
  /// Max bytes of one request line. The JSONL reader never buffers more
  /// than this per line: an over-long line is answered with the
  /// structured per-request error shape (naming the line number and the
  /// cap) and its remaining bytes are discarded up to the newline, so an
  /// adversarial or broken client cannot grow server memory with one
  /// unbounded line. Shared guard with the socket transport (src/net/).
  size_t max_line_bytes = 1 << 20;
  /// Test hook: when true the processing side waits until the reader has
  /// consumed its whole input before analyzing anything, making the
  /// shed/accept split a pure function of queue_limit rather than of
  /// scheduler timing. Production serving leaves this false.
  bool drain_input_first = false;
};

struct ServeStats {
  /// Input lines seen (blank and header lines excluded).
  int64_t lines = 0;
  /// Requests analyzed to completion (both kinds).
  int64_t served = 0;
  /// Requests answered with the overload response without being queued.
  int64_t shed = 0;
  /// Unreadable request lines answered with a per-line error — truncated
  /// JSON, a missing source, an unknown request "kind", an unparseable
  /// program, a line over max_line_bytes. Every one gets the structured
  /// per-request error shape ({"name":..,"ok":false,"error":..}); none
  /// aborts the loop.
  int64_t errors = 0;
  /// The subset of `errors` that were over-long input lines.
  int64_t overlong = 0;
  /// The subset of `served` that were "kind":"conditions" sweeps
  /// (docs/conditions.md).
  int64_t conditions = 0;

  std::string ToJson() const;
};

// --- Shared request-processing core -------------------------------------
//
// The pieces below are the transport-independent half of serve mode: the
// FIFO/stdin loop (Serve) and the socket transport (src/net/) both admit
// gen::ManifestEntry requests and answer them through these, so the wire
// protocol — request kinds, error/shed shapes, response bytes — is one
// implementation, not two.

/// One admitted request: an opaque sequence token (returned verbatim to
/// `emit`, never interpreted) and the parsed manifest entry.
struct ServeItem {
  int64_t seq = 0;
  gen::ManifestEntry entry;
};

/// What one ProcessServeChunk call answered, for the caller's stats.
struct ServeChunkStats {
  int64_t served = 0;
  int64_t errors = 0;
  int64_t conditions = 0;
};

/// Analyzes one chunk of admitted requests through `engine` and calls
/// `emit(seq, line)` exactly once per item with its response line (no
/// trailing newline). Plain requests batch through BatchEngine::Run;
/// "conditions" requests sweep through RunConditionsSweeps sharing the
/// same engine and cache; unreadable entries (ParseManifestLine `error`
/// set) and per-request failures get the structured error shape. `emit`
/// runs on the calling thread; emission order within the chunk follows
/// completion order, so callers that need a global order sequence by
/// `seq` (ResponseSequencer here, the per-connection sequencers in
/// src/net/).
ServeChunkStats ProcessServeChunk(
    BatchEngine& engine, std::vector<ServeItem> items,
    const AnalysisOptions& base,
    const std::function<void(int64_t seq, std::string line)>& emit);

/// The structured per-request error line ({"name":..,"ok":false,
/// "error":..}) shared by every transport.
std::string ServeErrorLine(const std::string& name, const Status& status);

/// The deterministic overload response for a full waiting room: same
/// bytes for every shed request (clients can match on it), carrying a
/// retry-after note. `queue_limit` names the configured bound.
std::string ServeShedLine(const std::string& name, int queue_limit);

/// The error status for a request line over `max_line_bytes`, naming the
/// 1-based line number and the cap.
Status OverlongLineError(size_t line_number, size_t max_line_bytes);

/// Reads one newline-terminated line from `in`, buffering at most
/// `max_bytes` of it. Returns false at EOF with nothing consumed. When
/// the line exceeds the cap, `*overlong` is set, `*line` comes back
/// empty, and the line's remaining bytes are consumed (not stored) up to
/// the newline — bounded memory however long the line is.
bool ReadBoundedLine(std::istream& in, size_t max_bytes, std::string* line,
                     bool* overlong);

/// Runs the serve loop: reads JSONL requests from `in` until EOF,
/// answers each with exactly one JSON line on `out` (flushed per line,
/// strictly in request order). A reader thread admits requests into a
/// bounded waiting room; overflow is shed with a deterministic overload
/// response rather than queued. Unreadable lines (truncated JSON,
/// missing source, over-long input) get a per-line error response; they
/// never abort the loop. The caller owns engine setup (jobs, cache,
/// attached store) and shutdown (FlushStore after Serve returns).
ServeStats Serve(BatchEngine& engine, std::istream& in, std::ostream& out,
                 const ServeOptions& options);

}  // namespace termilog

#endif  // TERMILOG_ENGINE_SERVE_H_
