#ifndef TERMILOG_ENGINE_SERVE_H_
#define TERMILOG_ENGINE_SERVE_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>

#include "core/analyzer.h"
#include "engine/engine.h"

namespace termilog {

/// Options for the long-running request loop (docs/engine.md,
/// docs/persistence.md). The protocol reuses the --batch JSONL framing:
/// one manifest-entry object per input line ("source" or "file", plus
/// optional "name"/"query"/"limits"/"kind"), one report JSON line per
/// request on the output, in request order. EOF on the input ends the
/// loop. "kind":"conditions" answers with a termination-condition sweep
/// report (docs/conditions.md) instead of a single-mode analysis; an
/// unknown kind answers with the structured per-request error shape.
struct ServeOptions {
  /// Base AnalysisOptions for every request; a request's own "limits"
  /// object overrides `base.limits`, so `--deadline-ms` supplies the
  /// per-request deadline default that the ResourceGovernor enforces.
  AnalysisOptions base;
  /// Requests allowed to wait for a worker before the server sheds.
  /// When the waiting room is full, a new request is answered
  /// immediately with a deterministic RESOURCE_EXHAUSTED error carrying
  /// a retry-after note — bounded memory and bounded latency instead of
  /// an unbounded queue that falls over (docs/engine.md, Overload).
  int queue_limit = 64;
  /// Max requests handed to one BatchEngine::Run call. Small chunks keep
  /// response latency low; the content cache carries warmth across
  /// chunks either way.
  int chunk = 16;
  /// Test hook: when true the processing side waits until the reader has
  /// consumed its whole input before analyzing anything, making the
  /// shed/accept split a pure function of queue_limit rather than of
  /// scheduler timing. Production serving leaves this false.
  bool drain_input_first = false;
};

struct ServeStats {
  /// Input lines seen (blank and header lines excluded).
  int64_t lines = 0;
  /// Requests analyzed to completion (both kinds).
  int64_t served = 0;
  /// Requests answered with the overload response without being queued.
  int64_t shed = 0;
  /// Unreadable request lines answered with a per-line error — truncated
  /// JSON, a missing source, an unknown request "kind", an unparseable
  /// program. Every one gets the structured per-request error shape
  /// ({"name":..,"ok":false,"error":..}); none aborts the loop.
  int64_t errors = 0;
  /// The subset of `served` that were "kind":"conditions" sweeps
  /// (docs/conditions.md).
  int64_t conditions = 0;

  std::string ToJson() const;
};

/// Runs the serve loop: reads JSONL requests from `in` until EOF,
/// answers each with exactly one JSON line on `out` (flushed per line,
/// strictly in request order). A reader thread admits requests into a
/// bounded waiting room; overflow is shed with a deterministic overload
/// response rather than queued. Unreadable lines (truncated JSON,
/// missing source) get a per-line error response; they never abort the
/// loop. The caller owns engine setup (jobs, cache, attached store) and
/// shutdown (FlushStore after Serve returns).
ServeStats Serve(BatchEngine& engine, std::istream& in, std::ostream& out,
                 const ServeOptions& options);

}  // namespace termilog

#endif  // TERMILOG_ENGINE_SERVE_H_
