#include "engine/inference_cache.h"

#include <utility>

#include "obs/obs.h"
#include "util/check.h"

namespace termilog {

CachedInferenceOutcome DehydrateInferenceResult(const SccInferenceResult& result,
                                                const Program& program) {
  CachedInferenceOutcome out;
  out.resource_limited = result.resource_limited;
  out.trip_message = result.trip_message;
  for (const auto& [pred, polyhedron] : result.entries) {
    out.entries.push_back(
        {program.symbols().Name(pred.symbol), pred.arity, polyhedron});
  }
  return out;
}

void ApplyInferenceOutcome(const CachedInferenceOutcome& outcome,
                           const Program& program, ArgSizeDb* db) {
  if (outcome.resource_limited) return;
  for (const CachedInferenceOutcome::Entry& entry : outcome.entries) {
    int symbol = program.symbols().Lookup(entry.name);
    TERMILOG_CHECK_MSG(symbol >= 0,
                       "cached inference outcome names a predicate absent "
                       "from the requesting program");
    db->Set(PredId{symbol, entry.arity}, entry.polyhedron);
  }
}

CachedInferenceOutcome InferenceCache::GetOrCompute(
    const std::string& key,
    const std::function<CachedInferenceOutcome()>& compute,
    bool* served_from_cache) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.lookups;
    TERMILOG_COUNTER("inference_cache.lookups", 1);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second;
      if (entry->ready) {
        ++stats_.hits;
        TERMILOG_COUNTER("inference_cache.hits", 1);
        if (entry->from_store) {
          ++stats_.persisted_hits;
          TERMILOG_COUNTER("inference_cache.persisted_hits", 1);
        }
      } else {
        // Another worker is running this fixpoint right now: wait for it
        // rather than iterating the same SCC twice.
        ++stats_.single_flight_waits;
        TERMILOG_COUNTER("inference_cache.single_flight_waits", 1);
        ready_cv_.wait(lock, [&entry] { return entry->ready; });
      }
      if (served_from_cache != nullptr) *served_from_cache = true;
      return entry->outcome;
    }
    entry = std::make_shared<Entry>();
    entries_.emplace(key, entry);
    ++stats_.misses;
    TERMILOG_COUNTER("inference_cache.misses", 1);
  }

  // Compute outside the lock: other keys proceed concurrently, and waiters
  // on this key block on ready_cv_, not on the mutex.
  CachedInferenceOutcome outcome = compute();
  bool retained;
  std::function<void(const std::string&, const CachedInferenceOutcome&)>
      listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->outcome = outcome;
    entry->ready = true;
    retained = !outcome.resource_limited && outcome.error.ok();
    if (!retained) {
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) entries_.erase(it);
    }
    listener = new_entry_listener_;
  }
  ready_cv_.notify_all();
  // Persistence hook, outside the lock so the write-behind queue's own
  // lock never nests inside the cache mutex. Only retained outcomes are
  // offered: a starved fixpoint must not outlive the run, on disk least
  // of all.
  if (retained && listener) listener(key, outcome);
  if (served_from_cache != nullptr) *served_from_cache = false;
  return outcome;
}

bool InferenceCache::Preload(const std::string& key,
                             CachedInferenceOutcome outcome) {
  if (key.empty() || outcome.resource_limited || !outcome.error.ok()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) > 0) return false;
  auto entry = std::make_shared<Entry>();
  entry->ready = true;
  entry->from_store = true;
  entry->outcome = std::move(outcome);
  entries_.emplace(key, std::move(entry));
  ++stats_.persisted_loaded;
  TERMILOG_COUNTER("inference_cache.persisted_loaded", 1);
  return true;
}

void InferenceCache::SetNewEntryListener(
    std::function<void(const std::string&, const CachedInferenceOutcome&)>
        listener) {
  std::lock_guard<std::mutex> lock(mu_);
  new_entry_listener_ = std::move(listener);
}

InferenceCache::Stats InferenceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t InferenceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry->ready) ++ready;
  }
  return ready;
}

Status InferenceCache::SelfCheck() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    if (key.empty()) {
      return Status::Internal("inference cache self-check: empty key retained");
    }
    if (entry == nullptr) {
      return Status::Internal(
          "inference cache self-check: null entry retained");
    }
    if (!entry->ready) {
      return Status::Internal(
          "inference cache self-check: in-flight entry retained after run "
          "(abandoned single-flight slot)");
    }
    if (entry->outcome.resource_limited) {
      return Status::Internal(
          "inference cache self-check: resource-limited outcome retained "
          "(starved fixpoints must never be served from cache)");
    }
    if (!entry->outcome.error.ok()) {
      return Status::Internal(
          "inference cache self-check: errored outcome retained");
    }
  }
  if (stats_.lookups !=
      stats_.hits + stats_.misses + stats_.single_flight_waits) {
    return Status::Internal(
        "inference cache self-check: lookup accounting does not reconcile");
  }
  if (stats_.persisted_hits > stats_.hits) {
    return Status::Internal(
        "inference cache self-check: more persisted hits than hits");
  }
  int64_t from_store = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry->from_store) ++from_store;
  }
  if (from_store > stats_.persisted_loaded) {
    return Status::Internal(
        "inference cache self-check: more store-origin entries than Preload "
        "admitted");
  }
  return Status::Ok();
}

}  // namespace termilog
