#ifndef TERMILOG_ENGINE_INFERENCE_CACHE_H_
#define TERMILOG_ENGINE_INFERENCE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "constraints/arg_size_db.h"
#include "constraints/inference.h"
#include "fm/polyhedron.h"
#include "program/ast.h"

namespace termilog {

/// A program-independent SccInferenceResult: predicates are stored by
/// (name, arity) instead of PredId, because symbol ids are an artifact of
/// interning order and differ between programs containing the same SCC
/// verbatim. Each polyhedron is the exact minimized value the fixpoint
/// produced (rows verbatim, hard-bottom flag preserved), so applying a
/// cached outcome is byte-for-byte indistinguishable from recomputing it.
struct CachedInferenceOutcome {
  struct Entry {
    std::string name;
    int arity = 0;
    Polyhedron polyhedron{0};
  };

  /// A budget trip (non-convergence, FM blowup, governor limit). The
  /// warning line shown to the user is composed by the *caller* from
  /// `trip_message` and its own node's first predicate, so single-flight
  /// waiters never inherit another program's predicate choice.
  bool resource_limited = false;
  std::string trip_message;
  /// Hard (non-budget) failure of the fixpoint. Like resource-limited
  /// outcomes, never retained or persisted; carried in the outcome so a
  /// single-flight waiter of a failing computation fails its request with
  /// the same status as the computing one — keeping batch output
  /// independent of which worker reached the key first.
  Status error;
  std::vector<Entry> entries;
};

/// Converts a freshly computed per-SCC inference result into cacheable
/// form.
CachedInferenceOutcome DehydrateInferenceResult(
    const SccInferenceResult& result, const Program& program);

/// Applies a cached outcome to `db`, resolving names against `program`'s
/// symbol table. Every name must resolve (guaranteed when the outcome was
/// keyed on the SCC's rules, which mention exactly those names) — a failed
/// resolution is a checked failure. No-op for resource-limited outcomes
/// (the predicates stay unconstrained, exactly as the serial path leaves
/// them).
void ApplyInferenceOutcome(const CachedInferenceOutcome& outcome,
                           const Program& program, ArgSizeDb* db);

/// Thread-safe content-addressed store of per-SCC inference outcomes with
/// single-flight deduplication, keyed by CanonicalInferenceKey text
/// (src/engine/canonical.h). Identical in structure and contract to
/// SccCache: concurrent requests for one key run the compute function
/// exactly once; resource-limited outcomes are handed to in-flight waiters
/// but never retained (a starved fixpoint describes the budget, not the
/// SCC, and failpoints can force one without appearing in the key).
class InferenceCache {
 public:
  struct Stats {
    int64_t lookups = 0;
    /// Served from a completed entry.
    int64_t hits = 0;
    /// This caller ran the compute function.
    int64_t misses = 0;
    /// Served by blocking on another worker's in-flight computation.
    int64_t single_flight_waits = 0;
    /// Entries warm-started from a persistent store (Preload).
    int64_t persisted_loaded = 0;
    /// Subset of `hits` served by a preloaded entry — inference some
    /// prior process paid for (docs/persistence.md).
    int64_t persisted_hits = 0;
  };

  InferenceCache() = default;
  InferenceCache(const InferenceCache&) = delete;
  InferenceCache& operator=(const InferenceCache&) = delete;

  /// Returns the outcome for `key`, running `compute` at most once across
  /// all threads per key lifetime. `served_from_cache` (optional) is set
  /// to true when the caller did not run `compute` itself.
  CachedInferenceOutcome GetOrCompute(
      const std::string& key,
      const std::function<CachedInferenceOutcome()>& compute,
      bool* served_from_cache = nullptr);

  /// Inserts a ready entry recovered from a persistent store, before any
  /// GetOrCompute traffic. Returns false (entry ignored) for an empty
  /// key, a resource-limited or errored outcome, or a key already
  /// present.
  bool Preload(const std::string& key, CachedInferenceOutcome outcome);

  /// Registers a callback invoked (outside the cache lock, on the
  /// computing worker's thread) for every freshly computed outcome the
  /// cache retains — the write-behind persistence hook. Preloaded and
  /// resource-limited outcomes never fire it.
  void SetNewEntryListener(
      std::function<void(const std::string&, const CachedInferenceOutcome&)>
          listener);

  Stats stats() const;
  /// Number of completed entries currently retained.
  int64_t size() const;

  /// Post-run invariant audit (same contract as SccCache::SelfCheck): no
  /// abandoned single-flight slots, no retained resource-limited outcome,
  /// no empty keys, reconciling stats.
  Status SelfCheck() const;

 private:
  struct Entry {
    bool ready = false;
    bool from_store = false;
    CachedInferenceOutcome outcome;
  };

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  Stats stats_;
  std::function<void(const std::string&, const CachedInferenceOutcome&)>
      new_entry_listener_;
};

}  // namespace termilog

#endif  // TERMILOG_ENGINE_INFERENCE_CACHE_H_
