#include "engine/report_json.h"

#include <cstdio>

#include "util/string_util.h"

namespace termilog {
namespace {

void AppendQuoted(std::string_view text, std::string* out) {
  *out += '"';
  *out += JsonEscape(text);
  *out += '"';
}

void AppendStringArray(const std::vector<std::string>& items,
                       std::string* out) {
  *out += '[';
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out += ',';
    AppendQuoted(items[i], out);
  }
  *out += ']';
}

}  // namespace

void AppendCertificateJson(const TerminationCertificate& certificate,
                           const Program& program, std::string* out) {
  *out += "{\"level\":{";
  bool first = true;
  for (const auto& [pred, coeffs] : certificate.theta) {
    if (!first) *out += ',';
    first = false;
    AppendQuoted(program.PredName(pred), out);
    *out += ":[";
    for (size_t i = 0; i < coeffs.size(); ++i) {
      if (i > 0) *out += ',';
      AppendQuoted(coeffs[i].ToString(), out);
    }
    *out += ']';
  }
  *out += "},\"delta\":{";
  first = true;
  for (const auto& [edge, value] : certificate.delta) {
    if (!first) *out += ',';
    first = false;
    AppendQuoted(StrCat(program.PredName(edge.first), "->",
                        program.PredName(edge.second)),
                 out);
    *out += ':';
    AppendQuoted(value.ToString(), out);
  }
  *out += "}}";
}

std::string ReportToJsonLine(const std::string& name, const std::string& query,
                             const Status& status,
                             const TerminationReport& report,
                             const ReportJsonOptions& options) {
  std::string out = "{\"name\":";
  AppendQuoted(name, &out);
  out += ",\"query\":";
  AppendQuoted(query, &out);
  if (!status.ok()) {
    out += ",\"ok\":false,\"error\":";
    AppendQuoted(status.ToString(), &out);
    out += '}';
    return out;
  }
  const Program& program = report.analyzed_program;
  out += StrCat(",\"ok\":true,\"proved\":", report.proved ? "true" : "false",
                ",\"resource_limited\":",
                report.resource_limited ? "true" : "false");
  if (report.resource_limited) {
    out += ",\"first_resource_trip\":";
    AppendQuoted(report.first_resource_trip, &out);
  }
  out += ",\"modes\":{";
  bool first = true;
  for (const auto& [pred, adornment] : report.modes) {
    if (!first) out += ',';
    first = false;
    AppendQuoted(program.PredName(pred), &out);
    out += ':';
    AppendQuoted(AdornmentToString(adornment), &out);
  }
  out += "},\"sccs\":[";
  for (size_t s = 0; s < report.sccs.size(); ++s) {
    const SccReport& scc = report.sccs[s];
    if (s > 0) out += ',';
    out += "{\"preds\":[";
    for (size_t i = 0; i < scc.preds.size(); ++i) {
      if (i > 0) out += ',';
      AppendQuoted(program.PredName(scc.preds[i]), &out);
    }
    out += StrCat("],\"status\":\"", SccStatusName(scc.status),
                  "\",\"negative_deltas\":",
                  scc.used_negative_deltas ? "true" : "false");
    if (scc.status == SccStatus::kProved) {
      out += ",\"certificate\":";
      AppendCertificateJson(scc.certificate, program, &out);
    }
    if (!scc.reduced_constraints.empty()) {
      std::vector<std::string> rows;
      for (const std::string& row : Split(scc.reduced_constraints, '\n')) {
        if (!row.empty()) rows.push_back(row);
      }
      out += ",\"reduced_constraints\":";
      AppendStringArray(rows, &out);
    }
    out += ",\"notes\":";
    AppendStringArray(scc.notes, &out);
    out += '}';
  }
  out += "],\"notes\":";
  AppendStringArray(report.notes, &out);
  if (options.include_spend) {
    out += StrCat(",\"spend\":{\"work\":", report.spend.work,
                  ",\"elapsed_ms\":", report.spend.elapsed_ms,
                  ",\"bigint_limbs\":", report.spend.bigint_limb_high_water,
                  "}");
  }
  if (options.scc_tasks >= 0 && options.cache_hits >= 0) {
    out += StrCat(",\"engine\":{\"scc_tasks\":", options.scc_tasks,
                  ",\"cache_hits\":", options.cache_hits);
    if (options.inference_tasks >= 0 && options.inference_cache_hits >= 0) {
      out += StrCat(",\"inference_tasks\":", options.inference_tasks,
                    ",\"inference_cache_hits\":", options.inference_cache_hits);
    }
    out += '}';
  }
  out += '}';
  return out;
}

std::string EngineStatsToJson(const EngineStats& stats, int jobs) {
  return StrCat("{\"jobs\":", jobs, ",\"requests\":", stats.requests,
                ",\"scc_tasks\":", stats.scc_tasks,
                ",\"cache_hits\":", stats.cache_hits,
                ",\"cache_misses\":", stats.cache_misses,
                ",\"single_flight_waits\":", stats.single_flight_waits,
                ",\"unique_sccs\":", stats.unique_sccs,
                ",\"persisted_loaded\":", stats.persisted_loaded,
                ",\"persisted_hits\":", stats.persisted_hits,
                ",\"inference_tasks\":", stats.inference_tasks,
                ",\"inference_cache_hits\":", stats.inference_cache_hits,
                ",\"inference_cache_misses\":", stats.inference_cache_misses,
                ",\"inference_single_flight_waits\":",
                stats.inference_single_flight_waits,
                ",\"unique_inference_sccs\":", stats.unique_inference_sccs,
                ",\"inference_persisted_loaded\":",
                stats.inference_persisted_loaded,
                ",\"inference_persisted_hits\":",
                stats.inference_persisted_hits,
                ",\"total_work\":", stats.total_work,
                ",\"wall_ms\":", stats.wall_ms,
                ",\"total_wall_ms\":", stats.total_wall_ms, "}");
}

}  // namespace termilog
