#ifndef TERMILOG_CORPUS_CORPUS_H_
#define TERMILOG_CORPUS_CORPUS_H_

#include <string>
#include <utility>
#include <vector>

namespace termilog {

/// One benchmark program with ground truth and expected analyzer outcomes.
/// The corpus contains the paper's four worked examples (3.1, 5.1, 6.1,
/// A.1) plus classical logic programs from the termination-analysis
/// literature, including programs the method provably cannot handle
/// (Section 7 limitations) and nonterminating programs.
struct CorpusEntry {
  std::string name;
  std::string description;
  /// Program text in the library's Prolog subset.
  std::string source;
  /// Entry query spec, e.g. "perm(b,f)".
  std::string query;
  /// Ground truth: does top-down execution of well-moded instances of the
  /// query terminate?
  bool terminating = true;
  /// Expected analyzer verdict with the entry's options (the method is a
  /// sufficient condition: terminating && !expect_proved is a documented
  /// limitation, not a bug).
  bool expect_proved = true;
  /// Run the Appendix A transformation pipeline first.
  bool needs_transformations = false;
  /// Enable the Appendix C negative-delta mode.
  bool needs_negative_deltas = false;
  /// User-supplied inter-argument constraints ("pred/arity", spec).
  std::vector<std::pair<std::string, std::string>> supplied_constraints;
  /// Concrete ground(ish) queries for SLD validation (experiment E8); all
  /// must exhaust their search tree when `terminating`.
  std::vector<std::string> validation_queries;
  /// Which paper artifact this reproduces, if any ("Example 3.1").
  std::string paper_ref;
};

/// The built-in corpus (stable order).
const std::vector<CorpusEntry>& Corpus();

/// Lookup by name; nullptr if absent.
const CorpusEntry* FindCorpusEntry(const std::string& name);

}  // namespace termilog

#endif  // TERMILOG_CORPUS_CORPUS_H_
