#include "corpus/corpus.h"

#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace termilog {
namespace {

std::vector<CorpusEntry> BuildCorpus() {
  std::vector<CorpusEntry> corpus;

  corpus.push_back({
      .name = "append",
      .description = "list concatenation, first argument bound",
      .source = R"(
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "append(b,f,f)",
      .validation_queries = {"append([a,b,c,d],[e,f],R)",
                             "append([],[x],R)", "append([a],[],R)"},
      .paper_ref = "Section 3 (imported constraint source)",
  });

  corpus.push_back({
      .name = "perm",
      .description = "permutation via double append (paper Example 3.1); "
                     "needs the 3-variable constraint "
                     "append1+append2=append3",
      .source = R"(
        perm([], []).
        perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "perm(b,f)",
      .validation_queries = {"perm([a,b,c],P)", "perm([],P)",
                             "perm([a,b,c,d],P)"},
      .paper_ref = "Example 3.1 / 4.1",
  });

  corpus.push_back({
      .name = "merge",
      .description = "order-preserving merge with argument swap (paper "
                     "Example 5.1); the sum of both bound arguments "
                     "decreases, no single argument does",
      .source = R"(
        merge([], Ys, Ys).
        merge(Xs, [], Xs).
        merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
        merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
      )",
      .query = "merge(b,b,f)",
      .validation_queries = {"merge([1,3,5],[2,4],R)", "merge([],[1],R)",
                             "merge([1,2],[1,2],R)"},
      .paper_ref = "Example 5.1",
  });

  corpus.push_back({
      .name = "expr_parser",
      .description = "arithmetic expression grammar e/t/n (paper Example "
                     "6.1): mutual AND nonlinear recursion; needs the "
                     "same-SCC imported constraint t1 >= 2 + t2",
      .source = R"(
        e(L, T) :- t(L, ['+'|C]), e(C, T).
        e(L, T) :- t(L, T).
        t(L, T) :- n(L, ['*'|C]), t(C, T).
        t(L, T) :- n(L, T).
        n(['('|A], T) :- e(A, [')'|T]).
        n([L|T], T) :- z(L).
      )",
      .query = "e(b,f)",
      .validation_queries = {"e([x,'+',y],T)", "e([x],T)",
                             "e(['(',x,'*',y,')','+',z],T)"},
      .paper_ref = "Example 6.1",
  });

  corpus.push_back({
      .name = "example_a1",
      .description = "apparent mutual recursion with unchanged argument "
                     "size (paper Example A.1); provable only after safe "
                     "unfolding + predicate splitting",
      .source = R"(
        p(g(X)) :- e(X).
        p(g(X)) :- q(f(X)).
        q(Y) :- p(Y).
        q(f(Z)) :- p(Z), q(Z).
      )",
      .query = "p(b)",
      .needs_transformations = true,
      .validation_queries = {"p(g(a))", "p(g(f(g(a))))"},
      .paper_ref = "Example A.1",
  });

  corpus.push_back({
      .name = "example_a1_raw",
      .description = "Example A.1 without the Appendix A transformations: "
                     "the paper notes the method fails on the raw form",
      .source = R"(
        p(g(X)) :- e(X).
        p(g(X)) :- q(f(X)).
        q(Y) :- p(Y).
        q(f(Z)) :- p(Z), q(Z).
      )",
      .query = "p(b)",
      .expect_proved = false,
      .validation_queries = {"p(g(a))"},
      .paper_ref = "Example A.1 (raw)",
  });

  corpus.push_back({
      .name = "naive_reverse",
      .description = "reverse via append; the append subgoal follows the "
                     "recursive call and contributes nothing",
      .source = R"(
        rev([], []).
        rev([X|Xs], R) :- rev(Xs, T), append(T, [X], R).
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "rev(b,f)",
      .validation_queries = {"rev([a,b,c,d],R)", "rev([],R)"},
  });

  corpus.push_back({
      .name = "reverse_accumulator",
      .description = "accumulator reverse; classic single-argument descent",
      .source = R"(
        rev(Xs, R) :- ra(Xs, [], R).
        ra([], A, A).
        ra([X|Xs], A, R) :- ra(Xs, [X|A], R).
      )",
      .query = "rev(b,f)",
      .validation_queries = {"rev([a,b,c],R)", "rev([],R)"},
  });

  corpus.push_back({
      .name = "list_length",
      .description = "length with successor naturals",
      .source = R"(
        len([], z).
        len([X|Xs], s(N)) :- len(Xs, N).
      )",
      .query = "len(b,f)",
      .validation_queries = {"len([a,b,c],N)", "len([],N)"},
  });

  corpus.push_back({
      .name = "quicksort",
      .description = "quicksort: nonlinear recursion needing the partition "
                     "constraint part2 = part3 + part4",
      .source = R"(
        qs([], []).
        qs([X|Xs], S) :-
            part(X, Xs, L, G), qs(L, SL), qs(G, SG),
            append(SL, [X|SG], S).
        part(P, [], [], []).
        part(P, [X|Xs], [X|L], G) :- X =< P, part(P, Xs, L, G).
        part(P, [X|Xs], L, [X|G]) :- P < X, part(P, Xs, L, G).
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "qs(b,f)",
      .validation_queries = {"qs([3,1,2],S)", "qs([],S)",
                             "qs([5,4,3,2,1],S)", "qs([2,2,1],S)"},
  });

  corpus.push_back({
      .name = "mergesort",
      .description = "mergesort with an eager head split; both recursive "
                     "calls are on strictly smaller cons cells",
      .source = R"(
        ms([], []).
        ms([X], [X]).
        ms([X,Y|Zs], S) :-
            split(Zs, Xs, Ys), ms([X|Xs], S1), ms([Y|Ys], S2),
            merge(S1, S2, S).
        split([], [], []).
        split([X|Xs], [X|Ys], Zs) :- split(Xs, Zs, Ys).
        merge([], Ys, Ys).
        merge(Xs, [], Xs).
        merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
        merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
      )",
      .query = "ms(b,f)",
      .validation_queries = {"ms([3,1,2],S)", "ms([],S)", "ms([2,1],S)",
                             "ms([4,3,2,1],S)"},
  });

  corpus.push_back({
      .name = "mergesort_opaque",
      .description = "mergesort with an opaque split(L,A,B): termination "
                     "needs the DISJUNCTIVE fact |A| < |L| when |L| >= 2, "
                     "which no conjunction of linear constraints captures "
                     "-- a Section 7 limitation",
      .source = R"(
        ms([], []).
        ms([X], [X]).
        ms([X,Y|Zs], S) :-
            split([X,Y|Zs], A, B), ms(A, S1), ms(B, S2),
            merge(S1, S2, S).
        split([], [], []).
        split([X|Xs], [X|Ys], Zs) :- split(Xs, Zs, Ys).
        merge([], Ys, Ys).
        merge(Xs, [], Xs).
        merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
        merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
      )",
      .query = "ms(b,f)",
      .terminating = true,
      .expect_proved = false,
      .validation_queries = {"ms([3,1,2],S)", "ms([2,1],S)"},
      .paper_ref = "Section 7 (limitations)",
  });

  corpus.push_back({
      .name = "hanoi",
      .description = "towers of hanoi on successor naturals; nonlinear "
                     "recursion, single decreasing argument",
      .source = R"(
        hanoi(z, A, B, C).
        hanoi(s(N), A, B, C) :- hanoi(N, A, C, B), hanoi(N, C, B, A).
      )",
      .query = "hanoi(b,b,b,b)",
      .validation_queries = {"hanoi(s(s(s(z))), a, b, c)",
                             "hanoi(z, a, b, c)"},
  });

  corpus.push_back({
      .name = "tree_flatten",
      .description = "flatten a binary tree into a list",
      .source = R"(
        flat(leaf(X), [X]).
        flat(node(L, R), F) :- flat(L, FL), flat(R, FR), append(FL, FR, F).
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "flat(b,f)",
      .validation_queries = {"flat(node(leaf(a),node(leaf(b),leaf(c))),F)",
                             "flat(leaf(x),F)"},
  });

  corpus.push_back({
      .name = "tree_member",
      .description = "membership in a binary tree, tree bound",
      .source = R"(
        tmem(X, node(X, L, R)).
        tmem(X, node(Y, L, R)) :- tmem(X, L).
        tmem(X, node(Y, L, R)) :- tmem(X, R).
      )",
      .query = "tmem(f,b)",
      .validation_queries =
          {"tmem(M, node(a, node(b, node(d, leaf, leaf), leaf), "
           "node(c, leaf, leaf)))"},
  });

  corpus.push_back({
      .name = "subsequence",
      .description = "subsequence with the SECOND argument bound; the "
                     "first is free",
      .source = R"(
        subseq([], []).
        subseq([X|T], [X|S]) :- subseq(T, S).
        subseq(T, [X|S]) :- subseq(T, S).
      )",
      .query = "subseq(f,b)",
      .validation_queries = {"subseq(T, [a,b,c])", "subseq(T, [])"},
  });

  corpus.push_back({
      .name = "even_odd",
      .description = "mutual recursion on successor naturals",
      .source = R"(
        even(z).
        even(s(N)) :- odd(N).
        odd(s(N)) :- even(N).
      )",
      .query = "even(b)",
      .validation_queries = {"even(s(s(s(s(z)))))", "even(s(z))",
                             "even(z)"},
  });

  corpus.push_back({
      .name = "gcd_subtract",
      .description = "subtraction-based gcd; the bound-argument SUM "
                     "decreases via the 3-variable constraint "
                     "minus1 = minus2 + minus3",
      .source = R"(
        minus(X, z, X).
        minus(s(X), s(Y), Z) :- minus(X, Y, Z).
        leq(z, Y).
        leq(s(X), s(Y)) :- leq(X, Y).
        gcd(X, z, X).
        gcd(z, Y, Y).
        gcd(s(X), s(Y), G) :- leq(X, Y), minus(Y, X, D), gcd(s(X), D, G).
        gcd(s(X), s(Y), G) :- leq(s(Y), X), minus(X, Y, D), gcd(D, s(Y), G).
      )",
      .query = "gcd(b,b,f)",
      .validation_queries = {"gcd(s(s(s(s(z)))), s(s(z)), G)",
                             "gcd(s(s(z)), s(s(s(z))), G)",
                             "gcd(s(z), s(z), G)"},
  });

  corpus.push_back({
      .name = "ackermann",
      .description = "Ackermann's function: terminating (lexicographic), "
                     "but NO linear combination of bound argument sizes "
                     "decreases -- a documented limit of the method",
      .source = R"(
        ack(z, N, s(N)).
        ack(s(M), z, R) :- ack(M, s(z), R).
        ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).
      )",
      .query = "ack(b,b,f)",
      .terminating = true,
      .expect_proved = false,
      .validation_queries = {"ack(s(s(z)), s(z), R)", "ack(z, s(z), R)"},
      .paper_ref = "Section 7 (limitations)",
  });

  corpus.push_back({
      .name = "tc_unknown_edb",
      .description = "transitive closure over an UNKNOWN edge relation: "
                     "correctly not proved (a cyclic EDB loops forever)",
      .source = R"(
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
      )",
      .query = "tc(b,f)",
      .terminating = false,
      .expect_proved = false,
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "tc_wellfounded_edb",
      .description = "transitive closure with a SUPPLIED well-founded edge "
                     "constraint edge1 >= 1 + edge2 (the paper's external "
                     "EDB constraint mode, Section 8)",
      .source = R"(
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
      )",
      .query = "tc(b,f)",
      .supplied_constraints = {{"edge/2", "a1 >= 1 + a2"}},
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "filter_negation",
      .description = "negative subgoal preceding the recursive call is "
                     "discarded (Appendix D)",
      .source = R"(
        filter([], []).
        filter([X|Xs], [X|Ys]) :- \+ bad(X), filter(Xs, Ys).
        filter([X|Xs], Ys) :- bad(X), filter(Xs, Ys).
        bad(0).
      )",
      .query = "filter(b,f)",
      .validation_queries = {"filter([1,0,2],R)", "filter([],R)"},
      .paper_ref = "Appendix D",
  });

  corpus.push_back({
      .name = "win_negation",
      .description = "negative RECURSIVE subgoal treated as positive "
                     "(Appendix D), with a supplied well-founded move "
                     "relation",
      .source = R"(
        win(X) :- move(X, Y), \+ win(Y).
      )",
      .query = "win(b)",
      .supplied_constraints = {{"move/2", "a1 >= 1 + a2"}},
      .validation_queries = {},
      .paper_ref = "Appendix D",
  });

  corpus.push_back({
      .name = "updown",
      .description = "bound argument grows by one, then shrinks by two "
                     "around the cycle: provable only with negative deltas "
                     "(Appendix C)",
      .source = R"(
        a(X) :- b(g(X)).
        b(g(g(X))) :- a(X).
      )",
      .query = "a(b)",
      .needs_negative_deltas = true,
      .validation_queries = {"a(g(g(a_const)))", "a(a_const)"},
      .paper_ref = "Appendix C",
  });

  corpus.push_back({
      .name = "updown_integral_only",
      .description = "the updown program under the default integral deltas "
                     "of Section 6.1: expected NOT proved",
      .source = R"(
        a(X) :- b(g(X)).
        b(g(g(X))) :- a(X).
      )",
      .query = "a(b)",
      .expect_proved = false,
      .validation_queries = {"a(a_const)"},
      .paper_ref = "Appendix C (motivation)",
  });

  corpus.push_back({
      .name = "loop_constant",
      .description = "p :- p: the classic infinite loop; delta is forced "
                     "to zero on the self-cycle (strong evidence of "
                     "nontermination)",
      .source = R"(
        p :- p.
      )",
      .query = "p()",
      .terminating = false,
      .expect_proved = false,
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "grow",
      .description = "q(X) :- q(f(X)): the bound argument grows forever",
      .source = R"(
        q(X) :- q(f(X)).
      )",
      .query = "q(b)",
      .terminating = false,
      .expect_proved = false,
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "swap_forever",
      .description = "recursive call swaps two bound arguments without "
                     "consuming anything: nonterminating, delta forced to "
                     "zero",
      .source = R"(
        m([X|Xs], Ys, Zs) :- m(Ys, [X|Xs], Zs).
        m([], [], done).
      )",
      .query = "m(b,b,f)",
      .terminating = false,
      .expect_proved = false,
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "select",
      .description = "nondeterministic selection; second argument bound",
      .source = R"(
        select(X, [X|Xs], Xs).
        select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).
      )",
      .query = "select(f,b,f)",
      .validation_queries = {"select(M, [a,b,c], R)", "select(M, [], R)"},
  });

  corpus.push_back({
      .name = "insertion_sort",
      .description = "insertion sort; two nested SCCs, ordered insertion",
      .source = R"(
        isort([], []).
        isort([X|Xs], S) :- isort(Xs, T), insert(X, T, S).
        insert(X, [], [X]).
        insert(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
        insert(X, [Y|Ys], [Y|Zs]) :- Y < X, insert(X, Ys, Zs).
      )",
      .query = "isort(b,f)",
      .validation_queries = {"isort([3,1,2],S)", "isort([],S)",
                             "isort([2,1,3,1],S)"},
  });

  corpus.push_back({
      .name = "tree_insert",
      .description = "binary search tree insertion; tree argument descends",
      .source = R"(
        tins(X, leaf, node(X, leaf, leaf)).
        tins(X, node(Y, L, R), node(Y, L1, R)) :- X < Y, tins(X, L, L1).
        tins(X, node(Y, L, R), node(Y, L, R1)) :- Y =< X, tins(X, R, R1).
      )",
      .query = "tins(b,b,f)",
      .validation_queries =
          {"tins(2, node(3, node(1, leaf, leaf), leaf), T)",
           "tins(5, leaf, T)"},
  });

  corpus.push_back({
      .name = "deriv",
      .description = "symbolic differentiation; nonlinear structural "
                     "descent on the expression tree",
      .source = R"(
        deriv(x, n1).
        deriv(num(N), n0).
        deriv(plus(U, V), plus(DU, DV)) :- deriv(U, DU), deriv(V, DV).
        deriv(times(U, V), plus(times(DU, V), times(U, DV))) :-
            deriv(U, DU), deriv(V, DV).
      )",
      .query = "deriv(b,f)",
      .validation_queries = {"deriv(times(plus(x, num(2)), x), D)",
                             "deriv(x, D)"},
  });

  corpus.push_back({
      .name = "nnf",
      .description = "negation normal form: the recursive argument is NOT "
                     "a subterm (not(A) vs not(and(A,B))) but its size "
                     "decreases",
      .source = R"(
        nnf(lit(X), lit(X)).
        nnf(and(A, B), and(NA, NB)) :- nnf(A, NA), nnf(B, NB).
        nnf(or(A, B), or(NA, NB)) :- nnf(A, NA), nnf(B, NB).
        nnf(not(and(A, B)), or(NA, NB)) :- nnf(not(A), NA), nnf(not(B), NB).
        nnf(not(or(A, B)), and(NA, NB)) :- nnf(not(A), NA), nnf(not(B), NB).
        nnf(not(not(A)), N) :- nnf(A, N).
        nnf(not(lit(X)), nlit(X)).
      )",
      .query = "nnf(b,f)",
      .validation_queries =
          {"nnf(not(and(lit(p), not(or(lit(q), lit(r))))), N)",
           "nnf(not(not(lit(p))), N)"},
  });

  corpus.push_back({
      .name = "add_mul",
      .description = "successor addition and multiplication; the add after "
                     "the recursive mul call contributes nothing",
      .source = R"(
        add(z, Y, Y).
        add(s(X), Y, s(Z)) :- add(X, Y, Z).
        mul(z, Y, z).
        mul(s(X), Y, Z) :- mul(X, Y, W), add(W, Y, Z).
      )",
      .query = "mul(b,b,f)",
      .validation_queries = {"mul(s(s(z)), s(s(s(z))), P)",
                             "mul(z, s(z), P)"},
  });

  corpus.push_back({
      .name = "fibonacci",
      .description = "naive Fibonacci on successor naturals; nonlinear "
                     "recursion with two different descents",
      .source = R"(
        add(z, Y, Y).
        add(s(X), Y, s(Z)) :- add(X, Y, Z).
        fib(z, s(z)).
        fib(s(z), s(z)).
        fib(s(s(N)), F) :- fib(s(N), F1), fib(N, F2), add(F1, F2, F).
      )",
      .query = "fib(b,f)",
      .validation_queries = {"fib(s(s(s(s(s(z))))), F)", "fib(z, F)"},
  });

  corpus.push_back({
      .name = "log2_halving",
      .description = "logarithmic recursion through halving: termination "
                     "needs the RATIONAL-coefficient imported constraint "
                     "2*half2 <= half1 <= 2*half2 + 1",
      .source = R"(
        half(z, z).
        half(s(z), z).
        half(s(s(X)), s(Y)) :- half(X, Y).
        log2(s(z), z).
        log2(s(s(X)), s(L)) :- half(s(s(X)), H), log2(H, L).
      )",
      .query = "log2(b,f)",
      .validation_queries = {"log2(s(s(s(s(s(s(s(s(z)))))))), L)",
                             "log2(s(z), L)"},
  });

  corpus.push_back({
      .name = "zip",
      .description = "pairwise zip of two bound lists",
      .source = R"(
        zip([], [], []).
        zip([X|Xs], [Y|Ys], [X,Y|Zs]) :- zip(Xs, Ys, Zs).
      )",
      .query = "zip(b,b,f)",
      .validation_queries = {"zip([a,b],[1,2],Z)", "zip([],[],Z)"},
  });

  corpus.push_back({
      .name = "flatten_accumulator",
      .description = "tree flattening with an accumulator (difference-list "
                     "style); only the first argument is consumed",
      .source = R"(
        flat(leaf(X), A, [X|A]).
        flat(node(L, R), A, F) :- flat(R, A, F1), flat(L, F1, F).
      )",
      .query = "flat(b,f,f)",
      .validation_queries =
          {"flat(node(node(leaf(a),leaf(b)),leaf(c)), [], F)",
           "flat(leaf(x), [], F)"},
  });

  corpus.push_back({
      .name = "dutch_flag",
      .description = "three-way partition plus two appends; the partition "
                     "invariant a1 = a2 + a3 + a4 is inferred",
      .source = R"(
        dutch(Xs, S) :- part3(Xs, Rs, Ws, Bs), append(Rs, Ws, RW),
                        append(RW, Bs, S).
        part3([], [], [], []).
        part3([r|Xs], [r|Rs], Ws, Bs) :- part3(Xs, Rs, Ws, Bs).
        part3([w|Xs], Rs, [w|Ws], Bs) :- part3(Xs, Rs, Ws, Bs).
        part3([b|Xs], Rs, Ws, [b|Bs]) :- part3(Xs, Rs, Ws, Bs).
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "dutch(b,f)",
      .validation_queries = {"dutch([w,r,b,r,w], S)", "dutch([], S)"},
  });

  corpus.push_back({
      .name = "boolean_eval",
      .description = "boolean formula evaluator; nonlinear structural "
                     "descent with lookup predicates",
      .source = R"(
        beval(t, t).
        beval(f, f).
        beval(and(X, Y), V) :- beval(X, VX), beval(Y, VY), andv(VX, VY, V).
        beval(or(X, Y), V) :- beval(X, VX), beval(Y, VY), orv(VX, VY, V).
        beval(neg(X), V) :- beval(X, VX), negv(VX, V).
        andv(t, t, t). andv(t, f, f). andv(f, t, f). andv(f, f, f).
        orv(f, f, f). orv(t, f, t). orv(f, t, t). orv(t, t, t).
        negv(t, f). negv(f, t).
      )",
      .query = "beval(b,f)",
      .validation_queries = {"beval(and(t, neg(f)), V)",
                             "beval(or(neg(t), f), V)"},
  });

  corpus.push_back({
      .name = "sum_list",
      .description = "fold a list of successor naturals with addition "
                     "after the recursive call",
      .source = R"(
        add(z, Y, Y).
        add(s(X), Y, s(Z)) :- add(X, Y, Z).
        suml([], z).
        suml([X|Xs], S) :- suml(Xs, T), add(X, T, S).
      )",
      .query = "suml(b,f)",
      .validation_queries = {"suml([s(z), s(s(z)), z], S)", "suml([], S)"},
  });

  corpus.push_back({
      .name = "max_list",
      .description = "maximum of a list via pairwise comparison",
      .source = R"(
        leq(z, Y).
        leq(s(X), s(Y)) :- leq(X, Y).
        max2(X, Y, Y) :- leq(X, Y).
        max2(X, Y, X) :- leq(Y, X).
        maxl([X], X).
        maxl([X|Xs], M) :- maxl(Xs, N), max2(X, N, M).
      )",
      .query = "maxl(b,f)",
      .validation_queries = {"maxl([s(z), s(s(s(z))), s(s(z))], M)",
                             "maxl([z], M)"},
  });

  corpus.push_back({
      .name = "power",
      .description = "exponentiation by repeated multiplication; the "
                     "exponent descends",
      .source = R"(
        add(z, Y, Y).
        add(s(X), Y, s(Z)) :- add(X, Y, Z).
        mul(z, Y, z).
        mul(s(X), Y, Z) :- mul(X, Y, W), add(W, Y, Z).
        pow(X, z, s(z)).
        pow(X, s(N), P) :- pow(X, N, Q), mul(Q, X, P).
      )",
      .query = "pow(b,b,f)",
      .validation_queries = {"pow(s(s(z)), s(s(s(z))), P)",
                             "pow(s(z), z, P)"},
  });

  corpus.push_back({
      .name = "weave",
      .description = "interleave two lists by swapping them on every call: "
                     "only the bound-argument SUM decreases (Example 5.1's "
                     "pattern without comparisons)",
      .source = R"(
        weave([], Ys, Ys).
        weave([X|Xs], Ys, [X|Zs]) :- weave(Ys, Xs, Zs).
      )",
      .query = "weave(b,b,f)",
      .validation_queries = {"weave([a,c,e], [b,d], W)", "weave([], [], W)"},
  });

  corpus.push_back({
      .name = "flip_forever",
      .description = "f(X,Y) :- f(Y,X): pure argument swap, diverges",
      .source = R"(
        f(X, Y) :- f(Y, X).
      )",
      .query = "f(b,b)",
      .terminating = false,
      .expect_proved = false,
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "perm_unbound",
      .description = "perm with the recursive list built from an UNBOUND "
                     "source: the head argument is unrelated to the "
                     "recursive one -- diverges",
      .source = R"(
        perm2([], []).
        perm2(P, [X|L]) :- append(E, [X|F], P1), append(E, F, P2),
                           perm2(P2, L).
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
      )",
      .query = "perm2(b,f)",
      .terminating = false,
      .expect_proved = false,
      .validation_queries = {},
  });

  corpus.push_back({
      .name = "double",
      .description = "structurally doubling output, single descent input",
      .source = R"(
        double(z, z).
        double(s(X), s(s(Y))) :- double(X, Y).
      )",
      .query = "double(b,f)",
      .validation_queries = {"double(s(s(s(z))), D)", "double(z, D)"},
  });

  return corpus;
}

}  // namespace

const std::vector<CorpusEntry>& Corpus() {
  static const std::vector<CorpusEntry>& corpus =
      *new std::vector<CorpusEntry>(BuildCorpus());
  return corpus;
}

const CorpusEntry* FindCorpusEntry(const std::string& name) {
  for (const CorpusEntry& entry : Corpus()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace termilog
