#ifndef TERMILOG_TERMILOG_H_
#define TERMILOG_TERMILOG_H_

/// Umbrella header for the termilog library: a C++20 implementation of
/// Sohn & Van Gelder, "Termination Detection in Logic Programs using
/// Argument Sizes" (PODS 1991), together with every substrate it needs.
///
/// Typical use:
///
///   #include "termilog/termilog.h"
///
///   auto program = termilog::ParseProgram(source_text);
///   termilog::TerminationAnalyzer analyzer;
///   auto report = analyzer.Analyze(*program, "perm(b,f)");
///   if (report->proved) { ... report->ToString() ... }

#include "baselines/argmap.h"
#include "baselines/naish.h"
#include "baselines/uvg.h"
#include "condinf/condinf.h"
#include "condinf/lattice.h"
#include "constraints/arg_size_db.h"
#include "constraints/inference.h"
#include "core/analyzer.h"
#include "core/certificate.h"
#include "core/dual_builder.h"
#include "core/explain.h"
#include "core/rule_system.h"
#include "corpus/corpus.h"
#include "engine/canonical.h"
#include "engine/engine.h"
#include "engine/report_json.h"
#include "engine/scc_cache.h"
#include "engine/serve.h"
#include "fm/fourier_motzkin.h"
#include "fm/polyhedron.h"
#include "gen/gen.h"
#include "graph/minplus.h"
#include "graph/scc.h"
#include "interp/bottom_up.h"
#include "interp/sld.h"
#include "lp/simplex.h"
#include "net/net.h"
#include "obs/obs.h"
#include "persist/store.h"
#include "persist/writer.h"
#include "program/ast.h"
#include "program/modes.h"
#include "program/parser.h"
#include "rational/rational.h"
#include "term/size.h"
#include "term/term.h"
#include "term/unify.h"
#include "transform/adornment.h"
#include "transform/equality.h"
#include "transform/pipeline.h"
#include "transform/reorder.h"
#include "transform/splitting.h"
#include "transform/unfolding.h"
#include "util/failpoint.h"
#include "util/governor.h"
#include "util/json.h"

#endif  // TERMILOG_TERMILOG_H_
