#ifndef TERMILOG_CONDINF_CONDINF_H_
#define TERMILOG_CONDINF_CONDINF_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "condinf/lattice.h"
#include "core/analyzer.h"
#include "engine/engine.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {
namespace condinf {

/// Options for one termination-condition sweep (docs/conditions.md).
struct ConditionsOptions {
  /// Analysis options applied to every mode-variant request. The embedded
  /// GovernorLimits are the per-mode-evaluation budget: each variant runs
  /// under its own per-task ResourceGovernor inside the engine, and the
  /// limits participate in the SCC cache key, so budgeted and unbudgeted
  /// sweeps never share entries.
  AnalysisOptions analysis;
  /// Predicates wider than this are reported truncated (no enumeration)
  /// rather than sweeping an exponential lattice. Clamped to
  /// kMaxLatticeArity.
  int max_arity = 12;
  /// Mode evaluations (engine requests) allowed per predicate before the
  /// sweep gives up on narrowing its frontier further; the report is then
  /// marked truncated and the patterns left unclassified count as
  /// `unknown`. The probes plus necessity row cost arity + 2 evaluations,
  /// so this must comfortably exceed that.
  int64_t max_evals_per_pred = 64;
  /// Attach the witnessing certificate of each minimal proved mode to the
  /// report (per-SCC theta/delta rows). Off shrinks report lines.
  bool include_certificates = true;
};

/// Witness for one minimal proved mode: the full analysis report of that
/// mode's run, kept so the per-SCC certificates can be rendered.
struct ModeWitness {
  ModeBits mode = 0;
  TerminationReport report;
};

/// Termination conditions of one predicate: the answer to "under which
/// binding patterns does calling this predicate terminate?", given as the
/// monotone set's minimal elements plus lattice accounting.
struct PredConditions {
  PredId pred;
  std::string name;  // "append/3" display form (original program)
  int arity = 0;
  /// Minimal proved binding patterns, weakest first ("bf" rendering is
  /// ModeBitsToString). Every pattern above one of these is terminating by
  /// upward closure; empty means no pattern proves (or none found before
  /// truncation).
  std::vector<ModeBits> minimal_modes;
  /// One witness per minimal mode, same order (empty when certificates
  /// are disabled).
  std::vector<ModeWitness> witnesses;
  /// Argument positions every proved pattern must bind — boundedness
  /// requirements established by the necessity probes (the backwards
  /// propagation step): top-minus-one-argument failing proves that
  /// argument necessary for the whole lattice.
  std::vector<int> required_bound;
  /// Lattice accounting: evaluated + implied_proved + implied_failed +
  /// unknown == lattice_size (2^arity). `implied_*` patterns were decided
  /// by the frontier without re-analysis; `unknown` is nonzero only when
  /// truncated.
  int64_t lattice_size = 0;
  int64_t evaluated = 0;
  int64_t implied_proved = 0;
  int64_t implied_failed = 0;
  int64_t unknown = 0;
  bool truncated = false;
  /// A mode evaluation tripped a resource budget; its verdict was counted
  /// as not-proved, so the minimal set may be weaker than an unbudgeted
  /// sweep's (deterministic for work/limb budgets).
  bool resource_limited = false;
  std::vector<std::string> notes;
};

/// Whole-program conditions report: one PredConditions per defined
/// predicate, sorted by (name, arity).
struct ConditionsReport {
  std::string name;
  /// Non-OK when the sweep could not run at all (unparseable program has
  /// no sweep; per-mode analysis errors degrade into notes instead).
  Status status = Status::Ok();
  std::vector<PredConditions> preds;
  bool resource_limited = false;
  std::vector<std::string> notes;
};

/// One program's sweep, advanced in rounds: NextRound() returns the mode
/// variants the frontier cannot decide yet (deterministic order),
/// Absorb() feeds their engine results back, and the state machine prunes
/// by upward closure and downward failure propagation until every
/// predicate's frontier is closed. Drive it with RunConditionsSweeps,
/// which batches rounds from many sweeps into shared engine Runs.
///
/// Per predicate the rounds are: (1) top and bottom probes — a failed top
/// closes the whole lattice (nothing proves), a proved bottom closes it
/// dually; (2) necessity probes, one per argument: top with argument i
/// freed failing means every pattern leaving i free fails (the
/// boundedness requirement propagated backwards); (3) frontier layers,
/// ascending by bound count, skipping patterns the frontier already
/// implies. Engine-level SCC caching makes variants that adorn shared
/// structure identically hit instead of recompute.
class ConditionsSweep {
 public:
  ConditionsSweep(std::string name, Program program,
                  ConditionsOptions options);

  bool done() const;
  /// Mode-variant requests the sweep needs next (empty iff done()).
  std::vector<BatchRequest> NextRound();
  /// Results for the last NextRound(), in the same order.
  void Absorb(const std::vector<BatchItemResult>& results);
  /// Final report; valid once done().
  ConditionsReport Finish();

 private:
  struct PredSweep {
    enum class Stage { kProbe, kNecessity, kLayer, kDone };

    PredId pred;
    std::string display;
    int arity = 0;
    Stage stage = Stage::kProbe;
    int layer = 1;  // current bound-count layer during Stage::kLayer
    ModeFrontier frontier;
    std::vector<ModeBits> evaluated;          // every analyzed pattern
    std::map<ModeBits, TerminationReport> proved_reports;
    std::vector<ModeBits> pending;            // submitted this round
    int64_t evals = 0;
    bool truncated = false;
    bool resource_limited = false;
    std::vector<std::string> notes;
  };

  std::vector<ModeBits> StageCandidates(const PredSweep& ps) const;
  void AdvanceStage(PredSweep* ps) const;
  bool WasEvaluated(const PredSweep& ps, ModeBits mode) const;

  std::string name_;
  Program program_;
  ConditionsOptions options_;
  std::vector<PredSweep> preds_;
};

/// Drives every sweep to completion over one engine, in lockstep rounds:
/// each round concatenates all active sweeps' NextRound() requests (sweep
/// order) into a single BatchEngine::Run, so mode variants parallelize
/// across predicates, programs, and sweeps while the shared SCC cache
/// deduplicates structurally identical work. The candidate list of every
/// round is a pure function of earlier rounds' deterministic reports, so
/// the returned reports — and their JSON rendering — are byte-identical
/// for every --jobs value.
std::vector<ConditionsReport> RunConditionsSweeps(
    BatchEngine& engine, std::vector<ConditionsSweep>& sweeps);

/// One-line JSON rendering of a conditions report (the --conditions
/// analogue of ReportToJsonLine): {"name":..,"kind":"conditions",
/// "ok":true,"preds":[{"pred":..,"minimal_modes":[..],"witnesses":[..],
/// lattice accounting...}],..}. Deterministic: equal reports produce
/// equal lines.
std::string ConditionsReportToJsonLine(const ConditionsReport& report);

/// Human-readable multi-line rendering for the plain CLI path.
std::string ConditionsReportToText(const ConditionsReport& report);

/// Declared minimal-mode expectations, as parsed from a manifest line's
/// "expect_modes" object: predicate display name -> sorted mode strings.
using ExpectedModes = std::vector<std::pair<std::string, std::vector<std::string>>>;

/// Compares a sweep report against declared expectations. Every declared
/// predicate must appear in the report with exactly the declared minimal
/// mode set. Returns the number of mismatches; descriptions (at most one
/// per mismatch) are appended to `messages` when non-null.
int CountExpectModeMismatches(const ConditionsReport& report,
                              const ExpectedModes& expected,
                              std::vector<std::string>* messages);

}  // namespace condinf
}  // namespace termilog

#endif  // TERMILOG_CONDINF_CONDINF_H_
