// Termination-condition inference (docs/conditions.md): for every defined
// predicate, find the minimal binding patterns under which the analyzer
// proves termination. The sweep is a frontier search over the boundedness
// lattice, scheduled as mode-variant requests through the batch engine so
// the content-addressed SCC cache deduplicates the shared structure
// between variants, and pruned in both directions: a proved pattern
// implies every stronger pattern (upward closure), a failed pattern
// implies every weaker one (backwards propagation of boundedness
// requirements through the dependency condensation — a requirement
// violated at a callee SCC surfaces as a failed weakened pattern at the
// entry, and the frontier then rules out everything below it).

#include "condinf/condinf.h"

#include <algorithm>
#include <set>
#include <utility>

#include "engine/report_json.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {
namespace condinf {
namespace {

// Enumeration bound for the exact lattice accounting loop in Finish();
// ConditionsOptions::max_arity is clamped here so lattice_size stays a
// count we can afford to walk (2^16), not just to represent.
constexpr int kMaxSweepArity = 16;

void AppendQuoted(std::string_view text, std::string* out) {
  *out += '"';
  *out += JsonEscape(text);
  *out += '"';
}

void AppendStringArray(const std::vector<std::string>& items,
                       std::string* out) {
  *out += '[';
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out += ',';
    AppendQuoted(items[i], out);
  }
  *out += ']';
}

std::vector<std::string> ModeStrings(const std::vector<ModeBits>& modes,
                                     int arity) {
  std::vector<std::string> out;
  out.reserve(modes.size());
  for (ModeBits mode : modes) out.push_back(ModeBitsToString(mode, arity));
  return out;
}

}  // namespace

ConditionsSweep::ConditionsSweep(std::string name, Program program,
                                 ConditionsOptions options)
    : name_(std::move(name)),
      program_(std::move(program)),
      options_(std::move(options)) {
  if (options_.max_arity > kMaxSweepArity) options_.max_arity = kMaxSweepArity;
  if (options_.max_arity < 0) options_.max_arity = 0;
  // (name, arity) order, not PredId order: symbol ids are an artifact of
  // interning order and must not leak into report bytes.
  std::vector<std::pair<std::string, PredId>> named;
  for (const PredId& pred : program_.DefinedPredicates()) {
    named.emplace_back(program_.PredName(pred), pred);
  }
  std::sort(named.begin(), named.end());
  preds_.reserve(named.size());
  for (auto& [display, pred] : named) {
    PredSweep ps;
    ps.pred = pred;
    ps.display = display;
    ps.arity = pred.arity;
    if (pred.arity > options_.max_arity) {
      ps.stage = PredSweep::Stage::kDone;
      ps.truncated = true;
      ps.notes.push_back(StrCat("arity ", pred.arity,
                                " exceeds the sweep's max_arity ",
                                options_.max_arity, "; lattice not explored"));
    }
    preds_.push_back(std::move(ps));
  }
}

bool ConditionsSweep::done() const {
  for (const PredSweep& ps : preds_) {
    if (ps.stage != PredSweep::Stage::kDone || !ps.pending.empty()) {
      return false;
    }
  }
  return true;
}

bool ConditionsSweep::WasEvaluated(const PredSweep& ps, ModeBits mode) const {
  return std::find(ps.evaluated.begin(), ps.evaluated.end(), mode) !=
         ps.evaluated.end();
}

// Raw candidate list of the predicate's current stage, in deterministic
// order; NextRound filters it against the frontier and the eval budget.
std::vector<ModeBits> ConditionsSweep::StageCandidates(
    const PredSweep& ps) const {
  const ModeBits top = TopMode(ps.arity);
  std::vector<ModeBits> out;
  switch (ps.stage) {
    case PredSweep::Stage::kProbe:
      out.push_back(0);  // bottom: all-free
      if (top != 0) out.push_back(top);
      break;
    case PredSweep::Stage::kNecessity:
      // Top with one argument freed, per argument: a failure here is the
      // backwards boundedness requirement — every pattern leaving that
      // argument free is below the failed one, hence failed.
      for (int i = 0; i < ps.arity; ++i) {
        out.push_back(top & ~(ModeBits{1} << i));
      }
      break;
    case PredSweep::Stage::kLayer:
      for (ModeBits m = 1; m < top; ++m) {
        if (BoundCount(m) == ps.layer) out.push_back(m);
      }
      break;
    case PredSweep::Stage::kDone:
      break;
  }
  return out;
}

void ConditionsSweep::AdvanceStage(PredSweep* ps) const {
  const ModeBits top = TopMode(ps->arity);
  switch (ps->stage) {
    case PredSweep::Stage::kProbe:
      // A failed top closes the lattice downward (nothing proves); a
      // proved bottom closes it upward (everything proves). Arity < 2 has
      // no patterns beyond the probes.
      if (ps->frontier.ImpliedFailed(top) || ps->frontier.ImpliedProved(0) ||
          ps->arity < 2) {
        ps->stage = PredSweep::Stage::kDone;
      } else {
        ps->stage = PredSweep::Stage::kNecessity;
      }
      break;
    case PredSweep::Stage::kNecessity:
      ps->stage = PredSweep::Stage::kLayer;
      ps->layer = 1;
      break;
    case PredSweep::Stage::kLayer:
      if (++ps->layer > ps->arity - 1) ps->stage = PredSweep::Stage::kDone;
      break;
    case PredSweep::Stage::kDone:
      break;
  }
}

std::vector<BatchRequest> ConditionsSweep::NextRound() {
  std::vector<BatchRequest> out;
  for (PredSweep& ps : preds_) {
    TERMILOG_CHECK_MSG(ps.pending.empty(),
                       "NextRound before Absorb of the previous round");
    while (ps.stage != PredSweep::Stage::kDone) {
      std::vector<ModeBits> candidates;
      for (ModeBits mode : StageCandidates(ps)) {
        if (WasEvaluated(ps, mode)) continue;
        if (ps.frontier.ImpliedProved(mode)) continue;
        if (ps.frontier.ImpliedFailed(mode)) continue;
        candidates.push_back(mode);
      }
      if (candidates.empty()) {
        AdvanceStage(&ps);
        continue;
      }
      int64_t remaining = options_.max_evals_per_pred - ps.evals;
      if (remaining <= 0) {
        ps.truncated = true;
        ps.notes.push_back(StrCat("mode-evaluation budget (",
                                  options_.max_evals_per_pred,
                                  ") exhausted; frontier left open"));
        ps.stage = PredSweep::Stage::kDone;
        break;
      }
      if (static_cast<int64_t>(candidates.size()) > remaining) {
        candidates.resize(static_cast<size_t>(remaining));
        ps.truncated = true;
      }
      ps.pending = candidates;
      for (ModeBits mode : candidates) {
        BatchRequest request;
        request.name = StrCat(name_, " ", ps.display, " ",
                              ModeBitsToString(mode, ps.arity));
        request.program = program_;
        request.query = ps.pred;
        request.adornment = BitsToAdornment(mode, ps.arity);
        request.options = options_.analysis;
        out.push_back(std::move(request));
      }
      break;
    }
  }
  return out;
}

void ConditionsSweep::Absorb(const std::vector<BatchItemResult>& results) {
  size_t next = 0;
  for (PredSweep& ps : preds_) {
    for (ModeBits mode : ps.pending) {
      TERMILOG_CHECK_MSG(next < results.size(),
                         "Absorb got fewer results than requests");
      const BatchItemResult& item = results[next++];
      ++ps.evals;
      ps.evaluated.push_back(mode);
      const std::string mode_text = ModeBitsToString(mode, ps.arity);
      if (!item.status.ok()) {
        ps.notes.push_back(StrCat("mode ", mode_text, ": analysis error: ",
                                  item.status.ToString()));
        ps.frontier.RecordFailed(mode);
        continue;
      }
      if (item.report.resource_limited) {
        ps.resource_limited = true;
        ps.notes.push_back(StrCat("mode ", mode_text,
                                  ": resource-limited (",
                                  item.report.first_resource_trip,
                                  "); counted as not proved"));
      }
      if (item.report.proved) {
        ps.frontier.RecordProved(mode);
        ps.proved_reports.emplace(mode, item.report);
      } else {
        ps.frontier.RecordFailed(mode);
      }
    }
    ps.pending.clear();
  }
  TERMILOG_CHECK_MSG(next == results.size(),
                     "Absorb got more results than requests");
}

ConditionsReport ConditionsSweep::Finish() {
  TERMILOG_CHECK_MSG(done(), "Finish before the sweep completed");
  ConditionsReport report;
  report.name = name_;
  for (PredSweep& ps : preds_) {
    PredConditions pc;
    pc.pred = ps.pred;
    pc.name = ps.display;
    pc.arity = ps.arity;
    pc.lattice_size = int64_t{1} << ps.arity;
    pc.evaluated = static_cast<int64_t>(ps.evaluated.size());
    pc.truncated = ps.truncated;
    pc.resource_limited = ps.resource_limited;
    pc.notes = std::move(ps.notes);
    pc.minimal_modes = ps.frontier.minimal_proved();

    if (ps.arity <= options_.max_arity) {
      // Exact accounting over the whole lattice: every pattern is either
      // evaluated, decided by the frontier, or unknown (truncation only).
      std::set<ModeBits> evaluated(ps.evaluated.begin(), ps.evaluated.end());
      for (ModeBits m = 0; m <= TopMode(ps.arity); ++m) {
        if (evaluated.count(m)) continue;
        if (ps.frontier.ImpliedProved(m)) {
          ++pc.implied_proved;
        } else if (ps.frontier.ImpliedFailed(m)) {
          ++pc.implied_failed;
        } else {
          ++pc.unknown;
        }
        if (m == TopMode(ps.arity)) break;  // ModeBits overflow guard
      }
    } else {
      pc.unknown = pc.lattice_size - pc.evaluated;
    }

    if (!pc.minimal_modes.empty()) {
      const ModeBits top = TopMode(ps.arity);
      for (int i = 0; i < ps.arity; ++i) {
        if (ps.frontier.ImpliedFailed(top & ~(ModeBits{1} << i))) {
          pc.required_bound.push_back(i);
        }
      }
    }
    if (options_.include_certificates) {
      for (ModeBits mode : pc.minimal_modes) {
        auto it = ps.proved_reports.find(mode);
        TERMILOG_CHECK_MSG(it != ps.proved_reports.end(),
                           "minimal mode without a witness report");
        ModeWitness witness;
        witness.mode = mode;
        witness.report = std::move(it->second);
        pc.witnesses.push_back(std::move(witness));
      }
    }
    report.resource_limited |= pc.resource_limited;
    report.preds.push_back(std::move(pc));
  }
  return report;
}

std::vector<ConditionsReport> RunConditionsSweeps(
    BatchEngine& engine, std::vector<ConditionsSweep>& sweeps) {
  while (true) {
    std::vector<BatchRequest> round;
    std::vector<size_t> counts(sweeps.size(), 0);
    for (size_t s = 0; s < sweeps.size(); ++s) {
      std::vector<BatchRequest> requests = sweeps[s].NextRound();
      counts[s] = requests.size();
      for (BatchRequest& request : requests) {
        round.push_back(std::move(request));
      }
    }
    if (round.empty()) break;
    std::vector<BatchItemResult> results = engine.Run(round);
    size_t offset = 0;
    for (size_t s = 0; s < sweeps.size(); ++s) {
      if (counts[s] == 0) continue;
      std::vector<BatchItemResult> slice(
          std::make_move_iterator(results.begin() +
                                  static_cast<ptrdiff_t>(offset)),
          std::make_move_iterator(results.begin() +
                                  static_cast<ptrdiff_t>(offset + counts[s])));
      offset += counts[s];
      sweeps[s].Absorb(slice);
    }
  }
  std::vector<ConditionsReport> reports;
  reports.reserve(sweeps.size());
  for (ConditionsSweep& sweep : sweeps) {
    reports.push_back(sweep.Finish());
  }
  return reports;
}

std::string ConditionsReportToJsonLine(const ConditionsReport& report) {
  std::string out = "{\"name\":";
  AppendQuoted(report.name, &out);
  out += ",\"kind\":\"conditions\"";
  if (!report.status.ok()) {
    out += ",\"ok\":false,\"error\":";
    AppendQuoted(report.status.ToString(), &out);
    out += '}';
    return out;
  }
  out += StrCat(",\"ok\":true,\"resource_limited\":",
                report.resource_limited ? "true" : "false");
  out += ",\"preds\":[";
  for (size_t p = 0; p < report.preds.size(); ++p) {
    const PredConditions& pc = report.preds[p];
    if (p > 0) out += ',';
    out += "{\"pred\":";
    AppendQuoted(pc.name, &out);
    out += StrCat(",\"arity\":", pc.arity,
                  ",\"lattice_size\":", pc.lattice_size,
                  ",\"evaluated\":", pc.evaluated,
                  ",\"implied_proved\":", pc.implied_proved,
                  ",\"implied_failed\":", pc.implied_failed,
                  ",\"unknown\":", pc.unknown,
                  ",\"truncated\":", pc.truncated ? "true" : "false",
                  ",\"resource_limited\":",
                  pc.resource_limited ? "true" : "false");
    out += ",\"minimal_modes\":";
    AppendStringArray(ModeStrings(pc.minimal_modes, pc.arity), &out);
    out += ",\"required_bound\":[";
    for (size_t i = 0; i < pc.required_bound.size(); ++i) {
      if (i > 0) out += ',';
      out += StrCat(pc.required_bound[i]);
    }
    out += ']';
    if (!pc.witnesses.empty()) {
      out += ",\"witnesses\":[";
      for (size_t w = 0; w < pc.witnesses.size(); ++w) {
        const ModeWitness& witness = pc.witnesses[w];
        const Program& program = witness.report.analyzed_program;
        if (w > 0) out += ',';
        out += "{\"mode\":";
        AppendQuoted(ModeBitsToString(witness.mode, pc.arity), &out);
        out += ",\"sccs\":[";
        bool first = true;
        for (const SccReport& scc : witness.report.sccs) {
          if (scc.status == SccStatus::kNonRecursive) continue;
          if (!first) out += ',';
          first = false;
          out += "{\"preds\":[";
          for (size_t i = 0; i < scc.preds.size(); ++i) {
            if (i > 0) out += ',';
            AppendQuoted(program.PredName(scc.preds[i]), &out);
          }
          out += StrCat("],\"status\":\"", SccStatusName(scc.status), "\"");
          if (scc.status == SccStatus::kProved) {
            out += ",\"certificate\":";
            AppendCertificateJson(scc.certificate, program, &out);
          }
          out += '}';
        }
        out += "]}";
      }
      out += ']';
    }
    out += ",\"notes\":";
    AppendStringArray(pc.notes, &out);
    out += '}';
  }
  out += "],\"notes\":";
  AppendStringArray(report.notes, &out);
  out += '}';
  return out;
}

std::string ConditionsReportToText(const ConditionsReport& report) {
  std::string out = StrCat("conditions: ", report.name, "\n");
  if (!report.status.ok()) {
    return StrCat(out, "  error: ", report.status.ToString(), "\n");
  }
  for (const PredConditions& pc : report.preds) {
    out += StrCat("  ", pc.name, ": ");
    if (pc.minimal_modes.empty()) {
      out += pc.truncated ? "no terminating binding pattern found (truncated)"
                          : "no terminating binding pattern";
    } else {
      out += "minimal terminating modes {";
      std::vector<std::string> modes = ModeStrings(pc.minimal_modes, pc.arity);
      out += Join(modes, ", ");
      out += '}';
      if (!pc.required_bound.empty()) {
        std::vector<std::string> args;
        for (int i : pc.required_bound) args.push_back(StrCat("a", i + 1));
        out += StrCat(" (requires ", Join(args, ","), " bound)");
      }
    }
    out += StrCat("  [lattice ", pc.lattice_size, ": ", pc.evaluated,
                  " analyzed, ", pc.implied_proved, " implied proved, ",
                  pc.implied_failed, " implied failed");
    if (pc.unknown > 0) out += StrCat(", ", pc.unknown, " unknown");
    out += "]";
    if (pc.resource_limited) out += " (resource-limited)";
    out += '\n';
    for (const std::string& note : pc.notes) {
      out += StrCat("    note: ", note, "\n");
    }
  }
  for (const std::string& note : report.notes) {
    out += StrCat("  note: ", note, "\n");
  }
  return out;
}

int CountExpectModeMismatches(const ConditionsReport& report,
                              const ExpectedModes& expected,
                              std::vector<std::string>* messages) {
  int mismatches = 0;
  auto complain = [&](const std::string& text) {
    ++mismatches;
    if (messages != nullptr) messages->push_back(text);
  };
  for (const auto& [pred_name, modes] : expected) {
    const PredConditions* found = nullptr;
    for (const PredConditions& pc : report.preds) {
      if (pc.name == pred_name) {
        found = &pc;
        break;
      }
    }
    if (found == nullptr) {
      complain(StrCat(report.name, ": expected conditions for ", pred_name,
                      ", absent from the report"));
      continue;
    }
    std::vector<std::string> got = ModeStrings(found->minimal_modes,
                                               found->arity);
    std::vector<std::string> want = modes;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      complain(StrCat(report.name, " ", pred_name, ": declared minimal modes {",
                      Join(want, ","), "}, sweep found {", Join(got, ","),
                      "}"));
    }
  }
  return mismatches;
}

}  // namespace condinf
}  // namespace termilog
