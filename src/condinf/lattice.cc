#include "condinf/lattice.h"

#include <algorithm>

#include "util/check.h"

namespace termilog {
namespace condinf {
namespace {

// (bound count, value) order keeps both antichains deterministic and puts
// the weakest patterns first, which is the order reports want.
void SortedInsert(std::vector<ModeBits>* set, ModeBits mode) {
  auto less = [](ModeBits a, ModeBits b) {
    int ca = BoundCount(a), cb = BoundCount(b);
    return ca != cb ? ca < cb : a < b;
  };
  set->insert(std::lower_bound(set->begin(), set->end(), mode, less), mode);
}

}  // namespace

ModeBits TopMode(int arity) {
  TERMILOG_CHECK_MSG(arity >= 0 && arity <= kMaxLatticeArity,
                     "arity outside lattice range");
  return arity == 0 ? 0 : (ModeBits{1} << arity) - 1;
}

bool ModeLeq(ModeBits weaker, ModeBits stronger) {
  return (weaker & ~stronger) == 0;
}

int BoundCount(ModeBits mode) {
  int count = 0;
  for (ModeBits m = mode; m != 0; m &= m - 1) ++count;
  return count;
}

Adornment BitsToAdornment(ModeBits mode, int arity) {
  Adornment adornment(static_cast<size_t>(arity), Mode::kFree);
  for (int i = 0; i < arity; ++i) {
    if (mode & (ModeBits{1} << i)) adornment[static_cast<size_t>(i)] = Mode::kBound;
  }
  return adornment;
}

ModeBits AdornmentToBits(const Adornment& adornment) {
  TERMILOG_CHECK_MSG(adornment.size() <= kMaxLatticeArity,
                     "adornment outside lattice range");
  ModeBits mode = 0;
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == Mode::kBound) mode |= ModeBits{1} << i;
  }
  return mode;
}

std::string ModeBitsToString(ModeBits mode, int arity) {
  std::string out(static_cast<size_t>(arity), 'f');
  for (int i = 0; i < arity; ++i) {
    if (mode & (ModeBits{1} << i)) out[static_cast<size_t>(i)] = 'b';
  }
  return out;
}

void ModeFrontier::RecordProved(ModeBits mode) {
  if (ImpliedProved(mode)) return;
  minimal_proved_.erase(
      std::remove_if(minimal_proved_.begin(), minimal_proved_.end(),
                     [mode](ModeBits m) { return ModeLeq(mode, m); }),
      minimal_proved_.end());
  SortedInsert(&minimal_proved_, mode);
}

void ModeFrontier::RecordFailed(ModeBits mode) {
  if (ImpliedFailed(mode)) return;
  maximal_failed_.erase(
      std::remove_if(maximal_failed_.begin(), maximal_failed_.end(),
                     [mode](ModeBits m) { return ModeLeq(m, mode); }),
      maximal_failed_.end());
  SortedInsert(&maximal_failed_, mode);
}

bool ModeFrontier::ImpliedProved(ModeBits mode) const {
  for (ModeBits proved : minimal_proved_) {
    if (ModeLeq(proved, mode)) return true;
  }
  return false;
}

bool ModeFrontier::ImpliedFailed(ModeBits mode) const {
  for (ModeBits failed : maximal_failed_) {
    if (ModeLeq(mode, failed)) return true;
  }
  return false;
}

}  // namespace condinf
}  // namespace termilog
