#ifndef TERMILOG_CONDINF_LATTICE_H_
#define TERMILOG_CONDINF_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "program/ast.h"

namespace termilog {
namespace condinf {

/// One binding pattern of a predicate, as a bitmask over argument
/// positions: bit i set means argument i is bound. The boundedness lattice
/// is the powerset lattice under inclusion — `m1 <= m2` iff m1's bound set
/// is a subset of m2's — with all-free at the bottom and all-bound at the
/// top. Termination provedness is monotone over this lattice (binding more
/// arguments only adds candidate level-mapping weight, see
/// docs/conditions.md), which is what makes frontier search sound.
using ModeBits = uint32_t;

/// Widest arity the lattice machinery enumerates. Wider predicates are
/// reported as truncated rather than sweeping 2^31 patterns.
constexpr int kMaxLatticeArity = 30;

/// The all-bound pattern (lattice top) for `arity` arguments.
ModeBits TopMode(int arity);

/// True iff `weaker`'s bound set is a subset of `stronger`'s.
bool ModeLeq(ModeBits weaker, ModeBits stronger);

int BoundCount(ModeBits mode);

Adornment BitsToAdornment(ModeBits mode, int arity);
ModeBits AdornmentToBits(const Adornment& adornment);

/// "bff" rendering (matches AdornmentToString on the expanded adornment).
std::string ModeBitsToString(ModeBits mode, int arity);

/// Verdict bookkeeping over the mode lattice of one predicate. Maintains
/// two antichains — the minimal proved patterns and the maximal failed
/// patterns — and answers implication queries against them:
///   ImpliedProved(m): some proved pattern <= m, so m proves by upward
///                     closure without re-analysis;
///   ImpliedFailed(m): m <= some failed pattern, so m fails by downward
///                     (backwards) failure propagation.
/// Callers only Record verdicts actually computed; the antichains absorb
/// dominated entries, so both stay small (at most C(n, n/2) patterns).
class ModeFrontier {
 public:
  /// Records a computed PROVED verdict. Dominated entries (supersets of
  /// `mode`) are dropped; a no-op when `mode` is already implied.
  void RecordProved(ModeBits mode);
  /// Records a computed not-proved verdict, dually.
  void RecordFailed(ModeBits mode);

  bool ImpliedProved(ModeBits mode) const;
  bool ImpliedFailed(ModeBits mode) const;

  /// Minimal proved patterns, sorted by (bound count, numeric value) —
  /// the weakest binding patterns under which termination is proved.
  const std::vector<ModeBits>& minimal_proved() const {
    return minimal_proved_;
  }
  const std::vector<ModeBits>& maximal_failed() const {
    return maximal_failed_;
  }

 private:
  std::vector<ModeBits> minimal_proved_;
  std::vector<ModeBits> maximal_failed_;
};

}  // namespace condinf
}  // namespace termilog

#endif  // TERMILOG_CONDINF_LATTICE_H_
