#ifndef TERMILOG_UTIL_FAILPOINT_H_
#define TERMILOG_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/status.h"

namespace termilog {

/// Deterministic fault-injection registry. Every budget-check and
/// error-return site in the library carries a named failpoint; tests (or an
/// operator, via the TERMILOG_FAILPOINTS environment variable) activate a
/// site by name to force its kResourceExhausted path, so each degradation
/// ladder rung can be exercised without constructing a genuinely
/// pathological input.
///
/// Activation syntax (programmatic or env var, comma-separated):
///   site          fail every hit while enabled
///   site=N        fail only the first N hits, then behave normally
///
/// The macros compile to nothing when TERMILOG_FAILPOINTS_ENABLED is not
/// defined (CMake option TERMILOG_FAILPOINTS, ON by default; turn it OFF
/// for release builds).
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Enables `site`; max_fails < 0 means fail every hit.
  void Enable(const std::string& site, int max_fails = -1);
  void Disable(const std::string& site);
  /// Disables everything and clears hit counters.
  void Clear();

  /// Consulted by the TERMILOG_FAILPOINT* macros. Constant-time no-lock
  /// false when nothing is enabled.
  bool ShouldFail(const char* site);

  /// Times ShouldFail returned true for `site` since the last Clear.
  int64_t FailCount(const std::string& site) const;

  /// Parses a TERMILOG_FAILPOINTS-style spec ("a,b=2") into Enable calls.
  void EnableFromSpec(const std::string& spec);

  /// Message used by forced trips, e.g. "failpoint 'fm.eliminate' forced".
  static std::string TripMessage(const char* site);

 private:
  FailpointRegistry();

  mutable std::mutex mu_;
  std::atomic<int> active_count_{0};
  std::map<std::string, int> remaining_;  // -1 = unlimited
  std::map<std::string, int64_t> fail_counts_;
};

/// RAII activation for tests: enables on construction, disables on scope
/// exit.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string site, int max_fails = -1)
      : site_(std::move(site)) {
    FailpointRegistry::Global().Enable(site_, max_fails);
  }
  ~ScopedFailpoint() { FailpointRegistry::Global().Disable(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace termilog

#ifdef TERMILOG_FAILPOINTS_ENABLED
/// Expression form: true when the named failpoint is active and fires.
#define TERMILOG_FAILPOINT_HIT(site) \
  (::termilog::FailpointRegistry::Global().ShouldFail(site))
#else
#define TERMILOG_FAILPOINT_HIT(site) (false)
#endif

/// Statement form for functions returning Status or Result<T>: when the
/// named failpoint fires, returns kResourceExhausted from the enclosing
/// function. Compiled to nothing when failpoints are disabled.
#define TERMILOG_FAILPOINT(site)                           \
  do {                                                     \
    if (TERMILOG_FAILPOINT_HIT(site)) {                    \
      return ::termilog::Status::ResourceExhausted(        \
          ::termilog::FailpointRegistry::TripMessage(site)); \
    }                                                      \
  } while (0)

#endif  // TERMILOG_UTIL_FAILPOINT_H_
