#ifndef TERMILOG_UTIL_STRING_UTIL_H_
#define TERMILOG_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace termilog {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(std::string_view text);

/// Streams all arguments into one string (replacement for std::format,
/// which libstdc++ 12 does not ship).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace termilog

#endif  // TERMILOG_UTIL_STRING_UTIL_H_
