#ifndef TERMILOG_UTIL_JSON_H_
#define TERMILOG_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace termilog {

/// Minimal JSON document model, sized to what the repo's own emitters
/// produce (engine/report_json.*, gen/manifest): objects, arrays, strings
/// with the standard escapes, integer/decimal numbers, true/false/null.
/// Numbers are held as doubles plus an exact int64 when the literal was
/// integral and in range — manifest fields (budgets, counts) read the
/// exact form.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  int64_t integer = 0;    // valid when is_integer
  bool is_integer = false;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool Has(const std::string& key) const { return fields.count(key) > 0; }

  /// Object field lookup; a shared null value when absent (or not an
  /// object), so lookups chain without intermediate checks.
  const JsonValue& At(const std::string& key) const;

  /// Typed accessors with defaults, for optional manifest fields.
  std::string StringOr(const std::string& fallback) const {
    return kind == Kind::kString ? text : fallback;
  }
  int64_t IntOr(int64_t fallback) const {
    return kind == Kind::kNumber && is_integer ? integer : fallback;
  }
  bool BoolOr(bool fallback) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
};

/// Parses one complete JSON document (no trailing garbage). Fails with
/// kInvalidArgument naming the byte offset of the first error. Hardened
/// for untrusted manifest lines: truncated input, garbage bytes, and
/// pathological nesting (a stack-overflow vector; capped at 96 levels)
/// all come back as clean errors, never a crash or an abort.
Result<JsonValue> ParseJson(std::string_view input);

}  // namespace termilog

#endif  // TERMILOG_UTIL_JSON_H_
