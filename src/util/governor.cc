#include "util/governor.h"

#include "obs/obs.h"
#include "rational/bigint.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// How many work ticks may pass between steady-clock / limb samples. The
// clock read is ~20ns but the hot loops (simplex pivots, SLD steps) run
// millions of iterations, so sampling every tick would be measurable.
constexpr int64_t kClockCheckInterval = 64;

int64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string GovernorSpend::ToString() const {
  return StrCat("work=", work, " elapsed_ms=", elapsed_ms,
                " bigint_limbs=", bigint_limb_high_water);
}

std::string GovernorSpend::DeterministicToString() const {
  return StrCat("work=", work, " bigint_limbs=", bigint_limb_high_water);
}

ResourceGovernor::ResourceGovernor(const GovernorLimits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {
#ifndef NDEBUG
  owner_thread_ = std::this_thread::get_id();
#endif
  // The limb high-water is a thread-local inside BigInt; reset it
  // unconditionally so this governor measures only growth that happens on
  // its watch. Resetting only when a limb limit was set (the old behavior)
  // made Spend() report a stale high-water left over from an earlier
  // analysis on the same thread — on a pooled worker thread that ran other
  // tasks, the numbers of unrelated tasks bled into each other.
  BigInt::ResetLimbHighWater();
}

void ResourceGovernor::CheckThread() const {
#ifndef NDEBUG
  TERMILOG_CHECK_MSG(std::this_thread::get_id() == owner_thread_,
                     "ResourceGovernor used from a thread other than the one "
                     "that constructed it (one-thread-per-governor contract)");
#endif
}

Status ResourceGovernor::Trip(const char* site, const char* budget,
                              const std::string& detail) const {
  if (!tripped_) {
    tripped_ = true;
    // The StrCat argument is evaluated inside the macro, so it compiles
    // away with TERMILOG_OBS — trips are rare, so the allocation is fine.
    TERMILOG_COUNTER("governor.trips", 1);
    TERMILOG_COUNTER(StrCat("governor.trips.", budget).c_str(), 1);
    // The trip message propagates into report notes, which are
    // byte-identical across runs and --jobs levels — so it may carry only
    // the deterministic spend dimensions, never elapsed wall time.
    trip_ = Status::ResourceExhausted(
        StrCat("governor: ", budget, " budget exhausted at ", site, " (",
               detail, "; spent ", Spend().DeterministicToString(), ")"));
  }
  return trip_;
}

Status ResourceGovernor::CheckClockAndLimbs(const char* site) const {
  if (limits_.deadline_ms > 0 && ElapsedMs(start_) > limits_.deadline_ms) {
    return Trip(site, "wall-clock",
                StrCat("deadline ", limits_.deadline_ms, "ms"));
  }
  if (limits_.bigint_limb_limit > 0 &&
      BigInt::LimbHighWater() > limits_.bigint_limb_limit) {
    return Trip(site, "bigint-limb",
                StrCat("limit ", limits_.bigint_limb_limit, " limbs"));
  }
  return Status::Ok();
}

Status ResourceGovernor::Charge(const char* site, int64_t amount) const {
  CheckThread();
  if (tripped_) return trip_;
  work_ += amount;
  if (limits_.Unlimited()) return Status::Ok();
  if (limits_.work_budget > 0 && work_ > limits_.work_budget) {
    return Trip(site, "work", StrCat("limit ", limits_.work_budget, " ticks"));
  }
  ticks_since_clock_check_ += amount;
  if (ticks_since_clock_check_ >= kClockCheckInterval) {
    ticks_since_clock_check_ = 0;
    return CheckClockAndLimbs(site);
  }
  return Status::Ok();
}

Status ResourceGovernor::CheckNow(const char* site) const {
  CheckThread();
  if (tripped_) return trip_;
  if (limits_.Unlimited()) return Status::Ok();
  if (limits_.work_budget > 0 && work_ > limits_.work_budget) {
    return Trip(site, "work", StrCat("limit ", limits_.work_budget, " ticks"));
  }
  ticks_since_clock_check_ = 0;
  return CheckClockAndLimbs(site);
}

GovernorSpend ResourceGovernor::Spend() const {
  CheckThread();
  GovernorSpend spend;
  spend.work = work_;
  spend.elapsed_ms = ElapsedMs(start_);
  spend.bigint_limb_high_water = BigInt::LimbHighWater();
  return spend;
}

}  // namespace termilog
