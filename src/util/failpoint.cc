#include "util/failpoint.h"

#include <cstdlib>

#include "util/string_util.h"

namespace termilog {

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  const char* env = std::getenv("TERMILOG_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') EnableFromSpec(env);
}

void FailpointRegistry::EnableFromSpec(const std::string& spec) {
  for (const std::string& piece : Split(spec, ',')) {
    std::string_view entry = StripWhitespace(piece);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      Enable(std::string(entry));
      continue;
    }
    int max_fails = 0;
    for (char digit : entry.substr(eq + 1)) {
      if (digit < '0' || digit > '9') {
        max_fails = -1;
        break;
      }
      max_fails = max_fails * 10 + (digit - '0');
    }
    Enable(std::string(entry.substr(0, eq)), max_fails == 0 ? -1 : max_fails);
  }
}

void FailpointRegistry::Enable(const std::string& site, int max_fails) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = remaining_.emplace(site, max_fails);
  if (!inserted) it->second = max_fails;
  if (inserted) active_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (remaining_.erase(site) > 0) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  active_count_.fetch_sub(static_cast<int>(remaining_.size()),
                          std::memory_order_relaxed);
  remaining_.clear();
  fail_counts_.clear();
}

bool FailpointRegistry::ShouldFail(const char* site) {
  // Fast path: nothing enabled anywhere, skip the lock. Hot loops (simplex
  // pivots, SLD steps) hit this on every iteration.
  if (active_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = remaining_.find(site);
  if (it == remaining_.end()) return false;
  if (it->second == 0) return false;  // budget of forced failures used up
  if (it->second > 0) --it->second;
  ++fail_counts_[site];
  return true;
}

int64_t FailpointRegistry::FailCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fail_counts_.find(site);
  return it == fail_counts_.end() ? 0 : it->second;
}

std::string FailpointRegistry::TripMessage(const char* site) {
  return StrCat("failpoint '", site, "' forced");
}

}  // namespace termilog
