#ifndef TERMILOG_UTIL_GOVERNOR_H_
#define TERMILOG_UTIL_GOVERNOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "util/status.h"

namespace termilog {

/// Budget limits for one analysis run. Zero means "unlimited" for every
/// dimension, so a default-constructed GovernorLimits never trips.
struct GovernorLimits {
  /// Wall-clock budget in milliseconds, measured on a steady clock from the
  /// governor's construction.
  int64_t deadline_ms = 0;
  /// Abstract work ticks. One tick is one unit of the library's hot-loop
  /// currency: an FM row combination, a simplex pivot, an inference sweep,
  /// an unfold step, an SLD resolution step, a bottom-up fact derivation.
  int64_t work_budget = 0;
  /// Cap on the limb count (32-bit limbs) of the largest BigInt produced
  /// while the governor is live — a high-water proxy for coefficient /
  /// memory blowup in the exact-rational kernels.
  int64_t bigint_limb_limit = 0;

  bool Unlimited() const {
    return deadline_ms == 0 && work_budget == 0 && bigint_limb_limit == 0;
  }
};

/// Snapshot of what a governor has spent so far.
struct GovernorSpend {
  int64_t work = 0;
  int64_t elapsed_ms = 0;
  int64_t bigint_limb_high_water = 0;

  /// Renders "work=N elapsed_ms=N bigint_limbs=N".
  std::string ToString() const;
  /// Renders "work=N bigint_limbs=N" — the input-determined dimensions
  /// only. Anything that reaches report bytes (trip messages, notes) must
  /// use this form: elapsed wall time differs run to run and across --jobs
  /// levels, and report output is byte-identical by contract.
  std::string DeterministicToString() const;
};

/// A single budget object shared (by const pointer) across every subsystem
/// of one analysis: Fourier-Motzkin, simplex, constraint inference, the
/// transform pipeline, and both interpreters all charge the same counter.
/// When any budget is exceeded the governor trips *stickily*: every later
/// Charge/CheckNow returns the same structured kResourceExhausted status,
/// so a whole-program analysis winds down quickly instead of grinding
/// through the remaining SCCs at full cost.
///
/// Charging mutates internal counters through a const reference on purpose
/// — the governor is threaded as `const ResourceGovernor*` through options
/// structs, and spending budget is not a logical mutation of the analysis
/// inputs.
///
/// Thread contract: **one thread per governor**. A governor must be
/// constructed, charged, and sampled (Spend) on the same thread — its
/// counters are unsynchronized and its limb high-water is a thread-local
/// inside BigInt, so construction on thread A and use on thread B would
/// silently measure the wrong thread's arithmetic. Concurrent governors on
/// *different* threads are fine (this is how the batch engine runs one
/// governor per SCC task); two threads sharing one governor are not. Debug
/// builds enforce the contract with a thread-id check.
class ResourceGovernor {
 public:
  /// Unlimited governor; Charge never trips.
  ResourceGovernor() : ResourceGovernor(GovernorLimits()) {}
  /// Starts the deadline clock now and resets the BigInt limb high-water
  /// mark for this thread, so Spend() and the limb budget measure only
  /// arithmetic performed while this governor is live — a stale high-water
  /// from an earlier task on the same (possibly pooled) thread never leaks
  /// into this governor's accounting.
  explicit ResourceGovernor(const GovernorLimits& limits);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  const GovernorLimits& limits() const { return limits_; }

  /// Charges `amount` work ticks at `site` (a short dotted identifier like
  /// "fm.eliminate" naming the budget-check location). Returns OK while all
  /// budgets hold; returns kResourceExhausted with a structured reason —
  /// which budget, where, how much was spent — once any budget is exceeded.
  /// The wall clock and limb high-water are sampled every few ticks, not on
  /// every call, to keep the hot loops cheap.
  Status Charge(const char* site, int64_t amount = 1) const;

  /// Deadline / limb check without charging work (for call sites that want
  /// an up-front "is there any budget left" test).
  Status CheckNow(const char* site) const;

  /// True once any budget has tripped.
  bool exhausted() const { return tripped_; }
  /// The first trip status; OK while not exhausted.
  const Status& trip_status() const { return trip_; }

  GovernorSpend Spend() const;

 private:
  Status Trip(const char* site, const char* budget,
              const std::string& detail) const;
  Status CheckClockAndLimbs(const char* site) const;
  void CheckThread() const;

  GovernorLimits limits_;
  std::chrono::steady_clock::time_point start_;
#ifndef NDEBUG
  std::thread::id owner_thread_;
#endif
  mutable int64_t work_ = 0;
  mutable int64_t ticks_since_clock_check_ = 0;
  mutable bool tripped_ = false;
  mutable Status trip_;
};

}  // namespace termilog

#endif  // TERMILOG_UTIL_GOVERNOR_H_
