#include "util/json.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace termilog {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value);
    if (!status.ok()) return status;
    SkipSpace();
    if (pos_ != input_.size()) {
      return Fail("trailing characters");
    }
    return value;
  }

 private:
  Status Fail(std::string_view message) {
    return Status::InvalidArgument(
        StrCat("json: ", message, " at offset ", pos_));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < input_.size() && input_[pos_] == c;
  }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  // Containers deeper than this are rejected rather than recursed into:
  // a garbage line of ten thousand '[' characters must come back as a
  // clean kInvalidArgument, not blow the stack.
  static constexpr int kMaxDepth = 96;

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= input_.size()) return Fail("unexpected end of input");
    char c = input_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxDepth) return Fail("nesting too deep");
      ++depth_;
      Status status = c == '{' ? ParseObject(out) : ParseArray(out);
      --depth_;
      return status;
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return ParseKeyword(out);
  }

  Status ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      status = ParseValue(&value);
      if (!status.ok()) return status;
      out->fields[key] = std::move(value);
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value);
      if (!status.ok()) return status;
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) break;
      char e = input_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The repo's emitters only \u-escape control characters; encode
          // the general case as UTF-8 anyway.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string literal(input_.substr(start, pos_ - start));
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(literal.c_str(), &end);
    if (end == literal.c_str() || *end != '\0') {
      pos_ = start;
      return Fail("bad number");
    }
    if (integral) {
      errno = 0;
      char* int_end = nullptr;
      long long v = std::strtoll(literal.c_str(), &int_end, 10);
      if (errno == 0 && int_end != literal.c_str() && *int_end == '\0') {
        out->integer = v;
        out->is_integer = true;
      }
    }
    return Status::Ok();
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (input_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return Fail("expected a JSON value");
  }

  std::string_view input_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue& JsonValue::At(const std::string& key) const {
  static const JsonValue kNullValue;
  auto it = fields.find(key);
  return it == fields.end() ? kNullValue : it->second;
}

Result<JsonValue> ParseJson(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace termilog
