#ifndef TERMILOG_UTIL_STATUS_H_
#define TERMILOG_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace termilog {

/// Error codes used across the library's public API. The library does not
/// throw exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input (e.g. parse error)
  kUnsupported,      // input outside the method's preconditions
  kInternal,         // invariant violation that was recoverable
  kResourceExhausted,  // configured limit (rows, iterations) exceeded
};

/// Lightweight status object: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TERMILOG_CHECK_MSG(!status_.ok(), "Result built from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors; it is a checked error to call these on a non-OK result.
  const T& value() const& {
    TERMILOG_CHECK(value_.has_value());
    return *value_;
  }
  T& value() & {
    TERMILOG_CHECK(value_.has_value());
    return *value_;
  }
  T&& value() && {
    TERMILOG_CHECK(value_.has_value());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace termilog

#endif  // TERMILOG_UTIL_STATUS_H_
