#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace termilog {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace termilog
