#ifndef TERMILOG_UTIL_CHECK_H_
#define TERMILOG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. These fire in all build modes: the analyzer is
// a verifier, so a violated invariant must never be silently ignored.

#define TERMILOG_CHECK(cond)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "TERMILOG_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define TERMILOG_CHECK_MSG(cond, msg)                                         \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "TERMILOG_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // TERMILOG_UTIL_CHECK_H_
