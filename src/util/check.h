#ifndef TERMILOG_UTIL_CHECK_H_
#define TERMILOG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. These fire in all build modes: the analyzer is
// a verifier, so a violated invariant must never be silently ignored.

#define TERMILOG_CHECK(cond)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "TERMILOG_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define TERMILOG_CHECK_MSG(cond, msg)                                         \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "TERMILOG_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Debug-only invariant check for hot paths (limb indexing, pivot loops)
// where an always-on branch would be measurable. Active in Debug builds
// (!NDEBUG) and in sanitizer trees (TERMILOG_DEBUG_CHECKS, set by CMake for
// any TERMILOG_SANITIZE flavor); compiles to nothing elsewhere.
#if !defined(NDEBUG) || defined(TERMILOG_DEBUG_CHECKS)
#define TERMILOG_DCHECK(cond) TERMILOG_CHECK(cond)
#else
#define TERMILOG_DCHECK(cond) \
  do {                        \
  } while (0)
#endif

#endif  // TERMILOG_UTIL_CHECK_H_
