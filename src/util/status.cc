#include "util/status.h"

namespace termilog {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace termilog
