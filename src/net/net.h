#ifndef TERMILOG_NET_NET_H_
#define TERMILOG_NET_NET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/serve.h"
#include "util/status.h"

namespace termilog {
namespace net {

/// A parsed listen/connect address. Two transports (docs/serve.md):
///   unix:PATH        — a Unix-domain stream socket at PATH;
///   tcp:HOST:PORT    — IPv4. HOST is a dotted quad, "localhost", or
///                      "*" / "" for INADDR_ANY (listen only). PORT 0
///                      asks the kernel for an ephemeral port; the bound
///                      port is reported by NetServer::port().
struct NetAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp

  /// The canonical "unix:..."/"tcp:..." spelling, for logs.
  std::string ToString() const;
};

/// Parses "unix:PATH" or "tcp:HOST:PORT". Rejects empty paths, missing
/// colons, non-numeric or out-of-range ports.
Result<NetAddress> ParseNetAddress(const std::string& spec);

/// Options for the socket server. The request protocol itself — JSONL
/// manifest entries in, one report line out per request — is ServeOptions'
/// (`serve`); everything here is transport.
struct NetServerOptions {
  /// Protocol/processing options shared with the FIFO serve loop:
  /// base AnalysisOptions, waiting-room queue_limit, chunk size, and
  /// max_line_bytes (the per-connection line cap: an over-long request
  /// line is answered with the structured error shape and discarded up
  /// to its newline, bounding per-connection read memory).
  ServeOptions serve;
  /// Close a connection with no activity — no bytes read or written and
  /// no request in flight — for this long. 0 disables the timeout.
  int64_t idle_timeout_ms = 0;
  /// Backpressure watermark: once a connection's buffered responses
  /// exceed this many bytes the server stops reading from it (the peer
  /// must drain responses before sending more requests); reading resumes
  /// when the buffer falls back under the watermark. Write memory stays
  /// bounded by watermark + one chunk of responses.
  size_t write_high_watermark = 1 << 20;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 256;
  /// listen(2) backlog.
  int backlog = 64;
  /// Test hook: when true the processing thread holds every admitted
  /// request until ReleaseProcessing(), making the shed/accept split a
  /// pure function of queue_limit (the socket twin of
  /// ServeOptions::drain_input_first). Production serving leaves false.
  bool hold_processing = false;
};

/// Transport + protocol counters, a superset of ServeStats. Snapshot via
/// NetServer::stats(); exported as one JSON object on the CLI's stderr
/// when the server drains.
struct NetStats {
  int64_t accepted = 0;       // connections accepted
  int64_t closed = 0;         // connections closed (any reason)
  int64_t refused = 0;        // accepts closed at the max_connections cap
  int64_t idle_timeouts = 0;  // closes due to idle_timeout_ms
  int64_t lines = 0;          // request lines seen (blank/header excluded)
  int64_t served = 0;         // requests analyzed to completion
  int64_t shed = 0;           // requests answered with the overload shape
  int64_t errors = 0;         // structured per-request error responses
  int64_t overlong = 0;       // subset of errors: lines over the cap
  int64_t conditions = 0;     // subset of served: conditions sweeps
  int64_t bytes_in = 0;       // bytes read off sockets
  int64_t bytes_out = 0;      // bytes written to sockets

  std::string ToJson() const;
};

/// Multi-client socket front end for serve mode (docs/serve.md).
///
/// One poll(2) event-loop thread (the caller of Run) owns every
/// connection: accepts, framing, per-connection response sequencing,
/// write buffering, timeouts. One processing thread pulls admitted
/// requests from the shared bounded waiting room in chunks and answers
/// them through ProcessServeChunk — the same engine path, request kinds,
/// and response bytes as --batch and FIFO --serve. Responses cross back
/// to the event loop through a queue plus a self-pipe wakeup.
///
/// Per connection, responses are written strictly in that connection's
/// request order. Across connections no order is promised (requests from
/// different clients interleave in the waiting room), but each request's
/// response bytes are identical to what --batch would print for the same
/// entry.
///
/// Overload: admission is against the shared waiting room; when it is
/// full the request is answered immediately with the deterministic
/// RESOURCE_EXHAUSTED shed shape (ServeShedLine) — bounded memory and
/// bounded latency, never an unbounded queue.
///
/// Drain (SIGTERM/SIGINT via InstallSignalHandlers, or BeginDrain): the
/// server stops accepting and stops reading, finishes every admitted
/// request, flushes buffered responses to each peer, closes, and Run
/// returns OK — the caller then flushes the persistent store and exits 0.
///
/// All socket I/O is EINTR-safe and SIGPIPE-proof (MSG_NOSIGNAL; the CLI
/// additionally ignores SIGPIPE): a peer that disconnects mid-response
/// costs one connection, never the server.
class NetServer {
 public:
  explicit NetServer(BatchEngine& engine, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens on `address`. May be called more than once before
  /// Run (e.g. one unix: and one tcp: listener on the same server). A
  /// unix: path that exists is replaced only if it is a socket; anything
  /// else at the path is an error.
  Status Listen(const NetAddress& address);

  /// The port of the last tcp: listener (after Listen resolved port 0),
  /// or 0 when none.
  int port() const { return bound_port_; }

  /// Runs the event loop until a drain completes. Blocks the calling
  /// thread; spawns and joins the processing thread internally.
  Status Run();

  /// Requests a graceful drain. Async-signal-safe (an atomic flag and a
  /// write(2) to the wakeup pipe) and callable from any thread.
  void BeginDrain();

  /// Routes SIGTERM/SIGINT to BeginDrain() and ignores SIGPIPE. One
  /// server per process may install handlers; a second install fails.
  Status InstallSignalHandlers();

  /// Releases requests held by NetServerOptions::hold_processing.
  void ReleaseProcessing();

  NetStats stats() const;

 private:
  struct Connection;
  struct PendingRequest;
  struct RoutedResponse;

  void ProcessLoop();
  void WakeLoop();
  void DrainWakeupPipe();
  void AcceptReady(int listen_fd);
  void HandleReadable(Connection& conn);
  void ConsumeInput(Connection& conn, const char* data, size_t len);
  void HandleOverlong(Connection& conn);
  void HandleLine(Connection& conn, const std::string& line);
  void EmitToConnection(Connection& conn, int64_t seq, std::string line);
  void TryWrite(Connection& conn);
  void RouteResponses();
  void CloseFinishedConnections(int64_t now_ms);
  void CloseConnection(int64_t id);
  void FinalFlush();
  void CloseListeners();
  void Cleanup();
  int PollTimeoutMs(int64_t now_ms) const;

  BatchEngine& engine_;
  const NetServerOptions options_;
  const int queue_limit_;
  const int chunk_;
  const size_t max_line_bytes_;

  struct Listener {
    int fd = -1;
    NetAddress address;
  };
  std::vector<Listener> listeners_;
  int bound_port_ = 0;
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;

  // Event-loop-owned: only the Run() thread touches connections.
  std::map<int64_t, Connection> connections_;
  int64_t next_connection_id_ = 1;
  bool draining_ = false;

  // Shared waiting room and response queue (event loop <-> processor).
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<PendingRequest> queue_;
  std::vector<RoutedResponse> responses_;
  int64_t outstanding_ = 0;  // admitted, response not yet routed
  bool processor_exit_ = false;
  bool hold_ = false;
  std::thread processor_;

  std::atomic<bool> drain_requested_{false};
  bool signal_handlers_installed_ = false;

  mutable std::mutex stats_mu_;
  NetStats stats_;
};

/// Options for the built-in load client (termilog_cli --connect).
struct LoadClientOptions {
  /// Concurrent connections. Manifest lines are dealt round-robin:
  /// client k sends lines k, k+clients, k+2*clients, ...
  int clients = 1;
  /// Requests each client keeps in flight (windowed pipelining).
  int window = 8;
  /// When set, every response line is appended here (unordered across
  /// clients; in request order within one client's slice).
  std::vector<std::string>* responses = nullptr;
};

/// What the load run observed. Latency is send-to-response per request,
/// microseconds, measured under pipelining (so it includes server queue
/// time — the service latency a real client sees).
struct LoadClientStats {
  int64_t sent = 0;
  int64_t received = 0;
  int64_t shed = 0;    // responses matching the overload shape
  int64_t errors = 0;  // responses with "ok":false (shed included)
  double elapsed_ms = 0;
  std::vector<int64_t> latencies_us;
};

/// Replays manifest request lines against a running server: `clients`
/// connections, `window` requests pipelined per connection, each
/// connection's responses read back in order. Blank and header lines in
/// `lines` are skipped. Returns transport-level failure (cannot connect);
/// per-request errors and sheds are counted in the stats, not failures,
/// and a server that closes early (drain, kill) leaves received < sent
/// rather than failing the run.
Result<LoadClientStats> RunLoadClient(const NetAddress& address,
                                      const std::vector<std::string>& lines,
                                      const LoadClientOptions& options);

}  // namespace net
}  // namespace termilog

#endif  // TERMILOG_NET_NET_H_
