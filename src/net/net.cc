#include "net/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>
#include <utility>

#include "obs/obs.h"
#include "util/string_util.h"

namespace termilog {
namespace net {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SysError(const std::string& what) {
  return Status::Internal(StrCat("net: ", what, ": ", std::strerror(errno)));
}

/// Resolves a tcp: host. Listens accept "" / "*" as INADDR_ANY; connects
/// need a concrete peer. "localhost" is the IPv4 loopback; anything else
/// must be a dotted quad (no resolver dependency in the library).
Result<in_addr> ResolveHost(const std::string& host, bool for_listen) {
  in_addr addr;
  std::memset(&addr, 0, sizeof(addr));
  if (host.empty() || host == "*") {
    if (!for_listen) {
      return Status::InvalidArgument(
          "net: connect address needs a concrete host, not \"" + host + "\"");
    }
    addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr) != 1) {
    return Status::InvalidArgument(
        StrCat("net: host \"", host,
               "\" is not a dotted-quad IPv4 address or \"localhost\""));
  }
  return addr;
}

Result<sockaddr_un> UnixSockaddr(const std::string& path) {
  sockaddr_un sun;
  std::memset(&sun, 0, sizeof(sun));
  sun.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sun.sun_path)) {
    return Status::InvalidArgument(
        StrCat("net: unix socket path too long (", path.size(), " bytes, max ",
               sizeof(sun.sun_path) - 1, "): ", path));
  }
  std::memcpy(sun.sun_path, path.c_str(), path.size() + 1);
  return sun;
}

// The one server a process routes SIGTERM/SIGINT to. The handler itself
// only loads this pointer and calls BeginDrain (an atomic store plus a
// write(2) to the wakeup pipe) — everything async-signal-safe.
std::atomic<NetServer*> g_signal_server{nullptr};

void OnDrainSignal(int) {
  const int saved_errno = errno;
  NetServer* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->BeginDrain();
  errno = saved_errno;
}

}  // namespace

std::string NetAddress::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return StrCat("tcp:", host.empty() ? "*" : host, ":", port);
}

Result<NetAddress> ParseNetAddress(const std::string& spec) {
  NetAddress out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = NetAddress::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("net: unix: address needs a path");
    }
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = NetAddress::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "net: tcp: address needs HOST:PORT, got \"" + rest + "\"");
    }
    out.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument(
          "net: tcp: port must be a number, got \"" + port_text + "\"");
    }
    long port = std::strtol(port_text.c_str(), nullptr, 10);
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument(
          "net: tcp: port out of range: " + port_text);
    }
    out.port = static_cast<int>(port);
    return out;
  }
  return Status::InvalidArgument(
      "net: address must be unix:PATH or tcp:HOST:PORT, got \"" + spec +
      "\"");
}

std::string NetStats::ToJson() const {
  return StrCat("{\"accepted\":", accepted, ",\"closed\":", closed,
                ",\"refused\":", refused, ",\"idle_timeouts\":", idle_timeouts,
                ",\"lines\":", lines, ",\"served\":", served,
                ",\"shed\":", shed, ",\"errors\":", errors,
                ",\"overlong\":", overlong, ",\"conditions\":", conditions,
                ",\"bytes_in\":", bytes_in, ",\"bytes_out\":", bytes_out, "}");
}

// --- NetServer ----------------------------------------------------------

struct NetServer::Connection {
  int fd = -1;
  int64_t id = 0;
  std::string read_buffer;   // partial line, capped at max_line_bytes
  std::string write_buffer;  // in-order responses awaiting the peer
  // Per-connection response sequencer: responses complete out of request
  // order (sheds synchronously, analyses whenever their chunk finishes),
  // but each is written only once every earlier response of this
  // connection has been.
  std::map<int64_t, std::string> pending;
  int64_t next_emit = 0;
  int64_t next_seq = 0;
  size_t line_number = 0;  // 1-based physical input line, for error names
  int64_t inflight = 0;    // admitted requests awaiting their response
  int64_t last_activity_ms = 0;
  bool discarding = false;  // dropping the rest of an over-long line
  bool peer_eof = false;
  bool paused = false;  // backpressure: write buffer over the watermark
  bool dead = false;    // socket error; close on the next sweep
};

struct NetServer::PendingRequest {
  int64_t conn_id = 0;
  int64_t conn_seq = 0;
  gen::ManifestEntry entry;
};

struct NetServer::RoutedResponse {
  int64_t conn_id = 0;
  int64_t conn_seq = 0;
  std::string line;
};

NetServer::NetServer(BatchEngine& engine, NetServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      queue_limit_(options_.serve.queue_limit < 1 ? 1
                                                  : options_.serve.queue_limit),
      chunk_(options_.serve.chunk < 1 ? 1 : options_.serve.chunk),
      max_line_bytes_(options_.serve.max_line_bytes < 1
                          ? 1
                          : options_.serve.max_line_bytes) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) == 0) {
    wakeup_read_ = fds[0];
    wakeup_write_ = fds[1];
  }
}

NetServer::~NetServer() {
  if (processor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      processor_exit_ = true;
    }
    work_cv_.notify_all();
    processor_.join();
  }
  Cleanup();
  if (wakeup_read_ >= 0) ::close(wakeup_read_);
  if (wakeup_write_ >= 0) ::close(wakeup_write_);
  if (signal_handlers_installed_) {
    NetServer* expected = this;
    g_signal_server.compare_exchange_strong(expected, nullptr);
  }
}

Status NetServer::Listen(const NetAddress& address) {
  if (address.kind == NetAddress::Kind::kUnix) {
    Result<sockaddr_un> sun = UnixSockaddr(address.path);
    if (!sun.ok()) return sun.status();
    // Replace only a stale socket; a regular file (or anything else) at
    // the path is someone's data, not ours to clobber.
    struct stat st;
    if (::lstat(address.path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode)) {
        return Status::InvalidArgument(
            "net: refusing to replace non-socket at " + address.path);
      }
      ::unlink(address.path.c_str());
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return SysError("socket(AF_UNIX)");
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&*sun), sizeof(*sun)) !=
        0) {
      Status error = SysError("bind " + address.ToString());
      ::close(fd);
      return error;
    }
    if (::listen(fd, options_.backlog) != 0) {
      Status error = SysError("listen " + address.ToString());
      ::close(fd);
      return error;
    }
    listeners_.push_back(Listener{fd, address});
    return Status::Ok();
  }

  Result<in_addr> host = ResolveHost(address.host, /*for_listen=*/true);
  if (!host.ok()) return host.status();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return SysError("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin;
  std::memset(&sin, 0, sizeof(sin));
  sin.sin_family = AF_INET;
  sin.sin_addr = *host;
  sin.sin_port = htons(static_cast<uint16_t>(address.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof(sin)) != 0) {
    Status error = SysError("bind " + address.ToString());
    ::close(fd);
    return error;
  }
  if (::listen(fd, options_.backlog) != 0) {
    Status error = SysError("listen " + address.ToString());
    ::close(fd);
    return error;
  }
  NetAddress bound = address;
  if (address.port == 0) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      bound.port = ntohs(actual.sin_port);
    }
  }
  bound_port_ = bound.port;
  listeners_.push_back(Listener{fd, bound});
  return Status::Ok();
}

void NetServer::BeginDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  WakeLoop();
}

Status NetServer::InstallSignalHandlers() {
  NetServer* expected = nullptr;
  if (!g_signal_server.compare_exchange_strong(expected, this)) {
    return Status::Internal(
        "net: signal handlers already route to another server");
  }
  signal_handlers_installed_ = true;
  // A peer that disconnects mid-response turns writes into EPIPE errors
  // (handled per connection), never a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnDrainSignal;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGTERM, &sa, nullptr) != 0 ||
      ::sigaction(SIGINT, &sa, nullptr) != 0) {
    return SysError("sigaction");
  }
  return Status::Ok();
}

void NetServer::ReleaseProcessing() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    hold_ = false;
  }
  work_cv_.notify_all();
}

NetStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void NetServer::WakeLoop() {
  // Async-signal-safe (BeginDrain runs under SIGTERM). A full pipe means
  // a wakeup is already pending, which is all we need.
  if (wakeup_write_ < 0) return;
  const char byte = 'w';
  while (true) {
    const ssize_t n = ::write(wakeup_write_, &byte, 1);
    if (n >= 0 || errno != EINTR) break;
  }
}

void NetServer::DrainWakeupPipe() {
  char buffer[256];
  while (true) {
    const ssize_t n = ::read(wakeup_read_, buffer, sizeof(buffer));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN (empty) or EOF
  }
}

void NetServer::ProcessLoop() {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return processor_exit_ || (!hold_ && !queue_.empty()); });
      if (queue_.empty() || hold_) {
        if (processor_exit_) break;
        continue;
      }
      while (!queue_.empty() && batch.size() < static_cast<size_t>(chunk_)) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Seats freed: arrivals during this chunk's analysis may be admitted.
    std::vector<ServeItem> items;
    items.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      items.push_back(ServeItem{static_cast<int64_t>(i),
                                std::move(batch[i].entry)});
    }
    const ServeChunkStats chunk_stats = ProcessServeChunk(
        engine_, std::move(items), options_.serve.base,
        [&](int64_t seq, std::string line) {
          const PendingRequest& request = batch[static_cast<size_t>(seq)];
          std::lock_guard<std::mutex> lock(mu_);
          responses_.push_back(RoutedResponse{request.conn_id,
                                              request.conn_seq,
                                              std::move(line)});
        });
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.served += chunk_stats.served;
      stats_.errors += chunk_stats.errors;
      stats_.conditions += chunk_stats.conditions;
    }
    TERMILOG_COUNTER("net.req.served", chunk_stats.served);
    if (chunk_stats.errors > 0) {
      TERMILOG_COUNTER("net.req.errors", chunk_stats.errors);
    }
    WakeLoop();
  }
}

Status NetServer::Run() {
  if (listeners_.empty()) {
    return Status::Internal("net: Run() before Listen()");
  }
  if (wakeup_read_ < 0 || wakeup_write_ < 0) {
    return Status::Internal("net: wakeup pipe unavailable");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    hold_ = options_.hold_processing;
    processor_exit_ = false;
  }
  processor_ = std::thread(&NetServer::ProcessLoop, this);

  std::vector<pollfd> fds;
  std::vector<int64_t> fd_conn;
  Status result = Status::Ok();
  while (true) {
    if (!draining_ && drain_requested_.load(std::memory_order_relaxed)) {
      // Drain: stop accepting (listeners close now), stop reading
      // (connections lose POLLIN below), finish what was admitted.
      draining_ = true;
      CloseListeners();
    }
    if (draining_) {
      bool done;
      {
        std::lock_guard<std::mutex> lock(mu_);
        done = outstanding_ == 0;
      }
      if (done) break;  // every admitted request answered and routed
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wakeup_read_, POLLIN, 0});
    fd_conn.push_back(0);
    size_t listener_fds = 0;
    if (!draining_) {
      for (const Listener& listener : listeners_) {
        fds.push_back(pollfd{listener.fd, POLLIN, 0});
        fd_conn.push_back(0);
        ++listener_fds;
      }
    }
    for (auto& [id, conn] : connections_) {
      short events = 0;
      if (!draining_ && !conn.paused && !conn.peer_eof && !conn.dead) {
        events |= POLLIN;
      }
      if (!conn.write_buffer.empty() && !conn.dead) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                         PollTimeoutMs(NowMs()));
    if (n < 0) {
      if (errno == EINTR) continue;
      result = SysError("poll");
      break;
    }
    const int64_t now_ms = NowMs();
    if (fds[0].revents & POLLIN) DrainWakeupPipe();
    RouteResponses();
    for (size_t i = 0; i < listener_fds; ++i) {
      if (fds[1 + i].revents & POLLIN) AcceptReady(fds[1 + i].fd);
    }
    for (size_t i = 1 + listener_fds; i < fds.size(); ++i) {
      auto it = connections_.find(fd_conn[i]);
      if (it == connections_.end()) continue;
      Connection& conn = it->second;
      if (fds[i].revents & POLLIN) HandleReadable(conn);
      if (fds[i].revents & POLLOUT) TryWrite(conn);
      if (fds[i].revents & (POLLERR | POLLNVAL)) conn.dead = true;
      if ((fds[i].revents & POLLHUP) && !(fds[i].revents & POLLIN)) {
        conn.peer_eof = true;
      }
    }
    CloseFinishedConnections(now_ms);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    processor_exit_ = true;
  }
  work_cv_.notify_all();
  processor_.join();
  RouteResponses();
  if (result.ok()) FinalFlush();
  Cleanup();
  return result;
}

int NetServer::PollTimeoutMs(int64_t now_ms) const {
  if (options_.idle_timeout_ms <= 0 || connections_.empty() || draining_) {
    return -1;  // wakeup pipe interrupts any wait
  }
  int64_t next = std::numeric_limits<int64_t>::max();
  for (const auto& [id, conn] : connections_) {
    if (conn.inflight > 0) continue;  // not idle-closable while waiting
    next = std::min(next,
                    conn.last_activity_ms + options_.idle_timeout_ms - now_ms);
  }
  if (next == std::numeric_limits<int64_t>::max()) return -1;
  return static_cast<int>(std::clamp<int64_t>(next, 0, 1000));
}

void NetServer::AcceptReady(int listen_fd) {
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient per-connection error (ECONNABORTED)
    }
    if (draining_ ||
        connections_.size() >=
            static_cast<size_t>(std::max(1, options_.max_connections))) {
      ::close(fd);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.refused;
      }
      TERMILOG_COUNTER("net.conn.refused", 1);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.id = next_connection_id_++;
    conn.last_activity_ms = NowMs();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accepted;
    }
    TERMILOG_COUNTER("net.conn.accepted", 1);
    connections_.emplace(conn.id, std::move(conn));
  }
}

void NetServer::HandleReadable(Connection& conn) {
  char buffer[65536];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.dead = true;
      break;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_in += n;
    }
    TERMILOG_COUNTER("net.bytes.in", n);
    conn.last_activity_ms = NowMs();
    ConsumeInput(conn, buffer, static_cast<size_t>(n));
    // Backpressure can engage mid-read (a burst of sheds filled the write
    // buffer): stop pulling bytes; poll resumes reading after the peer
    // drains.
    if (conn.paused || conn.dead) break;
  }
}

void NetServer::ConsumeInput(Connection& conn, const char* data, size_t len) {
  size_t i = 0;
  while (i < len && !conn.dead) {
    const char* newline =
        static_cast<const char*>(std::memchr(data + i, '\n', len - i));
    const size_t end = newline ? static_cast<size_t>(newline - data) : len;
    if (conn.discarding) {
      // Dropping the remainder of an already-answered over-long line.
      if (newline) conn.discarding = false;
      i = newline ? end + 1 : len;
      continue;
    }
    const size_t take = end - i;
    if (conn.read_buffer.size() + take > max_line_bytes_) {
      ++conn.line_number;
      conn.read_buffer.clear();
      conn.discarding = newline == nullptr;
      HandleOverlong(conn);
      i = newline ? end + 1 : len;
      continue;
    }
    conn.read_buffer.append(data + i, take);
    i = newline ? end + 1 : len;
    if (newline) {
      ++conn.line_number;
      std::string line;
      line.swap(conn.read_buffer);
      HandleLine(conn, line);
    }
  }
}

void NetServer::HandleOverlong(Connection& conn) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.lines;
    ++stats_.errors;
    ++stats_.overlong;
  }
  TERMILOG_COUNTER("net.line.overlong", 1);
  TERMILOG_COUNTER("net.req.errors", 1);
  const int64_t seq = conn.next_seq++;
  EmitToConnection(
      conn, seq,
      ServeErrorLine(StrCat("manifest:", conn.line_number),
                     OverlongLineError(conn.line_number, max_line_bytes_)));
}

void NetServer::HandleLine(Connection& conn, const std::string& line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped.empty()) return;
  gen::ManifestEntry entry = gen::ParseManifestLine(stripped, conn.line_number);
  if (entry.header) return;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.lines;
  }
  TERMILOG_COUNTER("net.req.lines", 1);
  const int64_t seq = conn.next_seq++;
  if (!entry.error.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.errors;
    }
    TERMILOG_COUNTER("net.req.errors", 1);
    EmitToConnection(conn, seq, ServeErrorLine(entry.name, entry.error));
    return;
  }
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() < static_cast<size_t>(queue_limit_)) {
      queue_.push_back(PendingRequest{conn.id, seq, std::move(entry)});
      ++outstanding_;
      admitted = true;
    }
  }
  if (admitted) {
    ++conn.inflight;
    work_cv_.notify_one();
  } else {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
    }
    TERMILOG_COUNTER("net.req.shed", 1);
    EmitToConnection(conn, seq, ServeShedLine(entry.name, queue_limit_));
  }
}

void NetServer::EmitToConnection(Connection& conn, int64_t seq,
                                 std::string line) {
  conn.pending.emplace(seq, std::move(line));
  while (true) {
    auto it = conn.pending.find(conn.next_emit);
    if (it == conn.pending.end()) break;
    conn.write_buffer.append(it->second);
    conn.write_buffer.push_back('\n');
    conn.pending.erase(it);
    ++conn.next_emit;
  }
  TryWrite(conn);
  if (conn.write_buffer.size() > options_.write_high_watermark) {
    conn.paused = true;
  }
}

void NetServer::TryWrite(Connection& conn) {
  while (!conn.write_buffer.empty() && !conn.dead) {
    const ssize_t n = ::send(conn.fd, conn.write_buffer.data(),
                             conn.write_buffer.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.dead = true;  // EPIPE/ECONNRESET: costs this connection only
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_out += n;
    }
    TERMILOG_COUNTER("net.bytes.out", n);
    conn.write_buffer.erase(0, static_cast<size_t>(n));
    conn.last_activity_ms = NowMs();
  }
  if (conn.paused &&
      conn.write_buffer.size() <= options_.write_high_watermark) {
    conn.paused = false;
  }
}

void NetServer::RouteResponses() {
  std::vector<RoutedResponse> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(responses_);
    outstanding_ -= static_cast<int64_t>(batch.size());
  }
  for (RoutedResponse& response : batch) {
    auto it = connections_.find(response.conn_id);
    if (it == connections_.end()) continue;  // peer already gone
    Connection& conn = it->second;
    --conn.inflight;
    EmitToConnection(conn, response.conn_seq, std::move(response.line));
  }
}

void NetServer::CloseFinishedConnections(int64_t now_ms) {
  std::vector<int64_t> to_close;
  for (auto& [id, conn] : connections_) {
    const bool flushed = conn.inflight == 0 && conn.pending.empty() &&
                         conn.write_buffer.empty();
    if (conn.dead) {
      to_close.push_back(id);
      continue;
    }
    if (conn.peer_eof && flushed) {
      to_close.push_back(id);
      continue;
    }
    if (draining_) {
      if (flushed) to_close.push_back(id);
      continue;
    }
    if (options_.idle_timeout_ms > 0 && conn.inflight == 0 &&
        now_ms - conn.last_activity_ms >= options_.idle_timeout_ms) {
      // Covers both silent peers and peers that stopped draining
      // responses (write progress also counts as activity).
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.idle_timeouts;
      }
      TERMILOG_COUNTER("net.conn.idle_timeout", 1);
      to_close.push_back(id);
    }
  }
  for (const int64_t id : to_close) CloseConnection(id);
}

void NetServer::CloseConnection(int64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::close(it->second.fd);
  connections_.erase(it);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.closed;
  }
  TERMILOG_COUNTER("net.conn.closed", 1);
}

void NetServer::FinalFlush() {
  // Drain epilogue: every response has been routed into a write buffer;
  // push the buffered bytes to each peer, bounded so one stuck peer
  // cannot hold the exit hostage.
  const int64_t deadline_ms = NowMs() + 5000;
  while (true) {
    std::vector<pollfd> fds;
    std::vector<int64_t> ids;
    for (auto& [id, conn] : connections_) {
      if (conn.dead || conn.write_buffer.empty()) continue;
      fds.push_back(pollfd{conn.fd, POLLOUT, 0});
      ids.push_back(id);
    }
    if (fds.empty()) return;
    const int64_t left = deadline_ms - NowMs();
    if (left <= 0) return;
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                         static_cast<int>(std::min<int64_t>(left, 200)));
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      auto it = connections_.find(ids[i]);
      if (it == connections_.end()) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        it->second.dead = true;
        continue;
      }
      if (fds[i].revents & POLLOUT) TryWrite(it->second);
    }
  }
}

void NetServer::CloseListeners() {
  for (Listener& listener : listeners_) {
    if (listener.fd >= 0) {
      ::close(listener.fd);
      listener.fd = -1;
    }
    if (listener.address.kind == NetAddress::Kind::kUnix) {
      ::unlink(listener.address.path.c_str());
    }
  }
}

void NetServer::Cleanup() {
  std::vector<int64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (const int64_t id : ids) CloseConnection(id);
  CloseListeners();
}

// --- Load client --------------------------------------------------------

namespace {

Result<int> ConnectTo(const NetAddress& address) {
  int fd = -1;
  if (address.kind == NetAddress::Kind::kUnix) {
    Result<sockaddr_un> sun = UnixSockaddr(address.path);
    if (!sun.ok()) return sun.status();
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return SysError("socket(AF_UNIX)");
    while (::connect(fd, reinterpret_cast<const sockaddr*>(&*sun),
                     sizeof(*sun)) != 0) {
      if (errno == EINTR) continue;
      if (errno == EISCONN) break;
      Status error = SysError("connect " + address.ToString());
      ::close(fd);
      return error;
    }
    return fd;
  }
  Result<in_addr> host = ResolveHost(address.host, /*for_listen=*/false);
  if (!host.ok()) return host.status();
  fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return SysError("socket(AF_INET)");
  sockaddr_in sin;
  std::memset(&sin, 0, sizeof(sin));
  sin.sin_family = AF_INET;
  sin.sin_addr = *host;
  sin.sin_port = htons(static_cast<uint16_t>(address.port));
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&sin),
                   sizeof(sin)) != 0) {
    if (errno == EINTR) continue;
    if (errno == EISCONN) break;
    Status error = SysError("connect " + address.ToString());
    ::close(fd);
    return error;
  }
  return fd;
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Blocking buffered line reader over one socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // 1: a line (without its newline), 0: clean EOF, -1: socket error.
  int ReadLine(std::string* line) {
    line->clear();
    while (true) {
      const size_t newline = buffer_.find('\n', pos_);
      if (newline != std::string::npos) {
        line->assign(buffer_, pos_, newline - pos_);
        pos_ = newline + 1;
        return 1;
      }
      buffer_.erase(0, pos_);
      pos_ = 0;
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      if (n == 0) return 0;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace

Result<LoadClientStats> RunLoadClient(const NetAddress& address,
                                      const std::vector<std::string>& lines,
                                      const LoadClientOptions& options) {
  // Request lines only: blanks and {"gen_manifest":...} headers carry no
  // request, so they are not sent (the server would skip them anyway and
  // the response count would no longer match the send count).
  std::vector<const std::string*> requests;
  requests.reserve(lines.size());
  for (const std::string& line : lines) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    const gen::ManifestEntry entry = gen::ParseManifestLine(stripped, 1);
    if (entry.header) continue;
    requests.push_back(&line);
  }

  const int clients = std::max(1, options.clients);
  const size_t window = static_cast<size_t>(std::max(1, options.window));
  struct PerClient {
    LoadClientStats stats;
    std::vector<std::string> responses;
    Status error = Status::Ok();
  };
  std::vector<PerClient> per(static_cast<size_t>(clients));

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int k = 0; k < clients; ++k) {
    threads.emplace_back([&, k] {
      PerClient& me = per[static_cast<size_t>(k)];
      // Round-robin deal: client k replays lines k, k+clients, ...
      std::vector<const std::string*> slice;
      for (size_t i = static_cast<size_t>(k); i < requests.size();
           i += static_cast<size_t>(clients)) {
        slice.push_back(requests[i]);
      }
      if (slice.empty()) return;
      Result<int> connected = ConnectTo(address);
      if (!connected.ok()) {
        me.error = connected.status();
        return;
      }
      const int fd = *connected;
      std::vector<std::chrono::steady_clock::time_point> send_time(
          slice.size());
      LineReader reader(fd);
      std::string response;
      size_t sent = 0;
      size_t received = 0;
      bool half_closed = false;
      bool dead = false;
      while (received < slice.size() && !dead) {
        while (sent < slice.size() && sent - received < window) {
          std::string payload = *slice[sent];
          payload.push_back('\n');
          send_time[sent] = std::chrono::steady_clock::now();
          if (!SendAll(fd, payload.data(), payload.size())) {
            dead = true;
            break;
          }
          ++me.stats.sent;
          ++sent;
        }
        if (dead) break;
        if (sent == slice.size() && !half_closed) {
          ::shutdown(fd, SHUT_WR);
          half_closed = true;
        }
        // Responses arrive in this connection's request order, so
        // response `received` pairs with request `received`.
        if (reader.ReadLine(&response) <= 0) break;
        const auto now = std::chrono::steady_clock::now();
        me.stats.latencies_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - send_time[received])
                .count());
        ++me.stats.received;
        ++received;
        if (response.find("\"ok\":false") != std::string::npos) {
          ++me.stats.errors;
        }
        if (response.find("server overloaded: waiting room full") !=
            std::string::npos) {
          ++me.stats.shed;
        }
        if (options.responses != nullptr) {
          me.responses.push_back(response);
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  LoadClientStats total;
  total.elapsed_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          elapsed)
          .count();
  for (PerClient& client : per) {
    if (!client.error.ok()) return client.error;
    total.sent += client.stats.sent;
    total.received += client.stats.received;
    total.shed += client.stats.shed;
    total.errors += client.stats.errors;
    total.latencies_us.insert(total.latencies_us.end(),
                              client.stats.latencies_us.begin(),
                              client.stats.latencies_us.end());
    if (options.responses != nullptr) {
      options.responses->insert(options.responses->end(),
                                std::make_move_iterator(
                                    client.responses.begin()),
                                std::make_move_iterator(client.responses.end()));
    }
  }
  return total;
}

}  // namespace net
}  // namespace termilog
