#include "interp/bottom_up.h"

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "term/size.h"
#include "term/unify.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Canonical structural key for ground-term tuples (fast dedup).
void AppendKey(const TermPtr& term, std::string* out) {
  if (term->IsVariable()) {
    out->append(StrCat("v", term->var_id(), ";"));
    return;
  }
  out->append(StrCat("f", term->functor(), "(", term->arity(), ";"));
  for (const TermPtr& arg : term->args()) AppendKey(arg, out);
}

std::string TupleKey(const std::vector<TermPtr>& args) {
  std::string key;
  for (const TermPtr& arg : args) AppendKey(arg, &key);
  return key;
}

struct FactStore {
  std::map<PredId, std::vector<std::vector<TermPtr>>> facts;
  // Facts derived in the previous round (semi-naive deltas); indices into
  // `facts` so tuples are stored once.
  std::map<PredId, std::pair<size_t, size_t>> delta_range;
  std::map<PredId, std::set<std::string>> keys;
  size_t total = 0;

  bool Insert(const PredId& pred, std::vector<TermPtr> args) {
    std::string key = TupleKey(args);
    if (!keys[pred].insert(std::move(key)).second) return false;
    facts[pred].push_back(std::move(args));
    ++total;
    return true;
  }
};

// Recursively joins body literals against the store, calling `emit` for
// every complete substitution. Semi-naive restriction: the literal at
// `pivot` only matches facts derived in the previous round (its delta),
// guaranteeing every derivation uses at least one new fact; the first
// round runs with pivot == npos (full naive pass to seed the store).
void Join(const Program& program, const FactStore& store, const Rule& rule,
          size_t position, size_t pivot, const Substitution& subst,
          const std::function<void(const Substitution&)>& emit) {
  if (position == rule.body.size()) {
    emit(subst);
    return;
  }
  const Literal& lit = rule.body[position];
  // Positive only; negative rules were filtered by the caller.
  auto it = store.facts.find(lit.atom.pred_id());
  if (it == store.facts.end()) return;
  size_t begin = 0, end = it->second.size();
  if (position == pivot) {
    auto range = store.delta_range.find(lit.atom.pred_id());
    if (range == store.delta_range.end()) return;  // empty delta
    begin = range->second.first;
    end = range->second.second;
  }
  for (size_t f = begin; f < end; ++f) {
    // Copy (cheap shared_ptr handles): emits may append to this very list
    // and reallocate it mid-iteration.
    std::vector<TermPtr> fact = it->second[f];
    Substitution extended = subst;
    bool ok = true;
    for (size_t i = 0; i < fact.size(); ++i) {
      if (!extended.Unify(lit.atom.args[i], fact[i],
                          /*occurs_check=*/false)) {
        ok = false;
        break;
      }
    }
    if (ok) Join(program, store, rule, position + 1, pivot, extended, emit);
  }
}

}  // namespace

Result<std::map<PredId, std::vector<std::vector<TermPtr>>>>
BottomUpEvaluator::Evaluate() const {
  FactStore store;
  bool truncated = false;
  // Semi-naive evaluation: round 0 is a full naive pass; subsequent rounds
  // require one body literal to match a fact from the previous round.
  for (int round = 0; round < options_.max_rounds; ++round) {
    size_t before = store.total;
    // Sizes of fact lists before this round (the end of each delta).
    std::map<PredId, size_t> list_sizes;
    for (const auto& [pred, tuples] : store.facts) {
      list_sizes[pred] = tuples.size();
    }
    auto emit = [this, &store, &truncated](const Rule& rule,
                                           const Substitution& subst) {
      if (truncated) return;
      std::vector<TermPtr> head;
      int64_t total_size = 0;
      for (const TermPtr& arg : rule.head.args) {
        TermPtr ground = subst.Apply(arg);
        if (!ground->IsGround()) return;  // not range-restricted here
        total_size += GroundSize(ground);
        head.push_back(std::move(ground));
      }
      if (total_size > options_.max_term_size) return;
      if (store.total >= options_.max_facts) {
        truncated = true;
        return;
      }
      if (TERMILOG_FAILPOINT_HIT("interp.bottom_up") ||
          (options_.governor != nullptr &&
           !options_.governor->Charge("interp.bottom_up").ok())) {
        truncated = true;
        return;
      }
      store.Insert(rule.head.pred_id(), std::move(head));
    };
    for (const Rule& rule : program_.rules()) {
      bool pure = true;
      for (const Literal& lit : rule.body) {
        if (!lit.positive) {
          pure = false;
          break;
        }
      }
      if (!pure) continue;
      Substitution empty;
      if (round == 0 || rule.body.empty()) {
        if (round > 0) continue;  // facts contribute once
        Join(program_, store, rule, 0, static_cast<size_t>(-1), empty,
             [&rule, &emit](const Substitution& s) { emit(rule, s); });
      } else {
        for (size_t pivot = 0; pivot < rule.body.size(); ++pivot) {
          Join(program_, store, rule, 0, pivot, empty,
               [&rule, &emit](const Substitution& s) { emit(rule, s); });
        }
      }
    }
    if (truncated) {
      return Status::ResourceExhausted("bottom-up fact budget exceeded");
    }
    if (store.total == before) break;  // fixpoint
    // The facts appended this round become the next round's deltas.
    store.delta_range.clear();
    for (const auto& [pred, tuples] : store.facts) {
      size_t start = list_sizes.count(pred) ? list_sizes[pred] : 0;
      if (start < tuples.size()) {
        store.delta_range[pred] = {start, tuples.size()};
      }
    }
  }
  return std::move(store.facts);
}

}  // namespace termilog
