#ifndef TERMILOG_INTERP_BOTTOM_UP_H_
#define TERMILOG_INTERP_BOTTOM_UP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "program/ast.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {

/// Budgets for bounded bottom-up evaluation.
struct BottomUpOptions {
  /// Only facts whose total structural size is <= this bound are kept
  /// (function symbols make the Herbrand base infinite; the bound makes
  /// the fixpoint finite).
  int64_t max_term_size = 24;
  /// Global cap on derived facts.
  size_t max_facts = 200'000;
  /// Cap on naive-evaluation rounds.
  int max_rounds = 64;
  /// Charged one work tick per emitted fact; a trip ends evaluation with
  /// kResourceExhausted (same contract as hitting max_facts).
  const ResourceGovernor* governor = nullptr;
};

/// A derived ground fact.
struct GroundFact {
  PredId pred;
  std::vector<TermPtr> args;
};

/// Bounded naive bottom-up evaluation of the positive rules of a program
/// (rules containing negative literals are skipped). Used by experiment E7
/// to empirically cross-check the [VG90] inference: every derived fact's
/// argument-size vector must lie inside the predicate's inferred
/// polyhedron.
class BottomUpEvaluator {
 public:
  explicit BottomUpEvaluator(const Program& program,
                             BottomUpOptions options = BottomUpOptions())
      : program_(program), options_(options) {}

  /// Runs to the bounded fixpoint; returns all derived facts grouped by
  /// predicate. kResourceExhausted if max_facts was hit (results partial).
  Result<std::map<PredId, std::vector<std::vector<TermPtr>>>> Evaluate() const;

 private:
  const Program& program_;
  BottomUpOptions options_;
};

}  // namespace termilog

#endif  // TERMILOG_INTERP_BOTTOM_UP_H_
