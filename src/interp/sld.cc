#include "interp/sld.h"

#include <optional>
#include <utility>

#include "program/parser.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

struct SearchState {
  const SldOptions* options;
  const Program* program;
  Atom query;          // original goal; solutions are its instances
  int64_t steps = 0;
  int deepest = 0;
  size_t solutions = 0;
  std::vector<TermPtr> kept;
  bool aborted = false;
  SldOutcome outcome = SldOutcome::kExhausted;

  // Built-in predicate symbols (-1 when not interned by the program).
  int eq, lt, gt, le, ge, ideq, idneq;
};

std::optional<int64_t> AsInteger(const Program& program, const TermPtr& term) {
  if (!term->IsConstant()) return std::nullopt;
  const std::string& name = program.symbols().Name(term->functor());
  if (name.empty()) return std::nullopt;
  size_t start = name[0] == '-' ? 1 : 0;
  if (start == name.size()) return std::nullopt;
  int64_t value = 0;
  for (size_t i = start; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    value = value * 10 + (name[i] - '0');
  }
  return start == 1 ? -value : value;
}

// Depth-first exploration. Returns normally when the subtree was fully
// explored; sets state->aborted (with an outcome) when a budget tripped.
void Explore(const std::vector<Literal>& goals, const Substitution& subst,
             int depth, int* next_var, SearchState* state) {
  if (state->aborted) return;
  if (depth > state->deepest) state->deepest = depth;
  if (depth > state->options->max_depth) {
    state->aborted = true;
    state->outcome = SldOutcome::kDepthExceeded;
    return;
  }
  if (goals.empty()) {
    ++state->solutions;
    if (state->kept.size() < 64) {
      TermPtr instance = subst.Apply(
          Term::MakeCompound(state->query.predicate, state->query.args));
      state->kept.push_back(std::move(instance));
    }
    if (state->options->max_solutions != 0 &&
        state->solutions >= state->options->max_solutions) {
      state->aborted = true;
      state->outcome = SldOutcome::kSolutionLimit;
    }
    return;
  }

  Literal goal = goals.front();
  std::vector<Literal> rest(goals.begin() + 1, goals.end());
  const Program& program = *state->program;
  int pred = goal.atom.predicate;

  // Negation as failure.
  if (!goal.positive) {
    SearchState probe = *state;
    probe.solutions = 0;
    probe.kept.clear();
    SldOptions probe_options = *state->options;
    probe_options.max_solutions = 1;
    probe.options = &probe_options;
    Literal positive = goal;
    positive.positive = true;
    Explore({positive}, subst, depth + 1, next_var, &probe);
    state->steps = probe.steps;
    if (probe.aborted && probe.outcome != SldOutcome::kSolutionLimit) {
      state->aborted = true;
      state->outcome = probe.outcome;
      return;
    }
    if (probe.solutions > 0) return;  // \+ fails: branch dies
    Explore(rest, subst, depth, next_var, state);
    return;
  }

  // Built-ins.
  if (pred == state->eq && goal.atom.args.size() == 2) {
    Substitution extended = subst;
    if (extended.Unify(goal.atom.args[0], goal.atom.args[1],
                       state->options->occurs_check)) {
      Explore(rest, extended, depth, next_var, state);
    }
    return;
  }
  if ((pred == state->ideq || pred == state->idneq) &&
      goal.atom.args.size() == 2) {
    bool equal = Term::Equal(subst.Apply(goal.atom.args[0]),
                             subst.Apply(goal.atom.args[1]));
    if (equal == (pred == state->ideq)) {
      Explore(rest, subst, depth, next_var, state);
    }
    return;
  }
  if ((pred == state->lt || pred == state->gt || pred == state->le ||
       pred == state->ge) &&
      goal.atom.args.size() == 2) {
    std::optional<int64_t> lhs =
        AsInteger(program, subst.Apply(goal.atom.args[0]));
    std::optional<int64_t> rhs =
        AsInteger(program, subst.Apply(goal.atom.args[1]));
    if (!lhs.has_value() || !rhs.has_value()) return;  // not comparable
    bool holds = pred == state->lt   ? *lhs < *rhs
                 : pred == state->gt ? *lhs > *rhs
                 : pred == state->le ? *lhs <= *rhs
                                     : *lhs >= *rhs;
    if (holds) Explore(rest, subst, depth, next_var, state);
    return;
  }

  // User-defined predicate: try every rule.
  for (int rule_index : program.RuleIndicesFor(goal.atom.pred_id())) {
    if (state->aborted) return;
    if (++state->steps > state->options->max_steps) {
      state->aborted = true;
      state->outcome = SldOutcome::kBudgetExhausted;
      return;
    }
    if (TERMILOG_FAILPOINT_HIT("sld.step") ||
        (state->options->governor != nullptr &&
         !state->options->governor->Charge("sld.step").ok())) {
      state->aborted = true;
      state->outcome = SldOutcome::kBudgetExhausted;
      return;
    }
    const Rule& rule = program.rules()[rule_index];
    int offset = *next_var;
    *next_var += rule.num_vars();
    Substitution extended = subst;
    bool unified = true;
    for (size_t i = 0; i < goal.atom.args.size(); ++i) {
      TermPtr head_arg = OffsetVariables(rule.head.args[i], offset);
      if (!extended.Unify(goal.atom.args[i], head_arg,
                          state->options->occurs_check)) {
        unified = false;
        break;
      }
    }
    if (!unified) {
      *next_var = offset;  // reclaim the renamed variable block
      continue;
    }
    std::vector<Literal> next_goals;
    next_goals.reserve(rule.body.size() + rest.size());
    for (const Literal& lit : rule.body) {
      Literal shifted;
      shifted.positive = lit.positive;
      shifted.atom.predicate = lit.atom.predicate;
      for (const TermPtr& arg : lit.atom.args) {
        shifted.atom.args.push_back(OffsetVariables(arg, offset));
      }
      next_goals.push_back(std::move(shifted));
    }
    next_goals.insert(next_goals.end(), rest.begin(), rest.end());
    Explore(next_goals, extended, depth + 1, next_var, state);
  }
}

}  // namespace

SldResult SldInterpreter::Solve(const Atom& goal, int num_vars) const {
  SearchState state;
  state.options = &options_;
  state.program = &program_;
  state.query = goal;
  state.eq = program_.symbols().Lookup("=");
  state.lt = program_.symbols().Lookup("<");
  state.gt = program_.symbols().Lookup(">");
  state.le = program_.symbols().Lookup("=<");
  state.ge = program_.symbols().Lookup(">=");
  state.ideq = program_.symbols().Lookup("==");
  state.idneq = program_.symbols().Lookup("\\==");

  int next_var = num_vars;
  Substitution subst;
  Literal lit;
  lit.atom = goal;
  Explore({lit}, subst, 0, &next_var, &state);

  SldResult result;
  result.outcome = state.aborted ? state.outcome : SldOutcome::kExhausted;
  result.num_solutions = state.solutions;
  result.steps = state.steps;
  result.deepest = state.deepest;
  result.solutions = std::move(state.kept);
  return result;
}

Result<SldResult> RunQuery(Program& program, std::string_view goal_text,
                           const SldOptions& options) {
  std::vector<std::string> var_names;
  Result<TermPtr> parsed =
      ParseTerm(goal_text, &program.symbols(), &var_names);
  if (!parsed.ok()) return parsed.status();
  const TermPtr& term = *parsed;
  if (!term->IsCompound()) {
    return Status::InvalidArgument("query must be a compound goal");
  }
  Atom goal;
  goal.predicate = term->functor();
  goal.args = term->args();
  SldInterpreter interp(program, options);
  return interp.Solve(goal, static_cast<int>(var_names.size()));
}

}  // namespace termilog
