#ifndef TERMILOG_INTERP_SLD_H_
#define TERMILOG_INTERP_SLD_H_

#include <cstdint>
#include <vector>

#include "program/ast.h"
#include "term/unify.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {

/// Budgets for the top-down interpreter.
struct SldOptions {
  /// Total resolution steps (rule-try attempts) across the whole search.
  int64_t max_steps = 2'000'000;
  /// Maximum resolution depth (also bounds the C++ recursion depth of the
  /// interpreter, so keep it modest).
  int max_depth = 5'000;
  /// Stop after this many solutions (0 = exhaust the whole search tree,
  /// which is what termination validation wants).
  size_t max_solutions = 0;
  bool occurs_check = false;
  /// Charged one work tick per resolution step; a trip ends the search
  /// with SldOutcome::kBudgetExhausted.
  const ResourceGovernor* governor = nullptr;
};

/// How the search ended.
enum class SldOutcome {
  kExhausted,       // the whole SLD tree was explored: the query TERMINATED
  kSolutionLimit,   // stopped early at max_solutions (no termination claim)
  kBudgetExhausted, // step budget hit: evidence of very deep/infinite search
  kDepthExceeded,   // depth bound hit: evidence of runaway recursion
};

struct SldResult {
  SldOutcome outcome = SldOutcome::kExhausted;
  size_t num_solutions = 0;
  int64_t steps = 0;
  int deepest = 0;
  /// Ground instances of the query for each solution (capped at 64 kept).
  std::vector<TermPtr> solutions;
};

/// A straightforward SLD-resolution (Prolog-strategy: top-down, depth-
/// first, left-to-right) interpreter. It exists to empirically validate
/// analyzer verdicts (experiment E8): a PROVED program must exhaust its
/// search tree on every well-moded query within budget.
///
/// Built-ins: `=` (unification), `<`, `>`, `=<`, `>=`, `==`, `\==` over
/// integer constants, and negation as failure for negative literals.
/// Unknown predicates simply fail (empty EDB).
class SldInterpreter {
 public:
  explicit SldInterpreter(const Program& program,
                          SldOptions options = SldOptions())
      : program_(program), options_(options) {}

  /// Runs the goal (an atom over variables numbered from 0; `num_vars` is
  /// the number of distinct variables in it).
  SldResult Solve(const Atom& goal, int num_vars) const;

 private:
  const Program& program_;
  SldOptions options_;
};

/// Convenience: parses a goal like "append([a,b],[c],X)" against the
/// program's symbol table (non-const: new constants may be interned) and
/// runs it.
Result<SldResult> RunQuery(Program& program, std::string_view goal_text,
                           const SldOptions& options = SldOptions());

}  // namespace termilog

#endif  // TERMILOG_INTERP_SLD_H_
