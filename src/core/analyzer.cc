#include "core/analyzer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "core/delta.h"
#include "core/dual_builder.h"
#include "engine/engine.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "lp/simplex.h"
#include "obs/obs.h"
#include "program/modes.h"
#include "transform/adornment.h"
#include "transform/pipeline.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {

const char* SccStatusName(SccStatus status) {
  switch (status) {
    case SccStatus::kNonRecursive:
      return "NON_RECURSIVE";
    case SccStatus::kProved:
      return "PROVED";
    case SccStatus::kNotProved:
      return "NOT_PROVED";
    case SccStatus::kNonPositiveCycle:
      return "NON_POSITIVE_CYCLE";
    case SccStatus::kUnsupported:
      return "UNSUPPORTED";
    case SccStatus::kResourceLimit:
      return "RESOURCE_LIMIT";
  }
  return "UNKNOWN";
}

Result<std::pair<PredId, Adornment>> ParseQuerySpec(const Program& program,
                                                    std::string_view spec) {
  spec = StripWhitespace(spec);
  size_t open = spec.find('(');
  if (open == std::string_view::npos || spec.back() != ')') {
    return Status::InvalidArgument(
        StrCat("bad query spec '", spec, "', want pred(b,f,...)"));
  }
  std::string name(StripWhitespace(spec.substr(0, open)));
  Adornment adornment;
  std::string_view args = spec.substr(open + 1, spec.size() - open - 2);
  std::vector<std::string> pieces =
      StripWhitespace(args).empty() ? std::vector<std::string>{}
                                    : Split(args, ',');
  for (const std::string& piece : pieces) {
    std::string_view mode = StripWhitespace(piece);
    if (mode == "b" || mode == "bound") {
      adornment.push_back(Mode::kBound);
    } else if (mode == "f" || mode == "free") {
      adornment.push_back(Mode::kFree);
    } else {
      return Status::InvalidArgument(StrCat("bad mode '", mode, "'"));
    }
  }
  int symbol = program.symbols().Lookup(name);
  PredId pred{symbol, static_cast<int>(adornment.size())};
  if (symbol < 0 || !program.IsDefined(pred)) {
    return Status::InvalidArgument(
        StrCat("query predicate ", name, "/", adornment.size(),
               " is not defined in the program"));
  }
  return std::make_pair(pred, adornment);
}

namespace {

// Builds the dependency digraph over the given predicate universe.
Digraph BuildDependencyGraph(const Program& program,
                             const std::vector<PredId>& preds,
                             const std::map<PredId, int>& index) {
  Digraph graph(static_cast<int>(preds.size()));
  for (const Rule& rule : program.rules()) {
    auto from = index.find(rule.head.pred_id());
    if (from == index.end()) continue;
    for (const Literal& lit : rule.body) {
      auto to = index.find(lit.atom.pred_id());
      if (to != index.end()) graph.AddEdge(from->second, to->second);
    }
  }
  return graph;
}

}  // namespace

SccReport TerminationAnalyzer::AnalyzeScc(
    const Program& program, const std::vector<PredId>& scc_preds,
    const std::map<PredId, Adornment>& modes, const ArgSizeDb& db,
    bool has_conflict, const ResourceGovernor* governor) const {
  TERMILOG_TRACE_SPAN(scc_span, "scc.analyze", "analyzer", 0);
  if (scc_span.active() && !scc_preds.empty()) {
    scc_span.AddArg("scc", program.PredName(scc_preds.front()));
  }
  SccReport report;
  report.preds = scc_preds;

  if (TERMILOG_FAILPOINT_HIT("analyzer.scc")) {
    report.status = SccStatus::kResourceLimit;
    report.notes.push_back(FailpointRegistry::TripMessage("analyzer.scc"));
    return report;
  }
  // A governor that tripped on an earlier SCC answers this one immediately:
  // the whole analysis is winding down, but each remaining SCC still gets a
  // well-formed RESOURCE_LIMIT verdict instead of an error.
  if (governor != nullptr && !governor->CheckNow("analyzer.scc").ok()) {
    report.status = SccStatus::kResourceLimit;
    report.notes.push_back(governor->trip_status().ToString());
    return report;
  }

  FmOptions fm = options_.fm;
  fm.governor = governor;

  if (has_conflict) {
    report.status = SccStatus::kUnsupported;
    report.notes.push_back(
        "adornment conflict: the method requires one bound-free pattern per "
        "predicate (see Appendix A transformations)");
    return report;
  }

  std::set<PredId> scc_set(scc_preds.begin(), scc_preds.end());
  RuleSystemBuilder builder(program, modes, db);
  Result<std::vector<RuleSubgoalSystem>> systems = [&] {
    TERMILOG_TRACE("scc.rule_system", "analyzer");
    return builder.BuildForScc(scc_set);
  }();
  if (!systems.ok()) {
    report.status = systems.status().code() == StatusCode::kUnsupported
                        ? SccStatus::kUnsupported
                        : SccStatus::kResourceLimit;
    report.notes.push_back(systems.status().ToString());
    return report;
  }
  if (systems->empty()) {
    report.status = SccStatus::kNonRecursive;
    return report;
  }

  // Theta space over the bound arguments of the SCC's predicates.
  std::map<PredId, int> bound_counts;
  for (const PredId& pred : scc_preds) {
    int count = 0;
    for (Mode m : modes.at(pred)) {
      if (m == Mode::kBound) ++count;
    }
    bound_counts[pred] = count;
  }
  ThetaSpace space(bound_counts);

  std::vector<DerivedConstraints> derived;
  {
    TERMILOG_TRACE("scc.derive", "analyzer");
    for (const RuleSubgoalSystem& sys : *systems) {
      Result<DerivedConstraints> d = BuildDerivedConstraints(sys, space, fm);
      if (!d.ok()) {
        report.status = SccStatus::kResourceLimit;
        report.notes.push_back(d.status().ToString());
        return report;
      }
      derived.push_back(std::move(d).value());
    }
  }

  const int T = space.total();
  std::function<std::string(int)> namer = [&](int column) {
    return space.ColumnName(program, column);
  };

  // ---- Integral path (Section 6.1): deltas in {0, 1}. ----
  DeltaAssignment assignment = AssignDeltas(derived, scc_preds);
  if (!assignment.non_positive_cycle) {
    ConstraintSystem global(T);
    for (const DerivedConstraints& d : derived) {
      int64_t delta = assignment.values.at({d.i, d.j});
      for (const ThetaRow& row : d.rows) {
        Constraint out;
        out.rel = Relation::kGe;
        out.coeffs = row.theta_coeffs;
        out.constant = row.constant + row.delta_coeff * Rational(delta);
        global.Add(std::move(out));
      }
    }
    global.Simplify();
    report.reduced_constraints = global.ToString(&namer);
    // theta >= 0
    LpResult lp = [&] {
      TERMILOG_TRACE("scc.lp_integral", "analyzer");
      return SimplexSolver::FindFeasible(global, {}, governor);
    }();
    if (lp.status == LpStatus::kPivotLimit) {
      report.status = SccStatus::kResourceLimit;
      report.notes.push_back("feasibility LP resource-limited");
      return report;
    }
    if (lp.status == LpStatus::kOptimal) {
      for (const PredId& pred : scc_preds) {
        std::vector<Rational> theta(bound_counts.at(pred));
        for (size_t k = 0; k < theta.size(); ++k) {
          theta[k] = lp.point[space.Column(pred, static_cast<int>(k))];
        }
        report.certificate.theta.emplace(pred, std::move(theta));
      }
      for (const auto& [edge, value] : assignment.values) {
        report.certificate.delta.emplace(edge, Rational(value));
      }
      if (options_.validate_certificates) {
        Status valid = [&] {
          TERMILOG_TRACE("scc.validate", "analyzer");
          return ValidateCertificate(*systems, scc_preds, report.certificate,
                                     governor);
        }();
        if (!valid.ok()) {
          report.status = SccStatus::kResourceLimit;
          report.notes.push_back(
              StrCat("certificate validation failed: ", valid.ToString()));
          return report;
        }
        report.notes.push_back("certificate validated on the primal side");
      }
      report.status = SccStatus::kProved;
      return report;
    }
  } else {
    report.notes.push_back(StrCat(
        "zero-weight cycle through ", program.PredName(assignment.cycle_witness),
        " under forced deltas"));
  }

  // ---- Appendix C path: free deltas + positive-cycle path constraints. --
  if (options_.allow_negative_deltas) {
    const int m = static_cast<int>(scc_preds.size());
    std::map<std::pair<PredId, PredId>, int> delta_col;
    int next = T;
    std::set<std::pair<PredId, PredId>> edges;
    for (const DerivedConstraints& d : derived) edges.insert({d.i, d.j});
    for (const auto& edge : edges) delta_col[edge] = next++;
    const int sigma_base = next;
    auto sigma_col = [&](int i, int j) { return sigma_base + i * m + j; };
    const int width = sigma_base + m * m;

    ConstraintSystem system(width);
    for (const DerivedConstraints& d : derived) {
      int dcol = delta_col.at({d.i, d.j});
      for (const ThetaRow& row : d.rows) {
        Constraint out;
        out.rel = Relation::kGe;
        out.coeffs.assign(width, Rational());
        for (int t = 0; t < T; ++t) out.coeffs[t] = row.theta_coeffs[t];
        out.coeffs[dcol] = row.delta_coeff;
        out.constant = row.constant;
        system.Add(std::move(out));
      }
    }
    std::map<PredId, int> index;
    for (int i = 0; i < m; ++i) index[scc_preds[i]] = i;
    // sigma_ij <= delta_ij for real edges.
    for (const auto& [edge, dcol] : delta_col) {
      Constraint out;
      out.rel = Relation::kGe;
      out.coeffs.assign(width, Rational());
      out.coeffs[dcol] = Rational(1);
      out.coeffs[sigma_col(index.at(edge.first), index.at(edge.second))] =
          Rational(-1);
      system.Add(std::move(out));
    }
    // Triangle path constraints sigma_ij <= sigma_ik + sigma_kj.
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        for (int k = 0; k < m; ++k) {
          if (k == i || k == j) continue;
          Constraint out;
          out.rel = Relation::kGe;
          out.coeffs.assign(width, Rational());
          out.coeffs[sigma_col(i, k)] += Rational(1);
          out.coeffs[sigma_col(k, j)] += Rational(1);
          out.coeffs[sigma_col(i, j)] -= Rational(1);
          system.Add(std::move(out));
        }
      }
    }
    // Positive cycles: sigma_ii >= 1.
    for (int i = 0; i < m; ++i) {
      Constraint out;
      out.rel = Relation::kGe;
      out.coeffs.assign(width, Rational());
      out.coeffs[sigma_col(i, i)] = Rational(1);
      out.constant = Rational(-1);
      system.Add(std::move(out));
    }
    std::vector<bool> is_free(width, false);
    for (int col = T; col < width; ++col) is_free[col] = true;  // deltas, sigmas
    LpResult lp = [&] {
      TERMILOG_TRACE("scc.lp_negdelta", "analyzer");
      return SimplexSolver::FindFeasible(system, is_free, governor);
    }();
    if (lp.status == LpStatus::kPivotLimit) {
      report.status = SccStatus::kResourceLimit;
      report.notes.push_back("negative-delta feasibility LP resource-limited");
      return report;
    }
    if (lp.status == LpStatus::kOptimal) {
      for (const PredId& pred : scc_preds) {
        std::vector<Rational> theta(bound_counts.at(pred));
        for (size_t k = 0; k < theta.size(); ++k) {
          theta[k] = lp.point[space.Column(pred, static_cast<int>(k))];
        }
        report.certificate.theta.emplace(pred, std::move(theta));
      }
      for (const auto& [edge, dcol] : delta_col) {
        report.certificate.delta.emplace(edge, lp.point[dcol]);
      }
      report.used_negative_deltas = true;
      if (options_.validate_certificates) {
        Status valid = [&] {
          TERMILOG_TRACE("scc.validate", "analyzer");
          return ValidateCertificate(*systems, scc_preds, report.certificate,
                                     governor);
        }();
        if (!valid.ok()) {
          report.status = SccStatus::kResourceLimit;
          report.notes.push_back(
              StrCat("certificate validation failed: ", valid.ToString()));
          return report;
        }
        report.notes.push_back(
            "certificate (negative-delta mode) validated on the primal side");
      }
      report.status = SccStatus::kProved;
      return report;
    }
  }

  report.status = assignment.non_positive_cycle
                      ? SccStatus::kNonPositiveCycle
                      : SccStatus::kNotProved;
  return report;
}

Result<PreparedAnalysis> TerminationAnalyzer::PrepareStructure(
    const Program& program, const PredId& query, const Adornment& adornment,
    const ResourceGovernor* gov) const {
  TERMILOG_TRACE("prep", "analyzer");
  PreparedAnalysis prepared;
  TerminationReport& report = prepared.report;
  report.analyzed_program = program;
  PredId entry = query;

  auto note_trip = [&report](const std::string& message) {
    report.resource_limited = true;
    if (report.first_resource_trip.empty()) {
      report.first_resource_trip = message;
    }
  };

  if (options_.apply_transformations) {
    TransformOptions transform_options;
    transform_options.phases = options_.transform_phases;
    transform_options.governor = gov;
    Result<Program> transformed = RunTransformPipeline(
        program, {query}, transform_options, &report.notes);
    if (transformed.ok()) {
      report.analyzed_program = std::move(transformed).value();
    } else if (transformed.status().code() ==
               StatusCode::kResourceExhausted) {
      // Rung 2 of the degradation ladder: a transform blowup is not fatal —
      // the untransformed program is analyzable, just possibly with weaker
      // verdicts.
      std::string message =
          StrCat("transformations abandoned (", transformed.status().message(),
                 "); analyzing the untransformed program");
      report.notes.push_back(message);
      note_trip(message);
      report.analyzed_program = program;
    } else {
      return transformed.status();
    }
  }

  // Modes; adornment conflicts are repaired by cloning (Section 3's
  // preprocessing assumption, made real). Cloning can expose conflicts in
  // contexts the first dataflow never explored, hence the short loop.
  if (static_cast<int>(adornment.size()) != entry.arity) {
    return Status::InvalidArgument("query adornment arity mismatch");
  }
  obs::SpanId modes_span = obs::BeginSpan("prep.modes", "analyzer");
  ModeAnalysisResult mode_result =
      InferModes(report.analyzed_program, entry, adornment);
  for (int round = 0; round < 4 && mode_result.HasConflicts(); ++round) {
    AdornmentCloneResult cloned = CloneConflictingAdornments(
        report.analyzed_program, entry, adornment);
    if (!cloned.changed) break;
    report.analyzed_program = std::move(cloned.program);
    entry = cloned.query;
    for (const std::string& line : cloned.log) report.notes.push_back(line);
    mode_result = InferModes(report.analyzed_program, entry, adornment);
  }
  obs::EndSpan(modes_span);
  const Program& analyzed = report.analyzed_program;
  report.modes = mode_result.adornments;
  for (const std::string& conflict : mode_result.conflicts) {
    report.notes.push_back(conflict);
  }

  // Inter-argument constraints: supplied first, then inference.
  for (const auto& [pred_spec, constraint_spec] :
       options_.supplied_constraints) {
    size_t slash = pred_spec.find('/');
    if (slash == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("bad predicate spec '", pred_spec, "', want name/arity"));
    }
    PredId pred;
    pred.symbol = report.analyzed_program.symbols().Intern(
        pred_spec.substr(0, slash));
    pred.arity = 0;
    for (char digit : pred_spec.substr(slash + 1)) {
      if (digit < '0' || digit > '9') {
        return Status::InvalidArgument(
            StrCat("bad arity in '", pred_spec, "'"));
      }
      pred.arity = pred.arity * 10 + (digit - '0');
    }
    Result<Polyhedron> parsed =
        ArgSizeDb::ParseSpec(pred.arity, constraint_spec);
    if (!parsed.ok()) return parsed.status();
    report.arg_sizes.Set(pred, std::move(parsed).value());
  }
  // Dependency SCCs over the predicates reachable from the query (those
  // the mode analysis visited).
  TERMILOG_TRACE("prep.condense", "analyzer");
  std::vector<PredId> preds;
  for (const auto& [pred, pred_adornment] : report.modes) {
    (void)pred_adornment;
    preds.push_back(pred);
  }
  std::map<PredId, int> index;
  for (size_t i = 0; i < preds.size(); ++i) {
    index[preds[i]] = static_cast<int>(i);
  }
  Digraph graph = BuildDependencyGraph(analyzed, preds, index);

  const std::set<PredId>& conflicted = mode_result.conflicted;

  for (const std::vector<int>& component :
       StronglyConnectedComponents(graph)) {
    SccTask task;
    for (int node : component) {
      task.preds.push_back(preds[node]);
      if (conflicted.count(preds[node]) != 0) task.has_conflict = true;
    }
    task.recursive = IsRecursiveComponent(graph, component);
    prepared.sccs.push_back(std::move(task));
  }

  if (options_.run_inference) {
    prepared.inference =
        ConstraintInference::BuildPlan(analyzed, report.arg_sizes);
  }
  return prepared;
}

Result<PreparedAnalysis> TerminationAnalyzer::Prepare(
    const Program& program, const PredId& query, const Adornment& adornment,
    const ResourceGovernor* gov) const {
  Result<PreparedAnalysis> prepared =
      PrepareStructure(program, query, adornment, gov);
  if (!prepared.ok()) return prepared;
  TerminationReport& report = prepared->report;
  auto note_trip = [&report](const std::string& message) {
    report.resource_limited = true;
    if (report.first_resource_trip.empty()) {
      report.first_resource_trip = message;
    }
  };

  if (options_.run_inference) {
    InferenceOptions inference_options = options_.inference;
    inference_options.fm.governor = gov;
    std::vector<std::string> warnings;
    Status status =
        ConstraintInference::Run(report.analyzed_program, &report.arg_sizes,
                                 inference_options, nullptr, &warnings);
    if (!status.ok()) {
      // Run degrades resource trips per SCC internally; a non-OK status here
      // is a real error unless a failpoint forced the whole pass down.
      if (status.code() != StatusCode::kResourceExhausted) return status;
      std::string message = StrCat("constraint inference skipped (",
                                   status.message(),
                                   "); predicates left unconstrained");
      report.notes.push_back(message);
      note_trip(message);
    }
    for (const std::string& warning : warnings) {
      report.notes.push_back(warning);
      note_trip(warning);
    }
    prepared->inference.nodes.clear();
  }
  return prepared;
}

Result<TerminationReport> TerminationAnalyzer::Analyze(
    const Program& program, const PredId& query,
    const Adornment& adornment) const {
  TERMILOG_TRACE_SPAN(request_span, "request", "engine", 0);
  if (request_span.active()) {
    request_span.AddArg("query", program.PredName(query));
  }
  // One governor per Analyze call: the deadline clock starts here and every
  // subsystem (prep and per-SCC analysis) charges the same budget.
  ResourceGovernor governor(options_.limits);
  Result<PreparedAnalysis> prepared =
      Prepare(program, query, adornment, &governor);
  if (!prepared.ok()) return prepared.status();
  TerminationReport report = std::move(prepared->report);
  auto note_trip = [&report](const std::string& message) {
    report.resource_limited = true;
    if (report.first_resource_trip.empty()) {
      report.first_resource_trip = message;
    }
  };

  report.proved = true;
  for (const SccTask& task : prepared->sccs) {
    if (!task.recursive) {
      SccReport scc;
      scc.preds = task.preds;
      scc.status = SccStatus::kNonRecursive;
      report.sccs.push_back(std::move(scc));
      continue;
    }
    SccReport scc =
        AnalyzeScc(report.analyzed_program, task.preds, report.modes,
                   report.arg_sizes, task.has_conflict, &governor);
    if (scc.status == SccStatus::kResourceLimit) {
      // Attach the spend snapshot so a resource-limited verdict says what
      // was actually consumed, not just that something ran out.
      scc.notes.push_back(
          StrCat("resource spend: ", governor.Spend().ToString()));
      note_trip(scc.notes.front());
    }
    if (scc.status != SccStatus::kProved &&
        scc.status != SccStatus::kNonRecursive) {
      report.proved = false;
    }
    report.sccs.push_back(std::move(scc));
  }
  report.spend = governor.Spend();
  return report;
}

Result<std::vector<std::pair<ModeDecl, TerminationReport>>>
TerminationAnalyzer::AnalyzeDeclaredModes(const Program& program) const {
  if (program.mode_decls().empty()) {
    return Status::InvalidArgument(
        "the program declares no :- mode(...) directives");
  }
  // Routed through the batch engine: one request per declared mode, so
  // SCCs shared between modes (common callees analyzed under the same
  // adornment) are solved once. jobs=1 keeps library-level calls
  // single-threaded; the CLI drives the engine directly when a --jobs
  // level is requested.
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  std::vector<BatchRequest> requests;
  requests.reserve(program.mode_decls().size());
  for (const ModeDecl& decl : program.mode_decls()) {
    BatchRequest request;
    request.name = StrCat(program.PredName(decl.pred), " ",
                          AdornmentToString(decl.adornment));
    request.program = program;
    request.query = decl.pred;
    request.adornment = decl.adornment;
    request.options = options_;
    requests.push_back(std::move(request));
  }
  std::vector<BatchItemResult> results = engine.Run(requests);

  std::vector<std::pair<ModeDecl, TerminationReport>> out;
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeDecl& decl = program.mode_decls()[i];
    BatchItemResult& result = results[i];
    if (!result.status.ok()) {
      // Isolate the failure to this mode: the other declared modes still
      // deserve real analyses.
      TerminationReport failed;
      failed.analyzed_program = program;
      failed.proved = false;
      std::string message = StrCat("analysis of this mode failed: ",
                                   result.status.ToString());
      failed.notes.push_back(message);
      if (result.status.code() == StatusCode::kResourceExhausted) {
        failed.resource_limited = true;
        failed.first_resource_trip = message;
      }
      out.emplace_back(decl, std::move(failed));
      continue;
    }
    out.emplace_back(decl, std::move(result.report));
  }
  return out;
}

Result<TerminationReport> TerminationAnalyzer::Analyze(
    const Program& program, std::string_view query_spec) const {
  Result<std::pair<PredId, Adornment>> query =
      ParseQuerySpec(program, query_spec);
  if (!query.ok()) return query.status();
  return Analyze(program, query->first, query->second);
}

std::string TerminationReport::ToString() const {
  std::string out;
  out += StrCat("verdict: ", proved ? "TERMINATES (proved)" : "UNKNOWN",
                "\n");
  if (resource_limited) {
    out += StrCat("resource-limited: ", first_resource_trip, "\n");
  }
  out += "modes:\n";
  for (const auto& [pred, adornment] : modes) {
    out += StrCat("  ", analyzed_program.PredName(pred), " : ",
                  AdornmentToString(adornment), "\n");
  }
  for (const SccReport& scc : sccs) {
    out += "scc {";
    for (size_t i = 0; i < scc.preds.size(); ++i) {
      if (i > 0) out += ", ";
      out += analyzed_program.PredName(scc.preds[i]);
    }
    out += StrCat("}: ", SccStatusName(scc.status));
    if (scc.used_negative_deltas) out += " (negative-delta mode)";
    out += "\n";
    if (scc.status == SccStatus::kProved) {
      out += scc.certificate.ToString(analyzed_program, modes);
    }
    if (!scc.reduced_constraints.empty()) {
      out += "  reduced constraints:\n";
      for (const std::string& line : Split(scc.reduced_constraints, '\n')) {
        if (!line.empty()) out += StrCat("    ", line, "\n");
      }
    }
    for (const std::string& note : scc.notes) {
      out += StrCat("  note: ", note, "\n");
    }
  }
  for (const std::string& note : notes) {
    out += StrCat("note: ", note, "\n");
  }
  return out;
}

}  // namespace termilog
