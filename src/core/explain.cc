#include "core/explain.h"

#include <set>
#include <utility>

#include "core/delta.h"
#include "core/dual_builder.h"
#include "core/rule_system.h"
#include "util/string_util.h"

namespace termilog {
namespace {

std::string RenderThetaRow(const Program& program, const ThetaSpace& space,
                           const ThetaRow& row, const char* delta_name) {
  std::string out;
  bool first = true;
  auto append_term = [&out, &first](const Rational& coeff,
                                    const std::string& name) {
    if (coeff.is_zero()) return;
    if (first) {
      if (coeff == Rational(1)) {
        out += name;
      } else if (coeff == Rational(-1)) {
        out += "-" + name;
      } else {
        out += coeff.ToString() + "*" + name;
      }
      first = false;
      return;
    }
    if (coeff.sign() > 0) {
      out += " + ";
      out += coeff == Rational(1) ? name : coeff.ToString() + "*" + name;
    } else {
      Rational mag = coeff.Abs();
      out += " - ";
      out += mag == Rational(1) ? name : mag.ToString() + "*" + name;
    }
  };
  for (size_t t = 0; t < row.theta_coeffs.size(); ++t) {
    append_term(row.theta_coeffs[t],
                space.ColumnName(program, static_cast<int>(t)));
  }
  append_term(row.delta_coeff, delta_name);
  if (!row.constant.is_zero() || first) {
    if (first) {
      out += row.constant.ToString();
    } else if (row.constant.sign() > 0) {
      out += " + " + row.constant.ToString();
    } else {
      out += " - " + row.constant.Abs().ToString();
    }
  }
  out += " >= 0";
  return out;
}

}  // namespace

Result<std::string> ExplainAnalysis(const Program& program,
                                    const PredId& query,
                                    const Adornment& adornment,
                                    const AnalysisOptions& options) {
  TerminationAnalyzer analyzer(options);
  Result<TerminationReport> analyzed =
      analyzer.Analyze(program, query, adornment);
  if (!analyzed.ok()) return analyzed.status();
  const TerminationReport& report = *analyzed;
  const Program& prog = report.analyzed_program;

  std::string out;
  out += "==================== termination proof trace ====================\n";
  out += StrCat("query: ", prog.PredName(query), " adorned ",
                AdornmentToString(adornment), "\n\n");
  out += "program analyzed (after preprocessing):\n";
  for (const Rule& rule : prog.rules()) {
    out += StrCat("  ", rule.ToString(prog.symbols()), "\n");
  }
  out += "\nmodes (Section 3 preprocessing):\n";
  for (const auto& [pred, pred_adornment] : report.modes) {
    out += StrCat("  ", prog.PredName(pred), " : ",
                  AdornmentToString(pred_adornment), "\n");
  }
  out += "\nimported inter-argument constraints ([VG90], Section 3):\n";
  std::string constraints = report.arg_sizes.ToString(prog);
  for (const std::string& line : Split(constraints, '\n')) {
    if (!line.empty()) out += StrCat("  ", line, "\n");
  }

  // Re-derive the per-SCC systems verbosely.
  for (const SccReport& scc : report.sccs) {
    out += "\n------------------------------------------------------------\n";
    out += "SCC {";
    for (size_t i = 0; i < scc.preds.size(); ++i) {
      if (i > 0) out += ", ";
      out += prog.PredName(scc.preds[i]);
    }
    out += "}\n";
    if (scc.status == SccStatus::kNonRecursive) {
      out += "  non-recursive: nothing to prove.\n";
      continue;
    }
    std::set<PredId> scc_set(scc.preds.begin(), scc.preds.end());
    RuleSystemBuilder builder(prog, report.modes, report.arg_sizes);
    Result<std::vector<RuleSubgoalSystem>> systems =
        builder.BuildForScc(scc_set);
    if (!systems.ok()) {
      out += StrCat("  (system construction failed: ",
                    systems.status().ToString(), ")\n");
      continue;
    }
    std::map<PredId, int> bound_counts;
    for (const PredId& pred : scc.preds) {
      int count = 0;
      for (Mode m : report.modes.at(pred)) {
        if (m == Mode::kBound) ++count;
      }
      bound_counts[pred] = count;
    }
    ThetaSpace space(bound_counts);
    std::vector<DerivedConstraints> derived;
    for (const RuleSubgoalSystem& sys : *systems) {
      out += StrCat("\nEq. 1 for ", sys.ToString(prog));
      Result<DerivedConstraints> d = BuildDerivedConstraints(sys, space);
      if (!d.ok()) {
        out += StrCat("  (dual derivation failed: ", d.status().ToString(),
                      ")\n");
        continue;
      }
      std::string delta_name =
          StrCat("delta(", prog.symbols().Name(sys.head_pred.symbol), ",",
                 prog.symbols().Name(sys.subgoal_pred.symbol), ")");
      out += "Eq. 9 rows after eliminating w:\n";
      for (const ThetaRow& row : d->rows) {
        out += StrCat("  ", RenderThetaRow(prog, space, row,
                                           delta_name.c_str()),
                      "\n");
      }
      derived.push_back(std::move(d).value());
    }
    DeltaAssignment assignment = AssignDeltas(derived, scc.preds);
    out += "\ndelta assignment (Section 6.1):\n";
    for (const auto& [edge, value] : assignment.values) {
      out += StrCat("  delta(", prog.symbols().Name(edge.first.symbol), ",",
                    prog.symbols().Name(edge.second.symbol), ") = ", value);
      bool forced = false;
      for (const auto& forced_edge : assignment.forced_zero) {
        if (forced_edge == edge) forced = true;
      }
      out += forced ? "   (forced to 0 by a derived row)\n" : "\n";
    }
    if (assignment.non_positive_cycle) {
      out += StrCat("  NON-POSITIVE CYCLE through ",
                    prog.PredName(assignment.cycle_witness),
                    " -- the paper's \"strong evidence of "
                    "nontermination\"; analysis halts for this SCC.\n");
    }
    if (!scc.reduced_constraints.empty()) {
      out += "\nfinal reduced constraints over the thetas:\n";
      for (const std::string& line : Split(scc.reduced_constraints, '\n')) {
        if (!line.empty()) out += StrCat("  ", line, "\n");
      }
    }
    out += StrCat("\nverdict for this SCC: ", SccStatusName(scc.status),
                  scc.used_negative_deltas ? " (Appendix C mode)" : "", "\n");
    if (scc.status == SccStatus::kProved) {
      out += "certificate (validated on the primal side):\n";
      out += scc.certificate.ToString(prog, report.modes);
    }
    for (const std::string& note : scc.notes) {
      out += StrCat("note: ", note, "\n");
    }
  }
  out += "\n==================== overall verdict: ";
  out += report.proved ? "TERMINATES (proved)" : "UNKNOWN";
  out += " ====================\n";
  return out;
}

Result<std::string> ExplainAnalysis(const Program& program,
                                    std::string_view query_spec,
                                    const AnalysisOptions& options) {
  Result<std::pair<PredId, Adornment>> query =
      ParseQuerySpec(program, query_spec);
  if (!query.ok()) return query.status();
  return ExplainAnalysis(program, query->first, query->second, options);
}

}  // namespace termilog
