#ifndef TERMILOG_CORE_CERTIFICATE_H_
#define TERMILOG_CORE_CERTIFICATE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/rule_system.h"
#include "program/ast.h"
#include "rational/rational.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {

/// A machine-checkable termination certificate for one SCC: the level
/// mapping coefficients theta_i (one nonnegative rational per bound
/// argument of each predicate) and the offsets delta_ij, such that for
/// every rule and recursive subgoal,
///   theta_i . x >= theta_j . y + delta_ij
/// holds for all argument sizes satisfying Eq. 1, and every dependency
/// cycle has positive total delta weight.
struct TerminationCertificate {
  std::map<PredId, std::vector<Rational>> theta;
  std::map<std::pair<PredId, PredId>, Rational> delta;

  std::string ToString(const Program& program,
                       const std::map<PredId, Adornment>& modes) const;
};

/// Independently validates a certificate against the PRIMAL side of the
/// problem: for each (rule, recursive subgoal) system, solves
///   minimize theta_i . x - theta_j . y   subject to Eq. 1
/// with exact simplex and checks the minimum is >= delta_ij (an infeasible
/// primal is vacuously fine), then checks cycle positivity by min-plus
/// closure over scaled integer weights. Because the analyzer derives
/// certificates through the DUAL + Fourier-Motzkin path, this check is an
/// end-to-end cross-validation of the whole pipeline. A non-null
/// `governor` bounds the validation LPs; budget trips surface as
/// kResourceExhausted (the certificate is neither confirmed nor refuted).
Status ValidateCertificate(const std::vector<RuleSubgoalSystem>& systems,
                           const std::vector<PredId>& scc_preds,
                           const TerminationCertificate& certificate,
                           const ResourceGovernor* governor = nullptr);

}  // namespace termilog

#endif  // TERMILOG_CORE_CERTIFICATE_H_
