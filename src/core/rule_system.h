#ifndef TERMILOG_CORE_RULE_SYSTEM_H_
#define TERMILOG_CORE_RULE_SYSTEM_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "constraints/arg_size_db.h"
#include "linalg/matrix.h"
#include "program/ast.h"
#include "program/modes.h"
#include "util/status.h"

namespace termilog {

/// One column of the paper's phi vector (Eq. 1): the size of a logical
/// variable of the rule, or a slack variable introduced when an imported
/// inequality constraint is converted to an equality.
struct PhiVar {
  enum class Kind { kLogicalVar, kSlack };
  Kind kind = Kind::kLogicalVar;
  int logical_var = -1;  // rule-local variable index for kLogicalVar
  std::string name;      // display name
};

/// The linear system of Eq. 1 for one (rule, recursive subgoal) pair:
///   x = a + A phi     (bound-argument sizes of the head, pred_i)
///   y = b + B phi     (bound-argument sizes of the recursive subgoal,
///                      pred_j)
///   0 = c + C phi     (imported inter-argument feasibility constraints of
///                      the subgoals preceding the recursive one)
///   x, y, phi >= 0
/// a, A, b, B are nonnegative by construction (structural term size).
struct RuleSubgoalSystem {
  int rule_index = -1;
  int subgoal_index = -1;  // position of the recursive subgoal in the body
  PredId head_pred;
  PredId subgoal_pred;
  std::vector<int> head_bound_args;     // bound positions of the head
  std::vector<int> subgoal_bound_args;  // bound positions of the subgoal

  std::vector<Rational> a;  // nx
  Matrix A;                 // nx x K
  std::vector<Rational> b;  // ny
  Matrix B;                 // ny x K
  std::vector<Rational> c;  // M
  Matrix C;                 // M x K
  std::vector<PhiVar> phi;  // K columns

  int nx() const { return static_cast<int>(a.size()); }
  int ny() const { return static_cast<int>(b.size()); }
  int num_imported() const { return static_cast<int>(c.size()); }
  int num_phi() const { return static_cast<int>(phi.size()); }

  /// Debug rendering of all four blocks.
  std::string ToString(const Program& program) const;
};

/// Builds Eq. 1 systems for every (rule, recursive subgoal) combination of
/// an SCC, per Section 3:
///  - the recursive subgoals of a rule are the body literals whose
///    predicate lies in the same SCC as the head (negative ones are treated
///    as positive, Appendix D);
///  - imported constraints come from the *positive* subgoals preceding the
///    recursive one (negative preceding subgoals are discarded, Appendix D),
///    instantiated from the ArgSizeDb — which, per Section 6.2, already
///    holds whole-SCC constraints so nonlinear/mutual recursion works.
class RuleSystemBuilder {
 public:
  RuleSystemBuilder(const Program& program,
                    const std::map<PredId, Adornment>& modes,
                    const ArgSizeDb& db)
      : program_(program), modes_(modes), db_(db) {}

  /// All systems for the SCC formed by `scc_preds`. Fails with
  /// kUnsupported if a needed adornment is missing.
  Result<std::vector<RuleSubgoalSystem>> BuildForScc(
      const std::set<PredId>& scc_preds) const;

  /// Builds the system for one rule and one body position (exposed for
  /// tests mirroring the paper's worked examples).
  Result<RuleSubgoalSystem> BuildOne(int rule_index, int subgoal_index) const;

 private:
  const Program& program_;
  const std::map<PredId, Adornment>& modes_;
  const ArgSizeDb& db_;
};

}  // namespace termilog

#endif  // TERMILOG_CORE_RULE_SYSTEM_H_
