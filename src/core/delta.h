#ifndef TERMILOG_CORE_DELTA_H_
#define TERMILOG_CORE_DELTA_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/dual_builder.h"
#include "program/ast.h"

namespace termilog {

/// Chosen delta offsets for the SCC's dependency edges (Section 6.1).
struct DeltaAssignment {
  /// Final value of delta_ij per (head pred, subgoal pred) edge: 0 or 1.
  std::map<std::pair<PredId, PredId>, int64_t> values;
  /// Edges whose delta was forced to zero by the derived constraints.
  std::vector<std::pair<PredId, PredId>> forced_zero;
  /// True when some dependency cycle has total weight <= 0 under `values`
  /// — "strong evidence of nontermination" in the paper's words; the
  /// analysis halts for the SCC.
  bool non_positive_cycle = false;
  /// A predicate lying on such a cycle (for the report).
  PredId cycle_witness;
};

/// Implements the three-step procedure of Section 6.1:
///  1. force delta_ij = 0 where the derived constraints require it — here
///     generalized soundly: a row `t.THETA - k*delta + const >= 0` with
///     k > 0, every theta coefficient <= 0 and const <= 0 cannot hold with
///     delta = 1 for any THETA >= 0 (the paper's "only zeros in c^T and
///     a^T" check is the special case);
///  2. set every other delta (including the self-loops delta_ii) to 1;
///  3. run the min-plus closure (Floyd) and flag any non-positive cycle.
DeltaAssignment AssignDeltas(
    const std::vector<DerivedConstraints>& derived,
    const std::vector<PredId>& scc_preds);

}  // namespace termilog

#endif  // TERMILOG_CORE_DELTA_H_
