#ifndef TERMILOG_CORE_ANALYZER_H_
#define TERMILOG_CORE_ANALYZER_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "constraints/inference.h"
#include "core/certificate.h"
#include "core/rule_system.h"
#include "program/ast.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {

/// Options for the end-to-end termination analysis.
struct AnalysisOptions {
  /// Run the [VG90] inter-argument constraint inference to populate the
  /// imported feasibility constraints. When false, only the
  /// `supplied_constraints` below are used (the paper's manual-input mode,
  /// Section 8).
  bool run_inference = true;
  /// Apply the Appendix A syntactic transformations (positive-equality
  /// elimination, then alternating safe unfolding / predicate splitting)
  /// before analysis.
  bool apply_transformations = false;
  /// Number of unfold/split phase pairs (the paper suggests 3).
  int transform_phases = 3;
  /// Appendix C: when the nonnegative-delta system is infeasible, retry
  /// with free deltas constrained only by positive-cycle path constraints.
  bool allow_negative_deltas = false;
  /// Cross-validate every PROVED verdict on the primal side (exact LP).
  bool validate_certificates = true;
  /// User-supplied inter-argument constraints: predicate spec "name/arity"
  /// -> constraint spec over a1..an (see ArgSizeDb::ParseSpec). These
  /// override / pre-empt inference for those predicates.
  std::vector<std::pair<std::string, std::string>> supplied_constraints;

  /// Resource budgets for one Analyze call. Every subsystem (transforms,
  /// inference, FM, simplex, certificate validation) charges one shared
  /// governor built from these limits; budget trips degrade the analysis
  /// (per-SCC kResourceLimit verdicts, untransformed retry) instead of
  /// failing it. Default: unlimited.
  GovernorLimits limits;

  InferenceOptions inference;
  FmOptions fm;
};

/// Verdict for one SCC of the dependency graph.
enum class SccStatus {
  kNonRecursive,      // no recursive subgoal: nothing to prove
  kProved,            // termination certificate found and (optionally) validated
  kNotProved,         // the sufficient condition failed (no feasible theta)
  kNonPositiveCycle,  // Section 6.1 step 3: zero-weight delta cycle --
                      // "strong evidence of nontermination"
  kUnsupported,       // preconditions violated (e.g. adornment conflicts)
  kResourceLimit,     // a resource budget tripped (FM blowup, simplex pivot
                      // cap, governor deadline/work/limb limit): the SCC is
                      // unanswered, with the spend recorded in notes
};

const char* SccStatusName(SccStatus status);

/// Per-SCC analysis report.
struct SccReport {
  std::vector<PredId> preds;
  SccStatus status = SccStatus::kNonRecursive;
  /// Valid when status == kProved.
  TerminationCertificate certificate;
  bool used_negative_deltas = false;
  /// Final reduced constraints over the thetas (after delta substitution),
  /// printable; empty for non-recursive SCCs.
  std::string reduced_constraints;
  std::vector<std::string> notes;
};

/// Whole-program analysis report.
struct TerminationReport {
  /// True iff every reachable recursive SCC was proved.
  bool proved = false;
  /// True when any part of the analysis was degraded by a resource budget
  /// (an SCC verdict, the transform pipeline, or constraint inference).
  /// The report is still valid — every verdict it does contain holds —
  /// but it may be weaker than an unconstrained run's.
  bool resource_limited = false;
  /// First budget-trip message when resource_limited is set.
  std::string first_resource_trip;
  std::vector<SccReport> sccs;
  std::map<PredId, Adornment> modes;
  /// Inter-argument constraints used (inferred + supplied).
  ArgSizeDb arg_sizes;
  /// The program the verdict refers to (after transformations, if any).
  Program analyzed_program;
  std::vector<std::string> notes;
  /// Resource spend of the analysis that produced this report. For a serial
  /// Analyze call this is the shared governor's final snapshot; for the
  /// batch engine it is the sum over the request's per-task governors.
  GovernorSpend spend;

  std::string ToString() const;
};

/// One schedulable unit of a prepared analysis: the predicates of one SCC
/// of the dependency graph, in condensation order (callees first).
struct SccTask {
  std::vector<PredId> preds;
  /// False for non-recursive singleton SCCs, which need no termination
  /// argument (and no worker time).
  bool recursive = false;
  /// True when a predicate of the SCC was reached with conflicting
  /// adornments even after cloning; the SCC's verdict is kUnsupported.
  bool has_conflict = false;
};

/// Everything `Analyze` computes before the per-SCC loop: the transformed
/// program, modes, inter-argument constraints, and the SCC task list. The
/// embedded report is a skeleton — `sccs` is empty and `proved` unset —
/// that the caller (the serial loop or the batch engine) completes by
/// analyzing each task and merging in condensation order.
struct PreparedAnalysis {
  TerminationReport report;
  std::vector<SccTask> sccs;
  /// Pending inter-argument inference work, as per-SCC nodes over the
  /// dependency-graph condensation (callees first). Populated by
  /// PrepareStructure when `run_inference` is set; empty after Prepare,
  /// which has already executed the plan into `report.arg_sizes`.
  InferencePlan inference;
};

/// Parses a query spec like "perm(b,f)" against the program's symbol
/// table; the named predicate must be defined with the given arity.
Result<std::pair<PredId, Adornment>> ParseQuerySpec(const Program& program,
                                                    std::string_view spec);

/// The paper's analyzer (Sections 3-6 plus Appendices A, C, D).
class TerminationAnalyzer {
 public:
  explicit TerminationAnalyzer(AnalysisOptions options = AnalysisOptions())
      : options_(std::move(options)) {}

  const AnalysisOptions& options() const { return options_; }

  /// Analyzes top-down termination of `query` (entry predicate + bound/free
  /// adornment) over `program`.
  Result<TerminationReport> Analyze(const Program& program,
                                    const PredId& query,
                                    const Adornment& adornment) const;

  /// Convenience overload taking "pred(b,f,...)" syntax.
  Result<TerminationReport> Analyze(const Program& program,
                                    std::string_view query_spec) const;

  /// Analyzes every `:- mode(...)` directive of the program — the paper's
  /// capture-rule setting, where "different orders can be chosen for
  /// different bound-free query patterns" and each pattern needs its own
  /// termination proof. Fails if the program declares no modes.
  ///
  /// A failure while analyzing one mode (including a resource trip that
  /// escaped degradation) is isolated to that mode: its report carries the
  /// error in `notes` with proved == false, and the other modes still get
  /// real analyses.
  Result<std::vector<std::pair<ModeDecl, TerminationReport>>>
  AnalyzeDeclaredModes(const Program& program) const;

  /// Building blocks of Analyze, exposed for the batch engine
  /// (src/engine/): most callers want Analyze, which runs Prepare and then
  /// AnalyzeScc over every recursive task under one shared governor.
  ///
  /// Prepare runs everything up to (not including) the per-SCC analysis:
  /// transformations, mode inference with adornment-conflict cloning,
  /// supplied constraints, inter-argument constraint inference, and the
  /// dependency-graph condensation. Prep-phase resource trips are degraded
  /// into the skeleton report's notes exactly as in Analyze.
  Result<PreparedAnalysis> Prepare(const Program& program, const PredId& query,
                                   const Adornment& adornment,
                                   const ResourceGovernor* governor) const;

  /// Prepare minus the inter-argument inference pass: transformations,
  /// mode inference with adornment-conflict cloning, supplied constraints,
  /// the dependency-graph condensation — and, when `run_inference` is set,
  /// the *plan* of the inference work (`PreparedAnalysis::inference`)
  /// instead of its execution. The batch engine schedules the plan's nodes
  /// bottom-up over its worker pool (each under its own governor, results
  /// content-cached); Prepare is PrepareStructure plus the serial in-order
  /// execution of the plan under the shared `governor`.
  Result<PreparedAnalysis> PrepareStructure(
      const Program& program, const PredId& query, const Adornment& adornment,
      const ResourceGovernor* governor) const;

  /// Analyzes one SCC (Sections 3-6) against the prepared modes and
  /// constraint store. Pure with respect to the analyzer: the verdict is a
  /// deterministic function of (SCC rules, modes, callee constraints,
  /// options, governor limits) — the property the engine's content-
  /// addressed cache relies on.
  SccReport AnalyzeScc(const Program& program,
                       const std::vector<PredId>& scc_preds,
                       const std::map<PredId, Adornment>& modes,
                       const ArgSizeDb& db, bool has_conflict,
                       const ResourceGovernor* governor) const;

 private:
  AnalysisOptions options_;
};

}  // namespace termilog

#endif  // TERMILOG_CORE_ANALYZER_H_
