#include "core/certificate.h"

#include <utility>

#include "graph/minplus.h"
#include "lp/simplex.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

std::string TerminationCertificate::ToString(
    const Program& program, const std::map<PredId, Adornment>& modes) const {
  std::string out;
  for (const auto& [pred, coeffs] : theta) {
    out += StrCat("  level(", program.PredName(pred), ") = ");
    auto it = modes.find(pred);
    std::vector<int> bound_positions;
    if (it != modes.end()) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        if (it->second[i] == Mode::kBound) {
          bound_positions.push_back(static_cast<int>(i) + 1);
        }
      }
    }
    bool first = true;
    for (size_t k = 0; k < coeffs.size(); ++k) {
      if (coeffs[k].is_zero()) continue;
      if (!first) out += " + ";
      first = false;
      std::string arg =
          k < bound_positions.size()
              ? StrCat("|arg", bound_positions[k], "|")
              : StrCat("|bound", k + 1, "|");
      if (coeffs[k] == Rational(1)) {
        out += arg;
      } else {
        out += StrCat(coeffs[k].ToString(), "*", arg);
      }
    }
    if (first) out += "0";
    out += "\n";
  }
  for (const auto& [edge, value] : delta) {
    out += StrCat("  delta(", program.symbols().Name(edge.first.symbol), ",",
                  program.symbols().Name(edge.second.symbol),
                  ") = ", value.ToString(), "\n");
  }
  return out;
}

Status ValidateCertificate(const std::vector<RuleSubgoalSystem>& systems,
                           const std::vector<PredId>& scc_preds,
                           const TerminationCertificate& certificate,
                           const ResourceGovernor* governor) {
  // theta >= 0 componentwise.
  for (const auto& [pred, coeffs] : certificate.theta) {
    for (const Rational& coeff : coeffs) {
      if (coeff.sign() < 0) {
        return Status::Internal("certificate has a negative theta");
      }
    }
  }

  for (const RuleSubgoalSystem& sys : systems) {
    auto theta_it = certificate.theta.find(sys.head_pred);
    auto eta_it = certificate.theta.find(sys.subgoal_pred);
    auto delta_it = certificate.delta.find({sys.head_pred, sys.subgoal_pred});
    if (theta_it == certificate.theta.end() ||
        eta_it == certificate.theta.end() ||
        delta_it == certificate.delta.end()) {
      return Status::Internal("certificate missing theta or delta entries");
    }
    const std::vector<Rational>& theta = theta_it->second;
    const std::vector<Rational>& eta = eta_it->second;
    if (static_cast<int>(theta.size()) != sys.nx() ||
        static_cast<int>(eta.size()) != sys.ny()) {
      return Status::Internal("certificate theta arity mismatch");
    }

    // Primal system over [x | y | phi], all nonnegative.
    const int K = sys.num_phi();
    const int width = sys.nx() + sys.ny() + K;
    const int y_base = sys.nx();
    const int phi_base = sys.nx() + sys.ny();
    ConstraintSystem primal(width);
    for (int i = 0; i < sys.nx(); ++i) {
      Constraint row;
      row.rel = Relation::kEq;
      row.coeffs.assign(width, Rational());
      row.coeffs[i] = Rational(1);
      for (int k = 0; k < K; ++k) row.coeffs[phi_base + k] = -sys.A.At(i, k);
      row.constant = -sys.a[i];
      primal.Add(std::move(row));
    }
    for (int j = 0; j < sys.ny(); ++j) {
      Constraint row;
      row.rel = Relation::kEq;
      row.coeffs.assign(width, Rational());
      row.coeffs[y_base + j] = Rational(1);
      for (int k = 0; k < K; ++k) row.coeffs[phi_base + k] = -sys.B.At(j, k);
      row.constant = -sys.b[j];
      primal.Add(std::move(row));
    }
    for (int m = 0; m < sys.num_imported(); ++m) {
      Constraint row;
      row.rel = Relation::kEq;
      row.coeffs.assign(width, Rational());
      for (int k = 0; k < K; ++k) row.coeffs[phi_base + k] = sys.C.At(m, k);
      row.constant = sys.c[m];
      primal.Add(std::move(row));
    }

    std::vector<Rational> objective(width);
    for (int i = 0; i < sys.nx(); ++i) objective[i] = theta[i];
    for (int j = 0; j < sys.ny(); ++j) objective[y_base + j] = -eta[j];

    LpResult lp = SimplexSolver::Minimize(primal, objective, {}, governor);
    if (lp.status == LpStatus::kInfeasible) continue;  // unreachable pair
    if (lp.status == LpStatus::kPivotLimit) {
      return Status::ResourceExhausted(
          StrCat("certificate validation resource-limited at rule #",
                 sys.rule_index, " subgoal #", sys.subgoal_index));
    }
    if (lp.status != LpStatus::kOptimal) {
      return Status::Internal(
          StrCat("primal check unbounded for rule #", sys.rule_index,
                 " subgoal #", sys.subgoal_index));
    }
    if (lp.objective < delta_it->second) {
      return Status::Internal(StrCat(
          "certificate violated: min decrease ", lp.objective.ToString(),
          " < delta ", delta_it->second.ToString(), " for rule #",
          sys.rule_index, " subgoal #", sys.subgoal_index));
    }
  }

  // Cycle positivity: scale deltas to integers and run min-plus closure.
  BigInt denom_lcm(1);
  for (const auto& [edge, value] : certificate.delta) {
    (void)edge;
    BigInt g = BigInt::Gcd(denom_lcm, value.den());
    denom_lcm = denom_lcm / g * value.den();
  }
  std::map<PredId, int> index;
  for (size_t i = 0; i < scc_preds.size(); ++i) {
    index[scc_preds[i]] = static_cast<int>(i);
  }
  MinPlusClosure closure(static_cast<int>(scc_preds.size()));
  for (const auto& [edge, value] : certificate.delta) {
    auto from = index.find(edge.first);
    auto to = index.find(edge.second);
    if (from == index.end() || to == index.end()) {
      return Status::Internal("certificate delta edge outside the SCC");
    }
    Rational scaled = value * Rational(denom_lcm);
    TERMILOG_CHECK(scaled.is_integer());
    if (!scaled.num().FitsInt64()) {
      return Status::Internal("certificate delta too large to verify");
    }
    closure.AddEdge(from->second, to->second, scaled.num().ToInt64());
  }
  closure.Run();
  if (closure.HasNonPositiveCycle()) {
    return Status::Internal("certificate has a non-positive delta cycle");
  }
  return Status::Ok();
}

}  // namespace termilog
