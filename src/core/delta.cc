#include "core/delta.h"

#include <algorithm>
#include <set>

#include "graph/minplus.h"
#include "util/check.h"

namespace termilog {
namespace {

// A row forces delta_ij <= 0 when its delta coefficient is negative and no
// positive theta coefficient (nor a positive constant) can compensate under
// THETA >= 0.
bool ForcesDeltaZero(const ThetaRow& row) {
  if (row.delta_coeff.sign() >= 0) return false;
  if (row.constant.sign() > 0) return false;
  for (const Rational& coeff : row.theta_coeffs) {
    if (coeff.sign() > 0) return false;
  }
  return true;
}

}  // namespace

DeltaAssignment AssignDeltas(const std::vector<DerivedConstraints>& derived,
                             const std::vector<PredId>& scc_preds) {
  DeltaAssignment out;
  std::set<std::pair<PredId, PredId>> edges;
  std::set<std::pair<PredId, PredId>> forced;
  for (const DerivedConstraints& d : derived) {
    std::pair<PredId, PredId> edge{d.i, d.j};
    edges.insert(edge);
    for (const ThetaRow& row : d.rows) {
      if (ForcesDeltaZero(row)) {
        forced.insert(edge);
        break;
      }
    }
  }
  for (const auto& edge : edges) {
    bool zero = forced.count(edge) != 0;
    out.values[edge] = zero ? 0 : 1;
    if (zero) out.forced_zero.push_back(edge);
  }

  // Min-plus closure over the SCC's dependency edges.
  std::map<PredId, int> index;
  for (size_t i = 0; i < scc_preds.size(); ++i) {
    index[scc_preds[i]] = static_cast<int>(i);
  }
  MinPlusClosure closure(static_cast<int>(scc_preds.size()));
  for (const auto& [edge, weight] : out.values) {
    auto from = index.find(edge.first);
    auto to = index.find(edge.second);
    TERMILOG_CHECK(from != index.end() && to != index.end());
    closure.AddEdge(from->second, to->second, weight);
  }
  closure.Run();
  int witness = closure.NonPositiveCycleNode();
  if (witness >= 0) {
    out.non_positive_cycle = true;
    out.cycle_witness = scc_preds[witness];
  }
  return out;
}

}  // namespace termilog
