#include "core/rule_system.h"

#include <utility>

#include "term/size.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

std::string RuleSubgoalSystem::ToString(const Program& program) const {
  std::string out = StrCat("rule #", rule_index, ", subgoal #", subgoal_index,
                           " (", program.PredName(head_pred), " -> ",
                           program.PredName(subgoal_pred), ")\n");
  out += StrCat("phi = (");
  for (size_t i = 0; i < phi.size(); ++i) {
    if (i > 0) out += ", ";
    out += phi[i].name;
  }
  out += ")\n";
  auto dump = [&out](const char* label, const std::vector<Rational>& vec,
                     const Matrix& mat) {
    out += StrCat(label, ": constant (");
    for (size_t i = 0; i < vec.size(); ++i) {
      if (i > 0) out += ", ";
      out += vec[i].ToString();
    }
    out += ")\n";
    out += mat.ToString();
  };
  dump("x = a + A phi", a, A);
  dump("y = b + B phi", b, B);
  dump("0 = c + C phi", c, C);
  return out;
}

Result<RuleSubgoalSystem> RuleSystemBuilder::BuildOne(int rule_index,
                                                      int subgoal_index) const {
  const Rule& rule = program_.rules()[rule_index];
  TERMILOG_CHECK(subgoal_index >= 0 &&
                 subgoal_index < static_cast<int>(rule.body.size()));
  const Atom& subgoal = rule.body[subgoal_index].atom;

  RuleSubgoalSystem sys;
  sys.rule_index = rule_index;
  sys.subgoal_index = subgoal_index;
  sys.head_pred = rule.head.pred_id();
  sys.subgoal_pred = subgoal.pred_id();

  auto head_modes = modes_.find(sys.head_pred);
  auto subgoal_modes = modes_.find(sys.subgoal_pred);
  if (head_modes == modes_.end() || subgoal_modes == modes_.end()) {
    return Status::Unsupported(
        StrCat("no adornment for ", program_.PredName(sys.head_pred), " or ",
               program_.PredName(sys.subgoal_pred)));
  }
  for (size_t i = 0; i < head_modes->second.size(); ++i) {
    if (head_modes->second[i] == Mode::kBound) {
      sys.head_bound_args.push_back(static_cast<int>(i));
    }
  }
  for (size_t i = 0; i < subgoal_modes->second.size(); ++i) {
    if (subgoal_modes->second[i] == Mode::kBound) {
      sys.subgoal_bound_args.push_back(static_cast<int>(i));
    }
  }

  // Imported feasibility constraints from positive subgoals preceding the
  // recursive one (Appendix D discards negative ones). Each row becomes
  // 0 = c_m + C_m . phi, with a slack column for inequality rows.
  struct PendingRow {
    LinearExpr expr;  // over logical-variable columns
    bool needs_slack = false;
  };
  std::vector<PendingRow> pending;
  bool unreachable = false;
  for (int k = 0; k < subgoal_index && !unreachable; ++k) {
    const Literal& lit = rule.body[k];
    if (!lit.positive) continue;
    PredId callee = lit.atom.pred_id();
    if (!db_.Has(callee)) continue;  // nothing beyond nonnegativity known
    Polyhedron knowledge = db_.Get(callee);
    if (knowledge.IsEmpty()) {
      // The preceding subgoal can never succeed; the recursive call is
      // unreachable through this rule. Encode with the contradictory
      // imported row 0 = 1 so the primal is infeasible and the pair is
      // vacuously satisfied.
      unreachable = true;
      break;
    }
    std::vector<LinearExpr> images;
    images.reserve(lit.atom.args.size());
    for (const TermPtr& arg : lit.atom.args) {
      images.push_back(StructuralSize(arg));
    }
    ConstraintSystem instantiated =
        knowledge.Instantiate(images, rule.num_vars());
    for (const Constraint& row : instantiated.rows()) {
      // Skip rows already implied by phi >= 0.
      if (row.rel == Relation::kGe && row.constant.sign() >= 0) {
        bool trivial = true;
        for (const Rational& coeff : row.coeffs) {
          if (coeff.sign() < 0) {
            trivial = false;
            break;
          }
        }
        if (trivial) continue;
      }
      PendingRow p;
      p.expr = LinearExpr(row.constant);
      for (int v = 0; v < rule.num_vars(); ++v) {
        if (!row.coeffs[v].is_zero()) p.expr.SetCoeff(v, row.coeffs[v]);
      }
      p.needs_slack = (row.rel == Relation::kGe);
      pending.push_back(std::move(p));
    }
  }
  if (unreachable) {
    pending.clear();
    PendingRow contradiction;
    contradiction.expr = LinearExpr(Rational(1));
    pending.push_back(std::move(contradiction));
  }

  // phi layout: logical variables first, then one slack per inequality.
  for (int v = 0; v < rule.num_vars(); ++v) {
    PhiVar var;
    var.kind = PhiVar::Kind::kLogicalVar;
    var.logical_var = v;
    var.name = rule.VarName(v);
    sys.phi.push_back(std::move(var));
  }
  int num_slacks = 0;
  for (const PendingRow& p : pending) {
    if (p.needs_slack) ++num_slacks;
  }
  for (int s = 0; s < num_slacks; ++s) {
    PhiVar var;
    var.kind = PhiVar::Kind::kSlack;
    var.name = StrCat("s", s + 1);
    sys.phi.push_back(std::move(var));
  }
  const int K = sys.num_phi();

  // a / A from the head's bound arguments.
  const int nx = static_cast<int>(sys.head_bound_args.size());
  sys.a.resize(nx);
  sys.A = Matrix(nx, K);
  for (int i = 0; i < nx; ++i) {
    LinearExpr size = StructuralSize(rule.head.args[sys.head_bound_args[i]]);
    sys.a[i] = size.constant();
    for (const auto& [var, coeff] : size.coeffs()) {
      sys.A.At(i, var) = coeff;
    }
  }
  // b / B from the recursive subgoal's bound arguments.
  const int ny = static_cast<int>(sys.subgoal_bound_args.size());
  sys.b.resize(ny);
  sys.B = Matrix(ny, K);
  for (int j = 0; j < ny; ++j) {
    LinearExpr size = StructuralSize(subgoal.args[sys.subgoal_bound_args[j]]);
    sys.b[j] = size.constant();
    for (const auto& [var, coeff] : size.coeffs()) {
      sys.B.At(j, var) = coeff;
    }
  }
  TERMILOG_CHECK_MSG(sys.A.AllNonNegative() && sys.B.AllNonNegative(),
                     "structural sizes must have nonnegative coefficients");

  // c / C from the pending imported rows: 0 = c + C phi, where a kGe
  // source row expr >= 0 becomes expr - s = 0.
  const int M = static_cast<int>(pending.size());
  sys.c.resize(M);
  sys.C = Matrix(M, K);
  int slack_col = rule.num_vars();
  for (int m = 0; m < M; ++m) {
    const PendingRow& p = pending[m];
    sys.c[m] = p.expr.constant();
    for (const auto& [var, coeff] : p.expr.coeffs()) {
      sys.C.At(m, var) = coeff;
    }
    if (p.needs_slack) {
      sys.C.At(m, slack_col++) = Rational(-1);
    }
  }
  return sys;
}

Result<std::vector<RuleSubgoalSystem>> RuleSystemBuilder::BuildForScc(
    const std::set<PredId>& scc_preds) const {
  std::vector<RuleSubgoalSystem> out;
  for (size_t r = 0; r < program_.rules().size(); ++r) {
    const Rule& rule = program_.rules()[r];
    if (scc_preds.count(rule.head.pred_id()) == 0) continue;
    for (size_t k = 0; k < rule.body.size(); ++k) {
      // A recursive subgoal is one whose predicate is in the SCC; a
      // negative recursive subgoal is treated as if positive (Appendix D).
      if (scc_preds.count(rule.body[k].atom.pred_id()) == 0) continue;
      Result<RuleSubgoalSystem> sys =
          BuildOne(static_cast<int>(r), static_cast<int>(k));
      if (!sys.ok()) return sys.status();
      out.push_back(std::move(sys).value());
    }
  }
  return out;
}

}  // namespace termilog
