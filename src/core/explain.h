#ifndef TERMILOG_CORE_EXPLAIN_H_
#define TERMILOG_CORE_EXPLAIN_H_

#include <string>

#include "core/analyzer.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Produces a complete human-readable proof trace in the style of the
/// paper's worked examples (4.1, 5.1, 6.1): for every SCC, the Eq. 1
/// blocks of every (rule, recursive subgoal) pair, the Eq. 9 rows after
/// eliminating the dual variables w, the delta assignment with the
/// min-plus cycle check, the final reduced constraint system over the
/// thetas, and the certificate (or the reason the proof failed).
///
/// The trace re-runs the analysis with the given options; it is meant for
/// inspection and teaching, not for the hot path.
Result<std::string> ExplainAnalysis(
    const Program& program, const PredId& query, const Adornment& adornment,
    const AnalysisOptions& options = AnalysisOptions());

/// Convenience overload taking "pred(b,f)" syntax.
Result<std::string> ExplainAnalysis(
    const Program& program, std::string_view query_spec,
    const AnalysisOptions& options = AnalysisOptions());

}  // namespace termilog

#endif  // TERMILOG_CORE_EXPLAIN_H_
