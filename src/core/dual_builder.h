#ifndef TERMILOG_CORE_DUAL_BUILDER_H_
#define TERMILOG_CORE_DUAL_BUILDER_H_

#include <map>
#include <string>
#include <vector>

#include "core/rule_system.h"
#include "fm/fourier_motzkin.h"
#include "util/status.h"

namespace termilog {

/// Assigns one theta column per (predicate, bound-argument) of an SCC:
/// theta_i is the nonnegative coefficient vector of predicate p_i's bound
/// arguments (Section 4).
class ThetaSpace {
 public:
  /// `bound_counts` maps each SCC predicate to its number of bound args.
  explicit ThetaSpace(const std::map<PredId, int>& bound_counts);

  int total() const { return total_; }
  /// Column of the ordinal-th bound argument of `pred`.
  int Column(const PredId& pred, int ordinal) const;
  int CountFor(const PredId& pred) const;
  const std::map<PredId, int>& offsets() const { return offsets_; }

  /// Display name "theta[p][k]" for reports; `k` is 1-based within pred.
  std::string ColumnName(const Program& program, int column) const;

 private:
  std::map<PredId, int> offsets_;
  std::map<PredId, int> counts_;
  int total_ = 0;
};

/// One constraint over the theta space plus a symbolic multiple of
/// delta_ij (the offset constant of Eq. 2):
///   theta_coeffs . THETA + delta_coeff * delta_ij + constant >= 0.
/// In the rows coming out of Eq. 9 the delta coefficient is -k with k >= 0.
struct ThetaRow {
  std::vector<Rational> theta_coeffs;
  Rational delta_coeff;
  Rational constant;
};

/// All constraints derived from one (rule, recursive subgoal) pair after
/// eliminating the dual variables w by Fourier-Motzkin (end of Section 4).
struct DerivedConstraints {
  PredId i;  // head predicate
  PredId j;  // subgoal predicate
  int rule_index = -1;
  int subgoal_index = -1;
  std::vector<ThetaRow> rows;
};

/// Builds Eq. 9 for the pair and eliminates w:
///   columns [w_1..w_M | theta | delta], rows (all >=):
///     for each phi column k:  (C^T w)_k + (A^T theta)_k - (B^T eta)_k >= 0
///     c^T w + a^T theta - b^T eta - delta >= 0
/// where eta shares theta's columns via `space` (when i == j the
/// coefficients merge, which is exactly "theta = eta" in the paper).
/// The direct construction (u := theta, v := -eta) is valid because
/// a, A, b, B >= 0; this is verified with a checked assertion.
Result<DerivedConstraints> BuildDerivedConstraints(
    const RuleSubgoalSystem& sys, const ThetaSpace& space,
    const FmOptions& options = FmOptions());

}  // namespace termilog

#endif  // TERMILOG_CORE_DUAL_BUILDER_H_
