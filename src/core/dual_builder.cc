#include "core/dual_builder.h"

#include <utility>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {

ThetaSpace::ThetaSpace(const std::map<PredId, int>& bound_counts)
    : counts_(bound_counts) {
  for (const auto& [pred, count] : bound_counts) {
    offsets_[pred] = total_;
    total_ += count;
  }
}

int ThetaSpace::Column(const PredId& pred, int ordinal) const {
  auto it = offsets_.find(pred);
  TERMILOG_CHECK_MSG(it != offsets_.end(), "predicate not in theta space");
  TERMILOG_CHECK(ordinal >= 0 && ordinal < counts_.at(pred));
  return it->second + ordinal;
}

int ThetaSpace::CountFor(const PredId& pred) const {
  auto it = counts_.find(pred);
  return it == counts_.end() ? 0 : it->second;
}

std::string ThetaSpace::ColumnName(const Program& program, int column) const {
  for (const auto& [pred, offset] : offsets_) {
    int count = counts_.at(pred);
    if (column >= offset && column < offset + count) {
      return StrCat("theta[", program.symbols().Name(pred.symbol), "][",
                    column - offset + 1, "]");
    }
  }
  return StrCat("theta?", column);
}

Result<DerivedConstraints> BuildDerivedConstraints(
    const RuleSubgoalSystem& sys, const ThetaSpace& space,
    const FmOptions& options) {
  TERMILOG_FAILPOINT("dual.build");
  TERMILOG_CHECK_MSG(sys.A.AllNonNegative() && sys.B.AllNonNegative(),
                     "Eq. 9 direct construction requires A, B >= 0");
  for (const Rational& value : sys.a) TERMILOG_CHECK(value.sign() >= 0);
  for (const Rational& value : sys.b) TERMILOG_CHECK(value.sign() >= 0);

  const int M = sys.num_imported();
  const int T = space.total();
  const int delta_col = M + T;
  const int width = M + T + 1;
  ConstraintSystem system(width);

  // One row per phi column: (C^T w)_k + (A^T theta)_k - (B^T eta)_k >= 0.
  for (int k = 0; k < sys.num_phi(); ++k) {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.assign(width, Rational());
    for (int m = 0; m < M; ++m) row.coeffs[m] = sys.C.At(m, k);
    for (int i = 0; i < sys.nx(); ++i) {
      int col = M + space.Column(sys.head_pred, i);
      row.coeffs[col] += sys.A.At(i, k);
    }
    for (int j = 0; j < sys.ny(); ++j) {
      int col = M + space.Column(sys.subgoal_pred, j);
      row.coeffs[col] -= sys.B.At(j, k);
    }
    system.Add(std::move(row));
  }
  // Objective row: c^T w + a^T theta - b^T eta - delta >= 0.
  {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.assign(width, Rational());
    for (int m = 0; m < M; ++m) row.coeffs[m] = sys.c[m];
    for (int i = 0; i < sys.nx(); ++i) {
      int col = M + space.Column(sys.head_pred, i);
      row.coeffs[col] += sys.a[i];
    }
    for (int j = 0; j < sys.ny(); ++j) {
      int col = M + space.Column(sys.subgoal_pred, j);
      row.coeffs[col] -= sys.b[j];
    }
    row.coeffs[delta_col] = Rational(-1);
    system.Add(std::move(row));
  }

  // Eliminate the free dual variables w, keeping theta and delta columns.
  std::vector<int> keep;
  keep.reserve(T + 1);
  for (int t = 0; t < T + 1; ++t) keep.push_back(M + t);
  Result<ConstraintSystem> projected =
      FourierMotzkin::Project(system, keep, options);
  if (!projected.ok()) return projected.status();

  DerivedConstraints out;
  out.i = sys.head_pred;
  out.j = sys.subgoal_pred;
  out.rule_index = sys.rule_index;
  out.subgoal_index = sys.subgoal_index;
  for (const Constraint& row : projected->rows()) {
    TERMILOG_CHECK(row.rel == Relation::kGe);
    ThetaRow theta_row;
    theta_row.theta_coeffs.assign(row.coeffs.begin(), row.coeffs.begin() + T);
    theta_row.delta_coeff = row.coeffs[T];
    theta_row.constant = row.constant;
    out.rows.push_back(std::move(theta_row));
  }
  return out;
}

}  // namespace termilog
