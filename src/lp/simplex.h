#ifndef TERMILOG_LP_SIMPLEX_H_
#define TERMILOG_LP_SIMPLEX_H_

#include <vector>

#include "linalg/constraint.h"
#include "rational/rational.h"
#include "util/governor.h"

namespace termilog {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,     // finite optimum found; point and objective valid
  kInfeasible,  // constraint set empty
  kUnbounded,   // feasible but objective unbounded in the requested direction
  kPivotLimit,  // pivot cap or governor budget tripped: the solve is
                // resource-limited, not answered. The analyzer surfaces
                // this as SccStatus::kResourceLimit.
};

/// Result of an LP solve. `point` is in the caller's variable space.
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;
  std::vector<Rational> point;
};

/// Exact two-phase primal simplex over rationals with Bland's anti-cycling
/// rule. This is the workhorse behind Section 4 of the paper: the final
/// termination condition is a pure feasibility problem, and the polyhedral
/// operations (entailment, redundancy pruning) are optimization calls.
///
/// Variables are nonnegative by default; `is_free` marks variables with
/// unrestricted sign (they are internally split into differences of
/// nonnegative variables). Constraint rows follow the library convention
/// `coeffs . x + constant REL 0`.
class SimplexSolver {
 public:
  /// Hard cap on pivots; exceeded => kPivotLimit. Bland's rule makes the
  /// cap unreachable on well-posed inputs, but callers must treat the
  /// status as a first-class resource-limit outcome (the analyzer maps it
  /// to SccStatus::kResourceLimit, never to a silent NOT_PROVED).
  static constexpr int kMaxPivots = 200000;

  /// Minimizes objective . x subject to `system`. A non-null `governor` is
  /// charged one work tick per pivot; when it trips the solve returns
  /// kPivotLimit (query the governor for the structured trip reason).
  static LpResult Minimize(const ConstraintSystem& system,
                           const std::vector<Rational>& objective,
                           const std::vector<bool>& is_free = {},
                           const ResourceGovernor* governor = nullptr);

  /// Maximizes objective . x subject to `system`.
  static LpResult Maximize(const ConstraintSystem& system,
                           const std::vector<Rational>& objective,
                           const std::vector<bool>& is_free = {},
                           const ResourceGovernor* governor = nullptr);

  /// Pure feasibility: returns kOptimal with a witness point, or
  /// kInfeasible.
  static LpResult FindFeasible(const ConstraintSystem& system,
                               const std::vector<bool>& is_free = {},
                               const ResourceGovernor* governor = nullptr);
};

}  // namespace termilog

#endif  // TERMILOG_LP_SIMPLEX_H_
