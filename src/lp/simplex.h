#ifndef TERMILOG_LP_SIMPLEX_H_
#define TERMILOG_LP_SIMPLEX_H_

#include <vector>

#include "linalg/constraint.h"
#include "rational/rational.h"

namespace termilog {

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,     // finite optimum found; point and objective valid
  kInfeasible,  // constraint set empty
  kUnbounded,   // feasible but objective unbounded in the requested direction
  kPivotLimit,  // safety valve tripped (should not happen with Bland's rule)
};

/// Result of an LP solve. `point` is in the caller's variable space.
struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;
  std::vector<Rational> point;
};

/// Exact two-phase primal simplex over rationals with Bland's anti-cycling
/// rule. This is the workhorse behind Section 4 of the paper: the final
/// termination condition is a pure feasibility problem, and the polyhedral
/// operations (entailment, redundancy pruning) are optimization calls.
///
/// Variables are nonnegative by default; `is_free` marks variables with
/// unrestricted sign (they are internally split into differences of
/// nonnegative variables). Constraint rows follow the library convention
/// `coeffs . x + constant REL 0`.
class SimplexSolver {
 public:
  /// Hard cap on pivots; exceeded => kPivotLimit (diagnostic only).
  static constexpr int kMaxPivots = 200000;

  /// Minimizes objective . x subject to `system`.
  static LpResult Minimize(const ConstraintSystem& system,
                           const std::vector<Rational>& objective,
                           const std::vector<bool>& is_free = {});

  /// Maximizes objective . x subject to `system`.
  static LpResult Maximize(const ConstraintSystem& system,
                           const std::vector<Rational>& objective,
                           const std::vector<bool>& is_free = {});

  /// Pure feasibility: returns kOptimal with a witness point, or
  /// kInfeasible.
  static LpResult FindFeasible(const ConstraintSystem& system,
                               const std::vector<bool>& is_free = {});
};

}  // namespace termilog

#endif  // TERMILOG_LP_SIMPLEX_H_
