#include "lp/simplex.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace termilog {
namespace {

// Internal standard-form tableau:
//   minimize c . z   subject to  T z = rhs,  z >= 0,  rhs >= 0.
// Columns: [0, n_pos) original-or-split variables, then surplus, then
// artificial. We run phase 1 (min sum of artificials), drive artificials
// out, then phase 2 on the real objective. Bland's rule everywhere.
class Tableau {
 public:
  Tableau(int num_cols) : num_cols_(num_cols) {}

  void AddRow(std::vector<Rational> coeffs, Rational rhs) {
    TERMILOG_CHECK(static_cast<int>(coeffs.size()) == num_cols_);
    if (rhs.sign() < 0) {
      for (Rational& c : coeffs) c.Negate();
      rhs.Negate();
    }
    // Row-GCD normalization (docs/arithmetic.md): scaling an equality row
    // by a positive rational preserves the feasible set, the reduced-cost
    // signs, and every ratio-test comparison, so pivot sequences and
    // results are unchanged while entering coefficient magnitudes shrink
    // to coprime integers — keeping pivot arithmetic on the fast path.
    NormalizeRowGcd(&coeffs, &rhs);
    rows_.push_back(std::move(coeffs));
    rhs_.push_back(std::move(rhs));
  }

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_cols() const { return num_cols_; }

  // Appends one column per row (identity block) and sets the basis to it.
  // Returns the index of the first appended column.
  int AppendIdentityBasis() {
    int first = num_cols_;
    num_cols_ += num_rows();
    for (int r = 0; r < num_rows(); ++r) {
      rows_[r].resize(num_cols_, Rational());
      rows_[r][first + r] = Rational(1);
    }
    basis_.resize(num_rows());
    for (int r = 0; r < num_rows(); ++r) basis_[r] = first + r;
    return first;
  }

  // Minimizes `objective` (dense over current columns) starting from the
  // current basis. Returns kOptimal or kUnbounded (or kPivotLimit).
  // `forbidden` columns may never enter the basis (used to lock artificials
  // out during phase 2).
  LpStatus Optimize(const std::vector<Rational>& objective,
                    const std::vector<bool>& forbidden, int* pivots,
                    const ResourceGovernor* governor) {
    // Maintain the reduced-cost row incrementally: start from the plain
    // objective and eliminate basic columns.
    std::vector<Rational> cost = objective;
    cost.resize(num_cols_, Rational());
    Rational cost_rhs;  // negative of current objective value offset
    for (int r = 0; r < num_rows(); ++r) EliminateBasic(r, &cost, &cost_rhs);

    while (true) {
      if (++*pivots > SimplexSolver::kMaxPivots) return LpStatus::kPivotLimit;
      if (TERMILOG_FAILPOINT_HIT("lp.pivot")) return LpStatus::kPivotLimit;
      if (governor != nullptr && !governor->Charge("lp.pivot").ok()) {
        return LpStatus::kPivotLimit;
      }
      // Bland: entering column = smallest index with negative reduced cost.
      int entering = -1;
      for (int c = 0; c < num_cols_; ++c) {
        if (!forbidden.empty() && forbidden[c]) continue;
        if (cost[c].sign() < 0) {
          entering = c;
          break;
        }
      }
      if (entering < 0) {
        objective_value_ = -cost_rhs;
        return LpStatus::kOptimal;
      }
      // Ratio test; Bland tie-break on basis variable index.
      int leaving = -1;
      Rational best_ratio;
      for (int r = 0; r < num_rows(); ++r) {
        if (rows_[r][entering].sign() <= 0) continue;
        Rational ratio = rhs_[r] / rows_[r][entering];
        if (leaving < 0 || ratio < best_ratio ||
            (ratio == best_ratio && basis_[r] < basis_[leaving])) {
          leaving = r;
          best_ratio = ratio;
        }
      }
      if (leaving < 0) return LpStatus::kUnbounded;
      Pivot(leaving, entering);
      EliminateBasic(leaving, &cost, &cost_rhs);
    }
  }

  // Gauss-Jordan pivot making column `col` basic in row `row`.
  void Pivot(int row, int col) {
    Rational inv = rows_[row][col].Inverse();
    for (Rational& v : rows_[row]) {
      if (!v.is_zero()) v *= inv;
    }
    rhs_[row] *= inv;
    for (int r = 0; r < num_rows(); ++r) {
      if (r == row) continue;
      Rational factor = rows_[r][col];
      if (factor.is_zero()) continue;
      for (int c = 0; c < num_cols_; ++c) {
        if (!rows_[row][c].is_zero()) {
          rows_[r][c] -= factor * rows_[row][c];
        }
      }
      rhs_[r] -= factor * rhs_[row];
    }
    basis_[row] = col;
  }

  // After phase 1 at optimum zero: pivot artificial variables out of the
  // basis, deleting redundant rows that contain no real column.
  void RemoveArtificials(int first_artificial) {
    for (int r = 0; r < num_rows();) {
      if (basis_[r] < first_artificial) {
        ++r;
        continue;
      }
      int col = -1;
      for (int c = 0; c < first_artificial; ++c) {
        if (!rows_[r][c].is_zero()) {
          col = c;
          break;
        }
      }
      if (col >= 0) {
        Pivot(r, col);
        ++r;
      } else {
        // Redundant row (all real coefficients zero; rhs must be zero at
        // phase-1 optimum). Drop it.
        TERMILOG_CHECK(rhs_[r].is_zero());
        rows_.erase(rows_.begin() + r);
        rhs_.erase(rhs_.begin() + r);
        basis_.erase(basis_.begin() + r);
      }
    }
    // Physically truncate the artificial columns.
    for (auto& row : rows_) row.resize(first_artificial);
    num_cols_ = first_artificial;
  }

  // Reads the current basic solution into a dense column-space vector.
  std::vector<Rational> Solution() const {
    std::vector<Rational> out(num_cols_);
    for (int r = 0; r < num_rows(); ++r) {
      if (basis_[r] < num_cols_) out[basis_[r]] = rhs_[r];
    }
    return out;
  }

  const Rational& objective_value() const { return objective_value_; }

 private:
  // Subtracts multiples of basic row `r` from the cost row so the basic
  // column's reduced cost becomes zero.
  void EliminateBasic(int r, std::vector<Rational>* cost,
                      Rational* cost_rhs) const {
    int col = basis_[r];
    Rational factor = (*cost)[col];
    if (factor.is_zero()) return;
    for (int c = 0; c < num_cols_; ++c) {
      if (!rows_[r][c].is_zero()) (*cost)[c] -= factor * rows_[r][c];
    }
    *cost_rhs -= factor * rhs_[r];
  }

  int num_cols_;
  std::vector<std::vector<Rational>> rows_;
  std::vector<Rational> rhs_;
  std::vector<int> basis_;
  Rational objective_value_;
};

LpResult SolveMin(const ConstraintSystem& system,
                  const std::vector<Rational>& objective,
                  const std::vector<bool>& is_free,
                  const ResourceGovernor* governor) {
  TERMILOG_TRACE("simplex.solve", "lp");
  const int n = system.num_vars();
  TERMILOG_CHECK(objective.empty() ||
                 static_cast<int>(objective.size()) == n);
  TERMILOG_CHECK(is_free.empty() || static_cast<int>(is_free.size()) == n);

  // Column layout: for each original variable one column, plus an extra
  // negative-part column for free variables; then one surplus column per
  // kGe row.
  std::vector<int> neg_col(n, -1);
  int next_col = n;
  for (int i = 0; i < n; ++i) {
    if (!is_free.empty() && is_free[i]) neg_col[i] = next_col++;
  }
  int first_surplus = next_col;
  int num_ge = 0;
  for (const Constraint& row : system.rows()) {
    if (row.rel == Relation::kGe) ++num_ge;
  }
  int total_cols = first_surplus + num_ge;

  Tableau tableau(total_cols);
  int surplus_index = first_surplus;
  for (const Constraint& row : system.rows()) {
    std::vector<Rational> coeffs(total_cols);
    for (int i = 0; i < n; ++i) {
      coeffs[i] = row.coeffs[i];
      if (neg_col[i] >= 0) coeffs[neg_col[i]] = -row.coeffs[i];
    }
    if (row.rel == Relation::kGe) {
      // coeffs.x + constant - s = 0  =>  coeffs.x - s = -constant
      coeffs[surplus_index++] = Rational(-1);
    }
    tableau.AddRow(std::move(coeffs), -row.constant);
  }

  int first_artificial = tableau.AppendIdentityBasis();
  int pivots = 0;
  // Records on every exit path; the body compiles away with TERMILOG_OBS.
  struct PivotRecorder {
    const int& pivots;
    ~PivotRecorder() {
      TERMILOG_COUNTER("simplex.solves", 1);
      TERMILOG_COUNTER("simplex.pivots", pivots);
      TERMILOG_HISTOGRAM("simplex.pivots_per_solve", pivots);
    }
  } pivot_recorder{pivots};

  // Phase 1: minimize the sum of artificials.
  std::vector<Rational> phase1_obj(tableau.num_cols());
  for (int c = first_artificial; c < tableau.num_cols(); ++c) {
    phase1_obj[c] = Rational(1);
  }
  LpStatus status = tableau.Optimize(phase1_obj, {}, &pivots, governor);
  LpResult result;
  if (status != LpStatus::kOptimal) {
    // Phase 1 is bounded below by zero, so kUnbounded cannot happen.
    result.status = status;
    return result;
  }
  if (tableau.objective_value().sign() > 0) {
    result.status = LpStatus::kInfeasible;
    return result;
  }
  tableau.RemoveArtificials(first_artificial);

  // Phase 2.
  std::vector<Rational> phase2_obj(tableau.num_cols());
  if (!objective.empty()) {
    for (int i = 0; i < n; ++i) {
      phase2_obj[i] = objective[i];
      if (neg_col[i] >= 0) phase2_obj[neg_col[i]] = -objective[i];
    }
  }
  status = tableau.Optimize(phase2_obj, {}, &pivots, governor);
  result.status = status;
  if (status != LpStatus::kOptimal) return result;

  std::vector<Rational> cols = tableau.Solution();
  result.point.resize(n);
  for (int i = 0; i < n; ++i) {
    result.point[i] = cols[i];
    if (neg_col[i] >= 0) result.point[i] -= cols[neg_col[i]];
  }
  result.objective = tableau.objective_value();
  TERMILOG_CHECK_MSG(system.SatisfiedBy(result.point),
                     "simplex returned an infeasible point");
  return result;
}

}  // namespace

LpResult SimplexSolver::Minimize(const ConstraintSystem& system,
                                 const std::vector<Rational>& objective,
                                 const std::vector<bool>& is_free,
                                 const ResourceGovernor* governor) {
  return SolveMin(system, objective, is_free, governor);
}

LpResult SimplexSolver::Maximize(const ConstraintSystem& system,
                                 const std::vector<Rational>& objective,
                                 const std::vector<bool>& is_free,
                                 const ResourceGovernor* governor) {
  std::vector<Rational> negated = objective;
  for (Rational& c : negated) c.Negate();
  LpResult result = SolveMin(system, negated, is_free, governor);
  result.objective.Negate();
  return result;
}

LpResult SimplexSolver::FindFeasible(const ConstraintSystem& system,
                                     const std::vector<bool>& is_free,
                                     const ResourceGovernor* governor) {
  return SolveMin(system, {}, is_free, governor);
}

}  // namespace termilog
