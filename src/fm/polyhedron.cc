#include "fm/polyhedron.h"

#include <utility>

#include "lp/simplex.h"
#include "util/check.h"

namespace termilog {

Polyhedron Polyhedron::Empty(int num_vars) {
  Polyhedron out(num_vars);
  out.known_empty_ = true;
  out.empty_cache_ = true;
  return out;
}

Polyhedron Polyhedron::NonNegativeOrthant(int num_vars) {
  Polyhedron out(num_vars);
  for (int i = 0; i < num_vars; ++i) out.system_.AddNonNegativity(i);
  return out;
}

Polyhedron Polyhedron::FromSystem(ConstraintSystem system) {
  Polyhedron out(system.num_vars());
  out.system_ = std::move(system);
  return out;
}

void Polyhedron::AddConstraint(Constraint row) {
  TERMILOG_CHECK(!known_empty_);
  system_.Add(std::move(row));
  empty_cache_.reset();
}

bool Polyhedron::IsEmpty() const {
  if (known_empty_) return true;
  if (!empty_cache_.has_value()) {
    std::vector<bool> all_free(system_.num_vars(), true);
    LpResult lp = SimplexSolver::FindFeasible(system_, all_free);
    empty_cache_ = (lp.status == LpStatus::kInfeasible);
  }
  return *empty_cache_;
}

bool Polyhedron::Entails(const Constraint& row) const {
  if (IsEmpty()) return true;
  std::vector<bool> all_free(system_.num_vars(), true);
  if (row.rel == Relation::kGe) {
    LpResult lp = SimplexSolver::Minimize(system_, row.coeffs, all_free);
    if (lp.status == LpStatus::kInfeasible) return true;
    if (lp.status != LpStatus::kOptimal) return false;
    return (lp.objective + row.constant).sign() >= 0;
  }
  // Equality: entailed iff min == max == -constant.
  LpResult lo = SimplexSolver::Minimize(system_, row.coeffs, all_free);
  if (lo.status == LpStatus::kInfeasible) return true;
  if (lo.status != LpStatus::kOptimal) return false;
  if ((lo.objective + row.constant).sign() != 0) return false;
  LpResult hi = SimplexSolver::Maximize(system_, row.coeffs, all_free);
  if (hi.status != LpStatus::kOptimal) return false;
  return (hi.objective + row.constant).sign() == 0;
}

bool Polyhedron::Contains(const Polyhedron& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  for (const Constraint& row : system_.rows()) {
    if (!other.Entails(row)) return false;
  }
  return true;
}

bool Polyhedron::Equals(const Polyhedron& other) const {
  return Contains(other) && other.Contains(*this);
}

bool Polyhedron::Contains(const std::vector<Rational>& point) const {
  if (IsEmpty()) return false;
  return system_.SatisfiedBy(point);
}

Result<Polyhedron> Polyhedron::Project(const std::vector<int>& keep,
                                       const FmOptions& options) const {
  if (IsEmpty()) return Polyhedron::Empty(static_cast<int>(keep.size()));
  Result<ConstraintSystem> projected =
      FourierMotzkin::Project(system_, keep, options);
  if (!projected.ok()) return projected.status();
  return Polyhedron::FromSystem(std::move(projected).value());
}

Result<Polyhedron> Polyhedron::ConvexHull(const Polyhedron& p,
                                          const Polyhedron& q,
                                          const FmOptions& options) {
  TERMILOG_CHECK(p.num_vars() == q.num_vars());
  const int n = p.num_vars();
  if (p.IsEmpty()) return q;
  if (q.IsEmpty()) return p;
  // Lifted encoding over [x (n) | y (n) | lambda (1)] where y plays the
  // role of lambda * x_p and (x - y) of (1 - lambda) * x_q:
  //   row of P:  coeffs.y       + constant*lambda           REL 0
  //   row of Q:  coeffs.(x - y) + constant*(1 - lambda)     REL 0
  //   0 <= lambda <= 1
  // FM-eliminating y and lambda yields cl(conv(P union Q)).
  const int total = 2 * n + 1;
  const int lambda = 2 * n;
  ConstraintSystem lifted(total);
  for (const Constraint& row : p.constraints().rows()) {
    Constraint out;
    out.rel = row.rel;
    out.coeffs.resize(total);
    for (int i = 0; i < n; ++i) out.coeffs[n + i] = row.coeffs[i];
    out.coeffs[lambda] = row.constant;
    out.constant = Rational(0);
    lifted.Add(std::move(out));
  }
  for (const Constraint& row : q.constraints().rows()) {
    Constraint out;
    out.rel = row.rel;
    out.coeffs.resize(total);
    for (int i = 0; i < n; ++i) {
      out.coeffs[i] = row.coeffs[i];
      out.coeffs[n + i] = -row.coeffs[i];
    }
    out.coeffs[lambda] = -row.constant;
    out.constant = row.constant;
    lifted.Add(std::move(out));
  }
  {
    Constraint lo;
    lo.rel = Relation::kGe;
    lo.coeffs.resize(total);
    lo.coeffs[lambda] = Rational(1);
    lifted.Add(std::move(lo));
    Constraint hi;
    hi.rel = Relation::kGe;
    hi.coeffs.resize(total);
    hi.coeffs[lambda] = Rational(-1);
    hi.constant = Rational(1);
    lifted.Add(std::move(hi));
  }
  std::vector<int> keep(n);
  for (int i = 0; i < n; ++i) keep[i] = i;
  Result<ConstraintSystem> projected =
      FourierMotzkin::Project(lifted, keep, options);
  if (!projected.ok()) return projected.status();
  Polyhedron hull = Polyhedron::FromSystem(std::move(projected).value());
  hull.Minimize();
  return hull;
}

Polyhedron Polyhedron::Widen(const Polyhedron& newer) const {
  TERMILOG_CHECK(num_vars() == newer.num_vars());
  if (IsEmpty()) return newer;
  if (newer.IsEmpty()) return *this;
  Polyhedron out(num_vars());
  for (const Constraint& row : system_.rows()) {
    if (newer.Entails(row)) {
      out.system_.Add(row);
      continue;
    }
    // An equality row is two inequalities; one direction may survive even
    // when the other drifts (e.g. a1 = 2 + a2 relaxing to a1 >= 2 + a2
    // across the e/t/n grammar fixpoint). Keep the stable half.
    if (row.rel == Relation::kEq) {
      Constraint forward = row;
      forward.rel = Relation::kGe;
      if (newer.Entails(forward)) {
        out.system_.Add(forward);
      } else {
        Constraint backward = forward.Scaled(Rational(1));
        for (Rational& c : backward.coeffs) c = -c;
        backward.constant = -backward.constant;
        if (newer.Entails(backward)) out.system_.Add(backward);
      }
    }
  }
  // H79-style second clause, restricted to equalities: keep equality rows
  // of the new value that the old value already satisfied. Without this
  // the first clause can discard an invariant equality the moment its
  // syntactic form shifts (e.g. x0 = x1 drifting to x0 = x1 + x2 as the
  // append/split fixpoint unfolds). Equalities are safe for convergence:
  // the affine hull of an increasing chain only grows, so the set of
  // persistent equalities stabilizes.
  for (const Constraint& row : newer.system_.rows()) {
    if (row.rel == Relation::kEq && Entails(row)) out.system_.Add(row);
  }
  out.system_.Simplify();
  return out;
}

ConstraintSystem Polyhedron::Instantiate(const std::vector<LinearExpr>& images,
                                         int target_num_vars) const {
  TERMILOG_CHECK_MSG(!IsEmpty(), "instantiating the empty polyhedron");
  TERMILOG_CHECK(static_cast<int>(images.size()) == num_vars());
  ConstraintSystem out(target_num_vars);
  for (const Constraint& row : system_.rows()) {
    LinearExpr expr(row.constant);
    for (int i = 0; i < num_vars(); ++i) {
      if (!row.coeffs[i].is_zero()) expr += images[i] * row.coeffs[i];
    }
    out.AddExpr(expr, row.rel);
  }
  return out;
}

void Polyhedron::Minimize() {
  if (known_empty_) return;
  if (!system_.Simplify()) {
    known_empty_ = true;
    empty_cache_ = true;
    system_ = ConstraintSystem(system_.num_vars());
    return;
  }
  FourierMotzkin::LpPruneRedundant(&system_);
}

std::string Polyhedron::ToString(
    const std::function<std::string(int)>* namer) const {
  if (IsEmpty()) return "false\n";
  if (system_.rows().empty()) return "true\n";
  return system_.ToString(namer);
}

}  // namespace termilog
