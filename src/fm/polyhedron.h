#ifndef TERMILOG_FM_POLYHEDRON_H_
#define TERMILOG_FM_POLYHEDRON_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fm/fourier_motzkin.h"
#include "linalg/constraint.h"
#include "linalg/linear_expr.h"
#include "util/status.h"

namespace termilog {

/// Closed convex polyhedron in constraint representation. This is the
/// abstract domain of the [VG90] inter-argument constraint inference the
/// paper imports in Section 3: one polyhedron per predicate describes the
/// feasible argument-size vectors of its derivable facts.
///
/// Variables are unrestricted by default; nonnegativity (argument sizes are
/// sizes) is added explicitly by NonNegativeOrthant or AddConstraint.
/// The empty polyhedron is a distinguished value (the inference lattice
/// bottom), not merely a contradictory system.
class Polyhedron {
 public:
  /// Constructs the universe over `num_vars` variables.
  explicit Polyhedron(int num_vars) : system_(num_vars) {}

  static Polyhedron Universe(int num_vars) { return Polyhedron(num_vars); }
  static Polyhedron Empty(int num_vars);
  /// { x : x_i >= 0 for all i }.
  static Polyhedron NonNegativeOrthant(int num_vars);
  /// Wraps an explicit system (empty-ness determined lazily by LP).
  static Polyhedron FromSystem(ConstraintSystem system);

  int num_vars() const { return system_.num_vars(); }
  const ConstraintSystem& constraints() const { return system_; }

  /// Adds one row; invalidates cached emptiness.
  void AddConstraint(Constraint row);

  /// True iff no point satisfies the constraints (exact LP; cached).
  bool IsEmpty() const;

  /// True when this value is the hard bottom (built by Empty(), or by
  /// Minimize() collapsing a syntactic contradiction): emptiness known
  /// without any LP work, and `constraints()` holds no rows. Exposed so
  /// serializers (src/persist/) can reproduce the exact value state —
  /// IsEmpty() would instead *decide* emptiness, turning a lazily-unknown
  /// system of rows into a rowless bottom on round trip.
  bool known_empty() const { return known_empty_; }

  /// True iff every point of the polyhedron satisfies `row`.
  bool Entails(const Constraint& row) const;

  /// True iff `other` is a subset of this polyhedron.
  bool Contains(const Polyhedron& other) const;

  /// Set equality (mutual containment).
  bool Equals(const Polyhedron& other) const;

  /// True when `point` lies in the polyhedron.
  bool Contains(const std::vector<Rational>& point) const;

  /// FM projection onto the listed variables (result width = keep.size()).
  Result<Polyhedron> Project(const std::vector<int>& keep,
                             const FmOptions& options = FmOptions()) const;

  /// Closed convex hull of the union, computed by the lifted-FM encoding
  /// (used as the join of the inference fixpoint).
  static Result<Polyhedron> ConvexHull(const Polyhedron& p,
                                       const Polyhedron& q,
                                       const FmOptions& options = FmOptions());

  /// Standard (Cousot-Halbwachs) widening: keeps the rows of *this that
  /// `newer` still entails. Requires equal dimensions. If either side is
  /// empty, returns `newer` / *this appropriately.
  Polyhedron Widen(const Polyhedron& newer) const;

  /// Instantiates the polyhedron through an affine map: variable i of this
  /// polyhedron is replaced by `images[i]`, a linear expression over a
  /// target space of width `target_num_vars`. Returns the resulting rows
  /// (constraints over the target space). Requires !IsEmpty().
  ConstraintSystem Instantiate(const std::vector<LinearExpr>& images,
                               int target_num_vars) const;

  /// Normalizes rows and removes LP-redundant ones.
  void Minimize();

  /// One row per line; "false" for the empty polyhedron, "true" for the
  /// universe.
  std::string ToString(
      const std::function<std::string(int)>* namer = nullptr) const;

 private:
  ConstraintSystem system_;
  bool known_empty_ = false;             // hard bottom marker
  mutable std::optional<bool> empty_cache_;
};

}  // namespace termilog

#endif  // TERMILOG_FM_POLYHEDRON_H_
