#include "fm/fourier_motzkin.h"

#include <algorithm>
#include <utility>

#include "lp/simplex.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Combines a positive-coefficient and a negative-coefficient kGe row so the
// eliminated variable cancels. Both multipliers are positive, preserving
// the inequality direction.
Constraint CombineGe(const Constraint& pos, const Constraint& neg, int var) {
  const Rational& p = pos.coeffs[var];
  const Rational& q = neg.coeffs[var];
  TERMILOG_CHECK(p.sign() > 0 && q.sign() < 0);
  Constraint out;
  out.rel = Relation::kGe;
  out.coeffs.resize(pos.coeffs.size());
  // Multipliers (-q, p) cancel the eliminated column; dividing both by
  // their gcd (legal: any common positive factor) keeps the combined row's
  // coefficients as small as possible before Simplify renormalizes, which
  // is what keeps deep eliminations inside the Rational int64 fast path.
  // Rows are integer after Simplify, so the integer case is the hot one.
  Rational mp, mq;
  if (p.is_integer() && q.is_integer()) {
    BigInt g = BigInt::Gcd(p.num(), q.num());
    if (g.is_one()) {
      mp = Rational(-q.num());
      mq = Rational(p.num());
    } else {
      mp = Rational(-(q.num() / g));
      mq = Rational(p.num() / g);
    }
  } else {
    mp = -q;
    mq = p;
  }
  for (size_t i = 0; i < out.coeffs.size(); ++i) {
    out.coeffs[i] = pos.coeffs[i] * mp + neg.coeffs[i] * mq;
  }
  out.constant = pos.constant * mp + neg.constant * mq;
  TERMILOG_CHECK(out.coeffs[var].is_zero());
  return out;
}

// Substitutes an equality row (pivot) into `row` so that `row` no longer
// mentions x_var. The pivot is scaled by a signed factor, which is legal
// because it is an equality.
Constraint SubstituteEq(const Constraint& row, const Constraint& pivot,
                        int var) {
  const Rational& c = row.coeffs[var];
  if (c.is_zero()) return row;
  Rational factor = -(c / pivot.coeffs[var]);
  Constraint out = row;
  for (size_t i = 0; i < out.coeffs.size(); ++i) {
    out.coeffs[i] = out.coeffs[i] + pivot.coeffs[i] * factor;
  }
  out.constant = out.constant + pivot.constant * factor;
  TERMILOG_CHECK(out.coeffs[var].is_zero());
  return out;
}

}  // namespace

Status FourierMotzkin::EliminateVariable(ConstraintSystem* system, int var,
                                         const FmOptions& options) {
  TERMILOG_CHECK(var >= 0 && var < system->num_vars());
  TERMILOG_FAILPOINT("fm.eliminate");
  TERMILOG_TRACE("fm.eliminate", "fm");
  TERMILOG_COUNTER("fm.eliminations", 1);

  // Prefer a Gaussian step on an equality row mentioning the variable.
  int pivot_index = -1;
  for (size_t i = 0; i < system->rows().size(); ++i) {
    const Constraint& row = system->rows()[i];
    if (row.rel == Relation::kEq && !row.coeffs[var].is_zero()) {
      pivot_index = static_cast<int>(i);
      break;
    }
  }
  if (pivot_index >= 0) {
    TERMILOG_COUNTER("fm.gauss_steps", 1);
    if (options.governor != nullptr) {
      Status charged = options.governor->Charge(
          "fm.eliminate", static_cast<int64_t>(system->rows().size()));
      if (!charged.ok()) return charged;
    }
    Constraint pivot = system->rows()[pivot_index];
    std::vector<Constraint> next;
    next.reserve(system->rows().size() - 1);
    for (size_t i = 0; i < system->rows().size(); ++i) {
      if (static_cast<int>(i) == pivot_index) continue;
      next.push_back(SubstituteEq(system->rows()[i], pivot, var));
    }
    system->mutable_rows() = std::move(next);
    system->Simplify();
    return Status::Ok();
  }

  // Plain FM on the inequality rows.
  std::vector<Constraint> zero, pos, neg;
  for (const Constraint& row : system->rows()) {
    int sign = row.coeffs[var].sign();
    if (sign == 0) {
      zero.push_back(row);
    } else if (sign > 0) {
      pos.push_back(row);
    } else {
      neg.push_back(row);
    }
  }
  size_t projected = zero.size() + pos.size() * neg.size();
  TERMILOG_COUNTER("fm.rows_generated",
                   static_cast<std::int64_t>(pos.size() * neg.size()));
  TERMILOG_COUNTER("fm.rows_eliminated",
                   static_cast<std::int64_t>(pos.size() + neg.size()));
  TERMILOG_HISTOGRAM("fm.rows_per_step",
                     static_cast<std::int64_t>(projected));
  if (projected > options.row_limit) {
    return Status::ResourceExhausted(
        StrCat("FM blowup eliminating x", var, ": ", projected, " rows"));
  }
  // One work tick per row combination: the pairing product is exactly the
  // number of CombineGe calls below.
  if (options.governor != nullptr) {
    Status charged = options.governor->Charge(
        "fm.eliminate", static_cast<int64_t>(projected) + 1);
    if (!charged.ok()) return charged;
  }
  std::vector<Constraint> next = std::move(zero);
  for (const Constraint& p : pos) {
    for (const Constraint& n : neg) {
      next.push_back(CombineGe(p, n, var));
    }
  }
  system->mutable_rows() = std::move(next);
  system->Simplify();
  if (options.lp_prune && system->size() > options.lp_prune_threshold) {
    LpPruneRedundant(system, options.governor);
  }
  return Status::Ok();
}

Result<ConstraintSystem> FourierMotzkin::Project(
    const ConstraintSystem& system, const std::vector<int>& keep,
    const FmOptions& options) {
  TERMILOG_TRACE("fm.project", "fm");
  std::vector<bool> keep_mask(system.num_vars(), false);
  for (int var : keep) {
    TERMILOG_CHECK(var >= 0 && var < system.num_vars());
    keep_mask[var] = true;
  }
  ConstraintSystem work = system;
  work.Simplify();

  // Repeatedly eliminate the cheapest remaining variable: equality pivots
  // are free, otherwise minimize the pos*neg pairing growth.
  while (true) {
    int best_var = -1;
    long best_cost = -1;
    bool best_is_eq = false;
    std::vector<int> pos_count(work.num_vars(), 0);
    std::vector<int> neg_count(work.num_vars(), 0);
    std::vector<bool> in_eq(work.num_vars(), false);
    std::vector<bool> used(work.num_vars(), false);
    for (const Constraint& row : work.rows()) {
      for (int v = 0; v < work.num_vars(); ++v) {
        int sign = row.coeffs[v].sign();
        if (sign == 0) continue;
        used[v] = true;
        if (row.rel == Relation::kEq) {
          in_eq[v] = true;
        } else if (sign > 0) {
          ++pos_count[v];
        } else {
          ++neg_count[v];
        }
      }
    }
    for (int v = 0; v < work.num_vars(); ++v) {
      if (keep_mask[v] || !used[v]) continue;
      long cost;
      bool is_eq = in_eq[v];
      if (is_eq) {
        cost = 0;
      } else {
        cost = static_cast<long>(pos_count[v]) * neg_count[v] -
               pos_count[v] - neg_count[v];
      }
      if (best_var < 0 || (is_eq && !best_is_eq) ||
          (is_eq == best_is_eq && cost < best_cost)) {
        best_var = v;
        best_cost = cost;
        best_is_eq = is_eq;
      }
    }
    if (best_var < 0) break;
    Status status = EliminateVariable(&work, best_var, options);
    if (!status.ok()) return status;
  }

  // Compact columns to the keep order.
  ConstraintSystem out(static_cast<int>(keep.size()));
  for (const Constraint& row : work.rows()) {
    Constraint compact;
    compact.rel = row.rel;
    compact.constant = row.constant;
    compact.coeffs.resize(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      compact.coeffs[i] = row.coeffs[keep[i]];
    }
    out.Add(std::move(compact));
  }
  out.Simplify();
  return out;
}

void FourierMotzkin::LpPruneRedundant(ConstraintSystem* system,
                                      const ResourceGovernor* governor) {
  TERMILOG_TRACE("fm.lp_prune", "fm");
  std::vector<Constraint>& rows = system->mutable_rows();
  std::vector<bool> all_free(system->num_vars(), true);
  // Rows are tested from the end (matching the historical erase order, so
  // the surviving set and its order are unchanged) but removal is deferred:
  // pruned rows are only flagged here and dropped in one stable compaction
  // pass below, instead of an O(rows) vector::erase per pruned row.
  std::vector<bool> alive(rows.size(), true);
  size_t pruned = 0;
  for (size_t i = rows.size(); i-- > 0;) {
    // A system left unpruned is still correct, so an exhausted budget just
    // stops the optimization.
    if (governor != nullptr && governor->exhausted()) break;
    const Constraint& row = rows[i];
    if (row.rel == Relation::kEq) continue;
    ConstraintSystem rest(system->num_vars());
    for (size_t j = 0; j < rows.size(); ++j) {
      if (j != i && alive[j]) rest.Add(rows[j]);
    }
    // Redundant iff min(coeffs.x) over `rest` satisfies min + constant >= 0.
    LpResult lp = SimplexSolver::Minimize(rest, row.coeffs, all_free, governor);
    bool redundant = false;
    if (lp.status == LpStatus::kInfeasible) {
      redundant = true;  // empty system entails anything
    } else if (lp.status == LpStatus::kOptimal) {
      redundant = (lp.objective + row.constant).sign() >= 0;
    }
    if (redundant) {
      TERMILOG_COUNTER("fm.rows_pruned", 1);
      alive[i] = false;
      ++pruned;
    }
  }
  if (pruned == 0) return;
  size_t write = 0;
  for (size_t read = 0; read < rows.size(); ++read) {
    if (!alive[read]) continue;
    if (write != read) rows[write] = std::move(rows[read]);
    ++write;
  }
  TERMILOG_DCHECK(write + pruned == rows.size());
  rows.resize(write);
}

}  // namespace termilog
