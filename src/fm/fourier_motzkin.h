#ifndef TERMILOG_FM_FOURIER_MOTZKIN_H_
#define TERMILOG_FM_FOURIER_MOTZKIN_H_

#include <vector>

#include "linalg/constraint.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {

/// Tuning knobs for Fourier-Motzkin elimination. The paper (Section 4)
/// notes FM is "simple and adequate in practice"; the row limit is a safety
/// valve against its worst-case doubling, and LP-based pruning keeps
/// intermediate systems minimal on the larger corpus programs.
struct FmOptions {
  /// Abort with kResourceExhausted if an elimination step would exceed this
  /// many rows.
  size_t row_limit = 50000;
  /// Run LP-based redundancy pruning when the row count after an
  /// elimination step exceeds lp_prune_threshold.
  bool lp_prune = true;
  size_t lp_prune_threshold = 48;
  /// Shared analysis budget (not owned; may be null). Every elimination
  /// step charges its row-combination count; trips surface as
  /// kResourceExhausted with the governor's structured reason.
  const ResourceGovernor* governor = nullptr;
};

/// Fourier-Motzkin variable elimination over ConstraintSystem rows.
/// Variables carry no implicit sign restriction here: nonnegativity, where
/// wanted, must be present as explicit rows. This matches the dual systems
/// of Eq. 8/9 where the `w` variables are free.
class FourierMotzkin {
 public:
  /// Eliminates x_var from the system: afterwards no row mentions it (the
  /// column remains, zeroed). Equality rows are used as substitutions when
  /// available (Gaussian step); otherwise positive/negative row pairs are
  /// combined. Returns kResourceExhausted on blowup. The system may become
  /// trivially infeasible; detect that with Simplify()/LP afterwards.
  static Status EliminateVariable(ConstraintSystem* system, int var,
                                  const FmOptions& options = FmOptions());

  /// Projects the system onto the variables in `keep` (in the given order):
  /// eliminates all others, then rewrites columns so the result has exactly
  /// keep.size() variables. Elimination order is chosen greedily to
  /// minimize the pairing product at each step.
  static Result<ConstraintSystem> Project(const ConstraintSystem& system,
                                          const std::vector<int>& keep,
                                          const FmOptions& options =
                                              FmOptions());

  /// Removes rows entailed by the remaining rows (exact LP check, all
  /// variables treated as free). Keeps equality rows intact. Pruning is an
  /// optimization, so a governed solver that runs out of budget simply
  /// leaves the remaining rows unpruned.
  static void LpPruneRedundant(ConstraintSystem* system,
                               const ResourceGovernor* governor = nullptr);
};

}  // namespace termilog

#endif  // TERMILOG_FM_FOURIER_MOTZKIN_H_
