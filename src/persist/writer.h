#ifndef TERMILOG_PERSIST_WRITER_H_
#define TERMILOG_PERSIST_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "persist/store.h"

namespace termilog {
namespace persist {

/// Write-behind persistence: a bounded queue drained by one background
/// thread, so engine workers hand off a freshly computed outcome in O(1)
/// and never wait on the disk. The queue sheds rather than blocks — when
/// it is full the entry is dropped (counted in `dropped`), which merely
/// means a future run recomputes that SCC: losing a persistence write
/// degrades to a cache miss, the same contract as store corruption.
///
/// Destruction (and Drain) block until every queued entry has been
/// appended and the store flushed, so a clean shutdown loses nothing.
class StoreWriter {
 public:
  /// `store` must outlive the writer.
  explicit StoreWriter(PersistentStore* store, size_t queue_capacity = 4096);
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Queues one SCC outcome for appending; never blocks. Returns false
  /// (and counts a drop) when the queue is full or the writer is shutting
  /// down.
  bool Enqueue(std::string key, CachedSccOutcome outcome);

  /// Queues one inference outcome; same contract as Enqueue. Both kinds
  /// share the queue (and its capacity), preserving arrival order.
  bool EnqueueInference(std::string key, CachedInferenceOutcome outcome);

  /// Blocks until the queue is empty and the store has been flushed.
  /// Returns the first append/flush error seen over the writer's
  /// lifetime (entries whose append failed are lost, not retried).
  Status Drain();

  /// Entries shed because the queue was full.
  int64_t dropped() const;
  /// Entries successfully handed to the store.
  int64_t written() const;

 private:
  // One queued append of either record kind.
  struct QueueItem {
    bool inference = false;
    std::string key;
    CachedSccOutcome scc;
    CachedInferenceOutcome inf;
  };

  void Loop();
  bool EnqueueItem(QueueItem item);

  PersistentStore* const store_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals the writer thread
  std::condition_variable drain_cv_;  // signals Drain waiters
  std::deque<QueueItem> queue_;
  bool shutdown_ = false;
  bool busy_ = false;  // writer thread is mid-append (queue may be empty)
  int64_t dropped_ = 0;
  int64_t written_ = 0;
  Status first_error_;
  std::thread thread_;
};

}  // namespace persist
}  // namespace termilog

#endif  // TERMILOG_PERSIST_WRITER_H_
