#include "persist/store.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace persist {
namespace {

constexpr char kMagic[8] = {'T', 'L', 'S', 'T', 'O', 'R', 'E', '1'};
constexpr size_t kHeaderSize = 16;   // magic[8] + version u32 + crc u32
constexpr size_t kFrameHeaderSize = 12;  // len u32 + len_crc u32 + payload_crc u32
constexpr uint32_t kMaxPayloadLen = 1u << 30;
constexpr uint8_t kRecordTypeSccOutcome = 1;
constexpr uint8_t kRecordTypeInference = 2;

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void PutString(std::string* out, std::string_view text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

// Bounds-checked sequential reader over a record payload. Every length
// field is validated against the bytes actually present before any
// allocation, so a corrupt length degrades to a decode error, not an
// oversized allocation.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) return false;
    *out = GetU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string FrameBytes(std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  // len_crc covers exactly the four length bytes just written.
  PutU32(&frame, Crc32(std::string_view(frame.data(), 4)));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

std::string HeaderBytes() {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kStoreFormatVersion);
  PutU32(&header, Crc32(std::string_view(header.data(), 12)));
  return header;
}

Result<Rational> ParseRational(const std::string& text) {
  return Rational::FromString(text);
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeRecord(const std::string& key,
                         const CachedSccOutcome& outcome) {
  std::string out;
  out.push_back(static_cast<char>(kRecordTypeSccOutcome));
  PutString(&out, key);
  out.push_back(static_cast<char>(outcome.status));
  out.push_back(outcome.used_negative_deltas ? 1 : 0);
  PutString(&out, outcome.reduced_constraints);
  PutU32(&out, static_cast<uint32_t>(outcome.notes.size()));
  for (const std::string& note : outcome.notes) PutString(&out, note);
  PutU32(&out, static_cast<uint32_t>(outcome.theta.size()));
  for (const CachedSccOutcome::NamedTheta& theta : outcome.theta) {
    PutString(&out, theta.name);
    PutU32(&out, static_cast<uint32_t>(theta.arity));
    PutU32(&out, static_cast<uint32_t>(theta.coeffs.size()));
    for (const Rational& coeff : theta.coeffs) {
      PutString(&out, coeff.ToString());
    }
  }
  PutU32(&out, static_cast<uint32_t>(outcome.delta.size()));
  for (const CachedSccOutcome::NamedDelta& delta : outcome.delta) {
    PutString(&out, delta.from_name);
    PutU32(&out, static_cast<uint32_t>(delta.from_arity));
    PutString(&out, delta.to_name);
    PutU32(&out, static_cast<uint32_t>(delta.to_arity));
    PutString(&out, delta.value.ToString());
  }
  return out;
}

Result<std::pair<std::string, CachedSccOutcome>> DecodeRecord(
    std::string_view payload) {
  auto bad = [](const char* what) {
    return Status::InvalidArgument(StrCat("store record: ", what));
  };
  Reader reader(payload);
  uint8_t record_type = 0;
  if (!reader.ReadU8(&record_type)) return bad("truncated record type");
  if (record_type != kRecordTypeSccOutcome) return bad("unknown record type");
  std::string key;
  if (!reader.ReadString(&key)) return bad("truncated key");
  if (key.empty()) return bad("empty key");
  CachedSccOutcome outcome;
  uint8_t status = 0, negative = 0;
  if (!reader.ReadU8(&status) || !reader.ReadU8(&negative)) {
    return bad("truncated status");
  }
  if (status > static_cast<uint8_t>(SccStatus::kResourceLimit)) {
    return bad("status out of range");
  }
  outcome.status = static_cast<SccStatus>(status);
  if (outcome.status == SccStatus::kResourceLimit) {
    // A starved verdict says the budget ran out, not what the answer is;
    // serving one from disk would be a wrong verdict by construction.
    return bad("kResourceLimit outcome must not be persisted");
  }
  if (negative > 1) return bad("bad bool");
  outcome.used_negative_deltas = negative == 1;
  if (!reader.ReadString(&outcome.reduced_constraints)) {
    return bad("truncated constraints");
  }
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return bad("truncated note count");
  for (uint32_t i = 0; i < count; ++i) {
    std::string note;
    if (!reader.ReadString(&note)) return bad("truncated note");
    outcome.notes.push_back(std::move(note));
  }
  if (!reader.ReadU32(&count)) return bad("truncated theta count");
  for (uint32_t i = 0; i < count; ++i) {
    CachedSccOutcome::NamedTheta theta;
    uint32_t arity = 0, coeffs = 0;
    if (!reader.ReadString(&theta.name) || !reader.ReadU32(&arity) ||
        !reader.ReadU32(&coeffs)) {
      return bad("truncated theta");
    }
    if (theta.name.empty() || arity > (1u << 20)) return bad("bad theta");
    theta.arity = static_cast<int>(arity);
    for (uint32_t c = 0; c < coeffs; ++c) {
      std::string text;
      if (!reader.ReadString(&text)) return bad("truncated coefficient");
      Result<Rational> value = ParseRational(text);
      if (!value.ok()) return bad("unparseable coefficient");
      theta.coeffs.push_back(std::move(*value));
    }
    outcome.theta.push_back(std::move(theta));
  }
  if (!reader.ReadU32(&count)) return bad("truncated delta count");
  for (uint32_t i = 0; i < count; ++i) {
    CachedSccOutcome::NamedDelta delta;
    uint32_t from_arity = 0, to_arity = 0;
    std::string text;
    if (!reader.ReadString(&delta.from_name) || !reader.ReadU32(&from_arity) ||
        !reader.ReadString(&delta.to_name) || !reader.ReadU32(&to_arity) ||
        !reader.ReadString(&text)) {
      return bad("truncated delta");
    }
    if (delta.from_name.empty() || delta.to_name.empty() ||
        from_arity > (1u << 20) || to_arity > (1u << 20)) {
      return bad("bad delta");
    }
    delta.from_arity = static_cast<int>(from_arity);
    delta.to_arity = static_cast<int>(to_arity);
    Result<Rational> value = ParseRational(text);
    if (!value.ok()) return bad("unparseable delta value");
    delta.value = std::move(*value);
    outcome.delta.push_back(std::move(delta));
  }
  if (!reader.AtEnd()) return bad("trailing bytes");
  return std::make_pair(std::move(key), std::move(outcome));
}

std::string EncodeInferenceRecord(const std::string& key,
                                  const CachedInferenceOutcome& outcome) {
  std::string out;
  out.push_back(static_cast<char>(kRecordTypeInference));
  PutString(&out, key);
  PutU32(&out, static_cast<uint32_t>(outcome.entries.size()));
  for (const CachedInferenceOutcome::Entry& entry : outcome.entries) {
    PutString(&out, entry.name);
    PutU32(&out, static_cast<uint32_t>(entry.arity));
    const Polyhedron& polyhedron = entry.polyhedron;
    // The exact value state: hard bottom carries no rows; otherwise the
    // rows verbatim (re-deciding emptiness happens lazily on use, exactly
    // as for the freshly computed value).
    out.push_back(polyhedron.known_empty() ? 1 : 0);
    const ConstraintSystem& system = polyhedron.constraints();
    PutU32(&out, static_cast<uint32_t>(system.rows().size()));
    for (const Constraint& row : system.rows()) {
      out.push_back(row.rel == Relation::kEq ? 0 : 1);
      PutU32(&out, static_cast<uint32_t>(row.coeffs.size()));
      for (const Rational& coeff : row.coeffs) PutString(&out, coeff.ToString());
      PutString(&out, row.constant.ToString());
    }
  }
  return out;
}

Result<std::pair<std::string, CachedInferenceOutcome>> DecodeInferenceRecord(
    std::string_view payload) {
  auto bad = [](const char* what) {
    return Status::InvalidArgument(StrCat("store inference record: ", what));
  };
  Reader reader(payload);
  uint8_t record_type = 0;
  if (!reader.ReadU8(&record_type)) return bad("truncated record type");
  if (record_type != kRecordTypeInference) return bad("unknown record type");
  std::string key;
  if (!reader.ReadString(&key)) return bad("truncated key");
  if (key.empty()) return bad("empty key");
  CachedInferenceOutcome outcome;
  uint32_t entry_count = 0;
  if (!reader.ReadU32(&entry_count)) return bad("truncated entry count");
  for (uint32_t i = 0; i < entry_count; ++i) {
    CachedInferenceOutcome::Entry entry;
    uint32_t arity = 0;
    uint8_t known_empty = 0;
    uint32_t row_count = 0;
    if (!reader.ReadString(&entry.name) || !reader.ReadU32(&arity) ||
        !reader.ReadU8(&known_empty) || !reader.ReadU32(&row_count)) {
      return bad("truncated entry");
    }
    if (entry.name.empty() || arity > (1u << 20)) return bad("bad entry");
    if (known_empty > 1) return bad("bad bool");
    entry.arity = static_cast<int>(arity);
    if (known_empty == 1) {
      // The hard bottom holds no rows by construction (Polyhedron
      // invariant); a record claiming both is corrupt.
      if (row_count != 0) return bad("hard-bottom entry with rows");
      entry.polyhedron = Polyhedron::Empty(entry.arity);
      outcome.entries.push_back(std::move(entry));
      continue;
    }
    ConstraintSystem system(entry.arity);
    for (uint32_t r = 0; r < row_count; ++r) {
      uint8_t rel = 0;
      uint32_t coeff_count = 0;
      if (!reader.ReadU8(&rel) || !reader.ReadU32(&coeff_count)) {
        return bad("truncated row");
      }
      if (rel > 1) return bad("bad relation");
      if (coeff_count != arity) return bad("row width != arity");
      std::vector<Rational> coeffs;
      for (uint32_t c = 0; c < coeff_count; ++c) {
        std::string text;
        if (!reader.ReadString(&text)) return bad("truncated coefficient");
        Result<Rational> value = ParseRational(text);
        if (!value.ok()) return bad("unparseable coefficient");
        coeffs.push_back(std::move(*value));
      }
      std::string constant_text;
      if (!reader.ReadString(&constant_text)) return bad("truncated constant");
      Result<Rational> constant = ParseRational(constant_text);
      if (!constant.ok()) return bad("unparseable constant");
      system.Add(Constraint(std::move(coeffs), std::move(*constant),
                            rel == 0 ? Relation::kEq : Relation::kGe));
    }
    entry.polyhedron = Polyhedron::FromSystem(std::move(system));
    outcome.entries.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) return bad("trailing bytes");
  // resource_limited is not even encoded: a retained outcome is by
  // definition a completed fixpoint.
  return std::make_pair(std::move(key), std::move(outcome));
}

PersistentStore::PersistentStore(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

PersistentStore::~PersistentStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fflush(file_);
    ::fsync(fileno(file_));
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    const std::string& path) {
  namespace fs = std::filesystem;
  StoreStats stats;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      bytes = buffer.str();
    }
  }

  bool fresh = bytes.empty();
  if (!fresh) {
    // Header validation: magic, version, header CRC. Anything off means
    // the file is not ours to decode — set it aside whole and start
    // empty (its entries degrade to cache misses; nothing is deleted).
    bool header_ok =
        bytes.size() >= kHeaderSize &&
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0 &&
        GetU32(bytes.data() + 12) ==
            Crc32(std::string_view(bytes.data(), 12));
    uint32_t version = bytes.size() >= kHeaderSize ? GetU32(bytes.data() + 8)
                                                   : 0;
    if (!header_ok || version != kStoreFormatVersion) {
      std::string aside = path + ".quarantined";
      std::error_code ec;
      fs::rename(path, aside, ec);
      if (ec) {
        return Status::Internal(
            StrCat("store: cannot quarantine unreadable file ", path, ": ",
                   ec.message()));
      }
      stats.file_quarantined = true;
      stats.notes.push_back(
          !header_ok
              ? StrCat("store header unreadable; file set aside as ", aside)
              : StrCat("store format version ", version, " != ",
                       kStoreFormatVersion, "; file set aside as ", aside));
      fresh = true;
      bytes.clear();
    }
  }

  std::map<std::string, CachedSccOutcome> entries;
  std::map<std::string, CachedInferenceOutcome> inference_entries;
  std::map<std::string, int64_t> frame_bytes;
  int64_t record_bytes_total = 0;
  int64_t record_bytes_live = 0;
  size_t valid_end = kHeaderSize;
  if (!fresh) {
    size_t pos = kHeaderSize;
    while (pos < bytes.size()) {
      if (pos + kFrameHeaderSize > bytes.size()) {
        stats.notes.push_back(StrCat("torn frame header at offset ", pos,
                                     "; tail truncated"));
        break;  // torn tail: a frame header was mid-write at the crash
      }
      uint32_t len = GetU32(bytes.data() + pos);
      uint32_t len_crc = GetU32(bytes.data() + pos + 4);
      uint32_t payload_crc = GetU32(bytes.data() + pos + 8);
      if (len_crc != Crc32(std::string_view(bytes.data() + pos, 4)) ||
          len > kMaxPayloadLen) {
        // The length itself is untrustworthy, so there is no way to find
        // the next frame boundary: everything from here is tail loss.
        stats.notes.push_back(StrCat("corrupt frame header at offset ", pos,
                                     "; tail truncated"));
        break;
      }
      if (pos + kFrameHeaderSize + len > bytes.size()) {
        stats.notes.push_back(StrCat("torn frame payload at offset ", pos,
                                     "; tail truncated"));
        break;
      }
      std::string_view payload(bytes.data() + pos + kFrameHeaderSize, len);
      pos += kFrameHeaderSize + len;
      // Every intact frame occupies log bytes whether or not its record
      // survives validation; only the last frame per key stays live. The
      // difference is what AutoCompactIfNeeded weighs.
      const int64_t frame_size =
          static_cast<int64_t>(kFrameHeaderSize) + static_cast<int64_t>(len);
      record_bytes_total += frame_size;
      if (Crc32(payload) != payload_crc) {
        ++stats.records_quarantined;
        stats.notes.push_back(StrCat("record at offset ",
                                     pos - kFrameHeaderSize - len,
                                     " failed its checksum; quarantined"));
        valid_end = pos;  // framing is intact, keep scanning
        continue;
      }
      // Dispatch on the record-type byte. Each decoder validates its own
      // type byte again; anything else (including types from the future)
      // lands in DecodeRecord's "unknown record type" rejection and is
      // quarantined per-record — the forward-compatibility contract that
      // let the inference record type ship without a version bump.
      std::string record_key;
      Status decode_status = Status::Ok();
      if (!payload.empty() &&
          static_cast<uint8_t>(payload[0]) == kRecordTypeInference) {
        Result<std::pair<std::string, CachedInferenceOutcome>> record =
            DecodeInferenceRecord(payload);
        if (record.ok()) {
          record_key = record->first;
          inference_entries[record->first] = std::move(record->second);
        } else {
          decode_status = record.status();
        }
      } else {
        Result<std::pair<std::string, CachedSccOutcome>> record =
            DecodeRecord(payload);
        if (record.ok()) {
          record_key = record->first;
          entries[record->first] = std::move(record->second);
        } else {
          decode_status = record.status();
        }
      }
      if (!decode_status.ok()) {
        ++stats.records_quarantined;
        stats.notes.push_back(StrCat("record at offset ",
                                     pos - kFrameHeaderSize - len, ": ",
                                     decode_status.message(),
                                     "; quarantined"));
        valid_end = pos;
        continue;
      }
      auto [it, inserted] = frame_bytes.try_emplace(record_key, frame_size);
      if (!inserted) {
        record_bytes_live -= it->second;
        it->second = frame_size;
      }
      record_bytes_live += frame_size;
      valid_end = pos;
    }
    stats.tail_bytes_truncated =
        static_cast<int64_t>(bytes.size() - valid_end);
    stats.records_loaded =
        static_cast<int64_t>(entries.size() + inference_entries.size());
  }

  std::FILE* file = nullptr;
  if (fresh) {
    file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::Internal(StrCat("store: cannot create ", path));
    }
    std::string header = HeaderBytes();
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
      std::fclose(file);
      return Status::Internal(StrCat("store: cannot write header to ", path));
    }
    std::fflush(file);
  } else {
    if (valid_end < bytes.size()) {
      std::error_code ec;
      fs::resize_file(path, valid_end, ec);
      if (ec) {
        return Status::Internal(StrCat("store: cannot truncate torn tail of ",
                                       path, ": ", ec.message()));
      }
    }
    file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) {
      return Status::Internal(StrCat("store: cannot open ", path,
                                     " for append"));
    }
  }

  std::unique_ptr<PersistentStore> store(
      new PersistentStore(path, file));
  store->entries_ = std::move(entries);
  store->inference_entries_ = std::move(inference_entries);
  store->frame_bytes_ = std::move(frame_bytes);
  store->record_bytes_total_ = record_bytes_total;
  store->record_bytes_live_ = record_bytes_live;
  store->stats_ = std::move(stats);
  return store;
}

Status PersistentStore::Append(const std::string& key,
                               const CachedSccOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(key, outcome);
}

Status PersistentStore::AppendInference(const std::string& key,
                                        const CachedInferenceOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_ || file_ == nullptr) {
    ++stats_.append_failures;
    return Status::Internal("store: append handle is broken");
  }
  if (key.empty()) {
    return Status::InvalidArgument("store: empty key");
  }
  if (outcome.resource_limited || !outcome.error.ok()) {
    return Status::InvalidArgument(
        "store: resource-limited or errored inference outcomes are not "
        "persistable");
  }
  Status appended = AppendPayloadLocked(key, EncodeInferenceRecord(key, outcome));
  if (appended.ok()) inference_entries_[key] = outcome;
  return appended;
}

Status PersistentStore::AppendLocked(const std::string& key,
                                     const CachedSccOutcome& outcome) {
  if (broken_ || file_ == nullptr) {
    ++stats_.append_failures;
    return Status::Internal("store: append handle is broken");
  }
  if (key.empty()) {
    return Status::InvalidArgument("store: empty key");
  }
  if (outcome.status == SccStatus::kResourceLimit) {
    return Status::InvalidArgument(
        "store: kResourceLimit outcomes are not persistable");
  }
  Status appended = AppendPayloadLocked(key, EncodeRecord(key, outcome));
  if (appended.ok()) entries_[key] = outcome;
  return appended;
}

Status PersistentStore::AppendPayloadLocked(const std::string& key,
                                            std::string_view payload) {
  std::string frame = FrameBytes(payload);
  if (TERMILOG_FAILPOINT_HIT("persist.append")) {
    // Crash-mid-write replay: half a frame reaches the disk image and
    // the handle dies, exactly what a kill -9 between two fwrites leaves
    // behind. Recovery on the next Open must truncate this torn tail.
    std::fwrite(frame.data(), 1, frame.size() / 2, file_);
    std::fflush(file_);
    broken_ = true;
    ++stats_.append_failures;
    return Status::ResourceExhausted(
        FailpointRegistry::TripMessage("persist.append"));
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    broken_ = true;
    ++stats_.append_failures;
    return Status::Internal("store: short write; handle marked broken");
  }
  ++stats_.appends;
  record_bytes_total_ += static_cast<int64_t>(frame.size());
  TrackLiveLocked(key, static_cast<int64_t>(frame.size()));
  return Status::Ok();
}

void PersistentStore::TrackLiveLocked(const std::string& key,
                                      int64_t frame_size) {
  auto [it, inserted] = frame_bytes_.try_emplace(key, frame_size);
  if (!inserted) {
    record_bytes_live_ -= it->second;
    it->second = frame_size;
  }
  record_bytes_live_ += frame_size;
}

Status PersistentStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_ || file_ == nullptr) {
    return Status::Internal("store: flush on broken handle");
  }
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    broken_ = true;
    return Status::Internal("store: flush failed; handle marked broken");
  }
  return Status::Ok();
}

Status PersistentStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    return Status::Internal(StrCat("store: cannot create ", tmp));
  }
  std::string header = HeaderBytes();
  bool ok = std::fwrite(header.data(), 1, header.size(), out) == header.size();
  for (auto it = entries_.begin(); ok && it != entries_.end(); ++it) {
    std::string frame = FrameBytes(EncodeRecord(it->first, it->second));
    ok = std::fwrite(frame.data(), 1, frame.size(), out) == frame.size();
  }
  for (auto it = inference_entries_.begin();
       ok && it != inference_entries_.end(); ++it) {
    std::string frame =
        FrameBytes(EncodeInferenceRecord(it->first, it->second));
    ok = std::fwrite(frame.data(), 1, frame.size(), out) == frame.size();
  }
  ok = ok && std::fflush(out) == 0 && ::fsync(fileno(out)) == 0;
  std::fclose(out);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("store: compaction write failed");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("store: compaction rename failed");
  }
  // The old append handle now points at the unlinked pre-compaction
  // inode; swap it for the new file. Compaction also heals a handle
  // broken by a torn write, since the new file is rebuilt from memory.
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    broken_ = true;
    return Status::Internal("store: cannot reopen after compaction");
  }
  broken_ = false;
  // The rewritten log holds exactly the live set: re-encoding is
  // deterministic, so the per-key frame sizes are unchanged and nothing
  // is dead anymore.
  record_bytes_total_ = record_bytes_live_;
  return Status::Ok();
}

Result<bool> PersistentStore::AutoCompactIfNeeded(double ratio) {
  if (ratio <= 0.0) return false;
  int64_t dead = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead = record_bytes_total_ - record_bytes_live_;
    if (dead <= 0 ||
        static_cast<double>(dead) <
            ratio * static_cast<double>(record_bytes_total_)) {
      return false;
    }
  }
  Status compacted = Compact();
  if (!compacted.ok()) return compacted;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.notes.push_back(StrCat("auto-compaction reclaimed ", dead,
                                " dead record bytes (ratio threshold ",
                                ratio, ")"));
  return true;
}

int64_t PersistentStore::dead_record_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_bytes_total_ - record_bytes_live_;
}

int64_t PersistentStore::total_record_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_bytes_total_;
}

StoreStats PersistentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t PersistentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size() + inference_entries_.size());
}

}  // namespace persist
}  // namespace termilog
