#ifndef TERMILOG_PERSIST_STORE_H_
#define TERMILOG_PERSIST_STORE_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/inference_cache.h"
#include "engine/scc_cache.h"
#include "util/status.h"

namespace termilog {
namespace persist {

/// On-disk format version (docs/persistence.md). Bump on any change to
/// the record payload encoding; a store written by a different version is
/// quarantined whole (renamed aside, never decoded) rather than guessed
/// at.
constexpr uint32_t kStoreFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected), the checksum behind every frame in the
/// store. Exposed for tests and the chaos harness.
uint32_t Crc32(std::string_view bytes);

/// Serializes one (key, outcome) pair into a record payload (the bytes a
/// frame's CRC covers). Deterministic: equal inputs yield equal bytes.
std::string EncodeRecord(const std::string& key,
                         const CachedSccOutcome& outcome);

/// Decodes a record payload, validating everything the store will serve:
/// bounds on every length field, no trailing bytes, a known status value,
/// parseable rationals, a non-empty key — and never a kResourceLimit
/// outcome (a starved verdict is not an answer and must not survive a
/// restart). Any violation is kInvalidArgument: the caller quarantines
/// the record and the entry degrades to a cache miss.
Result<std::pair<std::string, CachedSccOutcome>> DecodeRecord(
    std::string_view payload);

/// Serializes one inference record (key + per-predicate polyhedra) into a
/// record payload. Inference records share the log with SCC-outcome
/// records, distinguished by the payload's leading record-type byte; no
/// format-version bump was needed because binaries predating the type
/// simply quarantine such records per-record (a cache miss, not an error).
/// Polyhedra are encoded as their exact constraint rows plus the
/// hard-bottom flag — never re-minimized or re-parsed through ParseSpec,
/// which would add nonnegativity rows and break the byte-identity
/// contract between warm and cold runs.
std::string EncodeInferenceRecord(const std::string& key,
                                  const CachedInferenceOutcome& outcome);

/// Decodes an inference-record payload with the same validation posture
/// as DecodeRecord (everything bounds-checked, kInvalidArgument on any
/// violation, resource-limited outcomes rejected).
Result<std::pair<std::string, CachedInferenceOutcome>> DecodeInferenceRecord(
    std::string_view payload);

/// Counters describing what Open recovered and what has been written
/// since. `notes` is a human-readable recovery log (one line per
/// quarantine/truncation event), surfaced on stderr by the CLI.
struct StoreStats {
  /// Good records applied on open (after last-wins dedup by key).
  int64_t records_loaded = 0;
  /// Frames whose payload failed its CRC or decode validation; skipped.
  int64_t records_quarantined = 0;
  /// Bytes dropped from the tail on open (torn final write, or a frame
  /// header too corrupt to trust its length).
  int64_t tail_bytes_truncated = 0;
  /// True when the whole file was set aside (bad header, unknown
  /// version) and the store started fresh.
  bool file_quarantined = false;
  /// Records appended through this handle.
  int64_t appends = 0;
  /// Appends rejected after a write error left the handle broken.
  int64_t append_failures = 0;
  std::vector<std::string> notes;
};

/// Append-only, checksummed, versioned on-disk store of SCC analysis
/// outcomes keyed by CanonicalSccKey text, and of inter-argument
/// inference outcomes keyed by CanonicalInferenceKey text
/// (docs/persistence.md).
///
/// Layout: a 16-byte header (magic, format version, header CRC) followed
/// by length-prefixed frames `[len u32][len_crc u32][payload_crc u32]
/// [payload]`, little-endian throughout. Recovery on Open:
///   - short/garbled header or unknown version: the file is renamed to
///     PATH.quarantined and the store starts empty;
///   - a frame header whose length bytes fail their own CRC, or whose
///     frame extends past EOF: torn tail — the file is truncated at the
///     frame boundary (everything before it is kept);
///   - a payload that fails its CRC or decode validation: the record is
///     quarantined (skipped, counted) and scanning continues at the next
///     frame.
/// A corrupt entry therefore degrades to a cache miss, never to a wrong
/// verdict. Duplicate keys resolve last-write-wins, so re-appending an
/// entry is harmless and Compact() drops shadowed records.
///
/// Thread contract: Open returns an exclusive handle; Append/Flush/
/// Compact are individually thread-safe (internal mutex) so a
/// write-behind thread and a foreground Flush may overlap.
class PersistentStore {
 public:
  /// Opens `path` (creating it if absent), replays the log with the
  /// recovery rules above, and leaves the file positioned for appends.
  /// Fails only when the filesystem itself refuses (unwritable path);
  /// corruption never fails Open.
  static Result<std::unique_ptr<PersistentStore>> Open(
      const std::string& path);

  ~PersistentStore();
  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// The recovered live set (last write per key). Stable until Append.
  const std::map<std::string, CachedSccOutcome>& entries() const {
    return entries_;
  }

  /// The recovered inference live set (last write per key). The two kinds
  /// of record share one log but address disjoint key spaces (SCC keys
  /// open with "scc:", inference keys with "inference-scc:").
  const std::map<std::string, CachedInferenceOutcome>& inference_entries()
      const {
    return inference_entries_;
  }

  /// Appends one record. Failpoint "persist.append" simulates a crash
  /// mid-write: half the frame reaches the file and the handle goes
  /// broken (later appends are counted as failures, not retried), so
  /// tests can replay a kill -9 between the bytes of a frame.
  Status Append(const std::string& key, const CachedSccOutcome& outcome);

  /// Appends one inference record; same contract (and failpoint) as
  /// Append.
  Status AppendInference(const std::string& key,
                         const CachedInferenceOutcome& outcome);

  /// Durability point: flushes stdio buffers and fsyncs the file.
  Status Flush();

  /// Rewrites the live set to PATH.tmp and atomically renames it over
  /// PATH, dropping shadowed duplicates and quarantined frames.
  Status Compact();

  /// Automatic compaction policy (docs/persistence.md): compacts when the
  /// dead fraction of the log — shadowed duplicates plus quarantined
  /// frames, as a share of the file's record bytes — reaches `ratio`
  /// (0 < ratio <= 1). Called by the CLI at open and after flush when
  /// `--store-auto-compact` is set; a non-positive ratio disables it.
  /// Returns whether a compaction ran; compaction errors pass through.
  Result<bool> AutoCompactIfNeeded(double ratio);

  /// Bytes of record frames in the log that no longer serve the live set
  /// (shadowed last-write-wins duplicates, quarantined frames), and the
  /// total record-frame bytes the log holds. dead == total - live.
  int64_t dead_record_bytes() const;
  int64_t total_record_bytes() const;

  StoreStats stats() const;
  const std::string& path() const { return path_; }
  /// Live entry count over both record kinds
  /// (== entries().size() + inference_entries().size()).
  int64_t size() const;

 private:
  PersistentStore(std::string path, std::FILE* file);

  Status AppendLocked(const std::string& key,
                      const CachedSccOutcome& outcome);
  // Shared tail of both append paths: frames `payload`, runs the
  // "persist.append" failpoint, writes, and does the byte bookkeeping.
  Status AppendPayloadLocked(const std::string& key, std::string_view payload);
  // Dead-bytes bookkeeping: credits `frame_size` to `key`'s live frame
  // (debiting the frame it shadows, if any).
  void TrackLiveLocked(const std::string& key, int64_t frame_size);

  const std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // append handle; null once broken
  bool broken_ = false;
  std::map<std::string, CachedSccOutcome> entries_;
  std::map<std::string, CachedInferenceOutcome> inference_entries_;
  // Per-key frame size of the live record, and the running totals behind
  // dead_record_bytes(): every intact frame scanned or appended counts
  // toward `record_bytes_total_`; only the latest frame per key counts
  // toward `record_bytes_live_`.
  std::map<std::string, int64_t> frame_bytes_;
  int64_t record_bytes_total_ = 0;
  int64_t record_bytes_live_ = 0;
  StoreStats stats_;
};

}  // namespace persist
}  // namespace termilog

#endif  // TERMILOG_PERSIST_STORE_H_
