#include "persist/writer.h"

#include <utility>

namespace termilog {
namespace persist {

StoreWriter::StoreWriter(PersistentStore* store, size_t queue_capacity)
    : store_(store),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      thread_([this] { Loop(); }) {}

StoreWriter::~StoreWriter() {
  (void)Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

bool StoreWriter::Enqueue(std::string key, CachedSccOutcome outcome) {
  QueueItem item;
  item.key = std::move(key);
  item.scc = std::move(outcome);
  return EnqueueItem(std::move(item));
}

bool StoreWriter::EnqueueInference(std::string key,
                                   CachedInferenceOutcome outcome) {
  QueueItem item;
  item.inference = true;
  item.key = std::move(key);
  item.inf = std::move(outcome);
  return EnqueueItem(std::move(item));
}

bool StoreWriter::EnqueueItem(QueueItem item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(item));
  }
  work_cv_.notify_one();
  return true;
}

Status StoreWriter::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  Status error = first_error_;
  lock.unlock();
  Status flushed = store_->Flush();
  if (!flushed.ok() && error.ok()) error = flushed;
  return error;
}

int64_t StoreWriter::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

int64_t StoreWriter::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

void StoreWriter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    QueueItem item = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    Status appended = item.inference
                          ? store_->AppendInference(item.key, item.inf)
                          : store_->Append(item.key, item.scc);
    lock.lock();
    busy_ = false;
    if (appended.ok()) {
      ++written_;
    } else if (first_error_.ok()) {
      first_error_ = appended;
    }
    if (queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace persist
}  // namespace termilog
