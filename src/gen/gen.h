#ifndef TERMILOG_GEN_GEN_H_
#define TERMILOG_GEN_GEN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {
namespace gen {

/// Deterministic 64-bit generator (splitmix64). Unlike the <random>
/// distributions, every draw here is fully specified, so one (seed,
/// params) pair produces byte-identical programs on every platform and
/// toolchain — the seeding contract the stress/chaos harness depends on
/// (docs/generator.md).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform draw in [0, bound); bound >= 1. Lemire multiply-shift — a
  /// negligible, input-independent bias instead of a rejection loop, so
  /// the draw count per request is a constant.
  uint64_t NextBelow(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform draw in [lo, hi] (inclusive); lo <= hi.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  bool Chance(int percent) {
    return static_cast<int>(NextBelow(100)) < percent;
  }

  /// Stream derivation: a child generator whose sequence depends only on
  /// (seed, stream), not on how many values the parent has consumed.
  /// Requests are generated from per-index streams so request K's text is
  /// a function of (seed, params, K) alone.
  static Rng Stream(uint64_t seed, uint64_t stream) {
    Rng mix(seed ^ (0xA24BAED4963EE407ULL * (stream + 1)));
    return Rng(mix.Next());
  }

 private:
  uint64_t state_;
};

/// What the generator promises the engine will answer for a request (the
/// analysis being deterministic, the promise is exact, not statistical):
///   kProved          every recursive edge strictly decreases a bound
///                    argument -> the analyzer proves termination
///   kNotProved       one SCC's cycle grows a bound argument (the program
///                    genuinely diverges) -> proved=false
///   kResourceLimit   a terminating-shaped program shipped with a tiny
///                    work budget -> the governor ladder degrades every
///                    recursive SCC to RESOURCE_LIMIT
enum class ExpectedVerdict { kProved, kNotProved, kResourceLimit };

const char* ExpectedVerdictName(ExpectedVerdict verdict);
bool ParseExpectedVerdict(std::string_view text, ExpectedVerdict* out);

/// Generator parameters. The defaults give small mixed programs; every
/// field is reachable from the CLI spec syntax "SEED:key=value,..."
/// (see ParseGenSpec and docs/generator.md).
struct GenParams {
  uint64_t seed = 1;
  /// Requests (= programs) to generate.               spec key: count
  int count = 100;
  /// Recursive SCCs per program, drawn per request.   keys: sccs / min_sccs
  int min_sccs = 1;
  int max_sccs = 3;
  /// Predicates per SCC.                              keys: preds / min_preds
  int min_scc_size = 1;
  int max_scc_size = 3;
  /// Per-predicate arity drawn from [1, max_arity].   key: arity
  int max_arity = 2;
  /// Max list cells peeled per recursive step and max output-term
  /// wrapping depth.                                  key: depth
  int term_depth = 2;
  /// Recursive rules per predicate.                   key: fanout
  int fanout = 2;
  /// Relative verdict-mix weights.                    key: mix=P/N/R
  int mix_proved = 70;
  int mix_not_proved = 25;
  int mix_resource_limit = 5;
  /// Chance (percent) that a request replays an earlier program verbatim
  /// (same predicate names, same source), so the content-addressed SCC
  /// cache sees repeats at scale.                     key: dup
  int dup_percent = 0;
  /// Work budget attached to kResourceLimit requests. key: budget
  int64_t resource_work_budget = 1;
  /// Request-name prefix ("PREFIX:s<seed>:r<index>"). key: prefix
  std::string name_prefix = "gen";
  /// Conditions-workload dimension (docs/conditions.md). 0 = off. K >= 1
  /// switches every request to kind "conditions": each SCC is a mutual-
  /// recursion cycle of exactly K predicates whose recursive rules peel a
  /// per-predicate measure argument and pass the remaining arguments
  /// through in rank order, a shape whose minimal terminating binding
  /// patterns are exactly computable at generation time — the request
  /// carries them as "expect_modes" for --conditions --check-expect. The
  /// mix's resource_limit weight folds into proved (a budget would
  /// perturb the declared mode sets).                 key: modes
  int modes_cycle = 0;
};

/// Declared minimal terminating modes: predicate display name ("p/2") ->
/// mode strings ("bf"). Mirrors condinf::ExpectedModes without the
/// dependency.
using ExpectModes =
    std::vector<std::pair<std::string, std::vector<std::string>>>;

struct GeneratedRequest {
  std::string name;
  /// Program text in the parser's Prolog subset, with a :- mode directive
  /// naming the entry query.
  std::string source;
  /// Entry query spec, e.g. "g7s0p0(b,f)".
  std::string query;
  ExpectedVerdict expect = ExpectedVerdict::kProved;
  /// Zeroed (unlimited) unless expect == kResourceLimit.
  GovernorLimits limits;
  /// Planned recursive-SCC sizes, entry SCC first. The engine reports the
  /// condensation callees-first, i.e. in reverse of this order.
  std::vector<int> scc_sizes;
  /// Request kind: "" = plain analysis; "conditions" = a termination-
  /// condition sweep over every predicate (modes workloads).
  std::string kind;
  /// Exact expected minimal-mode sets, conditions requests only.
  ExpectModes expect_modes;
};

struct GeneratedWorkload {
  GenParams params;
  std::vector<GeneratedRequest> requests;
};

/// Generates `params.count` requests. Deterministic: equal params yield a
/// byte-identical workload; request K depends only on (params, K).
GeneratedWorkload Generate(const GenParams& params);

/// Parses "SEED" or "SEED:key=value,key=value,..." (keys documented on
/// GenParams). Unknown keys and malformed values are errors.
Result<GenParams> ParseGenSpec(std::string_view spec);

/// Canonical spec string reproducing `params` (round-trips through
/// ParseGenSpec); recorded in manifest headers and bench metadata.
std::string GenSpecToString(const GenParams& params);

// --- JSONL manifest -----------------------------------------------------
//
// One header line {"gen_manifest":1,"seed":...,"spec":...,"count":...}
// followed by one object per request:
//   {"name":..,"query":..,"expect":..,"sccs":[..],
//    "limits":{"work_budget":..},"source":..}
// "source" may be replaced by "file" when programs live on disk.
// termilog_cli --batch consumes this format (docs/generator.md).

std::string RequestToManifestLine(const GeneratedRequest& request);
std::string WorkloadToManifestJsonl(const GeneratedWorkload& workload);

/// One parsed manifest request line (header lines are skipped).
struct ManifestEntry {
  std::string name;
  std::string file;    // empty when `source` is inline
  std::string source;  // empty when the program lives in `file`
  std::string query;   // empty: fall back to the file's mode directives
  std::string expect;  // empty: no declared expectation
  /// Request kind: "" or "analyze" = plain analysis, "conditions" = a
  /// termination-condition sweep. Any other value makes the line
  /// unreadable (`error` set naming the kind), so --batch and --serve
  /// answer it with the structured per-request error shape.
  std::string kind;
  /// Declared minimal-mode expectations for conditions requests
  /// ("expect_modes" object: {"p/2":["bf",..],..}), sorted by predicate.
  ExpectModes expect_modes;
  GovernorLimits limits;
  bool has_limits = false;
  /// 1-based manifest line this entry came from.
  size_t line_number = 0;
  /// True for a {"gen_manifest":...} header/provenance line (no request).
  bool header = false;
  /// Non-OK when the line was unreadable — truncated or garbage JSON, a
  /// non-object, an unknown expect verdict, a missing source/file. The
  /// message names the line number. One bad line degrades to one error
  /// result; it never aborts the rest of the batch.
  Status error = Status::Ok();
};

/// Parses a single manifest line (the serve-mode request framing).
/// Never fails hard: an unreadable line comes back with `error` set and
/// a synthesized "manifest:N" name so the caller can emit a per-request
/// error response.
ManifestEntry ParseManifestLine(std::string_view line, size_t line_number);

/// Parses a whole JSONL manifest. Blank lines and header lines are
/// skipped; every other line yields one entry, with `error` set on the
/// unreadable ones (see ParseManifestLine). Always returns OK — the
/// Result wrapper is kept for call-site stability.
Result<std::vector<ManifestEntry>> ParseManifestJsonl(std::string_view text);

/// Expands a workload into engine requests (parsing every source).
/// Request options carry the per-request limits.
Result<std::vector<BatchRequest>> WorkloadToBatchRequests(
    const GeneratedWorkload& workload);

/// True when the engine's outcome for a request matches `expect`:
///   kProved         proved && !resource_limited
///   kNotProved      !proved && !resource_limited
///   kResourceLimit  resource_limited
bool OutcomeMatchesExpect(ExpectedVerdict expect, bool proved,
                          bool resource_limited);

// --- Latency summaries (bench_engine schema v3, stress harness) ---------

struct LatencySummary {
  int64_t count = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
};

/// Nearest-rank percentiles over per-request service latencies
/// (BatchItemResult::latency_us). Sorts a copy; empty input -> all zeros.
LatencySummary SummarizeLatencies(std::vector<int64_t> latencies_us);

}  // namespace gen
}  // namespace termilog

#endif  // TERMILOG_GEN_GEN_H_
