// JSONL manifest emission and parsing for generated workloads
// (docs/generator.md). The emit side is deterministic — equal workloads
// produce byte-identical manifests — because the determinism property
// tests and the seeding contract both key on manifest bytes.

#include <utility>

#include "gen/gen.h"
#include "program/parser.h"
#include "util/json.h"
#include "util/string_util.h"

namespace termilog {
namespace gen {

std::string RequestToManifestLine(const GeneratedRequest& request) {
  std::string out = StrCat("{\"name\":\"", JsonEscape(request.name),
                           "\",\"query\":\"", JsonEscape(request.query),
                           "\"");
  if (request.kind.empty()) {
    out += StrCat(",\"expect\":\"", ExpectedVerdictName(request.expect),
                  "\"");
  } else {
    // Conditions requests declare minimal-mode sets, not a verdict.
    out += StrCat(",\"kind\":\"", JsonEscape(request.kind), "\"");
    out += ",\"expect_modes\":{";
    for (size_t p = 0; p < request.expect_modes.size(); ++p) {
      const auto& [pred, modes] = request.expect_modes[p];
      if (p > 0) out += ',';
      out += StrCat("\"", JsonEscape(pred), "\":[");
      for (size_t m = 0; m < modes.size(); ++m) {
        if (m > 0) out += ',';
        out += StrCat("\"", JsonEscape(modes[m]), "\"");
      }
      out += ']';
    }
    out += '}';
  }
  out += ",\"sccs\":[";
  for (size_t i = 0; i < request.scc_sizes.size(); ++i) {
    if (i > 0) out += ',';
    out += StrCat(request.scc_sizes[i]);
  }
  out += ']';
  if (request.limits.work_budget > 0 || request.limits.deadline_ms > 0 ||
      request.limits.bigint_limb_limit > 0) {
    out += ",\"limits\":{";
    bool first = true;
    auto field = [&](const char* key, int64_t value) {
      if (value <= 0) return;
      if (!first) out += ',';
      first = false;
      out += StrCat("\"", key, "\":", value);
    };
    field("work_budget", request.limits.work_budget);
    field("deadline_ms", request.limits.deadline_ms);
    field("limb_limit", request.limits.bigint_limb_limit);
    out += '}';
  }
  out += StrCat(",\"source\":\"", JsonEscape(request.source), "\"}");
  return out;
}

std::string WorkloadToManifestJsonl(const GeneratedWorkload& workload) {
  std::string out = StrCat(
      "{\"gen_manifest\":1,\"spec\":\"",
      JsonEscape(GenSpecToString(workload.params)), "\",\"count\":",
      workload.requests.size(), "}\n");
  for (const GeneratedRequest& request : workload.requests) {
    out += RequestToManifestLine(request);
    out += '\n';
  }
  return out;
}

ManifestEntry ParseManifestLine(std::string_view line, size_t line_number) {
  ManifestEntry entry;
  entry.line_number = line_number;
  entry.name = StrCat("manifest:", line_number);
  auto fail = [&](std::string message) {
    entry.error = Status::InvalidArgument(
        StrCat("manifest line ", line_number, ": ", std::move(message)));
    return entry;
  };
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return fail(std::string(parsed.status().message()));
  const JsonValue& object = *parsed;
  if (!object.IsObject()) return fail("expected a JSON object");
  if (object.Has("gen_manifest")) {  // header / provenance line
    entry.header = true;
    return entry;
  }
  entry.name = object.At("name").StringOr("");
  entry.file = object.At("file").StringOr("");
  entry.source = object.At("source").StringOr("");
  entry.query = object.At("query").StringOr("");
  entry.expect = object.At("expect").StringOr("");
  entry.kind = object.At("kind").StringOr("");
  if (entry.name.empty()) {
    entry.name = entry.file.empty() ? StrCat("manifest:", line_number)
                                    : entry.file;
  }
  if (entry.file.empty() && entry.source.empty()) {
    return fail("needs \"source\" or \"file\"");
  }
  if (!entry.kind.empty() && entry.kind != "analyze" &&
      entry.kind != "conditions") {
    // The per-request error shape every consumer (--batch lines, --serve
    // responses) already renders; an unknown kind never aborts the batch.
    return fail(StrCat("unknown request kind \"", entry.kind, "\""));
  }
  if (!entry.expect.empty()) {
    ExpectedVerdict ignored;
    if (!ParseExpectedVerdict(entry.expect, &ignored)) {
      return fail(StrCat("unknown expect \"", entry.expect, "\""));
    }
  }
  const JsonValue& expect_modes = object.At("expect_modes");
  if (expect_modes.IsObject()) {
    for (const auto& [pred, modes] : expect_modes.fields) {
      if (!modes.IsArray()) {
        return fail(StrCat("expect_modes for ", pred, " must be an array"));
      }
      std::vector<std::string> list;
      for (const JsonValue& mode : modes.items) {
        if (!mode.IsString()) {
          return fail(StrCat("expect_modes for ", pred,
                             " must hold mode strings"));
        }
        list.push_back(mode.text);
      }
      entry.expect_modes.emplace_back(pred, std::move(list));
    }
  }
  const JsonValue& limits = object.At("limits");
  if (limits.IsObject()) {
    entry.has_limits = true;
    entry.limits.work_budget = limits.At("work_budget").IntOr(0);
    entry.limits.deadline_ms = limits.At("deadline_ms").IntOr(0);
    entry.limits.bigint_limb_limit = limits.At("limb_limit").IntOr(0);
  }
  return entry;
}

Result<std::vector<ManifestEntry>> ParseManifestJsonl(std::string_view text) {
  std::vector<ManifestEntry> entries;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t newline = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, newline == std::string_view::npos ? std::string_view::npos
                                               : newline - pos);
    pos = newline == std::string_view::npos ? text.size() : newline + 1;
    ++line_number;
    line = StripWhitespace(line);
    if (line.empty()) continue;
    ManifestEntry entry = ParseManifestLine(line, line_number);
    if (entry.header) continue;
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<std::vector<BatchRequest>> WorkloadToBatchRequests(
    const GeneratedWorkload& workload) {
  std::vector<BatchRequest> requests;
  requests.reserve(workload.requests.size());
  for (const GeneratedRequest& generated : workload.requests) {
    Result<Program> program = ParseProgram(generated.source);
    if (!program.ok()) {
      return Status::Internal(StrCat("generated program ", generated.name,
                                     " failed to parse: ",
                                     program.status().message()));
    }
    Result<std::pair<PredId, Adornment>> query =
        ParseQuerySpec(*program, generated.query);
    if (!query.ok()) {
      return Status::Internal(StrCat("generated query for ", generated.name,
                                     " failed to parse: ",
                                     query.status().message()));
    }
    BatchRequest request;
    request.name = generated.name;
    request.program = std::move(*program);
    request.query = query->first;
    request.adornment = query->second;
    request.options.limits = generated.limits;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace gen
}  // namespace termilog
