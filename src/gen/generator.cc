#include "gen/gen.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace termilog {
namespace gen {
namespace {

// Weighted verdict draw; weights validated positive-sum by ParseGenSpec /
// Generate.
ExpectedVerdict DrawVerdict(const GenParams& params, Rng* rng) {
  int total = params.mix_proved + params.mix_not_proved +
              params.mix_resource_limit;
  int x = static_cast<int>(rng->NextBelow(static_cast<uint64_t>(total)));
  if (x < params.mix_proved) return ExpectedVerdict::kProved;
  if (x < params.mix_proved + params.mix_not_proved) {
    return ExpectedVerdict::kNotProved;
  }
  return ExpectedVerdict::kResourceLimit;
}

std::string PredName(int request, int scc, int pred) {
  return StrCat("g", request, "s", scc, "p", pred);
}

// "[X0,X1|T]" — the peel pattern binding k list cells and the tail.
std::string PeelPattern(int k) {
  std::string out = "[";
  for (int e = 0; e < k; ++e) {
    if (e > 0) out += ',';
    out += StrCat("X", e);
  }
  out += "|T]";
  return out;
}

std::string ArgsText(const std::vector<std::string>& args) {
  return StrCat("(", Join(args, ", "), ")");
}

// One program. The shape (docs/generator.md):
//  - S recursive SCCs in a chain; SCC 0 holds the entry predicate.
//  - every predicate has one base fact and `fanout` recursive rules;
//    rule 0 calls the next predicate of the SCC cycle, later rules call a
//    random member.
//  - every recursive edge peels 1..term_depth list cells off the first
//    (bound) argument, so the analyzer finds a strict-decrease
//    certificate — except in a kNotProved program, where one designated
//    cycle edge grows the argument instead (the program then genuinely
//    diverges under its declared mode, and no argument-size proof exists).
//  - SCC s's entry rule also calls SCC s+1's entry with the peeled tail,
//    making every SCC reachable and the condensation a chain.
GeneratedRequest GenerateOne(const GenParams& params, int index,
                             const std::vector<GeneratedRequest>& earlier) {
  Rng rng = Rng::Stream(params.seed, static_cast<uint64_t>(index));

  GeneratedRequest request;
  request.name = StrCat(params.name_prefix, ":s", params.seed, ":r", index);

  if (params.dup_percent > 0 && !earlier.empty() &&
      rng.Chance(params.dup_percent)) {
    // Verbatim replay of an earlier program (same predicate names, same
    // source) under a fresh request name: the content-addressed SCC cache
    // sees exact repeats, as a production queue would.
    const GeneratedRequest& original =
        earlier[rng.NextBelow(earlier.size())];
    request.source = original.source;
    request.query = original.query;
    request.expect = original.expect;
    request.limits = original.limits;
    request.scc_sizes = original.scc_sizes;
    return request;
  }

  request.expect = DrawVerdict(params, &rng);
  if (request.expect == ExpectedVerdict::kResourceLimit) {
    request.limits.work_budget = params.resource_work_budget;
  }

  const int num_sccs = rng.NextInt(params.min_sccs, params.max_sccs);
  std::vector<int> sizes(num_sccs);
  std::vector<std::vector<int>> arity(num_sccs);
  for (int s = 0; s < num_sccs; ++s) {
    sizes[s] = rng.NextInt(params.min_scc_size, params.max_scc_size);
    arity[s].resize(sizes[s]);
    for (int i = 0; i < sizes[s]; ++i) {
      arity[s][i] = rng.NextInt(1, params.max_arity);
    }
  }
  request.scc_sizes = sizes;
  // A kNotProved program grows the cycle edge leaving predicate 0 of one
  // SCC; every other program decreases on every edge.
  const int bad_scc = request.expect == ExpectedVerdict::kNotProved
                          ? static_cast<int>(rng.NextBelow(num_sccs))
                          : -1;

  std::string text =
      StrCat("% termilog --gen: ", request.name,
             " expect=", ExpectedVerdictName(request.expect), "\n");
  const std::string entry = PredName(index, 0, 0);
  std::string adornment = "b";
  for (int m = 1; m < arity[0][0]; ++m) adornment += ",f";
  request.query = StrCat(entry, "(", adornment, ")");
  text += StrCat(":- mode(", request.query, ").\n");

  for (int s = 0; s < num_sccs; ++s) {
    for (int i = 0; i < sizes[s]; ++i) {
      const std::string name = PredName(index, s, i);
      const int a = arity[s][i];

      // Base case: empty measure argument, outputs unconstrained.
      std::vector<std::string> base_args(1, "[]");
      for (int m = 1; m < a; ++m) base_args.emplace_back("_");
      text += StrCat(name, ArgsText(base_args), ".\n");

      for (int f = 0; f < params.fanout; ++f) {
        const bool bad_rule = s == bad_scc && i == 0 && f == 0;
        // Rule 0 closes the SCC cycle; extra rules pick any member.
        const int callee =
            f == 0 ? (i + 1) % sizes[s]
                   : static_cast<int>(rng.NextBelow(sizes[s]));
        const int callee_arity = arity[s][callee];
        const int peel = rng.NextInt(1, params.term_depth);

        std::vector<std::string> head_args;
        std::vector<std::string> callee_args;
        if (bad_rule) {
          // Growth: head measure is a bare variable, the recursive call
          // pushes a cell — no weighted argument-size sum decreases.
          head_args.emplace_back("T");
          callee_args.emplace_back("[c|T]");
        } else {
          head_args.push_back(PeelPattern(peel));
          callee_args.emplace_back("T");
        }
        for (int m = 1; m < a; ++m) head_args.push_back(StrCat("A", m));
        for (int m = 1; m < callee_arity; ++m) {
          callee_args.push_back(m < a ? StrCat("A", m) : StrCat("F", m));
        }
        // Output construction (append-style): wrap one free head argument
        // around the first peeled cell. Free arguments carry no weight in
        // the certificate, so this only exercises term building.
        if (!bad_rule && a > 1 && rng.Chance(40)) {
          head_args[1] = StrCat("[X0|A", 1, "]");
        }

        std::string body =
            StrCat(PredName(index, s, callee), ArgsText(callee_args));
        // Chain call into the next SCC: forced on the entry rule so every
        // SCC is reachable, occasional elsewhere.
        if (s + 1 < num_sccs && ((i == 0 && f == 0) || rng.Chance(30))) {
          std::vector<std::string> chain_args(1, "T");
          for (int m = 1; m < arity[s + 1][0]; ++m) {
            chain_args.push_back(StrCat("G", m));
          }
          body += StrCat(", ", PredName(index, s + 1, 0),
                         ArgsText(chain_args));
        }
        text += StrCat(name, ArgsText(head_args), " :- ", body, ".\n");
      }
    }
  }
  request.source = std::move(text);
  return request;
}

// One conditions-workload program (params.modes_cycle = K > 0). The shape
// is chosen so the minimal terminating binding patterns are exactly
// computable at generation time:
//  - every SCC is a mutual-recursion cycle of exactly K predicates, all
//    sharing one arity; each predicate has its own measure argument
//    position, drawn independently.
//  - each recursive rule peels list cells off the measure argument and
//    calls the cycle's next predicate (later rules: a random member) with
//    the peeled tail at the callee's measure position and the remaining
//    head arguments passed through in rank order. Rank-order pass-through
//    makes the derived adornment of every cycle member a position-
//    permutation of the entry adornment, so no binding pattern ever
//    trips the one-adornment-per-predicate restriction: provedness stays
//    monotone over the whole lattice, and the minimal set of every clean
//    predicate is exactly { its own measure argument bound } — bound
//    measure strictly decreases around every cycle, free measure leaves
//    every cycle without a strictly decreasing bound combination (the
//    pass-through arguments are size-invariant).
//  - SCC s's first predicate chains into SCC s+1's. The chain call sits
//    after the cycle call, whose success bounds the shared tail, so
//    downstream SCCs always analyze with their measure bound and never
//    veto an upstream sweep.
//  - a kNotProved draw plants one growing cycle edge in SCC b: every
//    predicate of SCCs 0..b (which reach the growth) declares the empty
//    minimal set, predicates of later SCCs are unaffected.
GeneratedRequest GenerateModesOne(const GenParams& params, int index,
                                  const std::vector<GeneratedRequest>& earlier) {
  Rng rng = Rng::Stream(params.seed, static_cast<uint64_t>(index));

  GeneratedRequest request;
  request.name = StrCat(params.name_prefix, ":s", params.seed, ":r", index);
  request.kind = "conditions";

  if (params.dup_percent > 0 && !earlier.empty() &&
      rng.Chance(params.dup_percent)) {
    const GeneratedRequest& original =
        earlier[rng.NextBelow(earlier.size())];
    request.source = original.source;
    request.query = original.query;
    request.expect = original.expect;
    request.limits = original.limits;
    request.scc_sizes = original.scc_sizes;
    request.expect_modes = original.expect_modes;
    return request;
  }

  // The resource_limit weight folds into proved: a budgeted sweep's
  // minimal sets depend on where the governor trips, which would make the
  // declared expectation inexact.
  ExpectedVerdict verdict = DrawVerdict(params, &rng);
  if (verdict == ExpectedVerdict::kResourceLimit) {
    verdict = ExpectedVerdict::kProved;
  }
  request.expect = verdict;

  const int cycle = params.modes_cycle;
  const int num_sccs = rng.NextInt(params.min_sccs, params.max_sccs);
  std::vector<int> arity(num_sccs);
  std::vector<std::vector<int>> measure(num_sccs);
  for (int s = 0; s < num_sccs; ++s) {
    arity[s] = rng.NextInt(1, params.max_arity);
    measure[s].resize(cycle);
    for (int i = 0; i < cycle; ++i) {
      measure[s][i] = static_cast<int>(rng.NextBelow(arity[s]));
    }
  }
  request.scc_sizes.assign(static_cast<size_t>(num_sccs), cycle);
  const int bad_scc = verdict == ExpectedVerdict::kNotProved
                          ? static_cast<int>(rng.NextBelow(num_sccs))
                          : -1;

  std::string text = StrCat("% termilog --gen: ", request.name,
                            " kind=conditions\n");
  const std::string entry = PredName(index, 0, 0);
  {
    std::string adornment;
    for (int m = 0; m < arity[0]; ++m) {
      if (m > 0) adornment += ',';
      adornment += m == measure[0][0] ? 'b' : 'f';
    }
    request.query = StrCat(entry, "(", adornment, ")");
  }
  text += StrCat(":- mode(", request.query, ").\n");

  for (int s = 0; s < num_sccs; ++s) {
    const int a = arity[s];
    for (int i = 0; i < cycle; ++i) {
      const std::string name = PredName(index, s, i);
      const int mi = measure[s][i];

      // Declared expectation: SCCs that reach the growth edge (s <= bad)
      // have no terminating pattern; everyone else terminates exactly
      // when its measure argument is bound.
      std::string mode(static_cast<size_t>(a), 'f');
      mode[static_cast<size_t>(mi)] = 'b';
      std::vector<std::string> minimal;
      if (bad_scc < 0 || s > bad_scc) minimal.push_back(mode);
      request.expect_modes.emplace_back(StrCat(name, "/", a), minimal);

      std::vector<std::string> base_args;
      for (int m = 0; m < a; ++m) {
        base_args.emplace_back(m == mi ? "[]" : "_");
      }
      text += StrCat(name, ArgsText(base_args), ".\n");

      for (int f = 0; f < params.fanout; ++f) {
        const bool bad_rule = s == bad_scc && i == 0 && f == 0;
        const int callee =
            f == 0 ? (i + 1) % cycle : static_cast<int>(rng.NextBelow(cycle));
        const int mc = measure[s][callee];
        const int peel = rng.NextInt(1, params.term_depth);

        // Head: peel pattern at the measure, rank vars R1.. elsewhere.
        std::vector<std::string> head_args;
        int rank = 0;
        for (int m = 0; m < a; ++m) {
          if (m == mi) {
            head_args.push_back(bad_rule ? "T" : PeelPattern(peel));
          } else {
            head_args.push_back(StrCat("R", ++rank));
          }
        }
        // Callee: tail at its measure, the head's rank vars in order
        // elsewhere (the adornment-permutation property depends on this).
        std::vector<std::string> callee_args;
        rank = 0;
        for (int m = 0; m < a; ++m) {
          if (m == mc) {
            callee_args.push_back(bad_rule ? "[c|T]" : "T");
          } else {
            callee_args.push_back(StrCat("R", ++rank));
          }
        }

        std::string body =
            StrCat(PredName(index, s, callee), ArgsText(callee_args));
        if (s + 1 < num_sccs && i == 0 && f == 0) {
          std::vector<std::string> chain_args;
          for (int m = 0; m < arity[s + 1]; ++m) {
            chain_args.push_back(m == measure[s + 1][0] ? std::string("T")
                                                        : StrCat("G", m));
          }
          body += StrCat(", ", PredName(index, s + 1, 0),
                         ArgsText(chain_args));
        }
        text += StrCat(name, ArgsText(head_args), " :- ", body, ".\n");
      }
    }
  }
  request.source = std::move(text);
  return request;
}

}  // namespace

const char* ExpectedVerdictName(ExpectedVerdict verdict) {
  switch (verdict) {
    case ExpectedVerdict::kProved: return "proved";
    case ExpectedVerdict::kNotProved: return "not_proved";
    case ExpectedVerdict::kResourceLimit: return "resource_limit";
  }
  return "unknown";
}

bool ParseExpectedVerdict(std::string_view text, ExpectedVerdict* out) {
  if (text == "proved") *out = ExpectedVerdict::kProved;
  else if (text == "not_proved") *out = ExpectedVerdict::kNotProved;
  else if (text == "resource_limit") *out = ExpectedVerdict::kResourceLimit;
  else return false;
  return true;
}

GeneratedWorkload Generate(const GenParams& params) {
  GeneratedWorkload workload;
  workload.params = params;
  workload.requests.reserve(static_cast<size_t>(std::max(params.count, 0)));
  for (int i = 0; i < params.count; ++i) {
    workload.requests.push_back(
        params.modes_cycle > 0
            ? GenerateModesOne(params, i, workload.requests)
            : GenerateOne(params, i, workload.requests));
  }
  return workload;
}

namespace {

bool ParsePositiveInt(std::string_view text, int* out) {
  if (text.empty() || text.size() > 9) return false;
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

// "N" -> [N,N]; "A-B" -> [A,B].
bool ParseRange(std::string_view text, int* lo, int* hi) {
  size_t dash = text.find('-');
  if (dash == std::string_view::npos) {
    if (!ParsePositiveInt(text, lo)) return false;
    *hi = *lo;
    return true;
  }
  return ParsePositiveInt(text.substr(0, dash), lo) &&
         ParsePositiveInt(text.substr(dash + 1), hi) && *lo <= *hi;
}

}  // namespace

Result<GenParams> ParseGenSpec(std::string_view spec) {
  GenParams params;
  size_t colon = spec.find(':');
  std::string_view seed_text = spec.substr(0, colon);
  if (seed_text.empty()) {
    return Status::InvalidArgument("gen spec: empty seed");
  }
  uint64_t seed = 0;
  for (char c : seed_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("gen spec: bad seed '", seed_text, "'"));
    }
    seed = seed * 10 + static_cast<uint64_t>(c - '0');
  }
  params.seed = seed;
  if (colon == std::string_view::npos) return params;

  for (std::string_view field :
       [&] {
         std::vector<std::string_view> out;
         std::string_view rest = spec.substr(colon + 1);
         while (!rest.empty()) {
           size_t comma = rest.find(',');
           out.push_back(rest.substr(0, comma));
           if (comma == std::string_view::npos) break;
           rest = rest.substr(comma + 1);
         }
         return out;
       }()) {
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("gen spec: expected key=value, got '", field, "'"));
    }
    std::string_view key = field.substr(0, eq);
    std::string_view value = field.substr(eq + 1);
    bool ok = true;
    if (key == "count") {
      ok = ParsePositiveInt(value, &params.count);
    } else if (key == "sccs") {
      ok = ParseRange(value, &params.min_sccs, &params.max_sccs) &&
           params.min_sccs >= 1;
    } else if (key == "preds") {
      ok = ParseRange(value, &params.min_scc_size, &params.max_scc_size) &&
           params.min_scc_size >= 1;
    } else if (key == "arity") {
      ok = ParsePositiveInt(value, &params.max_arity) && params.max_arity >= 1;
    } else if (key == "depth") {
      ok = ParsePositiveInt(value, &params.term_depth) &&
           params.term_depth >= 1;
    } else if (key == "fanout") {
      ok = ParsePositiveInt(value, &params.fanout) && params.fanout >= 1;
    } else if (key == "mix") {
      // P/N/R relative weights.
      size_t s1 = value.find('/');
      size_t s2 = s1 == std::string_view::npos ? std::string_view::npos
                                               : value.find('/', s1 + 1);
      ok = s1 != std::string_view::npos && s2 != std::string_view::npos &&
           ParsePositiveInt(value.substr(0, s1), &params.mix_proved) &&
           ParsePositiveInt(value.substr(s1 + 1, s2 - s1 - 1),
                            &params.mix_not_proved) &&
           ParsePositiveInt(value.substr(s2 + 1),
                            &params.mix_resource_limit) &&
           params.mix_proved + params.mix_not_proved +
                   params.mix_resource_limit >
               0;
    } else if (key == "dup") {
      ok = ParsePositiveInt(value, &params.dup_percent) &&
           params.dup_percent <= 100;
    } else if (key == "budget") {
      int budget = 0;
      ok = ParsePositiveInt(value, &budget) && budget >= 1;
      params.resource_work_budget = budget;
    } else if (key == "prefix") {
      ok = !value.empty();
      params.name_prefix = std::string(value);
    } else if (key == "modes") {
      ok = ParsePositiveInt(value, &params.modes_cycle);
    } else {
      return Status::InvalidArgument(
          StrCat("gen spec: unknown key '", key, "'"));
    }
    if (!ok) {
      return Status::InvalidArgument(
          StrCat("gen spec: bad value for '", key, "': '", value, "'"));
    }
  }
  return params;
}

std::string GenSpecToString(const GenParams& params) {
  std::string spec =
      StrCat(params.seed, ":count=", params.count, ",sccs=",
             params.min_sccs, "-", params.max_sccs, ",preds=",
             params.min_scc_size, "-", params.max_scc_size,
             ",arity=", params.max_arity, ",depth=", params.term_depth,
             ",fanout=", params.fanout, ",mix=", params.mix_proved, "/",
             params.mix_not_proved, "/", params.mix_resource_limit,
             ",dup=", params.dup_percent, ",budget=",
             params.resource_work_budget, ",prefix=", params.name_prefix);
  // Emitted only when set, so pre-modes spec strings stay byte-stable.
  if (params.modes_cycle > 0) spec += StrCat(",modes=", params.modes_cycle);
  return spec;
}

bool OutcomeMatchesExpect(ExpectedVerdict expect, bool proved,
                          bool resource_limited) {
  switch (expect) {
    case ExpectedVerdict::kProved:
      return proved && !resource_limited;
    case ExpectedVerdict::kNotProved:
      return !proved && !resource_limited;
    case ExpectedVerdict::kResourceLimit:
      return resource_limited;
  }
  return false;
}

LatencySummary SummarizeLatencies(std::vector<int64_t> latencies_us) {
  LatencySummary summary;
  if (latencies_us.empty()) return summary;
  std::sort(latencies_us.begin(), latencies_us.end());
  const int64_t n = static_cast<int64_t>(latencies_us.size());
  auto nearest_rank = [&](int64_t percent) {
    int64_t rank = (percent * n + 99) / 100;  // ceil(percent/100 * n)
    if (rank < 1) rank = 1;
    return latencies_us[static_cast<size_t>(rank - 1)];
  };
  summary.count = n;
  summary.p50_us = nearest_rank(50);
  summary.p95_us = nearest_rank(95);
  summary.p99_us = nearest_rank(99);
  summary.max_us = latencies_us.back();
  return summary;
}

}  // namespace gen
}  // namespace termilog
