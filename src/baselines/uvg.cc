#include "baselines/uvg.h"

#include <map>
#include <optional>

#include "graph/minplus.h"
#include "term/size.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Max product of per-predicate choices explored (safety valve; SCCs in
// practice have a handful of predicates with small arities).
constexpr int64_t kMaxChoices = 1 << 14;

// Offset c such that size(sub) <= size(head) + c for all variable sizes,
// or nullopt when the subgoal polynomial is not coefficient-dominated.
std::optional<int64_t> DominanceOffset(const TermPtr& head_arg,
                                       const TermPtr& sub_arg) {
  LinearExpr head = StructuralSize(head_arg);
  LinearExpr sub = StructuralSize(sub_arg);
  LinearExpr diff = sub - head;
  for (const auto& [var, coeff] : diff.coeffs()) {
    (void)var;
    if (coeff.sign() > 0) return std::nullopt;
  }
  // All variable coefficients <= 0; the worst case is all of them zero.
  const Rational& c = diff.constant();
  // Sizes are integers; round up.
  BigInt num = c.num();
  BigInt den = c.den();
  BigInt q, r;
  BigInt::DivMod(num, den, &q, &r);
  int64_t offset = q.ToInt64();
  if (!r.is_zero() && c.sign() > 0) ++offset;
  return offset;
}

BaselineReport CheckScc(const Program& program,
                        const std::vector<PredId>& scc_preds,
                        const std::map<PredId, Adornment>& modes) {
  const int m = static_cast<int>(scc_preds.size());
  std::map<PredId, int> index;
  std::vector<std::vector<int>> bound_positions(m);
  int64_t num_choices = 1;
  for (int i = 0; i < m; ++i) {
    index[scc_preds[i]] = i;
    const Adornment& adornment = modes.at(scc_preds[i]);
    for (size_t k = 0; k < adornment.size(); ++k) {
      if (adornment[k] == Mode::kBound) {
        bound_positions[i].push_back(static_cast<int>(k));
      }
    }
    if (bound_positions[i].empty()) {
      return {BaselineVerdict::kNotProved,
              StrCat("no bound argument on ",
                     program.PredName(scc_preds[i]))};
    }
    num_choices *= static_cast<int64_t>(bound_positions[i].size());
    if (num_choices > kMaxChoices) {
      return {BaselineVerdict::kUnsupported, "choice space too large"};
    }
  }

  // Recursive calls of the SCC.
  struct Call {
    int i, j;
    const Atom* head;
    const Atom* subgoal;
  };
  std::vector<Call> calls;
  for (const Rule& rule : program.rules()) {
    auto from = index.find(rule.head.pred_id());
    if (from == index.end()) continue;
    for (const Literal& lit : rule.body) {
      auto to = index.find(lit.atom.pred_id());
      if (to == index.end()) continue;
      calls.push_back({from->second, to->second, &rule.head, &lit.atom});
    }
  }

  std::vector<int> choice(m, 0);
  for (int64_t code = 0; code < num_choices; ++code) {
    int64_t rest = code;
    for (int i = 0; i < m; ++i) {
      choice[i] = static_cast<int>(
          rest % static_cast<int64_t>(bound_positions[i].size()));
      rest /= static_cast<int64_t>(bound_positions[i].size());
    }
    // Per-edge worst offset; +inf (nullopt) kills the choice.
    bool viable = true;
    std::map<std::pair<int, int>, int64_t> edge_offset;
    for (const Call& call : calls) {
      int head_pos = bound_positions[call.i][choice[call.i]];
      int sub_pos = bound_positions[call.j][choice[call.j]];
      std::optional<int64_t> offset = DominanceOffset(
          call.head->args[head_pos], call.subgoal->args[sub_pos]);
      if (!offset.has_value()) {
        viable = false;
        break;
      }
      auto [it, inserted] =
          edge_offset.try_emplace({call.i, call.j}, *offset);
      if (!inserted && *offset > it->second) it->second = *offset;
    }
    if (!viable) continue;
    // Every cycle must accumulate offset <= -1: negate and require all
    // cycles strictly positive.
    MinPlusClosure closure(m);
    for (const auto& [edge, offset] : edge_offset) {
      closure.AddEdge(edge.first, edge.second, -offset);
    }
    closure.Run();
    if (!closure.HasNonPositiveCycle()) {
      std::string detail = "designated arguments:";
      for (int i = 0; i < m; ++i) {
        detail += StrCat(" ", program.PredName(scc_preds[i]), "#",
                         bound_positions[i][choice[i]] + 1);
      }
      return {BaselineVerdict::kProved, detail};
    }
  }
  return {BaselineVerdict::kNotProved,
          "no designated-argument assignment with pairwise size descent"};
}

}  // namespace

BaselineReport UvgAnalyzer::Analyze(const Program& program,
                                    const PredId& query,
                                    const Adornment& adornment) {
  return baselines_internal::AnalyzeBySccs(
      program, query, adornment,
      [](const Program& analyzed, const std::vector<PredId>& scc_preds,
         const std::map<PredId, Adornment>& modes) {
        return CheckScc(analyzed, scc_preds, modes);
      });
}

}  // namespace termilog
