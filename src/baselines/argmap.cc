#include "baselines/argmap.h"

#include <algorithm>
#include <map>
#include <optional>

#include "graph/minplus.h"
#include "lp/simplex.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Term-order graph for one rule prefix: nodes are structurally distinct
// terms, edges carry upper bounds on size differences:
//   edge u -> v with weight w  means  size(v) <= size(u) + w.
class OrderGraph {
 public:
  int NodeFor(const TermPtr& term) {
    for (size_t i = 0; i < terms_.size(); ++i) {
      if (Term::Equal(terms_[i], term)) return static_cast<int>(i);
    }
    terms_.push_back(term);
    return static_cast<int>(terms_.size()) - 1;
  }

  // Adds the term and all of its subterms, with structural edges
  // t -> child of weight -arity(t) (size(child) <= size(t) - arity(t)).
  int AddTermWithSubterms(const TermPtr& term) {
    int node = NodeFor(term);
    if (!term->IsCompound()) return node;
    for (const TermPtr& arg : term->args()) {
      int child = AddTermWithSubterms(arg);
      edges_.push_back({node, child, -static_cast<int64_t>(term->arity())});
    }
    return node;
  }

  void AddEdge(int from, int to, int64_t weight) {
    edges_.push_back({from, to, weight});
  }

  // All-pairs shortest size-difference bounds.
  MinPlusClosure Close() const {
    MinPlusClosure closure(static_cast<int>(terms_.size()));
    for (const auto& [from, to, weight] : edges_) {
      closure.AddEdge(from, to, weight);
    }
    // size(t) <= size(t) + 0.
    for (size_t i = 0; i < terms_.size(); ++i) {
      closure.AddEdge(static_cast<int>(i), static_cast<int>(i), 0);
    }
    closure.Run();
    return closure;
  }

 private:
  struct Edge {
    int from, to;
    int64_t weight;
  };
  std::vector<TermPtr> terms_;
  std::vector<Edge> edges_;
};

// Pairwise order facts entailed by the predicate's polyhedron:
// max c such that P |= z_i >= z_j + c, as an integer (or nullopt if none).
std::optional<int64_t> PairwiseGap(const Polyhedron& knowledge, int i,
                                   int j) {
  std::vector<Rational> objective(knowledge.num_vars());
  objective[i] = Rational(1);
  objective[j] = Rational(-1);
  std::vector<bool> all_free(knowledge.num_vars(), true);
  LpResult lp =
      SimplexSolver::Minimize(knowledge.constraints(), objective, all_free);
  if (lp.status != LpStatus::kOptimal) return std::nullopt;  // unbounded below
  // Largest integer c with z_i - z_j >= c everywhere: floor of the minimum.
  BigInt q, r;
  BigInt::DivMod(lp.objective.num(), lp.objective.den(), &q, &r);
  int64_t c = q.ToInt64();
  if (!r.is_zero() && lp.objective.sign() < 0) --c;
  return c;
}

// Minimal total weight over injective mappings from subgoal bound args to
// head bound args (brute force; arities are tiny).
std::optional<int64_t> BestMapping(const MinPlusClosure& closure,
                                   const std::vector<int>& head_nodes,
                                   const std::vector<int>& sub_nodes) {
  if (sub_nodes.size() > head_nodes.size()) return std::nullopt;
  std::vector<int> order(head_nodes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::optional<int64_t> best;
  std::vector<int> perm(order);
  do {
    int64_t total = 0;
    bool feasible = true;
    for (size_t k = 0; k < sub_nodes.size(); ++k) {
      int64_t d = closure.Distance(head_nodes[perm[k]], sub_nodes[k]);
      if (d >= MinPlusClosure::kInfinity) {
        feasible = false;
        break;
      }
      total += d;
    }
    if (feasible && (!best.has_value() || total < *best)) best = total;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

// Looks up `pred` in the db, falling back to its base name when `pred` is
// an adornment clone ("append__ffb" -> "append") created by the shared
// preprocessing: size knowledge is adornment-independent.
std::optional<Polyhedron> DbLookup(const Program& program,
                                   const ArgSizeDb& db, const PredId& pred) {
  if (db.Has(pred)) return db.Get(pred);
  const std::string& name = program.symbols().Name(pred.symbol);
  size_t cut = name.rfind("__");
  if (cut == std::string::npos) return std::nullopt;
  int base = program.symbols().Lookup(name.substr(0, cut));
  if (base < 0) return std::nullopt;
  PredId base_pred{base, pred.arity};
  if (!db.Has(base_pred)) return std::nullopt;
  return db.Get(base_pred);
}

BaselineReport CheckScc(const Program& program, const ArgSizeDb& db,
                        const std::vector<PredId>& scc_preds,
                        const std::map<PredId, Adornment>& modes) {
  const int m = static_cast<int>(scc_preds.size());
  std::map<PredId, int> index;
  std::map<PredId, std::vector<int>> bound_positions;
  for (int i = 0; i < m; ++i) {
    index[scc_preds[i]] = i;
    std::vector<int> positions;
    const Adornment& adornment = modes.at(scc_preds[i]);
    for (size_t k = 0; k < adornment.size(); ++k) {
      if (adornment[k] == Mode::kBound) positions.push_back(static_cast<int>(k));
    }
    if (positions.empty()) {
      return {BaselineVerdict::kNotProved,
              StrCat("no bound argument on ", program.PredName(scc_preds[i]))};
    }
    bound_positions[scc_preds[i]] = std::move(positions);
  }

  std::map<std::pair<int, int>, int64_t> edge_weight;
  for (const Rule& rule : program.rules()) {
    auto from = index.find(rule.head.pred_id());
    if (from == index.end()) continue;
    for (size_t s = 0; s < rule.body.size(); ++s) {
      auto to = index.find(rule.body[s].atom.pred_id());
      if (to == index.end()) continue;

      // Build the order graph from the head, the recursive subgoal, and
      // the preceding positive subgoals' pairwise order knowledge.
      OrderGraph graph;
      std::vector<int> head_nodes, sub_nodes;
      for (int position : bound_positions.at(rule.head.pred_id())) {
        head_nodes.push_back(
            graph.AddTermWithSubterms(rule.head.args[position]));
      }
      for (int position : bound_positions.at(rule.body[s].atom.pred_id())) {
        sub_nodes.push_back(
            graph.AddTermWithSubterms(rule.body[s].atom.args[position]));
      }
      for (size_t k = 0; k < s; ++k) {
        const Literal& lit = rule.body[k];
        if (!lit.positive) continue;
        std::optional<Polyhedron> looked_up =
            DbLookup(program, db, lit.atom.pred_id());
        if (!looked_up.has_value()) continue;
        Polyhedron knowledge = std::move(*looked_up);
        if (knowledge.IsEmpty()) continue;
        std::vector<int> arg_nodes;
        for (const TermPtr& arg : lit.atom.args) {
          arg_nodes.push_back(graph.AddTermWithSubterms(arg));
        }
        const int arity = static_cast<int>(arg_nodes.size());
        for (int i = 0; i < arity; ++i) {
          for (int j = 0; j < arity; ++j) {
            if (i == j) continue;
            std::optional<int64_t> gap = PairwiseGap(knowledge, i, j);
            if (gap.has_value() && *gap > INT64_MIN / 4) {
              // z_i >= z_j + c  =>  size(t_j) <= size(t_i) - c.
              graph.AddEdge(arg_nodes[i], arg_nodes[j], -*gap);
            }
          }
        }
      }
      MinPlusClosure closure = graph.Close();
      std::optional<int64_t> weight =
          BestMapping(closure, head_nodes, sub_nodes);
      if (!weight.has_value()) {
        return {BaselineVerdict::kNotProved,
                StrCat("no order relation covers the recursive call in rule '",
                       rule.ToString(program.symbols()), "'")};
      }
      auto [it, inserted] =
          edge_weight.try_emplace({from->second, to->second}, *weight);
      if (!inserted && *weight > it->second) it->second = *weight;
    }
  }

  // All dependency cycles must strictly decrease the bound-argument sum.
  MinPlusClosure cycles(m);
  for (const auto& [edge, weight] : edge_weight) {
    cycles.AddEdge(edge.first, edge.second, -weight);
  }
  cycles.Run();
  if (cycles.HasNonPositiveCycle()) {
    return {BaselineVerdict::kNotProved,
            "a dependency cycle does not strictly decrease under the best "
            "argument mapping"};
  }
  return {BaselineVerdict::kProved, "argument mapping with order constraints"};
}

}  // namespace

BaselineReport ArgMapAnalyzer::Analyze(const Program& program,
                                       const PredId& query,
                                       const Adornment& adornment,
                                       const ArgSizeDb& db) {
  return baselines_internal::AnalyzeBySccs(
      program, query, adornment,
      [&db](const Program& analyzed, const std::vector<PredId>& scc_preds,
            const std::map<PredId, Adornment>& modes) {
        return CheckScc(analyzed, db, scc_preds, modes);
      });
}

}  // namespace termilog
