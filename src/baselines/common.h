#ifndef TERMILOG_BASELINES_COMMON_H_
#define TERMILOG_BASELINES_COMMON_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/scc.h"
#include "program/ast.h"
#include "program/modes.h"
#include "transform/adornment.h"
#include "util/string_util.h"

namespace termilog {

/// Verdict of a baseline (prior-art) termination analyzer.
enum class BaselineVerdict {
  kProved,
  kNotProved,
  kUnsupported,  // the method's preconditions do not apply
};

inline const char* BaselineVerdictName(BaselineVerdict verdict) {
  switch (verdict) {
    case BaselineVerdict::kProved:
      return "PROVED";
    case BaselineVerdict::kNotProved:
      return "NOT_PROVED";
    case BaselineVerdict::kUnsupported:
      return "UNSUPPORTED";
  }
  return "UNKNOWN";
}

struct BaselineReport {
  BaselineVerdict verdict = BaselineVerdict::kNotProved;
  std::string detail;
};

namespace baselines_internal {

/// Shared scaffolding for the three reconstructed prior methods: repair
/// adornment conflicts by cloning (same preprocessing the main analyzer
/// gets, so the comparison is apples-to-apples), run the mode dataflow,
/// decompose the reachable predicates into SCCs, and apply `check_scc` to
/// every recursive SCC. The overall verdict is kProved iff every recursive
/// SCC is proved. The callback receives the (possibly cloned) program.
inline BaselineReport AnalyzeBySccs(
    const Program& original_program, const PredId& original_query,
    const Adornment& adornment,
    const std::function<BaselineReport(const Program&,
                                       const std::vector<PredId>&,
                                       const std::map<PredId, Adornment>&)>&
        check_scc) {
  Program program = original_program;
  PredId query = original_query;
  ModeAnalysisResult modes = InferModes(program, query, adornment);
  for (int round = 0; round < 4 && modes.HasConflicts(); ++round) {
    AdornmentCloneResult cloned =
        CloneConflictingAdornments(program, query, adornment);
    if (!cloned.changed) break;
    program = std::move(cloned.program);
    query = cloned.query;
    modes = InferModes(program, query, adornment);
  }
  if (modes.HasConflicts()) {
    return {BaselineVerdict::kUnsupported, modes.conflicts.front()};
  }
  std::vector<PredId> preds;
  for (const auto& [pred, a] : modes.adornments) {
    (void)a;
    preds.push_back(pred);
  }
  std::map<PredId, int> index;
  for (size_t i = 0; i < preds.size(); ++i) {
    index[preds[i]] = static_cast<int>(i);
  }
  Digraph graph(static_cast<int>(preds.size()));
  for (const Rule& rule : program.rules()) {
    auto from = index.find(rule.head.pred_id());
    if (from == index.end()) continue;
    for (const Literal& lit : rule.body) {
      auto to = index.find(lit.atom.pred_id());
      if (to != index.end()) graph.AddEdge(from->second, to->second);
    }
  }
  for (const std::vector<int>& component :
       StronglyConnectedComponents(graph)) {
    if (!IsRecursiveComponent(graph, component)) continue;
    std::vector<PredId> scc_preds;
    for (int node : component) scc_preds.push_back(preds[node]);
    BaselineReport scc = check_scc(program, scc_preds, modes.adornments);
    if (scc.verdict != BaselineVerdict::kProved) {
      if (scc.detail.empty()) {
        scc.detail = StrCat("failed on SCC containing ",
                            program.PredName(scc_preds.front()));
      }
      return scc;
    }
  }
  return {BaselineVerdict::kProved, ""};
}

}  // namespace baselines_internal
}  // namespace termilog

#endif  // TERMILOG_BASELINES_COMMON_H_
