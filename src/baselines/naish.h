#ifndef TERMILOG_BASELINES_NAISH_H_
#define TERMILOG_BASELINES_NAISH_H_

#include "baselines/common.h"
#include "program/ast.h"

namespace termilog {

/// Reconstruction of Naish's method [Nai83] as characterized in Section 1.1
/// of the paper: search for a subset S of the bound argument positions of
/// the recursive predicate such that on every recursive call
///  - every position in S is unchanged or replaced by a proper subterm of
///    the head's term at the SAME position, and
///  - at least one position in S is a proper subterm.
/// "<" is the proper-subterm partial order. The search over subsets is
/// exponential (the paper notes Sagiv-Ullman later made it
/// semi-polynomial); arities here are small.
///
/// The method compares arguments position-wise within one predicate, so
/// SCCs with mutual recursion are reported kUnsupported, and any recursive
/// call that permutes arguments (the paper's Example 5.1 variant) defeats
/// it.
class NaishAnalyzer {
 public:
  static BaselineReport Analyze(const Program& program, const PredId& query,
                                const Adornment& adornment);
};

}  // namespace termilog

#endif  // TERMILOG_BASELINES_NAISH_H_
