#ifndef TERMILOG_BASELINES_ARGMAP_H_
#define TERMILOG_BASELINES_ARGMAP_H_

#include "baselines/common.h"
#include "constraints/arg_size_db.h"
#include "program/ast.h"

namespace termilog {

/// Reconstruction of Brodsky-Sagiv style argument mapping [BS89a, BS89b]
/// following the translation sketched in the paper's Appendix B: the only
/// size knowledge available is PARTIAL ORDER information between pairs of
/// argument positions — structural subterm edges read off unification, plus
/// pairwise (two-argument) order facts entailed by the per-predicate
/// knowledge base (the Appendix B "EDB partial order constraints").
///
/// Per recursive call, an injective mapping from the subgoal's bound
/// arguments into the head's bound arguments is sought whose mapped pairs
/// are related through the order graph; the per-call guaranteed descent is
/// accumulated around dependency cycles, all of which must strictly
/// decrease. Three-or-more-variable constraints (append1 + append2 =
/// append3) are inexpressible here by construction, which reproduces the
/// Appendix B observation that this translation handles Examples 5.1 and
/// 6.1 but not Example 3.1.
class ArgMapAnalyzer {
 public:
  static BaselineReport Analyze(const Program& program, const PredId& query,
                                const Adornment& adornment,
                                const ArgSizeDb& db);
};

}  // namespace termilog

#endif  // TERMILOG_BASELINES_ARGMAP_H_
