#ifndef TERMILOG_BASELINES_UVG_H_
#define TERMILOG_BASELINES_UVG_H_

#include "baselines/common.h"
#include "program/ast.h"

namespace termilog {

/// Reconstruction of the Ullman-Van Gelder style test [UVG88] as
/// characterized in Sections 1.1 and 5 of the paper: a total size measure
/// on terms, ONE designated bound argument per predicate of the SCC, and
/// only pairwise (two-variable) size relations x >= y + c read directly off
/// the term structure: the designated subgoal argument's size polynomial
/// must be dominated coefficient-wise by the designated head argument's.
/// Around every dependency cycle the accumulated offset must be <= -1
/// (checked by min-plus closure).
///
/// This captures what the paper's Example 3.1 discussion calls "order
/// relationships among pairs of arguments": no three-variable constraint
/// like append1 + append2 = append3 is available, which is why perm/append
/// defeats it.
class UvgAnalyzer {
 public:
  static BaselineReport Analyze(const Program& program, const PredId& query,
                                const Adornment& adornment);
};

}  // namespace termilog

#endif  // TERMILOG_BASELINES_UVG_H_
