#include "baselines/naish.h"

#include <set>

#include "util/string_util.h"

namespace termilog {
namespace {

// True if `sub` occurs strictly inside `super`.
bool ProperSubterm(const TermPtr& sub, const TermPtr& super) {
  if (super->IsVariable()) return false;
  for (const TermPtr& arg : super->args()) {
    if (Term::Equal(sub, arg) || ProperSubterm(sub, arg)) return true;
  }
  return false;
}

BaselineReport CheckScc(const Program& program,
                        const std::vector<PredId>& scc_preds,
                        const std::map<PredId, Adornment>& modes) {
  if (scc_preds.size() > 1) {
    return {BaselineVerdict::kUnsupported,
            "Naish-style position-wise descent does not handle mutual "
            "recursion"};
  }
  const PredId pred = scc_preds.front();
  const Adornment& adornment = modes.at(pred);
  std::vector<int> bound_positions;
  for (size_t i = 0; i < adornment.size(); ++i) {
    if (adornment[i] == Mode::kBound) {
      bound_positions.push_back(static_cast<int>(i));
    }
  }
  if (bound_positions.empty()) {
    return {BaselineVerdict::kNotProved, "no bound arguments"};
  }

  // Collect all recursive calls (head args, subgoal args).
  struct Call {
    const Atom* head;
    const Atom* subgoal;
  };
  std::vector<Call> calls;
  for (int index : program.RuleIndicesFor(pred)) {
    const Rule& rule = program.rules()[index];
    for (const Literal& lit : rule.body) {
      if (lit.atom.pred_id() == pred) {
        calls.push_back({&rule.head, &lit.atom});
      }
    }
  }

  // Subset search: bitmask over the bound positions.
  const int n = static_cast<int>(bound_positions.size());
  for (unsigned mask = 1; mask < (1u << n); ++mask) {
    bool subset_ok = true;
    for (const Call& call : calls) {
      bool any_decrease = false;
      bool all_ok = true;
      for (int k = 0; k < n; ++k) {
        if (!(mask & (1u << k))) continue;
        int position = bound_positions[k];
        const TermPtr& head_arg = call.head->args[position];
        const TermPtr& sub_arg = call.subgoal->args[position];
        if (Term::Equal(sub_arg, head_arg)) continue;
        if (ProperSubterm(sub_arg, head_arg)) {
          any_decrease = true;
          continue;
        }
        all_ok = false;
        break;
      }
      if (!all_ok || !any_decrease) {
        subset_ok = false;
        break;
      }
    }
    if (subset_ok) {
      std::string detail = "descending subset {";
      bool first = true;
      for (int k = 0; k < n; ++k) {
        if (mask & (1u << k)) {
          if (!first) detail += ",";
          first = false;
          detail += StrCat(bound_positions[k] + 1);
        }
      }
      detail += "}";
      return {BaselineVerdict::kProved, detail};
    }
  }
  return {BaselineVerdict::kNotProved,
          StrCat("no descending subset of bound arguments for ",
                 program.PredName(pred))};
}

}  // namespace

BaselineReport NaishAnalyzer::Analyze(const Program& program,
                                      const PredId& query,
                                      const Adornment& adornment) {
  return baselines_internal::AnalyzeBySccs(
      program, query, adornment,
      [](const Program& analyzed, const std::vector<PredId>& scc_preds,
         const std::map<PredId, Adornment>& modes) {
        return CheckScc(analyzed, scc_preds, modes);
      });
}

}  // namespace termilog
