#ifndef TERMILOG_PROGRAM_PARSER_H_
#define TERMILOG_PROGRAM_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Parses a Prolog-subset program text into a Program.
///
/// Supported syntax:
///   - rules `h.` and `h :- b1, ..., bn.`
///   - compound terms `f(t1, ..., tn)`, constants, integers (treated as
///     atomic constants), variables (capitalized or `_`-prefixed; a lone
///     `_` is anonymous and fresh at each occurrence)
///   - lists `[]`, `[a, b]`, `[H | T]` (desugared to `.`/2 and `[]`)
///   - quoted atoms `'+'`, `'('`
///   - binary comparison/equality subgoals in goal position:
///     `=`, `\=`, `<`, `>`, `=<`, `>=`, `==`, `\==`, `is`
///   - negated subgoals `\+ g` (Appendix D)
///   - directives `:- mode(p(b, f)).` recording the query adornment;
///     unrecognized directives are skipped with a warning
///   - `%` line comments and `/* */` block comments
///
/// Errors carry line/column positions. If `warnings` is non-null it
/// receives one message per skipped directive or suspicious construct.
Result<Program> ParseProgram(std::string_view source,
                             std::vector<std::string>* warnings = nullptr);

/// Parses a single ground or non-ground term (for tests and the
/// interpreter's query construction). Variables are allocated in order of
/// first occurrence; names are returned through `var_names` when non-null.
Result<TermPtr> ParseTerm(std::string_view source, SymbolTable* symbols,
                          std::vector<std::string>* var_names = nullptr);

}  // namespace termilog

#endif  // TERMILOG_PROGRAM_PARSER_H_
