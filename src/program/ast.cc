#include "program/ast.h"

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

void Atom::CollectVariables(std::set<int>* out) const {
  for (const TermPtr& arg : args) arg->CollectVariables(out);
}

namespace {

std::function<std::string(int)> MakeNamer(
    const std::vector<std::string>& var_names) {
  return [&var_names](int v) {
    if (v >= 0 && v < static_cast<int>(var_names.size())) return var_names[v];
    return StrCat("_G", v);
  };
}

}  // namespace

std::string Atom::ToString(const SymbolTable& symbols,
                           const std::vector<std::string>& var_names) const {
  auto namer = MakeNamer(var_names);
  const std::string& name = symbols.Name(predicate);
  if (args.empty()) return name;
  std::string out = name;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i]->ToString(symbols, namer);
  }
  out += ")";
  return out;
}

namespace {

// Binary comparison/equality predicates print infix ("X =< Y"); the parser
// accepts both forms, so round-tripping is preserved.
bool IsInfixOperator(const std::string& name) {
  return name == "=" || name == "\\=" || name == "<" || name == ">" ||
         name == "=<" || name == ">=" || name == "==" || name == "\\==" ||
         name == "is";
}

}  // namespace

std::string Literal::ToString(const SymbolTable& symbols,
                              const std::vector<std::string>& var_names) const {
  std::string rendered;
  const std::string& name = symbols.Name(atom.predicate);
  if (atom.args.size() == 2 && IsInfixOperator(name)) {
    auto namer = MakeNamer(var_names);
    rendered = StrCat(atom.args[0]->ToString(symbols, namer), " ", name, " ",
                      atom.args[1]->ToString(symbols, namer));
  } else {
    rendered = atom.ToString(symbols, var_names);
  }
  return positive ? rendered : StrCat("\\+ ", rendered);
}

std::string Rule::VarName(int v) const {
  if (v >= 0 && v < static_cast<int>(var_names.size())) return var_names[v];
  return StrCat("_G", v);
}

std::string Rule::ToString(const SymbolTable& symbols) const {
  std::string out = head.ToString(symbols, var_names);
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ", ";
      out += body[i].ToString(symbols, var_names);
    }
  }
  out += ".";
  return out;
}

std::string AdornmentToString(const Adornment& adornment) {
  std::string out;
  for (Mode m : adornment) out += (m == Mode::kBound ? 'b' : 'f');
  return out;
}

std::vector<int> Program::RuleIndicesFor(const PredId& pred) const {
  std::vector<int> out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].head.pred_id() == pred) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::set<PredId> Program::DefinedPredicates() const {
  std::set<PredId> out;
  for (const Rule& rule : rules_) out.insert(rule.head.pred_id());
  return out;
}

std::set<PredId> Program::AllPredicates() const {
  std::set<PredId> out = DefinedPredicates();
  for (const Rule& rule : rules_) {
    for (const Literal& lit : rule.body) out.insert(lit.atom.pred_id());
  }
  return out;
}

bool Program::IsDefined(const PredId& pred) const {
  for (const Rule& rule : rules_) {
    if (rule.head.pred_id() == pred) return true;
  }
  return false;
}

std::string Program::PredName(const PredId& pred) const {
  return StrCat(symbols_->Name(pred.symbol), "/", pred.arity);
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += rule.ToString(*symbols_);
    out += "\n";
  }
  for (const ModeDecl& decl : mode_decls_) {
    out += StrCat(":- mode(", PredName(decl.pred), ", ",
                  AdornmentToString(decl.adornment), ").\n");
  }
  return out;
}

}  // namespace termilog
