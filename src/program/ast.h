#ifndef TERMILOG_PROGRAM_AST_H_
#define TERMILOG_PROGRAM_AST_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "term/symbol_table.h"
#include "term/term.h"

namespace termilog {

/// A predicate identity: symbol plus arity ("append/3").
struct PredId {
  int symbol = -1;
  int arity = 0;

  bool operator==(const PredId& o) const {
    return symbol == o.symbol && arity == o.arity;
  }
  bool operator<(const PredId& o) const {
    return symbol != o.symbol ? symbol < o.symbol : arity < o.arity;
  }
};

/// An atomic formula p(t1, ..., tn).
struct Atom {
  int predicate = -1;
  std::vector<TermPtr> args;

  PredId pred_id() const {
    return PredId{predicate, static_cast<int>(args.size())};
  }
  /// Inserts the indices of all variables of all arguments.
  void CollectVariables(std::set<int>* out) const;
  std::string ToString(const SymbolTable& symbols,
                       const std::vector<std::string>& var_names) const;
};

/// A body literal: an atom with polarity (Appendix D: negative subgoals).
struct Literal {
  Atom atom;
  bool positive = true;

  std::string ToString(const SymbolTable& symbols,
                       const std::vector<std::string>& var_names) const;
};

/// One rule (clause). Facts have an empty body. Variables are rule-local
/// indices 0..var_names.size()-1; var_names holds their source names.
struct Rule {
  Atom head;
  std::vector<Literal> body;
  std::vector<std::string> var_names;

  int num_vars() const { return static_cast<int>(var_names.size()); }
  /// Pretty form "h :- b1, b2." / "h." used in reports and tests.
  std::string ToString(const SymbolTable& symbols) const;
  /// Display name for the rule-local variable `v` ("_Gk" past the end,
  /// which happens for variables invented by transformations).
  std::string VarName(int v) const;
};

/// Argument mode in a query pattern: bound (input, fully instantiated when
/// called) or free (output).
enum class Mode { kBound, kFree };

/// Bound/free pattern of a predicate, e.g. append(b, b, f).
using Adornment = std::vector<Mode>;

/// Parses/prints adornment strings like "bbf".
std::string AdornmentToString(const Adornment& adornment);

/// A `:- mode(p(b, f)).` declaration from program text or the API.
struct ModeDecl {
  PredId pred;
  Adornment adornment;
};

/// A logic program: rules plus the shared symbol table and mode
/// declarations. EDB predicates are those appearing only in bodies.
class Program {
 public:
  Program() : symbols_(std::make_shared<SymbolTable>()) {}
  explicit Program(std::shared_ptr<SymbolTable> symbols)
      : symbols_(std::move(symbols)) {}

  SymbolTable& symbols() { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }
  const std::shared_ptr<SymbolTable>& symbols_ptr() const { return symbols_; }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<ModeDecl>& mode_decls() const { return mode_decls_; }
  void AddModeDecl(ModeDecl decl) { mode_decls_.push_back(std::move(decl)); }

  /// Indices into rules() of the rules whose head is `pred`.
  std::vector<int> RuleIndicesFor(const PredId& pred) const;

  /// All predicates appearing as a rule head (IDB).
  std::set<PredId> DefinedPredicates() const;
  /// All predicates appearing anywhere.
  std::set<PredId> AllPredicates() const;
  bool IsDefined(const PredId& pred) const;

  /// "p/2" display form.
  std::string PredName(const PredId& pred) const;

  /// Full listing (rules then mode declarations).
  std::string ToString() const;

 private:
  std::shared_ptr<SymbolTable> symbols_;
  std::vector<Rule> rules_;
  std::vector<ModeDecl> mode_decls_;
};

}  // namespace termilog

#endif  // TERMILOG_PROGRAM_AST_H_
