#include "program/modes.h"

#include <deque>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

std::set<int> BoundVarsAt(const Rule& rule, const Adornment& head_adornment,
                          size_t position) {
  TERMILOG_CHECK(head_adornment.size() == rule.head.args.size());
  TERMILOG_CHECK(position <= rule.body.size());
  std::set<int> bound;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    if (head_adornment[i] == Mode::kBound) {
      rule.head.args[i]->CollectVariables(&bound);
    }
  }
  for (size_t i = 0; i < position; ++i) {
    const Literal& lit = rule.body[i];
    if (lit.positive) {
      lit.atom.CollectVariables(&bound);
    }
  }
  return bound;
}

Adornment AtomAdornment(const Atom& atom, const std::set<int>& bound_vars) {
  Adornment out;
  out.reserve(atom.args.size());
  for (const TermPtr& arg : atom.args) {
    std::set<int> vars;
    arg->CollectVariables(&vars);
    bool all_bound = true;
    for (int v : vars) {
      if (bound_vars.count(v) == 0) {
        all_bound = false;
        break;
      }
    }
    out.push_back(all_bound ? Mode::kBound : Mode::kFree);
  }
  return out;
}

ModeAnalysisResult InferModes(const Program& program, const PredId& entry,
                              const Adornment& entry_adornment) {
  ModeAnalysisResult result;
  TERMILOG_CHECK(static_cast<int>(entry_adornment.size()) == entry.arity);
  std::deque<PredId> worklist;
  result.adornments[entry] = entry_adornment;
  worklist.push_back(entry);
  while (!worklist.empty()) {
    PredId pred = worklist.front();
    worklist.pop_front();
    const Adornment adornment = result.adornments.at(pred);
    for (int rule_index : program.RuleIndicesFor(pred)) {
      const Rule& rule = program.rules()[rule_index];
      std::set<int> bound;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (adornment[i] == Mode::kBound) {
          rule.head.args[i]->CollectVariables(&bound);
        }
      }
      for (const Literal& lit : rule.body) {
        PredId callee = lit.atom.pred_id();
        if (program.IsDefined(callee)) {
          Adornment callee_adornment = AtomAdornment(lit.atom, bound);
          auto it = result.adornments.find(callee);
          if (it == result.adornments.end()) {
            result.adornments.emplace(callee, std::move(callee_adornment));
            worklist.push_back(callee);
          } else if (it->second != callee_adornment) {
            result.conflicted.insert(callee);
            result.conflicts.push_back(StrCat(
                program.PredName(callee), " used with adornments ",
                AdornmentToString(it->second), " and ",
                AdornmentToString(callee_adornment),
                " (the method requires one adornment per predicate)"));
          }
        }
        if (lit.positive) {
          lit.atom.CollectVariables(&bound);
        }
      }
    }
  }
  return result;
}

Result<Adornment> ParseAdornment(std::string_view text) {
  Adornment adornment;
  adornment.reserve(text.size());
  for (char c : text) {
    if (c == 'b') {
      adornment.push_back(Mode::kBound);
    } else if (c == 'f') {
      adornment.push_back(Mode::kFree);
    } else {
      return Status::InvalidArgument(
          StrCat("bad adornment '", text, "': want only 'b'/'f' characters"));
    }
  }
  return adornment;
}

}  // namespace termilog
