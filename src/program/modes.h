#ifndef TERMILOG_PROGRAM_MODES_H_
#define TERMILOG_PROGRAM_MODES_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Result of the left-to-right mode (adornment) dataflow. The paper's
/// preprocessing (Section 3, Appendix A) assumes every predicate is used
/// with a single bound-free adornment; `conflicts` lists predicates for
/// which the program violates that assumption (analysis of their SCCs is
/// then reported as unsupported).
struct ModeAnalysisResult {
  /// Adornment of each reached defined (IDB) predicate.
  std::map<PredId, Adornment> adornments;
  /// Human-readable conflict descriptions (predicate reached with two
  /// different adornments).
  std::vector<std::string> conflicts;
  /// The predicates involved in those conflicts.
  std::set<PredId> conflicted;

  bool HasConflicts() const { return !conflicts.empty(); }
};

/// Infers one adornment per defined predicate, starting from the entry
/// query pattern and propagating left to right through rule bodies:
/// head-bound variables are bound; a subgoal argument is bound iff all of
/// its variables are; a positive subgoal binds all of its variables upon
/// success; a negative subgoal binds nothing (Appendix D).
ModeAnalysisResult InferModes(const Program& program, const PredId& entry,
                              const Adornment& entry_adornment);

/// Variables of `rule` bound just before body literal `position` (0 =
/// before the first literal; body.size() = after the whole body), given the
/// head adornment.
std::set<int> BoundVarsAt(const Rule& rule, const Adornment& head_adornment,
                          size_t position);

/// Adornment of a body atom given the currently bound variables: an
/// argument is bound iff all of its variables are bound.
Adornment AtomAdornment(const Atom& atom, const std::set<int>& bound_vars);

/// Parses the compact "bff" adornment form (the inverse of
/// AdornmentToString): 'b' = bound, 'f' = free, anything else is an
/// InvalidArgument. Used by --conditions mode strings in manifests and
/// expectation declarations.
Result<Adornment> ParseAdornment(std::string_view text);

}  // namespace termilog

#endif  // TERMILOG_PROGRAM_MODES_H_
