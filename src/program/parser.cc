#include "program/parser.h"

#include <cctype>
#include <map>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {
namespace {

enum class TokKind {
  kAtom,     // lowercase identifier, quoted atom, or symbolic operator
  kVar,      // capitalized / underscore identifier
  kInt,      // decimal integer (interned as a constant)
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kBar,
  kDot,      // clause terminator
  kImplies,  // :-
  kNegate,   // \+
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      if (!SkipWhitespaceAndComments()) {
        return Error("unterminated block comment");
      }
      if (pos_ >= src_.size()) {
        out.push_back(Make(TokKind::kEnd, ""));
        return out;
      }
      char c = src_[pos_];
      int line = line_, column = column_;
      if (c == '(') {
        out.push_back(Make(TokKind::kLParen, "("));
        Advance();
      } else if (c == ')') {
        out.push_back(Make(TokKind::kRParen, ")"));
        Advance();
      } else if (c == '[') {
        out.push_back(Make(TokKind::kLBracket, "["));
        Advance();
      } else if (c == ']') {
        out.push_back(Make(TokKind::kRBracket, "]"));
        Advance();
      } else if (c == ',') {
        out.push_back(Make(TokKind::kComma, ","));
        Advance();
      } else if (c == '|') {
        out.push_back(Make(TokKind::kBar, "|"));
        Advance();
      } else if (c == '.') {
        // '.' directly followed by '(' is the cons functor in prefix form.
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '(') {
          out.push_back(Make(TokKind::kAtom, "."));
        } else {
          out.push_back(Make(TokKind::kDot, "."));
        }
        Advance();
      } else if (c == ':' && Peek(1) == '-') {
        out.push_back(Make(TokKind::kImplies, ":-"));
        Advance();
        Advance();
      } else if (c == '\\' && Peek(1) == '+') {
        out.push_back(Make(TokKind::kNegate, "\\+"));
        Advance();
        Advance();
      } else if (c == '\'') {
        Advance();
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != '\'') {
          text.push_back(src_[pos_]);
          Advance();
        }
        if (pos_ >= src_.size()) return Error("unterminated quoted atom");
        Advance();  // closing quote
        Token tok = Make(TokKind::kAtom, text);
        tok.line = line;
        tok.column = column;
        out.push_back(std::move(tok));
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string text;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          text.push_back(src_[pos_]);
          Advance();
        }
        out.push_back(Make(TokKind::kInt, text));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string text;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          text.push_back(src_[pos_]);
          Advance();
        }
        bool is_var = std::isupper(static_cast<unsigned char>(text[0])) ||
                      text[0] == '_';
        out.push_back(Make(is_var ? TokKind::kVar : TokKind::kAtom, text));
      } else {
        // Symbolic operator atoms, longest match first.
        static constexpr std::string_view kOps[] = {
            "\\==", "=<", ">=", "==", "\\=", "=", "<", ">", "+", "-", "*",
            "/"};
        bool matched = false;
        for (std::string_view op : kOps) {
          if (src_.substr(pos_, op.size()) == op) {
            out.push_back(Make(TokKind::kAtom, std::string(op)));
            for (size_t i = 0; i < op.size(); ++i) Advance();
            matched = true;
            break;
          }
        }
        if (!matched) {
          return Error(StrCat("unexpected character '", c, "'"));
        }
      }
    }
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  // Returns false on unterminated block comment.
  bool SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (pos_ < src_.size() && src_[pos_] != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (pos_ < src_.size() &&
               !(src_[pos_] == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (pos_ >= src_.size()) return false;
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return true;
  }

  Token Make(TokKind kind, std::string text) const {
    return Token{kind, std::move(text), line_, column_};
  }

  Status Error(std::string message) const {
    return Status::InvalidArgument(
        StrCat("line ", line_, ":", column_, ": ", message));
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// Binary operators allowed in goal position (parsed as ordinary atoms with
// the operator as the predicate symbol).
bool IsGoalOperator(const std::string& text) {
  return text == "=" || text == "\\=" || text == "<" || text == ">" ||
         text == "=<" || text == ">=" || text == "==" || text == "\\==" ||
         text == "is";
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, Program* program,
         std::vector<std::string>* warnings)
      : tokens_(std::move(tokens)), program_(program), warnings_(warnings) {}

  Status Run() {
    while (Current().kind != TokKind::kEnd) {
      Status status = ParseClause();
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Next() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  void Consume() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(std::string message) const {
    const Token& tok = Current();
    return Status::InvalidArgument(StrCat("line ", tok.line, ":", tok.column,
                                          ": ", message, " (at '", tok.text,
                                          "')"));
  }

  Status Expect(TokKind kind, const char* what) {
    if (Current().kind != kind) {
      return Error(StrCat("expected ", what));
    }
    Consume();
    return Status::Ok();
  }

  int VarIndex(const std::string& name) {
    if (name == "_") {
      int index = static_cast<int>(var_names_.size());
      var_names_.push_back(StrCat("_A", index));
      return index;
    }
    auto it = var_index_.find(name);
    if (it != var_index_.end()) return it->second;
    int index = static_cast<int>(var_names_.size());
    var_names_.push_back(name);
    var_index_.emplace(name, index);
    return index;
  }

  Status ParseClause() {
    var_names_.clear();
    var_index_.clear();
    if (Current().kind == TokKind::kImplies) {
      Consume();
      return ParseDirective();
    }
    Rule rule;
    Result<Atom> head = ParseAtom();
    if (!head.ok()) return head.status();
    rule.head = std::move(head).value();
    if (Current().kind == TokKind::kImplies) {
      Consume();
      while (true) {
        Result<Literal> lit = ParseLiteral();
        if (!lit.ok()) return lit.status();
        rule.body.push_back(std::move(lit).value());
        if (Current().kind == TokKind::kComma) {
          Consume();
          continue;
        }
        break;
      }
    }
    Status end = Expect(TokKind::kDot, "'.' at end of clause");
    if (!end.ok()) return end;
    rule.var_names = var_names_;
    program_->AddRule(std::move(rule));
    return Status::Ok();
  }

  Status ParseDirective() {
    Result<Atom> atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    Status end = Expect(TokKind::kDot, "'.' at end of directive");
    if (!end.ok()) return end;
    const Atom& a = *atom;
    const std::string& name = program_->symbols().Name(a.predicate);
    if (name == "mode" && a.args.size() == 1 && a.args[0]->IsCompound() &&
        !a.args[0]->args().empty()) {
      ModeDecl decl;
      decl.pred.symbol = a.args[0]->functor();
      decl.pred.arity = a.args[0]->arity();
      for (const TermPtr& arg : a.args[0]->args()) {
        if (!arg->IsConstant()) {
          return Error("mode arguments must be the constants b or f");
        }
        const std::string& mode = program_->symbols().Name(arg->functor());
        if (mode == "b" || mode == "bound") {
          decl.adornment.push_back(Mode::kBound);
        } else if (mode == "f" || mode == "free") {
          decl.adornment.push_back(Mode::kFree);
        } else {
          return Error(StrCat("unknown mode '", mode, "'"));
        }
      }
      program_->AddModeDecl(std::move(decl));
      return Status::Ok();
    }
    if (warnings_ != nullptr) {
      warnings_->push_back(StrCat("skipped directive :- ",
                                  a.ToString(program_->symbols(), var_names_),
                                  "."));
    }
    return Status::Ok();
  }

  Result<Literal> ParseLiteral() {
    Literal lit;
    if (Current().kind == TokKind::kNegate) {
      Consume();
      lit.positive = false;
    }
    Result<Atom> atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    lit.atom = std::move(atom).value();
    return lit;
  }

  // An atom is either `p`, `p(...)`, or `t1 OP t2` for a goal operator.
  Result<Atom> ParseAtom() {
    Result<TermPtr> lhs = ParseTermInternal();
    if (!lhs.ok()) return lhs.status();
    if (Current().kind == TokKind::kAtom && IsGoalOperator(Current().text)) {
      std::string op = Current().text;
      Consume();
      Result<TermPtr> rhs = ParseTermInternal();
      if (!rhs.ok()) return rhs.status();
      Atom atom;
      atom.predicate = program_->symbols().Intern(op);
      atom.args = {*lhs, *rhs};
      return atom;
    }
    const TermPtr& term = *lhs;
    if (term->IsVariable()) {
      return Error("a goal cannot be a bare variable");
    }
    Atom atom;
    atom.predicate = term->functor();
    atom.args = term->args();
    return atom;
  }

  // Depth guard: nested-term parsing recurses on the C++ stack, so a
  // crafted input like f(f(f(... would otherwise overflow it. The cap is
  // far above anything a real program contains, but low enough that the
  // remaining recursion fits a default stack even with sanitizer-inflated
  // frames (ASan roughly quadruples them).
  static constexpr int kMaxTermDepth = 400;

  Result<TermPtr> ParseTermInternal() {
    if (term_depth_ >= kMaxTermDepth) {
      return Status::ResourceExhausted(
          StrCat("term nesting exceeds the depth limit of ", kMaxTermDepth));
    }
    ++term_depth_;
    Result<TermPtr> out = ParseTermImpl();
    --term_depth_;
    return out;
  }

  Result<TermPtr> ParseTermImpl() {
    const Token& tok = Current();
    switch (tok.kind) {
      case TokKind::kVar: {
        int index = VarIndex(tok.text);
        Consume();
        return Term::MakeVariable(index);
      }
      case TokKind::kInt: {
        int symbol = program_->symbols().Intern(tok.text);
        Consume();
        return Term::MakeConstant(symbol);
      }
      case TokKind::kAtom: {
        std::string name = tok.text;
        Consume();
        int symbol = program_->symbols().Intern(name);
        if (Current().kind != TokKind::kLParen) {
          return Term::MakeConstant(symbol);
        }
        Consume();
        std::vector<TermPtr> args;
        while (true) {
          Result<TermPtr> arg = ParseTermInternal();
          if (!arg.ok()) return arg.status();
          args.push_back(std::move(arg).value());
          if (Current().kind == TokKind::kComma) {
            Consume();
            continue;
          }
          break;
        }
        Status close = Expect(TokKind::kRParen, "')'");
        if (!close.ok()) return close;
        return Term::MakeCompound(symbol, std::move(args));
      }
      case TokKind::kLBracket: {
        Consume();
        if (Current().kind == TokKind::kRBracket) {
          Consume();
          return Term::MakeConstant(program_->symbols().Intern(kNilName));
        }
        std::vector<TermPtr> items;
        TermPtr tail;
        while (true) {
          Result<TermPtr> item = ParseTermInternal();
          if (!item.ok()) return item.status();
          items.push_back(std::move(item).value());
          if (Current().kind == TokKind::kComma) {
            Consume();
            continue;
          }
          if (Current().kind == TokKind::kBar) {
            Consume();
            Result<TermPtr> t = ParseTermInternal();
            if (!t.ok()) return t.status();
            tail = std::move(t).value();
          }
          break;
        }
        Status close = Expect(TokKind::kRBracket, "']'");
        if (!close.ok()) return close;
        return MakeList(&program_->symbols(), items, std::move(tail));
      }
      default:
        return Error("expected a term");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int term_depth_ = 0;
  Program* program_;
  std::vector<std::string>* warnings_;
  std::vector<std::string> var_names_;
  std::map<std::string, int> var_index_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source,
                             std::vector<std::string>* warnings) {
  Lexer lexer(source);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Program program;
  Parser parser(std::move(tokens).value(), &program, warnings);
  Status status = parser.Run();
  if (!status.ok()) return status;
  return program;
}

Result<TermPtr> ParseTerm(std::string_view source, SymbolTable* symbols,
                          std::vector<std::string>* var_names) {
  TERMILOG_CHECK(symbols != nullptr);
  // Reuse the program machinery: parse "dummy(<term>)." in a scratch
  // program sharing the caller's symbol table.
  Program scratch(
      std::shared_ptr<SymbolTable>(symbols, [](SymbolTable*) {}));
  std::string wrapped = StrCat("'$parse_term'(", source, ").");
  Lexer lexer(wrapped);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), &scratch, nullptr);
  Status status = parser.Run();
  if (!status.ok()) return status;
  if (scratch.rules().size() != 1 || scratch.rules()[0].head.args.size() != 1) {
    return Status::InvalidArgument("not a single term");
  }
  if (var_names != nullptr) *var_names = scratch.rules()[0].var_names;
  return scratch.rules()[0].head.args[0];
}

}  // namespace termilog
