#include "constraints/inference.h"

#include <algorithm>
#include <utility>

#include "graph/digraph.h"
#include "graph/scc.h"
#include "obs/obs.h"
#include "term/size.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Shifts a size polynomial over rule-local variable ids into the rule
// system's column space: logical variable v -> column var_base + v.
LinearExpr ShiftVars(const LinearExpr& expr, int var_base) {
  LinearExpr out(expr.constant());
  for (const auto& [var, coeff] : expr.coeffs()) {
    out.SetCoeff(var_base + var, coeff);
  }
  return out;
}

// A row is trivially implied by variable nonnegativity when it is a kGe row
// with nonnegative coefficients and constant; skipping such rows keeps the
// FM systems small.
bool TriviallyImplied(const Constraint& row) {
  if (row.rel != Relation::kGe) return false;
  if (row.constant.sign() < 0) return false;
  for (const Rational& c : row.coeffs) {
    if (c.sign() < 0) return false;
  }
  return true;
}

}  // namespace

Result<Polyhedron> ConstraintInference::RuleTransfer(
    const Program& program, const Rule& rule,
    const std::map<PredId, Polyhedron>& current, const ArgSizeDb& db,
    const FmOptions& fm) {
  (void)program;  // reserved for diagnostics
  const int arity = static_cast<int>(rule.head.args.size());
  const int var_base = arity;
  const int width = arity + rule.num_vars();
  ConstraintSystem system(width);

  // Head argument size equations: x_i - size(t_i) = 0.
  for (int i = 0; i < arity; ++i) {
    LinearExpr expr = LinearExpr::Variable(i);
    expr -= ShiftVars(StructuralSize(rule.head.args[i]), var_base);
    system.AddExpr(expr, Relation::kEq);
  }
  // Logical variable sizes are nonnegative.
  for (int v = 0; v < rule.num_vars(); ++v) {
    system.AddNonNegativity(var_base + v);
  }
  // Body subgoal contributions.
  for (const Literal& lit : rule.body) {
    if (!lit.positive) continue;  // negative subgoals carry no size info
    PredId callee = lit.atom.pred_id();
    const Polyhedron* callee_poly = nullptr;
    auto it = current.find(callee);
    if (it != current.end()) {
      callee_poly = &it->second;
    } else if (db.Has(callee)) {
      // Trusted / lower-SCC knowledge.
    } else {
      // Unknown predicate: nonnegative orthant contributes nothing beyond
      // what variable nonnegativity already implies.
      continue;
    }
    Polyhedron stored = callee_poly ? *callee_poly : db.Get(callee);
    if (stored.IsEmpty()) {
      // No derivable fact can satisfy this subgoal (yet): the rule derives
      // nothing this sweep.
      return Polyhedron::Empty(arity);
    }
    std::vector<LinearExpr> images;
    images.reserve(lit.atom.args.size());
    for (const TermPtr& arg : lit.atom.args) {
      images.push_back(ShiftVars(StructuralSize(arg), var_base));
    }
    ConstraintSystem instantiated = stored.Instantiate(images, width);
    for (const Constraint& row : instantiated.rows()) {
      if (!TriviallyImplied(row)) system.Add(row);
    }
  }

  std::vector<int> keep(arity);
  for (int i = 0; i < arity; ++i) keep[i] = i;
  Result<ConstraintSystem> projected =
      FourierMotzkin::Project(system, keep, fm);
  if (!projected.ok()) return projected.status();
  Polyhedron out = Polyhedron::FromSystem(std::move(projected).value());
  out.Minimize();
  return out;
}

Status ConstraintInference::Run(const Program& program, ArgSizeDb* db,
                                const InferenceOptions& options,
                                std::map<PredId, InferenceStats>* stats,
                                std::vector<std::string>* warnings) {
  TERMILOG_FAILPOINT("inference.run");
  TERMILOG_TRACE("inference.run", "inference");
  // Dependency graph over defined predicates.
  std::vector<PredId> preds;
  for (const PredId& pred : program.DefinedPredicates()) {
    preds.push_back(pred);
  }
  std::map<PredId, int> index;
  for (size_t i = 0; i < preds.size(); ++i) {
    index[preds[i]] = static_cast<int>(i);
  }
  Digraph graph(static_cast<int>(preds.size()));
  for (const Rule& rule : program.rules()) {
    int from = index.at(rule.head.pred_id());
    for (const Literal& lit : rule.body) {
      auto it = index.find(lit.atom.pred_id());
      if (it != index.end()) graph.AddEdge(from, it->second);
    }
  }

  // Callees-first order (Tarjan emits reverse topological order).
  for (const std::vector<int>& component :
       StronglyConnectedComponents(graph)) {
    std::vector<PredId> scc_preds;
    for (int node : component) {
      const PredId& pred = preds[node];
      if (!db->Has(pred)) scc_preds.push_back(pred);
    }
    if (scc_preds.empty()) continue;  // fully user-supplied

    std::map<PredId, Polyhedron> current;
    for (const PredId& pred : scc_preds) {
      current.emplace(pred, Polyhedron::Empty(pred.arity));
    }
    std::vector<int> rule_indices;
    for (const PredId& pred : scc_preds) {
      for (int r : program.RuleIndicesFor(pred)) rule_indices.push_back(r);
    }
    std::sort(rule_indices.begin(), rule_indices.end());

    InferenceStats scc_stats;
    Status scc_status = Status::Ok();
    for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
      if (TERMILOG_FAILPOINT_HIT("inference.sweep")) {
        scc_status = Status::ResourceExhausted(
            FailpointRegistry::TripMessage("inference.sweep"));
        break;
      }
      if (options.fm.governor != nullptr) {
        scc_status = options.fm.governor->Charge("inference.sweep");
        if (!scc_status.ok()) break;
      }
      ++scc_stats.sweeps;
      TERMILOG_COUNTER("inference.sweeps", 1);
      std::map<PredId, Polyhedron> before = current;
      for (int r : rule_indices) {
        const Rule& rule = program.rules()[r];
        PredId pred = rule.head.pred_id();
        Result<Polyhedron> transferred =
            RuleTransfer(program, rule, current, *db, options.fm);
        if (!transferred.ok()) {
          scc_status = transferred.status();
          break;
        }
        Result<Polyhedron> joined = Polyhedron::ConvexHull(
            current.at(pred), *transferred, options.fm);
        if (!joined.ok()) {
          scc_status = joined.status();
          break;
        }
        current.at(pred) = std::move(joined).value();
      }
      if (!scc_status.ok()) break;
      bool stable = true;
      for (const PredId& pred : scc_preds) {
        if (!before.at(pred).Contains(current.at(pred))) {
          stable = false;
          break;
        }
      }
      if (stable) {
        scc_stats.reached_fixpoint = true;
        break;
      }
      if (sweep + 1 >= options.widen_delay) {
        TERMILOG_COUNTER("inference.widenings", 1);
        scc_stats.widened = true;
        for (const PredId& pred : scc_preds) {
          current.at(pred) = before.at(pred).Widen(current.at(pred));
        }
      }
    }
    if (scc_status.ok() && !scc_stats.reached_fixpoint) {
      scc_status = Status::ResourceExhausted(
          StrCat("constraint inference did not converge within ",
                 options.max_sweeps, " sweeps"));
    }
    if (!scc_status.ok()) {
      // Resource exhaustion degrades per SCC: leave these predicates out of
      // the db (the unconstrained top approximation, sound downstream) and
      // move on. Anything else is a real error.
      if (scc_status.code() != StatusCode::kResourceExhausted) {
        return scc_status;
      }
      if (warnings != nullptr) {
        warnings->push_back(
            StrCat("inference skipped for SCC of ",
                   program.PredName(scc_preds.front()),
                   " (left unconstrained): ", scc_status.message()));
      }
      if (stats != nullptr) {
        stats->emplace(scc_preds.front(), scc_stats);
      }
      continue;
    }
    // One descending refinement pass: lfp <= F(stable) <= stable, and
    // F(stable) recovers facts (like argument nonnegativity bounds) that
    // widening discarded.
    {
      std::map<PredId, Polyhedron> refined;
      for (const PredId& pred : scc_preds) {
        refined.emplace(pred, Polyhedron::Empty(pred.arity));
      }
      bool refine_ok = true;
      for (int r : rule_indices) {
        const Rule& rule = program.rules()[r];
        PredId pred = rule.head.pred_id();
        Result<Polyhedron> transferred =
            ConstraintInference::RuleTransfer(program, rule, current, *db,
                                              options.fm);
        if (!transferred.ok()) {
          refine_ok = false;
          break;
        }
        Result<Polyhedron> joined = Polyhedron::ConvexHull(
            refined.at(pred), *transferred, options.fm);
        if (!joined.ok()) {
          refine_ok = false;
          break;
        }
        refined.at(pred) = std::move(joined).value();
      }
      if (refine_ok) current = std::move(refined);
    }
    for (PredId pred : scc_preds) {
      Polyhedron polyhedron = current.at(pred);
      polyhedron.Minimize();
      db->Set(pred, std::move(polyhedron));
    }
    if (stats != nullptr) {
      stats->emplace(scc_preds.front(), scc_stats);
    }
  }
  return Status::Ok();
}

}  // namespace termilog
