#include "constraints/inference.h"

#include <algorithm>
#include <set>
#include <utility>

#include "graph/digraph.h"
#include "graph/scc.h"
#include "obs/obs.h"
#include "term/size.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// Shifts a size polynomial over rule-local variable ids into the rule
// system's column space: logical variable v -> column var_base + v.
LinearExpr ShiftVars(const LinearExpr& expr, int var_base) {
  LinearExpr out(expr.constant());
  for (const auto& [var, coeff] : expr.coeffs()) {
    out.SetCoeff(var_base + var, coeff);
  }
  return out;
}

// A row is trivially implied by variable nonnegativity when it is a kGe row
// with nonnegative coefficients and constant; skipping such rows keeps the
// FM systems small.
bool TriviallyImplied(const Constraint& row) {
  if (row.rel != Relation::kGe) return false;
  if (row.constant.sign() < 0) return false;
  for (const Rational& c : row.coeffs) {
    if (c.sign() < 0) return false;
  }
  return true;
}

}  // namespace

Result<Polyhedron> ConstraintInference::RuleTransfer(
    const Program& program, const Rule& rule,
    const std::map<PredId, Polyhedron>& current, const ArgSizeDb& db,
    const FmOptions& fm) {
  (void)program;  // reserved for diagnostics
  const int arity = static_cast<int>(rule.head.args.size());
  const int var_base = arity;
  const int width = arity + rule.num_vars();
  ConstraintSystem system(width);

  // Head argument size equations: x_i - size(t_i) = 0.
  for (int i = 0; i < arity; ++i) {
    LinearExpr expr = LinearExpr::Variable(i);
    expr -= ShiftVars(StructuralSize(rule.head.args[i]), var_base);
    system.AddExpr(expr, Relation::kEq);
  }
  // Logical variable sizes are nonnegative.
  for (int v = 0; v < rule.num_vars(); ++v) {
    system.AddNonNegativity(var_base + v);
  }
  // Body subgoal contributions.
  for (const Literal& lit : rule.body) {
    if (!lit.positive) continue;  // negative subgoals carry no size info
    PredId callee = lit.atom.pred_id();
    const Polyhedron* callee_poly = nullptr;
    auto it = current.find(callee);
    if (it != current.end()) {
      callee_poly = &it->second;
    } else if (db.Has(callee)) {
      // Trusted / lower-SCC knowledge.
    } else {
      // Unknown predicate: nonnegative orthant contributes nothing beyond
      // what variable nonnegativity already implies.
      continue;
    }
    Polyhedron stored = callee_poly ? *callee_poly : db.Get(callee);
    if (stored.IsEmpty()) {
      // No derivable fact can satisfy this subgoal (yet): the rule derives
      // nothing this sweep.
      return Polyhedron::Empty(arity);
    }
    std::vector<LinearExpr> images;
    images.reserve(lit.atom.args.size());
    for (const TermPtr& arg : lit.atom.args) {
      images.push_back(ShiftVars(StructuralSize(arg), var_base));
    }
    ConstraintSystem instantiated = stored.Instantiate(images, width);
    for (const Constraint& row : instantiated.rows()) {
      if (!TriviallyImplied(row)) system.Add(row);
    }
  }

  std::vector<int> keep(arity);
  for (int i = 0; i < arity; ++i) keep[i] = i;
  Result<ConstraintSystem> projected =
      FourierMotzkin::Project(system, keep, fm);
  if (!projected.ok()) return projected.status();
  Polyhedron out = Polyhedron::FromSystem(std::move(projected).value());
  out.Minimize();
  return out;
}

InferencePlan ConstraintInference::BuildPlan(const Program& program,
                                             const ArgSizeDb& db) {
  // Dependency graph over defined predicates.
  std::vector<PredId> preds;
  for (const PredId& pred : program.DefinedPredicates()) {
    preds.push_back(pred);
  }
  std::map<PredId, int> index;
  for (size_t i = 0; i < preds.size(); ++i) {
    index[preds[i]] = static_cast<int>(i);
  }
  Digraph graph(static_cast<int>(preds.size()));
  for (const Rule& rule : program.rules()) {
    int from = index.at(rule.head.pred_id());
    for (const Literal& lit : rule.body) {
      auto it = index.find(lit.atom.pred_id());
      if (it != index.end()) graph.AddEdge(from, it->second);
    }
  }

  InferencePlan plan;
  // Which plan node computes each predicate (user-supplied predicates are
  // computed by no node: dependencies on them resolve through the db).
  std::map<PredId, int> node_of;
  // Callees-first order (Tarjan emits reverse topological order).
  for (const std::vector<int>& component :
       StronglyConnectedComponents(graph)) {
    InferencePlanNode node;
    for (int member : component) {
      const PredId& pred = preds[member];
      if (!db.Has(pred)) node.preds.push_back(pred);
    }
    if (node.preds.empty()) continue;  // fully user-supplied
    const int node_index = static_cast<int>(plan.nodes.size());
    std::set<int> deps;
    for (const PredId& pred : node.preds) {
      for (int r : program.RuleIndicesFor(pred)) {
        for (const Literal& lit : program.rules()[r].body) {
          if (!lit.positive) continue;
          auto it = node_of.find(lit.atom.pred_id());
          if (it != node_of.end() && it->second != node_index) {
            deps.insert(it->second);
          }
        }
      }
    }
    for (const PredId& pred : node.preds) node_of[pred] = node_index;
    node.deps.assign(deps.begin(), deps.end());
    plan.nodes.push_back(std::move(node));
  }
  return plan;
}

Result<SccInferenceResult> ConstraintInference::RunScc(
    const Program& program, const std::vector<PredId>& scc_preds,
    const ArgSizeDb& db, const InferenceOptions& options) {
  TERMILOG_TRACE("inference.scc", "inference");
  SccInferenceResult result;
  std::map<PredId, Polyhedron> current;
  for (const PredId& pred : scc_preds) {
    current.emplace(pred, Polyhedron::Empty(pred.arity));
  }
  std::vector<int> rule_indices;
  for (const PredId& pred : scc_preds) {
    for (int r : program.RuleIndicesFor(pred)) rule_indices.push_back(r);
  }
  std::sort(rule_indices.begin(), rule_indices.end());

  Status scc_status = Status::Ok();
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (TERMILOG_FAILPOINT_HIT("inference.sweep")) {
      scc_status = Status::ResourceExhausted(
          FailpointRegistry::TripMessage("inference.sweep"));
      break;
    }
    if (options.fm.governor != nullptr) {
      scc_status = options.fm.governor->Charge("inference.sweep");
      if (!scc_status.ok()) break;
    }
    ++result.stats.sweeps;
    TERMILOG_COUNTER("inference.sweeps", 1);
    std::map<PredId, Polyhedron> before = current;
    for (int r : rule_indices) {
      const Rule& rule = program.rules()[r];
      PredId pred = rule.head.pred_id();
      Result<Polyhedron> transferred =
          RuleTransfer(program, rule, current, db, options.fm);
      if (!transferred.ok()) {
        scc_status = transferred.status();
        break;
      }
      Result<Polyhedron> joined = Polyhedron::ConvexHull(
          current.at(pred), *transferred, options.fm);
      if (!joined.ok()) {
        scc_status = joined.status();
        break;
      }
      current.at(pred) = std::move(joined).value();
    }
    if (!scc_status.ok()) break;
    bool stable = true;
    for (const PredId& pred : scc_preds) {
      if (!before.at(pred).Contains(current.at(pred))) {
        stable = false;
        break;
      }
    }
    if (stable) {
      result.stats.reached_fixpoint = true;
      break;
    }
    if (sweep + 1 >= options.widen_delay) {
      TERMILOG_COUNTER("inference.widenings", 1);
      result.stats.widened = true;
      for (const PredId& pred : scc_preds) {
        current.at(pred) = before.at(pred).Widen(current.at(pred));
      }
    }
  }
  if (scc_status.ok() && !result.stats.reached_fixpoint) {
    scc_status = Status::ResourceExhausted(
        StrCat("constraint inference did not converge within ",
               options.max_sweeps, " sweeps"));
  }
  if (!scc_status.ok()) {
    // Resource exhaustion degrades per SCC: the predicates are left out of
    // the db (the unconstrained top approximation, sound downstream).
    // Anything else is a real error.
    if (scc_status.code() != StatusCode::kResourceExhausted) {
      return scc_status;
    }
    result.resource_limited = true;
    result.trip_message = std::string(scc_status.message());
    return result;
  }
  // One descending refinement pass: lfp <= F(stable) <= stable, and
  // F(stable) recovers facts (like argument nonnegativity bounds) that
  // widening discarded.
  {
    std::map<PredId, Polyhedron> refined;
    for (const PredId& pred : scc_preds) {
      refined.emplace(pred, Polyhedron::Empty(pred.arity));
    }
    bool refine_ok = true;
    for (int r : rule_indices) {
      const Rule& rule = program.rules()[r];
      PredId pred = rule.head.pred_id();
      Result<Polyhedron> transferred =
          ConstraintInference::RuleTransfer(program, rule, current, db,
                                            options.fm);
      if (!transferred.ok()) {
        refine_ok = false;
        break;
      }
      Result<Polyhedron> joined = Polyhedron::ConvexHull(
          refined.at(pred), *transferred, options.fm);
      if (!joined.ok()) {
        refine_ok = false;
        break;
      }
      refined.at(pred) = std::move(joined).value();
    }
    if (refine_ok) current = std::move(refined);
  }
  for (const PredId& pred : scc_preds) {
    Polyhedron polyhedron = current.at(pred);
    polyhedron.Minimize();
    result.entries.emplace_back(pred, std::move(polyhedron));
  }
  return result;
}

Status ConstraintInference::Run(const Program& program, ArgSizeDb* db,
                                const InferenceOptions& options,
                                std::map<PredId, InferenceStats>* stats,
                                std::vector<std::string>* warnings) {
  TERMILOG_FAILPOINT("inference.run");
  TERMILOG_TRACE("inference.run", "inference");
  // Serial in-order execution of the plan; the batch engine schedules the
  // same nodes across its worker pool instead (src/engine/engine.cc).
  InferencePlan plan = BuildPlan(program, *db);
  for (const InferencePlanNode& node : plan.nodes) {
    Result<SccInferenceResult> scc = RunScc(program, node.preds, *db, options);
    if (!scc.ok()) return scc.status();
    if (scc->resource_limited) {
      if (warnings != nullptr) {
        warnings->push_back(
            StrCat("inference skipped for SCC of ",
                   program.PredName(node.preds.front()),
                   " (left unconstrained): ", scc->trip_message));
      }
    } else {
      for (auto& [pred, polyhedron] : scc->entries) {
        db->Set(pred, std::move(polyhedron));
      }
    }
    if (stats != nullptr) {
      stats->emplace(node.preds.front(), scc->stats);
    }
  }
  return Status::Ok();
}

}  // namespace termilog
