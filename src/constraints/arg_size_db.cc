#include "constraints/arg_size_db.h"

#include <cctype>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

void ArgSizeDb::Set(const PredId& pred, Polyhedron polyhedron) {
  TERMILOG_CHECK(polyhedron.num_vars() == pred.arity);
  entries_.insert_or_assign(pred, std::move(polyhedron));
}

bool ArgSizeDb::Has(const PredId& pred) const {
  return entries_.count(pred) != 0;
}

Polyhedron ArgSizeDb::Get(const PredId& pred) const {
  auto it = entries_.find(pred);
  if (it != entries_.end()) return it->second;
  return Polyhedron::NonNegativeOrthant(pred.arity);
}

namespace {

// Parses one side of a spec constraint ("2 + 3*a1 - a2") into a LinearExpr
// over variables a1..a<arity> (0-based indices).
Result<LinearExpr> ParseSide(std::string_view text, int arity) {
  LinearExpr expr;
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  bool first = true;
  while (true) {
    skip_space();
    if (pos >= text.size()) {
      if (first) return Status::InvalidArgument("empty expression side");
      break;
    }
    Rational sign(1);
    if (text[pos] == '+') {
      ++pos;
    } else if (text[pos] == '-') {
      sign = Rational(-1);
      ++pos;
    } else if (!first) {
      return Status::InvalidArgument(
          StrCat("expected '+' or '-' in spec at '", text.substr(pos), "'"));
    }
    first = false;
    skip_space();
    // Optional coefficient.
    Rational coeff(1);
    bool saw_number = false;
    if (pos < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[pos]))) {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '/')) {
        ++pos;
      }
      Result<Rational> value =
          Rational::FromString(text.substr(start, pos - start));
      if (!value.ok()) return value.status();
      coeff = *value;
      saw_number = true;
      skip_space();
      if (pos < text.size() && text[pos] == '*') {
        ++pos;
        skip_space();
      } else if (pos >= text.size() || text[pos] != 'a') {
        // Pure constant term.
        expr.set_constant(expr.constant() + sign * coeff);
        continue;
      }
    }
    if (pos < text.size() && text[pos] == 'a') {
      ++pos;
      size_t start = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      if (start == pos) {
        return Status::InvalidArgument("expected argument index after 'a'");
      }
      int index = 0;
      for (size_t i = start; i < pos; ++i) index = index * 10 + (text[i] - '0');
      if (index < 1 || index > arity) {
        return Status::InvalidArgument(
            StrCat("argument index a", index, " out of range 1..", arity));
      }
      expr.AddToCoeff(index - 1, sign * coeff);
      continue;
    }
    if (saw_number) continue;
    return Status::InvalidArgument(
        StrCat("unexpected token in spec at '", text.substr(pos), "'"));
  }
  return expr;
}

}  // namespace

Result<Polyhedron> ArgSizeDb::ParseSpec(int arity, std::string_view spec) {
  Polyhedron out = Polyhedron::NonNegativeOrthant(arity);
  for (const std::string& piece : Split(spec, ';')) {
    std::string_view text = StripWhitespace(piece);
    if (text.empty()) continue;
    // Find the relation operator.
    static constexpr std::string_view kRels[] = {">=", "<=", "=", ">", "<"};
    size_t rel_pos = std::string_view::npos;
    std::string_view rel;
    for (std::string_view candidate : kRels) {
      size_t at = text.find(candidate);
      if (at != std::string_view::npos) {
        rel_pos = at;
        rel = candidate;
        break;
      }
    }
    if (rel_pos == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("no relation in constraint '", text, "'"));
    }
    Result<LinearExpr> lhs = ParseSide(text.substr(0, rel_pos), arity);
    if (!lhs.ok()) return lhs.status();
    Result<LinearExpr> rhs = ParseSide(text.substr(rel_pos + rel.size()),
                                       arity);
    if (!rhs.ok()) return rhs.status();
    LinearExpr diff = *lhs - *rhs;  // lhs - rhs REL 0
    Relation relation = Relation::kGe;
    if (rel == "=") {
      relation = Relation::kEq;
    } else if (rel == "<=") {
      diff = -diff;
    } else if (rel == ">") {
      diff -= LinearExpr(Rational(1));  // strict over integer sizes
    } else if (rel == "<") {
      diff = -diff - LinearExpr(Rational(1));
    }
    out.AddConstraint(Constraint::FromExpr(diff, arity, relation));
  }
  return out;
}

std::string ArgSizeDb::ToString(const Program& program) const {
  std::string out;
  for (const auto& [pred, polyhedron] : entries_) {
    std::function<std::string(int)> namer = [](int v) {
      return StrCat("a", v + 1);
    };
    out += StrCat(program.PredName(pred), ":\n");
    std::string body = polyhedron.ToString(&namer);
    for (const std::string& line : Split(body, '\n')) {
      if (!line.empty()) out += StrCat("  ", line, "\n");
    }
  }
  return out;
}

}  // namespace termilog
