#ifndef TERMILOG_CONSTRAINTS_ARG_SIZE_DB_H_
#define TERMILOG_CONSTRAINTS_ARG_SIZE_DB_H_

#include <map>
#include <string>
#include <string_view>

#include "fm/polyhedron.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Per-predicate argument-size knowledge: for each predicate p/n, a
/// polyhedron over n variables (the structural sizes of the arguments of
/// p's derivable facts). This is the paper's "imported feasibility
/// constraint" store (Section 3): e.g. append/3 maps to
/// { a1 + a2 - a3 = 0, a >= 0 }.
///
/// Entries are either inferred by ConstraintInference or supplied by the
/// user (the paper's manual-input mode, Section 8). For predicates without
/// an entry, Get returns the nonnegative orthant — argument sizes are sizes
/// of terms, hence always >= 0, and nothing more is known.
class ArgSizeDb {
 public:
  ArgSizeDb() = default;

  void Set(const PredId& pred, Polyhedron polyhedron);
  bool Has(const PredId& pred) const;
  /// Stored polyhedron, or the nonnegative orthant of width `pred.arity`.
  Polyhedron Get(const PredId& pred) const;

  const std::map<PredId, Polyhedron>& entries() const { return entries_; }

  /// Parses a ';'-separated textual spec over argument placeholders a1..an,
  /// e.g. "a1 + a2 = a3; a1 >= 2 + a2". Relations: =, >=, <=, >. Each side
  /// is a sum of terms `k`, `ai`, or `k*ai`. Nonnegativity of all
  /// arguments is added automatically.
  static Result<Polyhedron> ParseSpec(int arity, std::string_view spec);

  /// Multi-line report of every entry, with a1..an placeholders.
  std::string ToString(const Program& program) const;

 private:
  std::map<PredId, Polyhedron> entries_;
};

}  // namespace termilog

#endif  // TERMILOG_CONSTRAINTS_ARG_SIZE_DB_H_
