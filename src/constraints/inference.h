#ifndef TERMILOG_CONSTRAINTS_INFERENCE_H_
#define TERMILOG_CONSTRAINTS_INFERENCE_H_

#include <map>
#include <string>
#include <vector>

#include "constraints/arg_size_db.h"
#include "fm/fourier_motzkin.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Knobs for the inter-argument size-constraint inference.
struct InferenceOptions {
  /// Number of plain convex-hull sweeps before widening kicks in. Larger
  /// values are more precise on bounded chains, smaller converge faster.
  int widen_delay = 2;
  /// Safety valve on fixpoint sweeps per SCC.
  int max_sweeps = 60;
  FmOptions fm;
};

/// Per-SCC fixpoint statistics (exported for E7 benchmarking).
struct InferenceStats {
  int sweeps = 0;
  bool widened = false;
  bool reached_fixpoint = false;
};

/// One node of the inference condensation: the predicates of one SCC of
/// the dependency graph over defined predicates (those still needing
/// inference — user-supplied predicates are excluded), plus the indices of
/// earlier plan nodes whose results the node's rules read. Nodes are in
/// callees-first (reverse topological) order, so `deps` always point at
/// smaller indices.
struct InferencePlanNode {
  std::vector<PredId> preds;
  std::vector<int> deps;
};

/// The schedulable shape of one whole-program inference pass: running the
/// nodes in order (or in any order that respects `deps`) and applying each
/// node's results to the shared ArgSizeDb reproduces ConstraintInference::
/// Run exactly. The batch engine fans the nodes out as tasks over its
/// worker pool; Run itself is the serial in-order execution of this plan.
struct InferencePlan {
  std::vector<InferencePlanNode> nodes;
};

/// Result of inferring one SCC. Either `entries` holds the minimized
/// polyhedron for every predicate of the SCC (in the scc_preds order given
/// to RunScc), or `resource_limited` is set with the budget-trip message
/// and the predicates are to be left unconstrained — the caller composes
/// the user-facing warning line so the predicate it names is resolved
/// against the caller's own program.
struct SccInferenceResult {
  bool resource_limited = false;
  std::string trip_message;
  std::vector<std::pair<PredId, Polyhedron>> entries;
  InferenceStats stats;
};

/// Infers, for every defined predicate, a polyhedron over its argument
/// sizes that over-approximates all derivable facts — the capability the
/// paper imports from Van Gelder [VG90] (Section 3: the c / C matrices of
/// Eq. 1 come from here).
///
/// Implementation: polyhedral abstract interpretation bottom-up over the
/// SCCs of the dependency graph. The transfer function of a rule conjoins
/// the head argument-size equations with the instantiated polyhedra of the
/// body subgoals and projects onto the head argument sizes; the join is the
/// closed convex hull (lifted Fourier-Motzkin); termination of the fixpoint
/// is forced by standard constraint widening after `widen_delay` sweeps.
///
/// Predicates already present in `db` (user-supplied, e.g. EDB relations
/// with known properties) are treated as trusted inputs and not recomputed.
class ConstraintInference {
 public:
  /// Runs the inference over all defined predicates of `program`,
  /// populating `db`. Optionally reports per-SCC stats keyed by the
  /// lexicographically first predicate of the SCC.
  ///
  /// Resource exhaustion (FM blowup, governor trip, non-convergence within
  /// max_sweeps) degrades gracefully per SCC: the affected predicates are
  /// simply left out of `db` (the unconstrained top approximation, which is
  /// sound for everything downstream) and a human-readable line is appended
  /// to `warnings` when non-null. Only non-resource errors return a
  /// non-OK Status.
  static Status Run(const Program& program, ArgSizeDb* db,
                    const InferenceOptions& options = InferenceOptions(),
                    std::map<PredId, InferenceStats>* stats = nullptr,
                    std::vector<std::string>* warnings = nullptr);

  /// Decomposes the pending inference work into per-SCC nodes with
  /// dependency edges (callees first). Predicates already in `db` are
  /// trusted inputs: they appear in no node, and dependencies on them
  /// resolve through the db rather than through plan edges.
  static InferencePlan BuildPlan(const Program& program, const ArgSizeDb& db);

  /// Runs the [VG90] fixpoint (ascending sweeps with widening, then one
  /// descending refinement pass) for a single SCC against the callee
  /// knowledge in `db`. The result is a pure function of (the SCC's rules
  /// in relative program order, the callee polyhedra its rules read,
  /// `options` including governor limits) — the property the engine's
  /// content-addressed inference cache relies on. Resource exhaustion
  /// (non-convergence, FM blowup, governor trip, the "inference.sweep"
  /// failpoint) is reported via `resource_limited`, not a non-OK status.
  static Result<SccInferenceResult> RunScc(const Program& program,
                                           const std::vector<PredId>& scc_preds,
                                           const ArgSizeDb& db,
                                           const InferenceOptions& options);

  /// Transfer function for one rule under the given per-predicate
  /// polyhedra: the polyhedron of head-argument sizes derivable through
  /// this rule. Exposed for tests and for Section 6.2 (nonlinear
  /// recursion needs whole-SCC constraints before termination analysis).
  static Result<Polyhedron> RuleTransfer(
      const Program& program, const Rule& rule,
      const std::map<PredId, Polyhedron>& current, const ArgSizeDb& db,
      const FmOptions& fm);
};

}  // namespace termilog

#endif  // TERMILOG_CONSTRAINTS_INFERENCE_H_
