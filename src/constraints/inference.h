#ifndef TERMILOG_CONSTRAINTS_INFERENCE_H_
#define TERMILOG_CONSTRAINTS_INFERENCE_H_

#include <map>
#include <string>
#include <vector>

#include "constraints/arg_size_db.h"
#include "fm/fourier_motzkin.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Knobs for the inter-argument size-constraint inference.
struct InferenceOptions {
  /// Number of plain convex-hull sweeps before widening kicks in. Larger
  /// values are more precise on bounded chains, smaller converge faster.
  int widen_delay = 2;
  /// Safety valve on fixpoint sweeps per SCC.
  int max_sweeps = 60;
  FmOptions fm;
};

/// Per-SCC fixpoint statistics (exported for E7 benchmarking).
struct InferenceStats {
  int sweeps = 0;
  bool widened = false;
  bool reached_fixpoint = false;
};

/// Infers, for every defined predicate, a polyhedron over its argument
/// sizes that over-approximates all derivable facts — the capability the
/// paper imports from Van Gelder [VG90] (Section 3: the c / C matrices of
/// Eq. 1 come from here).
///
/// Implementation: polyhedral abstract interpretation bottom-up over the
/// SCCs of the dependency graph. The transfer function of a rule conjoins
/// the head argument-size equations with the instantiated polyhedra of the
/// body subgoals and projects onto the head argument sizes; the join is the
/// closed convex hull (lifted Fourier-Motzkin); termination of the fixpoint
/// is forced by standard constraint widening after `widen_delay` sweeps.
///
/// Predicates already present in `db` (user-supplied, e.g. EDB relations
/// with known properties) are treated as trusted inputs and not recomputed.
class ConstraintInference {
 public:
  /// Runs the inference over all defined predicates of `program`,
  /// populating `db`. Optionally reports per-SCC stats keyed by the
  /// lexicographically first predicate of the SCC.
  ///
  /// Resource exhaustion (FM blowup, governor trip, non-convergence within
  /// max_sweeps) degrades gracefully per SCC: the affected predicates are
  /// simply left out of `db` (the unconstrained top approximation, which is
  /// sound for everything downstream) and a human-readable line is appended
  /// to `warnings` when non-null. Only non-resource errors return a
  /// non-OK Status.
  static Status Run(const Program& program, ArgSizeDb* db,
                    const InferenceOptions& options = InferenceOptions(),
                    std::map<PredId, InferenceStats>* stats = nullptr,
                    std::vector<std::string>* warnings = nullptr);

  /// Transfer function for one rule under the given per-predicate
  /// polyhedra: the polyhedron of head-argument sizes derivable through
  /// this rule. Exposed for tests and for Section 6.2 (nonlinear
  /// recursion needs whole-SCC constraints before termination analysis).
  static Result<Polyhedron> RuleTransfer(
      const Program& program, const Rule& rule,
      const std::map<PredId, Polyhedron>& current, const ArgSizeDb& db,
      const FmOptions& fm);
};

}  // namespace termilog

#endif  // TERMILOG_CONSTRAINTS_INFERENCE_H_
