#include "obs/trace.h"

#include <algorithm>

#include "util/string_util.h"

namespace termilog {
namespace obs {
namespace {

thread_local SpanId g_current_span = 0;
thread_local std::uint32_t g_thread_index = 0;
thread_local bool g_thread_index_assigned = false;

std::int64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                           std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

void AppendEventJson(const SpanEvent& event, std::string* out) {
  *out += StrCat("{\"name\":\"", JsonEscape(event.name), "\",\"cat\":\"",
                 JsonEscape(event.category),
                 "\",\"ph\":\"X\",\"ts\":", event.start_us,
                 ",\"dur\":", event.duration_us, ",\"pid\":1,\"tid\":",
                 event.thread, ",\"args\":{\"id\":\"", event.id,
                 "\",\"parent\":\"", event.parent, "\"");
  for (const auto& [key, value] : event.args) {
    *out += StrCat(",\"", JsonEscape(key), "\":\"", JsonEscape(value), "\"");
  }
  *out += "}}";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  Reset();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_ = std::chrono::steady_clock::now();
  open_.clear();
  finished_.clear();
  ++epoch_counter_;
  // Span ids keep growing across epochs; only the epoch bump is needed to
  // invalidate stale handles (ids of the old epoch are absent from open_).
}

std::uint32_t Tracer::ThreadIndexLocked() {
  if (!g_thread_index_assigned) {
    g_thread_index = next_thread_index_++;
    g_thread_index_assigned = true;
  }
  return g_thread_index;
}

SpanId Tracer::Begin(const char* name, const char* category, SpanId parent) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  SpanId id = next_id_++;
  OpenSpan open;
  open.started = std::chrono::steady_clock::now();
  open.event.id = id;
  open.event.parent = parent != 0 ? parent : g_current_span;
  open.event.name = name;
  open.event.category = category;
  open.event.start_us = MicrosBetween(epoch_, open.started);
  open.event.thread = ThreadIndexLocked();
  open_.emplace(id, std::move(open));
  return id;
}

void Tracer::AddArg(SpanId id, const char* key, std::string value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.event.args.emplace_back(key, std::move(value));
}

void Tracer::End(SpanId id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;  // stale or double End: ignore
  SpanEvent event = std::move(it->second.event);
  event.duration_us =
      MicrosBetween(it->second.started, std::chrono::steady_clock::now());
  open_.erase(it);
  finished_.push_back(std::move(event));
}

SpanId Tracer::Current() { return g_current_span; }

void Tracer::SetCurrent(SpanId id) { g_current_span = id; }

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

std::string Tracer::ToChromeJson() const {
  std::vector<SpanEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ',';
    AppendEventJson(events[i], &out);
  }
  out += "]}";
  return out;
}

std::string Tracer::ToJsonl() const {
  std::vector<SpanEvent> events = Snapshot();
  std::string out;
  for (const SpanEvent& event : events) {
    AppendEventJson(event, &out);
    out += '\n';
  }
  return out;
}

std::map<std::string, Tracer::PhaseAggregate> Tracer::AggregateByName()
    const {
  std::vector<SpanEvent> events = Snapshot();
  std::map<SpanId, std::int64_t> child_time;
  for (const SpanEvent& event : events) {
    if (event.parent != 0) child_time[event.parent] += event.duration_us;
  }
  std::map<std::string, PhaseAggregate> out;
  for (const SpanEvent& event : events) {
    PhaseAggregate& agg = out[event.name];
    ++agg.count;
    agg.total_us += event.duration_us;
    auto it = child_time.find(event.id);
    std::int64_t children = it == child_time.end() ? 0 : it->second;
    agg.self_us += std::max<std::int64_t>(0, event.duration_us - children);
  }
  return out;
}

ScopedSpan::ScopedSpan(const char* name, const char* category, SpanId parent) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  id_ = tracer.Begin(name, category, parent);
  saved_current_ = g_current_span;
  g_current_span = id_;
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  g_current_span = saved_current_;
  Tracer::Global().End(id_);
}

void ScopedSpan::AddArg(const char* key, std::string value) {
  if (id_ == 0) return;
  Tracer::Global().AddArg(id_, key, std::move(value));
}

}  // namespace obs
}  // namespace termilog
