#ifndef TERMILOG_OBS_TRACE_H_
#define TERMILOG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace termilog {
namespace obs {

/// Identity of one span in a trace. 0 means "no span": it is the parent of
/// top-level spans and the id of an inactive ScopedSpan.
using SpanId = std::uint64_t;

/// One finished span. `start_us` is microseconds since the trace epoch
/// (the last Enable/Reset); `thread` is a dense tracer-assigned index, not
/// an OS thread id, so traces are comparable across runs.
struct SpanEvent {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  std::string category;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::uint32_t thread = 0;
  /// Free-form key/value annotations (request names, SCC predicates, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide span tracer. Disabled by default: every instrumentation
/// site checks one relaxed atomic and does nothing else, so leaving the
/// tracer off costs a load per span site (and the TERMILOG_TRACE macros
/// compile to nothing entirely when the TERMILOG_OBS CMake option is OFF).
///
/// Parenting is thread-local by default — a span opened while another span
/// is open on the same thread becomes its child — and explicit across
/// threads: code that schedules work onto a pool (the batch engine) passes
/// the parent SpanId along with the task, so worker-side spans attach to
/// the request that spawned them instead of to whatever ran last on that
/// worker. Begin/End may therefore be called from different threads; the
/// recorded thread index is the Begin thread's.
///
/// Tracing is a side channel: nothing here feeds back into analysis
/// results, so enabling it never perturbs report bytes.
class Tracer {
 public:
  static Tracer& Global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts recording (and resets any previous trace; the epoch is now).
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans and restarts the epoch. Test hook.
  void Reset();

  /// Opens a span. `parent` 0 means "the calling thread's current span".
  /// Returns 0 (a no-op handle) while disabled.
  SpanId Begin(const char* name, const char* category, SpanId parent = 0);

  /// Attaches an annotation to an open span. No-op for id 0 or finished
  /// spans.
  void AddArg(SpanId id, const char* key, std::string value);

  /// Closes a span; safe from any thread and idempotent (a second End of
  /// the same id is ignored, as is an id from before the last Reset).
  void End(SpanId id);

  /// The calling thread's innermost open ScopedSpan (0 if none). This is
  /// what implicit parenting binds to.
  static SpanId Current();

  /// Overrides the calling thread's current span (see ScopedParent, which
  /// is the safe way to use this).
  static void SetCurrent(SpanId id);

  /// Finished spans in End order. Open spans are not included.
  std::vector<SpanEvent> Snapshot() const;

  /// Chrome trace_event JSON (one object with a "traceEvents" array of
  /// "ph":"X" complete events) — loads in chrome://tracing and Perfetto.
  /// Span ids/parents ride in each event's "args".
  std::string ToChromeJson() const;

  /// One JSON object per line, one line per span (machine-diffable form).
  std::string ToJsonl() const;

  /// Wall-time aggregation over finished spans, keyed by span name.
  /// `self_us` is the span's duration minus its direct children's — with
  /// children that ran concurrently on other threads clamped so self time
  /// never goes negative.
  struct PhaseAggregate {
    std::int64_t count = 0;
    std::int64_t total_us = 0;
    std::int64_t self_us = 0;
  };
  std::map<std::string, PhaseAggregate> AggregateByName() const;

 private:
  Tracer() = default;

  struct OpenSpan {
    SpanEvent event;
    std::chrono::steady_clock::time_point started;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t next_id_ = 1;
  std::uint32_t next_thread_index_ = 0;
  std::map<SpanId, OpenSpan> open_;
  std::vector<SpanEvent> finished_;
  /// Monotonically bumped by Reset so stale SpanIds from a previous trace
  /// can never close a span of the current one.
  std::uint64_t epoch_counter_ = 0;

  std::uint32_t ThreadIndexLocked();
};

/// RAII span bound to the enclosing scope. Inactive (and free beyond one
/// atomic load) while the tracer is disabled. Prefer the TERMILOG_TRACE
/// macros, which additionally compile out when TERMILOG_OBS is OFF.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category)
      : ScopedSpan(name, category, /*parent=*/0) {}
  /// Explicit cross-thread parent; 0 falls back to the thread-local
  /// current span.
  ScopedSpan(const char* name, const char* category, SpanId parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// 0 while the tracer is disabled.
  SpanId id() const { return id_; }
  bool active() const { return id_ != 0; }

  void AddArg(const char* key, std::string value);

 private:
  SpanId id_ = 0;
  SpanId saved_current_ = 0;
};

/// Makes `parent` the calling thread's current span for the enclosing
/// scope without opening a span of its own. Pool workers wrap each task in
/// one of these so library code's implicitly-parented spans attach to the
/// request that scheduled the task, not to whatever ran last on the
/// worker.
class ScopedParent {
 public:
  explicit ScopedParent(SpanId parent) {
#ifdef TERMILOG_OBS_ENABLED
    saved_ = Tracer::Current();
    Tracer::SetCurrent(parent);
#else
    (void)parent;
#endif
  }
  ~ScopedParent() {
#ifdef TERMILOG_OBS_ENABLED
    Tracer::SetCurrent(saved_);
#endif
  }

  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  SpanId saved_ = 0;
};

}  // namespace obs
}  // namespace termilog

#endif  // TERMILOG_OBS_TRACE_H_
