#ifndef TERMILOG_OBS_METRICS_H_
#define TERMILOG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace termilog {
namespace obs {

/// Bucket layout shared by every histogram: bucket 0 holds values <= 0,
/// bucket i (1..32) holds values whose bit width is i, i.e. the range
/// [2^(i-1), 2^i - 1]. Fixed buckets keep merges trivially associative:
/// the aggregate over any thread interleaving is the same multiset sum.
inline constexpr int kHistogramBuckets = 33;

/// Upper bound (inclusive) of bucket `i`: 0 for bucket 0, 2^i - 1 above.
std::int64_t HistogramBucketBound(int bucket);

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  std::array<std::int64_t, kHistogramBuckets> buckets{};
};

/// Merged view of the whole registry. Maps are name-sorted, so rendering a
/// snapshot is deterministic; the *values* of scheduling-dependent metrics
/// (cache hits under contention) carry the same caveat as EngineStats.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters":{...},"histograms":{name:{count,sum,max,buckets:[[le,n]..]}}}
  /// with empty histogram buckets omitted.
  std::string ToJson() const;
};

/// Process-wide metrics registry: named monotonic counters and fixed-bucket
/// histograms, sharded per thread so the hot paths never contend. Each
/// thread writes its own shard under that shard's (uncontended) mutex;
/// Collect() merges live shards plus the retirements of exited threads.
/// The per-thread shard design makes `--jobs N` aggregation race-free, and
/// because merging is commutative addition keyed by name, the aggregate is
/// deterministic for deterministic workloads regardless of scheduling.
///
/// Disabled by default: Add/Record check one relaxed atomic first, so idle
/// instrumentation costs a load (and nothing at all when the TERMILOG_OBS
/// CMake option is OFF — the TERMILOG_COUNTER/TERMILOG_HISTOGRAM macros
/// compile out).
class Metrics {
 public:
  static Metrics& Global();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeros every counter and histogram (live shards included). Test hook;
  /// also called by Enable().
  void Reset();

  /// Adds `delta` to the named counter in the calling thread's shard.
  void Add(const char* name, std::int64_t delta = 1);

  /// Records one histogram observation in the calling thread's shard.
  void Record(const char* name, std::int64_t value);

  /// Merged totals across all shards. Safe to call while other threads are
  /// still recording (their in-flight updates land in later snapshots).
  MetricsSnapshot Collect() const;

  /// Collect().ToJson() convenience.
  std::string ToJson() const;

 private:
  friend class MetricsShardHandle;

  struct Shard {
    std::mutex mu;
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, HistogramSnapshot> histograms;
  };

  Metrics() = default;
  std::shared_ptr<Shard> CurrentShard();
  void RetireShard(const std::shared_ptr<Shard>& shard);
  static void MergeShardLocked(const Shard& shard, MetricsSnapshot* into);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Shard>> live_shards_;
  /// Sum of the shards of threads that have exited, folded in at thread
  /// teardown so the live list stays bounded by the live thread count.
  MetricsSnapshot retired_;
};

}  // namespace obs
}  // namespace termilog

#endif  // TERMILOG_OBS_METRICS_H_
