#include "obs/metrics.h"

#include <algorithm>

#include "util/string_util.h"

namespace termilog {
namespace obs {
namespace {

int BucketFor(std::int64_t value) {
  if (value <= 0) return 0;
  int bucket = 0;
  std::uint64_t v = static_cast<std::uint64_t>(value);
  while (v != 0) {
    ++bucket;
    v >>= 1;
  }
  return std::min(bucket, kHistogramBuckets - 1);
}

}  // namespace

std::int64_t HistogramBucketBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 63) return INT64_MAX;
  return (std::int64_t{1} << bucket) - 1;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":", value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) out += ',';
    first = false;
    out += StrCat("\"", JsonEscape(name), "\":{\"count\":", histogram.count,
                  ",\"sum\":", histogram.sum, ",\"max\":", histogram.max,
                  ",\"buckets\":[");
    bool first_bucket = true;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      if (histogram.buckets[i] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += StrCat("[", HistogramBucketBound(i), ",", histogram.buckets[i],
                    "]");
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Metrics& Metrics::Global() {
  static Metrics* metrics = new Metrics();
  return *metrics;
}

void Metrics::Enable() {
  Reset();
  enabled_.store(true, std::memory_order_relaxed);
}

void Metrics::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_ = MetricsSnapshot();
  for (const std::shared_ptr<Shard>& shard : live_shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->histograms.clear();
  }
}

/// Owns one thread's shard registration for the shard's lifetime. The
/// destructor (thread exit) folds the shard into the registry's retired
/// totals so no samples are lost when pool workers wind down before the
/// final Collect().
class MetricsShardHandle {
 public:
  explicit MetricsShardHandle(Metrics* metrics)
      : metrics_(metrics), shard_(std::make_shared<Metrics::Shard>()) {
    std::lock_guard<std::mutex> lock(metrics_->mu_);
    metrics_->live_shards_.push_back(shard_);
  }
  ~MetricsShardHandle() { metrics_->RetireShard(shard_); }

  const std::shared_ptr<Metrics::Shard>& shard() const { return shard_; }

 private:
  Metrics* metrics_;
  std::shared_ptr<Metrics::Shard> shard_;
};

std::shared_ptr<Metrics::Shard> Metrics::CurrentShard() {
  thread_local MetricsShardHandle handle(this);
  return handle.shard();
}

void Metrics::RetireShard(const std::shared_ptr<Shard>& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    MergeShardLocked(*shard, &retired_);
  }
  live_shards_.erase(
      std::remove(live_shards_.begin(), live_shards_.end(), shard),
      live_shards_.end());
}

void Metrics::MergeShardLocked(const Shard& shard, MetricsSnapshot* into) {
  for (const auto& [name, value] : shard.counters) {
    into->counters[name] += value;
  }
  for (const auto& [name, histogram] : shard.histograms) {
    HistogramSnapshot& merged = into->histograms[name];
    merged.count += histogram.count;
    merged.sum += histogram.sum;
    merged.max = std::max(merged.max, histogram.max);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      merged.buckets[i] += histogram.buckets[i];
    }
  }
}

void Metrics::Add(const char* name, std::int64_t delta) {
  if (!enabled()) return;
  std::shared_ptr<Shard> shard = CurrentShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->counters[name] += delta;
}

void Metrics::Record(const char* name, std::int64_t value) {
  if (!enabled()) return;
  std::shared_ptr<Shard> shard = CurrentShard();
  std::lock_guard<std::mutex> lock(shard->mu);
  HistogramSnapshot& histogram = shard->histograms[name];
  ++histogram.count;
  histogram.sum += value;
  histogram.max = std::max(histogram.max, value);
  ++histogram.buckets[BucketFor(value)];
}

MetricsSnapshot Metrics::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out = retired_;
  for (const std::shared_ptr<Shard>& shard : live_shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    MergeShardLocked(*shard, &out);
  }
  return out;
}

std::string Metrics::ToJson() const { return Collect().ToJson(); }

}  // namespace obs
}  // namespace termilog
