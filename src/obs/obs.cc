#include "obs/obs.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace termilog {
namespace obs {
namespace {

std::string ResolvePath(std::string explicit_path, const char* env_var) {
  if (!explicit_path.empty()) return explicit_path;
  const char* from_env = std::getenv(env_var);
  return from_env != nullptr ? std::string(from_env) : std::string();
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void WriteFileOrWarn(const std::string& path, const std::string& content,
                     const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write %s file '%s'\n", what,
                 path.c_str());
    return;
  }
  out << content;
}

}  // namespace

ObsExport::ObsExport(std::string trace_path, std::string metrics_path)
    : trace_path_(ResolvePath(std::move(trace_path), "TERMILOG_TRACE")),
      metrics_path_(ResolvePath(std::move(metrics_path), "TERMILOG_METRICS")) {
  if (!kCompiledIn && (tracing() || metrics())) {
    std::fprintf(stderr,
                 "obs: this binary was built with TERMILOG_OBS=OFF; trace/"
                 "metrics output will be empty\n");
  }
  if (tracing()) Tracer::Global().Enable();
  if (metrics()) Metrics::Global().Enable();
}

ObsExport::~ObsExport() {
  if (tracing()) {
    Tracer& tracer = Tracer::Global();
    WriteFileOrWarn(trace_path_,
                    EndsWith(trace_path_, ".jsonl") ? tracer.ToJsonl()
                                                    : tracer.ToChromeJson(),
                    "trace");
    tracer.Disable();
  }
  if (metrics()) {
    WriteFileOrWarn(metrics_path_, Metrics::Global().ToJson() + "\n",
                    "metrics");
    Metrics::Global().Disable();
  }
}

}  // namespace obs
}  // namespace termilog
