#ifndef TERMILOG_OBS_OBS_H_
#define TERMILOG_OBS_OBS_H_

/// Observability umbrella (docs/observability.md): the span tracer, the
/// metrics registry, and the instrumentation macros the library is
/// threaded with.
///
/// Two gates stack:
///   1. Compile time — the TERMILOG_OBS CMake option (ON by default, like
///      TERMILOG_FAILPOINTS; turn OFF for release builds). When OFF, every
///      TERMILOG_TRACE / TERMILOG_COUNTER / TERMILOG_HISTOGRAM site
///      compiles to nothing: zero instructions, zero data.
///   2. Run time — Tracer/Metrics are disabled by default even when
///      compiled in; an idle site costs one relaxed atomic load. Enable
///      via the API, termilog_cli --trace/--metrics, or the TERMILOG_TRACE
///      / TERMILOG_METRICS environment variables (see ObsExport).
///
/// Observability output is a side channel: nothing recorded here ever
/// feeds back into an analysis result, so batch report streams stay
/// byte-identical whether tracing is off, on, or compiled out.

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace termilog {
namespace obs {

/// True when the instrumentation macros are compiled in (TERMILOG_OBS=ON).
inline constexpr bool kCompiledIn =
#ifdef TERMILOG_OBS_ENABLED
    true;
#else
    false;
#endif

/// RAII driver-side enablement: resolves trace/metrics output paths (an
/// explicit path wins; empty falls back to the TERMILOG_TRACE /
/// TERMILOG_METRICS environment variables), enables the corresponding
/// subsystems, and writes the files on destruction. A trace path ending in
/// ".jsonl" selects the JSONL export; anything else gets Chrome
/// trace_event JSON (chrome://tracing, Perfetto). Warns on stderr when
/// output was requested but the build has TERMILOG_OBS=OFF.
class ObsExport {
 public:
  ObsExport(std::string trace_path, std::string metrics_path);
  ~ObsExport();

  ObsExport(const ObsExport&) = delete;
  ObsExport& operator=(const ObsExport&) = delete;

  bool tracing() const { return !trace_path_.empty(); }
  bool metrics() const { return !metrics_path_.empty(); }

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

/// No-op stand-in for ScopedSpan, declared by TERMILOG_TRACE_SPAN when the
/// build has TERMILOG_OBS=OFF so caller code using .id()/.AddArg() still
/// compiles (to nothing).
struct NullSpan {
  static constexpr SpanId id() { return 0; }
  static constexpr bool active() { return false; }
  void AddArg(const char*, const std::string&) const {}
};

/// Manual span management for spans whose begin and end live on different
/// threads (the engine's per-request spans: begun by the prep task on a
/// worker, ended by the merge loop on the main thread). These compile to
/// nothing when TERMILOG_OBS is OFF, exactly like the macros.
inline SpanId BeginSpan(const char* name, const char* category,
                        SpanId parent = 0) {
#ifdef TERMILOG_OBS_ENABLED
  return Tracer::Global().Begin(name, category, parent);
#else
  (void)name;
  (void)category;
  (void)parent;
  return 0;
#endif
}

inline void EndSpan(SpanId id) {
#ifdef TERMILOG_OBS_ENABLED
  Tracer::Global().End(id);
#else
  (void)id;
#endif
}

inline void SpanArg(SpanId id, const char* key, std::string value) {
#ifdef TERMILOG_OBS_ENABLED
  Tracer::Global().AddArg(id, key, std::move(value));
#else
  (void)id;
  (void)key;
  (void)value;
#endif
}

}  // namespace obs
}  // namespace termilog

#ifdef TERMILOG_OBS_ENABLED

#define TERMILOG_OBS_CONCAT_INNER(a, b) a##b
#define TERMILOG_OBS_CONCAT(a, b) TERMILOG_OBS_CONCAT_INNER(a, b)

/// Scope span with implicit (thread-local) parenting.
#define TERMILOG_TRACE(name, category)                 \
  ::termilog::obs::ScopedSpan TERMILOG_OBS_CONCAT(    \
      termilog_obs_span_, __LINE__)(name, category)

/// Scope span with an explicit cross-thread parent handle (SpanId).
#define TERMILOG_TRACE_UNDER(name, category, parent)   \
  ::termilog::obs::ScopedSpan TERMILOG_OBS_CONCAT(    \
      termilog_obs_span_, __LINE__)(name, category, parent)

/// Named scope span, for call sites that attach args to it. `var` is a
/// ScopedSpan when compiled in, a NullSpan otherwise.
#define TERMILOG_TRACE_SPAN(var, name, category, parent) \
  ::termilog::obs::ScopedSpan var(name, category, parent)

#define TERMILOG_COUNTER(name, delta) \
  ::termilog::obs::Metrics::Global().Add(name, delta)

#define TERMILOG_HISTOGRAM(name, value) \
  ::termilog::obs::Metrics::Global().Record(name, value)

#else  // !TERMILOG_OBS_ENABLED

#define TERMILOG_TRACE(name, category) \
  do {                                 \
  } while (0)
#define TERMILOG_TRACE_UNDER(name, category, parent) \
  do {                                               \
  } while (0)
#define TERMILOG_TRACE_SPAN(var, name, category, parent) \
  [[maybe_unused]] ::termilog::obs::NullSpan var
#define TERMILOG_COUNTER(name, delta) \
  do {                                \
  } while (0)
#define TERMILOG_HISTOGRAM(name, value) \
  do {                                  \
  } while (0)

#endif  // TERMILOG_OBS_ENABLED

#endif  // TERMILOG_OBS_OBS_H_
