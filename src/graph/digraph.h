#ifndef TERMILOG_GRAPH_DIGRAPH_H_
#define TERMILOG_GRAPH_DIGRAPH_H_

#include <vector>

namespace termilog {

/// Minimal directed graph over nodes 0..n-1 (adjacency lists, parallel
/// edges collapse). Used for the predicate dependency graph of Section 2.3:
/// an arc p -> q for every rule of p with subgoal q.
class Digraph {
 public:
  explicit Digraph(int num_nodes) : adjacency_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

  /// Adds the arc from -> to (idempotent).
  void AddEdge(int from, int to);

  bool HasEdge(int from, int to) const;

  const std::vector<int>& Successors(int node) const;

 private:
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace termilog

#endif  // TERMILOG_GRAPH_DIGRAPH_H_
