#include "graph/scc.h"

#include <algorithm>

#include "util/check.h"

namespace termilog {
namespace {

// Iterative Tarjan (explicit stack) so deep recursion in generated
// programs cannot overflow the C++ stack.
struct TarjanState {
  const Digraph& graph;
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int next_index = 0;

  explicit TarjanState(const Digraph& g)
      : graph(g),
        index(g.num_nodes(), -1),
        lowlink(g.num_nodes(), 0),
        on_stack(g.num_nodes(), false) {}

  void Visit(int root) {
    // Frames: (node, next successor position).
    std::vector<std::pair<int, size_t>> frames;
    frames.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      auto& [node, pos] = frames.back();
      if (pos < graph.Successors(node).size()) {
        int succ = graph.Successors(node)[pos++];
        if (index[succ] < 0) {
          index[succ] = lowlink[succ] = next_index++;
          stack.push_back(succ);
          on_stack[succ] = true;
          frames.emplace_back(succ, 0);
        } else if (on_stack[succ]) {
          lowlink[node] = std::min(lowlink[node], index[succ]);
        }
        continue;
      }
      if (lowlink[node] == index[node]) {
        std::vector<int> component;
        while (true) {
          int top = stack.back();
          stack.pop_back();
          on_stack[top] = false;
          component.push_back(top);
          if (top == node) break;
        }
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
      }
      int finished = node;
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().first] =
            std::min(lowlink[frames.back().first], lowlink[finished]);
      }
    }
  }
};

}  // namespace

std::vector<std::vector<int>> StronglyConnectedComponents(
    const Digraph& graph) {
  TarjanState state(graph);
  for (int node = 0; node < graph.num_nodes(); ++node) {
    if (state.index[node] < 0) state.Visit(node);
  }
  // Tarjan emits components in reverse topological order already.
  return std::move(state.components);
}

bool IsRecursiveComponent(const Digraph& graph,
                          const std::vector<int>& component) {
  TERMILOG_CHECK(!component.empty());
  if (component.size() > 1) return true;
  return graph.HasEdge(component[0], component[0]);
}

}  // namespace termilog
