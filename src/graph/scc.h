#ifndef TERMILOG_GRAPH_SCC_H_
#define TERMILOG_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"

namespace termilog {

/// Strongly connected components (Tarjan). Components are returned in
/// reverse topological order of the condensation: a component's successors
/// (callees, for the dependency graph) appear before it. That is exactly
/// the order in which the paper analyzes SCCs — lower SCCs first, so their
/// inter-argument constraints are available (Section 2.3).
std::vector<std::vector<int>> StronglyConnectedComponents(
    const Digraph& graph);

/// True when the node set forms a recursive SCC: more than one node, or a
/// single node with a self-loop. Non-recursive singleton SCCs need no
/// termination argument.
bool IsRecursiveComponent(const Digraph& graph,
                          const std::vector<int>& component);

}  // namespace termilog

#endif  // TERMILOG_GRAPH_SCC_H_
