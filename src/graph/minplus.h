#ifndef TERMILOG_GRAPH_MINPLUS_H_
#define TERMILOG_GRAPH_MINPLUS_H_

#include <cstdint>
#include <vector>

namespace termilog {

/// Min-plus (tropical) closure by Floyd's algorithm, used for the mutual
/// recursion offsets of Section 6.1: with delta_ij as edge weights, the
/// termination argument is valid only if every dependency cycle has
/// positive total weight.
class MinPlusClosure {
 public:
  static constexpr int64_t kInfinity = INT64_MAX / 4;

  /// Initializes an n-node graph with no edges (all distances infinite).
  explicit MinPlusClosure(int num_nodes);

  /// Sets the weight of edge from -> to to min(current, weight).
  void AddEdge(int from, int to, int64_t weight);

  /// Runs Floyd's algorithm; call once after all edges are added.
  void Run();

  /// Shortest-path weight (kInfinity when unreachable). Valid after Run().
  int64_t Distance(int from, int to) const;

  /// True if some cycle has total weight <= 0, i.e. the delta assignment
  /// fails to prove progress around that cycle. Valid after Run().
  bool HasNonPositiveCycle() const;

  /// A witness node lying on a non-positive cycle, or -1.
  int NonPositiveCycleNode() const;

 private:
  int n_;
  std::vector<int64_t> dist_;
};

}  // namespace termilog

#endif  // TERMILOG_GRAPH_MINPLUS_H_
