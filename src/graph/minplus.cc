#include "graph/minplus.h"

#include <algorithm>

#include "util/check.h"

namespace termilog {

MinPlusClosure::MinPlusClosure(int num_nodes)
    : n_(num_nodes),
      dist_(static_cast<size_t>(num_nodes) * num_nodes, kInfinity) {}

void MinPlusClosure::AddEdge(int from, int to, int64_t weight) {
  TERMILOG_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_);
  int64_t& slot = dist_[static_cast<size_t>(from) * n_ + to];
  slot = std::min(slot, weight);
}

void MinPlusClosure::Run() {
  for (int k = 0; k < n_; ++k) {
    for (int i = 0; i < n_; ++i) {
      int64_t dik = dist_[static_cast<size_t>(i) * n_ + k];
      if (dik >= kInfinity) continue;
      for (int j = 0; j < n_; ++j) {
        int64_t dkj = dist_[static_cast<size_t>(k) * n_ + j];
        if (dkj >= kInfinity) continue;
        int64_t& dij = dist_[static_cast<size_t>(i) * n_ + j];
        dij = std::min(dij, dik + dkj);
      }
    }
  }
}

int64_t MinPlusClosure::Distance(int from, int to) const {
  TERMILOG_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_);
  return dist_[static_cast<size_t>(from) * n_ + to];
}

bool MinPlusClosure::HasNonPositiveCycle() const {
  return NonPositiveCycleNode() >= 0;
}

int MinPlusClosure::NonPositiveCycleNode() const {
  for (int i = 0; i < n_; ++i) {
    int64_t dii = dist_[static_cast<size_t>(i) * n_ + i];
    if (dii < kInfinity && dii <= 0) return i;
  }
  return -1;
}

}  // namespace termilog
