#include "graph/digraph.h"

#include <algorithm>

#include "util/check.h"

namespace termilog {

void Digraph::AddEdge(int from, int to) {
  TERMILOG_CHECK(from >= 0 && from < num_nodes());
  TERMILOG_CHECK(to >= 0 && to < num_nodes());
  std::vector<int>& out = adjacency_[from];
  if (std::find(out.begin(), out.end(), to) == out.end()) {
    out.push_back(to);
  }
}

bool Digraph::HasEdge(int from, int to) const {
  TERMILOG_CHECK(from >= 0 && from < num_nodes());
  const std::vector<int>& out = adjacency_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

const std::vector<int>& Digraph::Successors(int node) const {
  TERMILOG_CHECK(node >= 0 && node < num_nodes());
  return adjacency_[node];
}

}  // namespace termilog
