#include "term/size.h"

#include "util/check.h"

namespace termilog {
namespace {

void Accumulate(const TermPtr& term, LinearExpr* out) {
  if (term->IsVariable()) {
    out->AddToCoeff(term->var_id(), Rational(1));
    return;
  }
  out->set_constant(out->constant() + Rational(term->arity()));
  for (const TermPtr& arg : term->args()) Accumulate(arg, out);
}

}  // namespace

LinearExpr StructuralSize(const TermPtr& term) {
  LinearExpr out;
  Accumulate(term, &out);
  return out;
}

int64_t GroundSize(const TermPtr& term) {
  TERMILOG_CHECK_MSG(term->IsGround(), "GroundSize on non-ground term");
  int64_t size = term->arity();
  for (const TermPtr& arg : term->args()) size += GroundSize(arg);
  return size;
}

}  // namespace termilog
