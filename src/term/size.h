#ifndef TERMILOG_TERM_SIZE_H_
#define TERMILOG_TERM_SIZE_H_

#include "linalg/linear_expr.h"
#include "term/term.h"

namespace termilog {

/// Structural term size (Section 2.2 of the paper): the sum of the arities
/// of all function symbols in the term. For non-ground terms the size is a
/// linear polynomial over the sizes of the term's variables, with a
/// nonnegative constant and nonnegative integer coefficients — the property
/// Eq. 9's direct construction relies on (a, A, b, B >= 0).
///
/// The returned expression uses the term's own variable indices as
/// LinearExpr variable indices; callers remap as needed.
LinearExpr StructuralSize(const TermPtr& term);

/// Structural size of a ground term; checked failure on non-ground input.
int64_t GroundSize(const TermPtr& term);

}  // namespace termilog

#endif  // TERMILOG_TERM_SIZE_H_
