#include "term/unify.h"

#include <utility>
#include <vector>

#include "util/check.h"

namespace termilog {

TermPtr Substitution::Resolve(TermPtr term) const {
  while (term->IsVariable()) {
    auto it = bindings_.find(term->var_id());
    if (it == bindings_.end()) return term;
    term = it->second;
  }
  return term;
}

TermPtr Substitution::Apply(const TermPtr& term) const {
  TermPtr resolved = Resolve(term);
  if (resolved->IsVariable()) return resolved;
  if (resolved->args().empty()) return resolved;
  std::vector<TermPtr> args;
  args.reserve(resolved->args().size());
  bool changed = false;
  for (const TermPtr& arg : resolved->args()) {
    TermPtr mapped = Apply(arg);
    changed = changed || mapped.get() != arg.get();
    args.push_back(std::move(mapped));
  }
  if (!changed && resolved.get() == term.get()) return term;
  return Term::MakeCompound(resolved->functor(), std::move(args));
}

bool Substitution::OccursIn(int var_id, const TermPtr& term) const {
  TermPtr resolved = Resolve(term);
  if (resolved->IsVariable()) return resolved->var_id() == var_id;
  for (const TermPtr& arg : resolved->args()) {
    if (OccursIn(var_id, arg)) return true;
  }
  return false;
}

void Substitution::Bind(int var_id, TermPtr term) {
  TERMILOG_CHECK_MSG(!IsBound(var_id), "double binding");
  bindings_.emplace(var_id, std::move(term));
}

bool Substitution::Unify(const TermPtr& a, const TermPtr& b,
                         bool occurs_check) {
  TermPtr x = Resolve(a);
  TermPtr y = Resolve(b);
  if (x->IsVariable() && y->IsVariable() && x->var_id() == y->var_id()) {
    return true;
  }
  if (x->IsVariable()) {
    if (occurs_check && OccursIn(x->var_id(), y)) return false;
    Bind(x->var_id(), std::move(y));
    return true;
  }
  if (y->IsVariable()) {
    if (occurs_check && OccursIn(y->var_id(), x)) return false;
    Bind(y->var_id(), std::move(x));
    return true;
  }
  if (x->functor() != y->functor() || x->arity() != y->arity()) return false;
  for (int i = 0; i < x->arity(); ++i) {
    if (!Unify(x->args()[i], y->args()[i], occurs_check)) return false;
  }
  return true;
}

bool Unifiable(const TermPtr& a, const TermPtr& b, bool occurs_check) {
  Substitution subst;
  return subst.Unify(a, b, occurs_check);
}

TermPtr OffsetVariables(const TermPtr& term, int offset) {
  if (term->IsVariable()) return Term::MakeVariable(term->var_id() + offset);
  if (term->args().empty()) return term;
  std::vector<TermPtr> args;
  args.reserve(term->args().size());
  for (const TermPtr& arg : term->args()) {
    args.push_back(OffsetVariables(arg, offset));
  }
  return Term::MakeCompound(term->functor(), std::move(args));
}

}  // namespace termilog
