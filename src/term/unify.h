#ifndef TERMILOG_TERM_UNIFY_H_
#define TERMILOG_TERM_UNIFY_H_

#include <unordered_map>

#include "term/term.h"

namespace termilog {

/// Binding store for unification: variable index -> term. Bindings form a
/// triangular substitution (bound terms may mention other bound variables);
/// Resolve() chases chains, Apply() builds fully substituted terms.
class Substitution {
 public:
  Substitution() = default;

  bool IsBound(int var_id) const { return bindings_.count(var_id) != 0; }
  size_t size() const { return bindings_.size(); }

  /// Dereferences the top constructor: follows variable bindings until the
  /// term is a compound or an unbound variable. Does not descend into
  /// arguments.
  TermPtr Resolve(TermPtr term) const;

  /// Applies the substitution everywhere, producing a term whose variables
  /// are all unbound.
  TermPtr Apply(const TermPtr& term) const;

  /// Unifies a and b, extending the bindings on success; on failure the
  /// substitution is left unspecified (callers discard it). When
  /// `occurs_check` is set, binding a variable to a term containing it
  /// fails (the paper's Section 7 / Appendix B discussion).
  bool Unify(const TermPtr& a, const TermPtr& b, bool occurs_check = true);

  /// Direct binding; checked failure on double-binding.
  void Bind(int var_id, TermPtr term);

 private:
  bool OccursIn(int var_id, const TermPtr& term) const;

  std::unordered_map<int, TermPtr> bindings_;
};

/// One-shot check: do the terms unify (without keeping the unifier)?
bool Unifiable(const TermPtr& a, const TermPtr& b, bool occurs_check = true);

/// Renames every variable in `term` by adding `offset` to its index
/// (standardizing apart for resolution).
TermPtr OffsetVariables(const TermPtr& term, int offset);

}  // namespace termilog

#endif  // TERMILOG_TERM_UNIFY_H_
