#include "term/symbol_table.h"

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

int SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  int id = static_cast<int>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

int SymbolTable::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

const std::string& SymbolTable::Name(int id) const {
  TERMILOG_CHECK(id >= 0 && id < size());
  return names_[id];
}

int SymbolTable::FreshName(std::string_view base) {
  for (int i = 1;; ++i) {
    std::string candidate = StrCat(base, "_", i);
    if (index_.find(candidate) == index_.end()) {
      return Intern(candidate);
    }
  }
}

}  // namespace termilog
