#ifndef TERMILOG_TERM_TERM_H_
#define TERMILOG_TERM_TERM_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "term/symbol_table.h"

namespace termilog {

class Term;
/// Terms are immutable and shared; substitution application builds new
/// trees without mutating originals.
using TermPtr = std::shared_ptr<const Term>;

/// A logical term (Section 2.1 of the paper): a variable, or an
/// uninterpreted function symbol applied to terms. Constants are functors
/// of arity zero. Lists use the conventional functor "." of arity 2 (the
/// paper's infix cons) and the constant "[]".
class Term {
 public:
  enum class Kind { kVariable, kCompound };

  /// Builds a variable with clause-local (or resolution-global) index.
  static TermPtr MakeVariable(int var_id);
  /// Builds f(args...).
  static TermPtr MakeCompound(int functor, std::vector<TermPtr> args);
  /// Builds an arity-0 functor.
  static TermPtr MakeConstant(int functor);

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsCompound() const { return kind_ == Kind::kCompound; }
  bool IsConstant() const { return IsCompound() && args_.empty(); }

  /// Variable index; checked failure on non-variables.
  int var_id() const;
  /// Functor symbol id; checked failure on variables.
  int functor() const;
  const std::vector<TermPtr>& args() const { return args_; }
  int arity() const { return static_cast<int>(args_.size()); }

  bool IsGround() const;
  /// Inserts the indices of all variables occurring in the term.
  void CollectVariables(std::set<int>* out) const;
  /// True if variable `var_id` occurs in the term.
  bool Mentions(int var_id) const;

  /// Structural equality (same shape, same symbols, same variable ids).
  static bool Equal(const TermPtr& a, const TermPtr& b);

  /// Renders with list sugar ([a,b|T]); `var_namer` maps variable indices
  /// to display names (falls back to "_Gk").
  std::string ToString(
      const SymbolTable& symbols,
      const std::function<std::string(int)>& var_namer = nullptr) const;

 private:
  Term(Kind kind, int id, std::vector<TermPtr> args)
      : kind_(kind), id_(id), args_(std::move(args)) {}

  Kind kind_;
  int id_;  // var_id for variables, functor symbol id for compounds
  std::vector<TermPtr> args_;
};

/// Names of the built-in structural symbols.
inline constexpr char kConsName[] = ".";
inline constexpr char kNilName[] = "[]";

/// Convenience: builds the list [t1, ..., tn | tail] using cons/nil from
/// `symbols` (tail defaults to nil when null).
TermPtr MakeList(SymbolTable* symbols, const std::vector<TermPtr>& items,
                 TermPtr tail = nullptr);

}  // namespace termilog

#endif  // TERMILOG_TERM_TERM_H_
