#include "term/term.h"

#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

TermPtr Term::MakeVariable(int var_id) {
  TERMILOG_CHECK(var_id >= 0);
  return TermPtr(new Term(Kind::kVariable, var_id, {}));
}

TermPtr Term::MakeCompound(int functor, std::vector<TermPtr> args) {
  TERMILOG_CHECK(functor >= 0);
  for (const TermPtr& arg : args) TERMILOG_CHECK(arg != nullptr);
  return TermPtr(new Term(Kind::kCompound, functor, std::move(args)));
}

TermPtr Term::MakeConstant(int functor) { return MakeCompound(functor, {}); }

int Term::var_id() const {
  TERMILOG_CHECK(IsVariable());
  return id_;
}

int Term::functor() const {
  TERMILOG_CHECK(IsCompound());
  return id_;
}

bool Term::IsGround() const {
  if (IsVariable()) return false;
  for (const TermPtr& arg : args_) {
    if (!arg->IsGround()) return false;
  }
  return true;
}

void Term::CollectVariables(std::set<int>* out) const {
  if (IsVariable()) {
    out->insert(id_);
    return;
  }
  for (const TermPtr& arg : args_) arg->CollectVariables(out);
}

bool Term::Mentions(int var_id) const {
  if (IsVariable()) return id_ == var_id;
  for (const TermPtr& arg : args_) {
    if (arg->Mentions(var_id)) return true;
  }
  return false;
}

bool Term::Equal(const TermPtr& a, const TermPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind_ != b->kind_ || a->id_ != b->id_) return false;
  if (a->args_.size() != b->args_.size()) return false;
  for (size_t i = 0; i < a->args_.size(); ++i) {
    if (!Equal(a->args_[i], b->args_[i])) return false;
  }
  return true;
}

std::string Term::ToString(
    const SymbolTable& symbols,
    const std::function<std::string(int)>& var_namer) const {
  if (IsVariable()) {
    if (var_namer) return var_namer(id_);
    return StrCat("_G", id_);
  }
  const std::string& name = symbols.Name(id_);
  if (args_.empty()) return name;
  // List sugar for cons cells.
  if (name == kConsName && args_.size() == 2) {
    std::string out = "[";
    const Term* node = this;
    bool first = true;
    while (true) {
      if (!first) out += ",";
      out += node->args_[0]->ToString(symbols, var_namer);
      first = false;
      const TermPtr& tail = node->args_[1];
      if (tail->IsCompound() && tail->args().size() == 2 &&
          symbols.Name(tail->functor()) == kConsName) {
        node = tail.get();
        continue;
      }
      if (tail->IsConstant() && symbols.Name(tail->functor()) == kNilName) {
        out += "]";
        return out;
      }
      out += "|";
      out += tail->ToString(symbols, var_namer);
      out += "]";
      return out;
    }
  }
  std::string out = name;
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ",";
    out += args_[i]->ToString(symbols, var_namer);
  }
  out += ")";
  return out;
}

TermPtr MakeList(SymbolTable* symbols, const std::vector<TermPtr>& items,
                 TermPtr tail) {
  int cons = symbols->Intern(kConsName);
  TermPtr list =
      tail ? std::move(tail) : Term::MakeConstant(symbols->Intern(kNilName));
  for (size_t i = items.size(); i-- > 0;) {
    list = Term::MakeCompound(cons, {items[i], list});
  }
  return list;
}

}  // namespace termilog
