#ifndef TERMILOG_TERM_SYMBOL_TABLE_H_
#define TERMILOG_TERM_SYMBOL_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace termilog {

/// Interns functor / predicate names to dense integer ids. One table is
/// shared by all terms of a Program (and by programs derived from it via
/// the Appendix A transformations, which invent new predicate names).
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Returns the id for `name`, interning it on first use.
  int Intern(std::string_view name);

  /// Returns the id for `name` or -1 if it was never interned.
  int Lookup(std::string_view name) const;

  /// Name of an interned id; checked failure on range error.
  const std::string& Name(int id) const;

  int size() const { return static_cast<int>(names_.size()); }

  /// Invents a fresh name based on `base` ("base_1", "base_2", ...) that
  /// does not collide with any interned name, interns and returns its id.
  int FreshName(std::string_view base);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace termilog

#endif  // TERMILOG_TERM_SYMBOL_TABLE_H_
