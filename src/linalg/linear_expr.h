#ifndef TERMILOG_LINALG_LINEAR_EXPR_H_
#define TERMILOG_LINALG_LINEAR_EXPR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rational/rational.h"

namespace termilog {

/// Sparse linear expression over integer-indexed variables:
///   constant + sum_k coeff(k) * x_k.
/// Used for structural term-size polynomials (Section 2.2 of the paper) and
/// for assembling constraint rows before they are flattened into a dense
/// ConstraintSystem. Zero coefficients are never stored.
class LinearExpr {
 public:
  /// Constructs the zero expression.
  LinearExpr() = default;
  /// Constructs a constant expression.
  explicit LinearExpr(Rational constant) : constant_(std::move(constant)) {}

  /// Returns the expression consisting of the single variable `var`.
  static LinearExpr Variable(int var);

  const Rational& constant() const { return constant_; }
  void set_constant(Rational value) { constant_ = std::move(value); }

  /// Coefficient of `var` (zero if absent).
  Rational Coeff(int var) const;
  /// Sets the coefficient of `var`; erases the entry when zero.
  void SetCoeff(int var, Rational value);
  /// Adds `delta` to the coefficient of `var`.
  void AddToCoeff(int var, const Rational& delta);

  /// Iteration over the non-zero coefficients, ordered by variable index.
  const std::map<int, Rational>& coeffs() const { return coeffs_; }

  bool IsConstant() const { return coeffs_.empty(); }
  bool IsZero() const { return coeffs_.empty() && constant_.is_zero(); }

  LinearExpr operator+(const LinearExpr& other) const;
  LinearExpr operator-(const LinearExpr& other) const;
  LinearExpr operator*(const Rational& scale) const;
  LinearExpr operator-() const;
  LinearExpr& operator+=(const LinearExpr& other);
  LinearExpr& operator-=(const LinearExpr& other);

  bool operator==(const LinearExpr& other) const {
    return constant_ == other.constant_ && coeffs_ == other.coeffs_;
  }

  /// Replaces every occurrence of variable `var` with `replacement`.
  LinearExpr Substitute(int var, const LinearExpr& replacement) const;

  /// Evaluates the expression at the given dense point (missing indices are
  /// treated as zero).
  Rational Evaluate(const std::vector<Rational>& point) const;

  /// Largest variable index used, or -1 for constant expressions.
  int MaxVar() const;

  /// Renders e.g. "3 + x0 + 2*x4" using `namer` for variable names; a null
  /// namer falls back to "x<k>".
  std::string ToString(
      const std::function<std::string(int)>* namer = nullptr) const;

 private:
  Rational constant_;
  std::map<int, Rational> coeffs_;
};

}  // namespace termilog

#endif  // TERMILOG_LINALG_LINEAR_EXPR_H_
