#ifndef TERMILOG_LINALG_CONSTRAINT_H_
#define TERMILOG_LINALG_CONSTRAINT_H_

#include <functional>
#include <string>
#include <vector>

#include "linalg/linear_expr.h"
#include "rational/rational.h"

namespace termilog {

/// Relation of a constraint row. "<=" inputs are normalized to kGe by
/// negating the row.
enum class Relation {
  kEq,  // coeffs . x + constant == 0
  kGe,  // coeffs . x + constant >= 0
};

/// Scales `coeffs` and `constant` in place by the unique positive rational
/// that makes every entry an integer with overall gcd 1 (no-op on an
/// all-zero row). A positive scale preserves any row relation, so this is
/// shared by Constraint::Normalize and the simplex tableau's row setup; it
/// is the row-GCD normalization contract of docs/arithmetic.md that keeps
/// coefficient magnitudes inside the Rational fast path deep into
/// elimination and pivoting. Rows whose entries are already coprime
/// machine-word integers (the steady state) early-out without any BigInt
/// arithmetic.
void NormalizeRowGcd(std::vector<Rational>* coeffs, Rational* constant);

/// One dense constraint row over variables x_0..x_{n-1}:
///   coeffs . x + constant  REL  0.
/// This matches the paper's "0 = c + C phi" orientation: the constant term
/// sits on the same side as the coefficients.
struct Constraint {
  std::vector<Rational> coeffs;
  Rational constant;
  Relation rel = Relation::kGe;

  Constraint() = default;
  Constraint(std::vector<Rational> c, Rational k, Relation r)
      : coeffs(std::move(c)), constant(std::move(k)), rel(r) {}

  /// Builds a dense row of width `num_vars` from a sparse expression.
  /// Checked failure if the expression mentions variables >= num_vars.
  static Constraint FromExpr(const LinearExpr& expr, int num_vars,
                             Relation rel);

  /// Number of variable slots (not the number of nonzeros).
  int num_vars() const { return static_cast<int>(coeffs.size()); }

  /// True when every coefficient is zero.
  bool IsConstantRow() const;

  /// For a constant row: true iff the row is satisfied (0 REL constant).
  bool ConstantRowHolds() const;

  /// Evaluates coeffs . point + constant.
  Rational Evaluate(const std::vector<Rational>& point) const;

  /// True when `point` satisfies the row.
  bool SatisfiedBy(const std::vector<Rational>& point) const;

  /// Scales to coprime integer coefficients; for kEq rows also makes the
  /// first nonzero coefficient positive so syntactic duplicates collide.
  void Normalize();

  /// Returns the row multiplied by `scale`; requires scale > 0 for kGe rows
  /// (checked).
  Constraint Scaled(const Rational& scale) const;

  /// Total order for dedup containers.
  bool operator==(const Constraint& other) const;
  bool operator<(const Constraint& other) const;

  /// Renders e.g. "x0 - 2*x1 + 3 >= 0".
  std::string ToString(
      const std::function<std::string(int)>* namer = nullptr) const;
};

/// A conjunction of constraint rows over a fixed-width variable space.
class ConstraintSystem {
 public:
  ConstraintSystem() = default;
  explicit ConstraintSystem(int num_vars) : num_vars_(num_vars) {}

  int num_vars() const { return num_vars_; }
  const std::vector<Constraint>& rows() const { return rows_; }
  std::vector<Constraint>& mutable_rows() { return rows_; }
  bool empty() const { return rows_.empty(); }
  size_t size() const { return rows_.size(); }

  /// Appends a row; checked failure on width mismatch.
  void Add(Constraint row);
  /// Appends expr REL 0 as a dense row.
  void AddExpr(const LinearExpr& expr, Relation rel);
  /// Appends x_var >= 0.
  void AddNonNegativity(int var);
  /// Appends all rows of `other` (same width required).
  void Append(const ConstraintSystem& other);

  /// Normalizes all rows, drops satisfied constant rows and exact
  /// duplicates (also drops a kGe row when the same kEq row is present and
  /// a kGe row dominated by another with same coeffs but weaker constant).
  /// Returns false if a constant row is violated (system trivially empty).
  bool Simplify();

  /// True when `point` satisfies every row.
  bool SatisfiedBy(const std::vector<Rational>& point) const;

  /// Widens the variable space to `new_num_vars` (>= current), padding rows
  /// with zero coefficients.
  void Resize(int new_num_vars);

  /// Multi-line rendering, one row per line.
  std::string ToString(
      const std::function<std::string(int)>* namer = nullptr) const;

 private:
  int num_vars_ = 0;
  std::vector<Constraint> rows_;
};

}  // namespace termilog

#endif  // TERMILOG_LINALG_CONSTRAINT_H_
