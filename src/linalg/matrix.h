#ifndef TERMILOG_LINALG_MATRIX_H_
#define TERMILOG_LINALG_MATRIX_H_

#include <string>
#include <vector>

#include "rational/rational.h"

namespace termilog {

/// Dense rational matrix used for the paper's a/A, b/B, c/C blocks (Eq. 1)
/// and their transposes in the dual system (Eqs. 8-9). Row-major storage.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  const Rational& At(int r, int c) const { return data_[Index(r, c)]; }
  Rational& At(int r, int c) { return data_[Index(r, c)]; }

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Matrix-vector product; checked width match.
  std::vector<Rational> Apply(const std::vector<Rational>& x) const;

  /// True when every entry is >= 0 (the paper relies on a, A, b, B >= 0 to
  /// justify the direct Eq. 9 construction).
  bool AllNonNegative() const;

  std::string ToString() const;

 private:
  size_t Index(int r, int c) const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<Rational> data_;
};

}  // namespace termilog

#endif  // TERMILOG_LINALG_MATRIX_H_
