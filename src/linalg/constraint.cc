#include "linalg/constraint.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

namespace {

uint64_t Gcd64(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

// Magnitude of an int64 in unsigned space (INT64_MIN-safe).
uint64_t Mag64(int64_t v) {
  return v < 0 ? 0u - static_cast<uint64_t>(v) : static_cast<uint64_t>(v);
}

// Machine-word path of NormalizeRowGcd: succeeds when every entry is an
// integer fitting int64, the common steady state once a row has been
// normalized before. Returns false when the row needs the BigInt path.
bool TrySmallRowGcd(std::vector<Rational>* coeffs, Rational* constant) {
  uint64_t g = 0;
  auto scan = [&g](const Rational& v) {
    if (v.is_zero()) return true;
    if (!v.is_integer() || !v.num().FitsInt64()) return false;
    g = Gcd64(g, Mag64(v.num().ToInt64()));
    return true;
  };
  for (const Rational& c : *coeffs) {
    if (!scan(c)) return false;
  }
  if (!scan(*constant)) return false;
  // g == 0: all-zero row. g == 1: already coprime integers. Either way the
  // row is normalized and no arithmetic runs at all.
  if (g <= 1) return true;
  if (g > static_cast<uint64_t>(INT64_MAX)) return false;  // |entry| == 2^63
  int64_t divisor = static_cast<int64_t>(g);
  for (Rational& c : *coeffs) {
    if (!c.is_zero()) c = Rational(c.num().ToInt64() / divisor);
  }
  if (!constant->is_zero()) {
    *constant = Rational(constant->num().ToInt64() / divisor);
  }
  return true;
}

}  // namespace

void NormalizeRowGcd(std::vector<Rational>* coeffs, Rational* constant) {
  if (TrySmallRowGcd(coeffs, constant)) return;
  // Scale by the lcm of denominators, then divide by the gcd of numerators.
  BigInt denom_lcm(1);
  for (const Rational& c : *coeffs) {
    if (!c.is_zero()) {
      BigInt g = BigInt::Gcd(denom_lcm, c.den());
      denom_lcm = denom_lcm / g * c.den();
    }
  }
  if (!constant->is_zero()) {
    BigInt g = BigInt::Gcd(denom_lcm, constant->den());
    denom_lcm = denom_lcm / g * constant->den();
  }
  BigInt num_gcd(0);
  auto accumulate = [&num_gcd, &denom_lcm](const Rational& c) {
    if (c.is_zero()) return;
    BigInt scaled = c.num() * (denom_lcm / c.den());
    num_gcd = BigInt::Gcd(num_gcd, scaled);
  };
  for (const Rational& c : *coeffs) accumulate(c);
  accumulate(*constant);
  if (num_gcd.is_zero()) {
    // All-zero row apart from possibly constant==0; nothing to scale.
    return;
  }
  Rational scale{denom_lcm, num_gcd};
  for (Rational& c : *coeffs) c *= scale;
  *constant *= scale;
}

Constraint Constraint::FromExpr(const LinearExpr& expr, int num_vars,
                                Relation rel) {
  TERMILOG_CHECK_MSG(expr.MaxVar() < num_vars,
                     "expression variable out of system range");
  Constraint row;
  row.coeffs.assign(num_vars, Rational());
  for (const auto& [var, coeff] : expr.coeffs()) {
    TERMILOG_CHECK(var >= 0);
    row.coeffs[var] = coeff;
  }
  row.constant = expr.constant();
  row.rel = rel;
  return row;
}

bool Constraint::IsConstantRow() const {
  for (const Rational& c : coeffs) {
    if (!c.is_zero()) return false;
  }
  return true;
}

bool Constraint::ConstantRowHolds() const {
  return rel == Relation::kEq ? constant.is_zero() : constant.sign() >= 0;
}

Rational Constraint::Evaluate(const std::vector<Rational>& point) const {
  Rational out = constant;
  size_t n = std::min(point.size(), coeffs.size());
  for (size_t i = 0; i < n; ++i) {
    if (!coeffs[i].is_zero()) out += coeffs[i] * point[i];
  }
  return out;
}

bool Constraint::SatisfiedBy(const std::vector<Rational>& point) const {
  Rational value = Evaluate(point);
  return rel == Relation::kEq ? value.is_zero() : value.sign() >= 0;
}

void Constraint::Normalize() {
  NormalizeRowGcd(&coeffs, &constant);
  if (rel != Relation::kEq) return;
  // Sign convention for equalities: first nonzero coefficient positive (or
  // a nonnegative constant on constant-only rows) so syntactic duplicates
  // collide in Simplify's dedup maps. Negation is an in-place sign flip, so
  // the convention costs no arithmetic.
  bool flip = false;
  bool saw_coeff = false;
  for (const Rational& c : coeffs) {
    if (!c.is_zero()) {
      saw_coeff = true;
      flip = c.sign() < 0;
      break;
    }
  }
  if (!saw_coeff) flip = constant.sign() < 0;
  if (flip) {
    for (Rational& c : coeffs) c.Negate();
    constant.Negate();
  }
}

Constraint Constraint::Scaled(const Rational& scale) const {
  if (rel == Relation::kGe) {
    TERMILOG_CHECK_MSG(scale.sign() > 0, "kGe row scaled by non-positive");
  } else {
    TERMILOG_CHECK_MSG(!scale.is_zero(), "kEq row scaled by zero");
  }
  Constraint out = *this;
  for (Rational& c : out.coeffs) c *= scale;
  out.constant *= scale;
  return out;
}

bool Constraint::operator==(const Constraint& other) const {
  return rel == other.rel && constant == other.constant &&
         coeffs == other.coeffs;
}

bool Constraint::operator<(const Constraint& other) const {
  if (rel != other.rel) return rel < other.rel;
  if (coeffs.size() != other.coeffs.size()) {
    return coeffs.size() < other.coeffs.size();
  }
  for (size_t i = 0; i < coeffs.size(); ++i) {
    int cmp = coeffs[i].Compare(other.coeffs[i]);
    if (cmp != 0) return cmp < 0;
  }
  return constant < other.constant;
}

std::string Constraint::ToString(
    const std::function<std::string(int)>* namer) const {
  LinearExpr expr(constant);
  for (size_t i = 0; i < coeffs.size(); ++i) {
    if (!coeffs[i].is_zero()) expr.SetCoeff(static_cast<int>(i), coeffs[i]);
  }
  return StrCat(expr.ToString(namer), rel == Relation::kEq ? " = 0" : " >= 0");
}

void ConstraintSystem::Add(Constraint row) {
  TERMILOG_CHECK_MSG(row.num_vars() == num_vars_,
                     "constraint width mismatch");
  rows_.push_back(std::move(row));
}

void ConstraintSystem::AddExpr(const LinearExpr& expr, Relation rel) {
  Add(Constraint::FromExpr(expr, num_vars_, rel));
}

void ConstraintSystem::AddNonNegativity(int var) {
  TERMILOG_CHECK(var >= 0 && var < num_vars_);
  Constraint row;
  row.coeffs.assign(num_vars_, Rational());
  row.coeffs[var] = Rational(1);
  row.rel = Relation::kGe;
  rows_.push_back(std::move(row));
}

void ConstraintSystem::Append(const ConstraintSystem& other) {
  TERMILOG_CHECK(other.num_vars_ == num_vars_);
  for (const Constraint& row : other.rows_) rows_.push_back(row);
}

bool ConstraintSystem::Simplify() {
  std::vector<Constraint> kept;
  // Map from coefficient vector to (best kGe constant, has kEq) for
  // dominance pruning: among kGe rows with identical coefficients only the
  // one with the smallest constant matters (it implies the others).
  std::map<std::vector<Rational>, size_t> ge_best;      // index into kept
  std::map<std::vector<Rational>, size_t> eq_present;   // index into kept
  for (Constraint row : rows_) {
    row.Normalize();
    if (row.IsConstantRow()) {
      if (!row.ConstantRowHolds()) return false;
      continue;
    }
    if (row.rel == Relation::kEq) {
      auto [it, inserted] = eq_present.try_emplace(row.coeffs, kept.size());
      if (!inserted) {
        // Same coefficients: either duplicate or contradictory constants.
        if (kept[it->second].constant != row.constant) return false;
        continue;
      }
      kept.push_back(std::move(row));
      continue;
    }
    auto it = ge_best.find(row.coeffs);
    if (it != ge_best.end()) {
      // Keep the stronger (larger constant means weaker since
      // coeffs.x + constant >= 0 -> smaller constant is stronger).
      if (row.constant < kept[it->second].constant) {
        kept[it->second].constant = row.constant;
      }
      continue;
    }
    ge_best.emplace(row.coeffs, kept.size());
    kept.push_back(std::move(row));
  }
  rows_ = std::move(kept);
  return true;
}

bool ConstraintSystem::SatisfiedBy(const std::vector<Rational>& point) const {
  for (const Constraint& row : rows_) {
    if (!row.SatisfiedBy(point)) return false;
  }
  return true;
}

void ConstraintSystem::Resize(int new_num_vars) {
  TERMILOG_CHECK(new_num_vars >= num_vars_);
  for (Constraint& row : rows_) {
    row.coeffs.resize(new_num_vars, Rational());
  }
  num_vars_ = new_num_vars;
}

std::string ConstraintSystem::ToString(
    const std::function<std::string(int)>* namer) const {
  std::string out;
  for (const Constraint& row : rows_) {
    out += row.ToString(namer);
    out += "\n";
  }
  return out;
}

}  // namespace termilog
