#include "linalg/linear_expr.h"

#include <utility>

#include "util/string_util.h"

namespace termilog {

LinearExpr LinearExpr::Variable(int var) {
  LinearExpr expr;
  expr.SetCoeff(var, Rational(1));
  return expr;
}

Rational LinearExpr::Coeff(int var) const {
  auto it = coeffs_.find(var);
  return it == coeffs_.end() ? Rational() : it->second;
}

void LinearExpr::SetCoeff(int var, Rational value) {
  if (value.is_zero()) {
    coeffs_.erase(var);
  } else {
    coeffs_[var] = std::move(value);
  }
}

void LinearExpr::AddToCoeff(int var, const Rational& delta) {
  SetCoeff(var, Coeff(var) + delta);
}

LinearExpr LinearExpr::operator+(const LinearExpr& other) const {
  LinearExpr out = *this;
  out += other;
  return out;
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& other) {
  constant_ += other.constant_;
  for (const auto& [var, coeff] : other.coeffs_) AddToCoeff(var, coeff);
  return *this;
}

LinearExpr LinearExpr::operator-(const LinearExpr& other) const {
  LinearExpr out = *this;
  out -= other;
  return out;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& other) {
  constant_ -= other.constant_;
  for (const auto& [var, coeff] : other.coeffs_) AddToCoeff(var, -coeff);
  return *this;
}

LinearExpr LinearExpr::operator*(const Rational& scale) const {
  LinearExpr out;
  if (scale.is_zero()) return out;
  out.constant_ = constant_ * scale;
  for (const auto& [var, coeff] : coeffs_) out.coeffs_[var] = coeff * scale;
  return out;
}

LinearExpr LinearExpr::operator-() const {
  LinearExpr out = *this;
  out.constant_.Negate();
  for (auto& [var, coeff] : out.coeffs_) coeff.Negate();
  return out;
}

LinearExpr LinearExpr::Substitute(int var, const LinearExpr& replacement) const {
  auto it = coeffs_.find(var);
  if (it == coeffs_.end()) return *this;
  Rational coeff = it->second;
  LinearExpr out = *this;
  out.coeffs_.erase(var);
  out += replacement * coeff;
  return out;
}

Rational LinearExpr::Evaluate(const std::vector<Rational>& point) const {
  Rational out = constant_;
  for (const auto& [var, coeff] : coeffs_) {
    if (var >= 0 && static_cast<size_t>(var) < point.size()) {
      out += coeff * point[var];
    }
  }
  return out;
}

int LinearExpr::MaxVar() const {
  return coeffs_.empty() ? -1 : coeffs_.rbegin()->first;
}

std::string LinearExpr::ToString(
    const std::function<std::string(int)>* namer) const {
  std::string out;
  bool first = true;
  if (!constant_.is_zero() || coeffs_.empty()) {
    out += constant_.ToString();
    first = false;
  }
  for (const auto& [var, coeff] : coeffs_) {
    std::string name = namer ? (*namer)(var) : StrCat("x", var);
    if (first) {
      if (coeff == Rational(1)) {
        out += name;
      } else if (coeff == Rational(-1)) {
        out += StrCat("-", name);
      } else {
        out += StrCat(coeff.ToString(), "*", name);
      }
      first = false;
      continue;
    }
    if (coeff.sign() >= 0) {
      out += " + ";
      out += coeff == Rational(1) ? name : StrCat(coeff.ToString(), "*", name);
    } else {
      out += " - ";
      Rational mag = coeff.Abs();
      out += mag == Rational(1) ? name : StrCat(mag.ToString(), "*", name);
    }
  }
  return out;
}

}  // namespace termilog
