#include "linalg/matrix.h"

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

size_t Matrix::Index(int r, int c) const {
  TERMILOG_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return static_cast<size_t>(r) * cols_ + c;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

std::vector<Rational> Matrix::Apply(const std::vector<Rational>& x) const {
  TERMILOG_CHECK(static_cast<int>(x.size()) == cols_);
  std::vector<Rational> out(rows_);
  for (int r = 0; r < rows_; ++r) {
    Rational sum;
    for (int c = 0; c < cols_; ++c) {
      if (!At(r, c).is_zero()) sum += At(r, c) * x[c];
    }
    out[r] = sum;
  }
  return out;
}

bool Matrix::AllNonNegative() const {
  for (const Rational& v : data_) {
    if (v.sign() < 0) return false;
  }
  return true;
}

std::string Matrix::ToString() const {
  std::string out;
  for (int r = 0; r < rows_; ++r) {
    out += "[ ";
    for (int c = 0; c < cols_; ++c) {
      out += At(r, c).ToString();
      out += " ";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace termilog
