#include "transform/pipeline.h"

#include <set>
#include <utility>

#include "obs/obs.h"
#include "transform/equality.h"
#include "transform/splitting.h"
#include "transform/unfolding.h"
#include "util/failpoint.h"

namespace termilog {

Result<Program> RunTransformPipeline(
    const Program& program, const std::vector<PredId>& protected_preds,
    const TransformOptions& options, std::vector<std::string>* log) {
  TERMILOG_FAILPOINT("transform.pipeline");
  TERMILOG_TRACE("transform.pipeline", "transform");
  std::set<PredId> protect(protected_preds.begin(), protected_preds.end());
  Program current = EliminatePositiveEquality(program);
  auto append_log = [log](const std::vector<std::string>& lines) {
    if (log == nullptr) return;
    for (const std::string& line : lines) log->push_back(line);
  };
  for (int phase = 0; phase < options.phases; ++phase) {
    TERMILOG_FAILPOINT("transform.phase");
    TERMILOG_TRACE("transform.phase", "transform");
    TERMILOG_COUNTER("transform.phases", 1);
    if (options.governor != nullptr) {
      Status charged = options.governor->Charge("transform.phase");
      if (!charged.ok()) return charged;
    }
    UnfoldResult unfolded =
        SafeUnfolding(current, protect, options.max_rules, options.governor);
    append_log(unfolded.log);
    current = std::move(unfolded.program);

    SplitResult split =
        PredicateSplitting(current, options.max_splits_per_phase);
    append_log(split.log);
    current = std::move(split.program);

    if (!unfolded.changed && !split.changed) break;
    if (static_cast<int>(current.rules().size()) > options.max_rules) {
      return Status::ResourceExhausted(
          "transformation pipeline exceeded the rule budget");
    }
  }
  return current;
}

}  // namespace termilog
