#include "transform/equality.h"

#include <utility>

#include "term/unify.h"
#include "transform/term_rewrite.h"

namespace termilog {

Program EliminatePositiveEquality(const Program& program) {
  Program out(program.symbols_ptr());
  for (const ModeDecl& decl : program.mode_decls()) out.AddModeDecl(decl);
  int eq_symbol = program.symbols().Lookup("=");

  for (const Rule& original : program.rules()) {
    Rule rule = original;
    bool dead = false;
    while (true) {
      int eq_index = -1;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Literal& lit = rule.body[i];
        if (lit.positive && lit.atom.predicate == eq_symbol &&
            lit.atom.args.size() == 2) {
          eq_index = static_cast<int>(i);
          break;
        }
      }
      if (eq_index < 0) break;
      Substitution subst;
      if (!subst.Unify(rule.body[eq_index].atom.args[0],
                       rule.body[eq_index].atom.args[1],
                       /*occurs_check=*/true)) {
        dead = true;  // the equality can never hold
        break;
      }
      rule.body.erase(rule.body.begin() + eq_index);
      rule = ApplySubstitutionToRule(rule, subst);
    }
    if (!dead) out.AddRule(std::move(rule));
  }
  return out;
}

}  // namespace termilog
