#include "transform/splitting.h"

#include <set>
#include <utility>

#include "term/unify.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

bool AtomUnifiesWithHead(const Atom& call, const Rule& target) {
  if (call.predicate != target.head.predicate ||
      call.args.size() != target.head.args.size()) {
    return false;
  }
  // Standardize apart: shift the target's variables above the call's.
  std::set<int> call_vars;
  call.CollectVariables(&call_vars);
  int offset = call_vars.empty() ? 0 : *call_vars.rbegin() + 1;
  Substitution subst;
  for (size_t i = 0; i < call.args.size(); ++i) {
    TermPtr head_arg = OffsetVariables(target.head.args[i], offset);
    if (!subst.Unify(call.args[i], head_arg, /*occurs_check=*/true)) {
      return false;
    }
  }
  return true;
}

namespace {

// Finds a (rule, literal) whose subgoal induces a nontrivial partition of
// the callee's rules; returns the callee and the unify mask, or false.
struct SplitCandidate {
  PredId pred;
  std::vector<int> rule_indices;   // rules of pred
  std::vector<bool> unifies;       // parallel to rule_indices
};

bool FindCandidate(const Program& program, SplitCandidate* out) {
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body) {
      PredId callee = lit.atom.pred_id();
      std::vector<int> indices = program.RuleIndicesFor(callee);
      if (indices.empty()) continue;
      std::vector<bool> mask;
      bool any_true = false, any_false = false;
      for (int index : indices) {
        bool unifies = AtomUnifiesWithHead(lit.atom, program.rules()[index]);
        mask.push_back(unifies);
        (unifies ? any_true : any_false) = true;
      }
      if (any_true && any_false) {
        out->pred = callee;
        out->rule_indices = std::move(indices);
        out->unifies = std::move(mask);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

SplitResult PredicateSplitting(const Program& program, int max_splits) {
  SplitResult result;
  result.program = program;
  for (int round = 0; round < max_splits; ++round) {
    SplitCandidate candidate;
    if (!FindCandidate(result.program, &candidate)) break;
    Program& current = result.program;
    SymbolTable& symbols = current.symbols();
    const std::string base = symbols.Name(candidate.pred.symbol);
    int p1 = symbols.FreshName(base);  // non-unifying rules
    int p2 = symbols.FreshName(base);  // unifying rules
    result.log.push_back(StrCat("split ", current.PredName(candidate.pred),
                                " into ", symbols.Name(p1), " / ",
                                symbols.Name(p2)));

    // Rename the partitioned rule heads.
    for (size_t k = 0; k < candidate.rule_indices.size(); ++k) {
      Rule& rule = current.mutable_rules()[candidate.rule_indices[k]];
      rule.head.predicate = candidate.unifies[k] ? p2 : p1;
    }
    // Bridge rules p(~X) :- p_i(~X).
    for (int target : {p1, p2}) {
      Rule bridge;
      bridge.head.predicate = candidate.pred.symbol;
      for (int i = 0; i < candidate.pred.arity; ++i) {
        bridge.head.args.push_back(Term::MakeVariable(i));
        bridge.var_names.push_back(StrCat("X", i + 1));
      }
      Literal lit;
      lit.atom.predicate = target;
      lit.atom.args = bridge.head.args;
      bridge.body.push_back(std::move(lit));
      current.AddRule(std::move(bridge));
    }
    // Specialize p subgoals wherever unification permits.
    std::vector<int> p1_rules = current.RuleIndicesFor(
        PredId{p1, candidate.pred.arity});
    std::vector<int> p2_rules = current.RuleIndicesFor(
        PredId{p2, candidate.pred.arity});
    for (Rule& rule : current.mutable_rules()) {
      for (Literal& lit : rule.body) {
        if (lit.atom.pred_id() != candidate.pred) continue;
        // The heads were renamed to p_1/p_2, so compare argument vectors
        // directly (the predicate symbols intentionally differ).
        auto args_unify = [&](const Rule& target) {
          if (lit.atom.args.size() != target.head.args.size()) return false;
          std::set<int> call_vars;
          lit.atom.CollectVariables(&call_vars);
          int offset = call_vars.empty() ? 0 : *call_vars.rbegin() + 1;
          Substitution subst;
          for (size_t i = 0; i < lit.atom.args.size(); ++i) {
            TermPtr head_arg = OffsetVariables(target.head.args[i], offset);
            if (!subst.Unify(lit.atom.args[i], head_arg)) return false;
          }
          return true;
        };
        auto unifies_with_group = [&](const std::vector<int>& group) {
          for (int index : group) {
            if (args_unify(current.rules()[index])) return true;
          }
          return false;
        };
        bool u1 = unifies_with_group(p1_rules);
        bool u2 = unifies_with_group(p2_rules);
        if (u1 && !u2) {
          lit.atom.predicate = p1;
        } else if (u2 && !u1) {
          lit.atom.predicate = p2;
        }
        // Both (bridge-reachable) or neither (dead call): leave as p.
      }
    }
    result.changed = true;
  }
  return result;
}

}  // namespace termilog
