#ifndef TERMILOG_TRANSFORM_REORDER_H_
#define TERMILOG_TRANSFORM_REORDER_H_

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Options for the subgoal-reordering search.
struct ReorderOptions {
  /// Give up after this many full analyzer invocations.
  int max_attempts = 64;
  /// Bodies longer than this are left alone (factorial growth).
  int max_body_length = 5;
  AnalysisOptions analysis;
};

/// Result of the search: the (possibly reordered) program, the final
/// report, and a log of accepted moves.
struct ReorderResult {
  Program program;
  TerminationReport report;
  bool proved = false;
  std::vector<std::string> log;
  int attempts = 0;
};

/// Implements the capture-rule idea from the paper's introduction
/// ([Ull85]; "the system can attempt to choose an order for subgoals and
/// rules that assures termination; not only does this remove the burden
/// from the user, but different orders can be chosen for different
/// bound-free query patterns"): when the analysis of `query` fails,
/// permute the bodies of the rules involved in failing SCCs — one rule at
/// a time, first-improvement hill climbing — until the program is proved
/// or the attempt budget runs out. Subgoal order never changes a rule's
/// declarative meaning, only its top-down behaviour, so accepted moves
/// are always sound.
Result<ReorderResult> FindTerminatingOrder(
    const Program& program, const PredId& query, const Adornment& adornment,
    const ReorderOptions& options = ReorderOptions());

/// Convenience overload taking "pred(b,f)" syntax.
Result<ReorderResult> FindTerminatingOrder(
    const Program& program, std::string_view query_spec,
    const ReorderOptions& options = ReorderOptions());

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_REORDER_H_
