#ifndef TERMILOG_TRANSFORM_SPLITTING_H_
#define TERMILOG_TRANSFORM_SPLITTING_H_

#include <string>
#include <vector>

#include "program/ast.h"

namespace termilog {

/// Result of a predicate-splitting pass.
struct SplitResult {
  Program program;
  bool changed = false;
  std::vector<std::string> log;
};

/// Predicate splitting (Appendix A, after [UVG88]): when a subgoal p(~t)
/// fails to unify with the heads of some rules for p, split p into p_1
/// (the non-unifying rules) and p_2 (the unifying ones), add the bridge
/// rules `p(~X) :- p_1(~X).` and `p(~X) :- p_2(~X).`, and specialize every
/// p subgoal in the program to p_1 or p_2 where unification permits.
/// Repeats until no subgoal induces a nontrivial partition or `max_splits`
/// splits have been performed.
SplitResult PredicateSplitting(const Program& program, int max_splits = 8);

/// True iff the call atom unifies with the (standardized-apart) head of
/// `target`. Exposed for the unfolding pass and tests.
bool AtomUnifiesWithHead(const Atom& call, const Rule& target);

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_SPLITTING_H_
