#include "transform/term_rewrite.h"

#include <utility>

namespace termilog {
namespace {

TermPtr RenameVars(const TermPtr& term, const std::map<int, int>& mapping) {
  if (term->IsVariable()) {
    return Term::MakeVariable(mapping.at(term->var_id()));
  }
  if (term->args().empty()) return term;
  std::vector<TermPtr> args;
  args.reserve(term->args().size());
  for (const TermPtr& arg : term->args()) {
    args.push_back(RenameVars(arg, mapping));
  }
  return Term::MakeCompound(term->functor(), std::move(args));
}

void CollectAtomVarsInOrder(const Atom& atom, std::vector<int>* order,
                            std::set<int>* seen) {
  // Depth-first left-to-right for stable, readable numbering.
  std::vector<const Term*> stack;
  for (size_t i = atom.args.size(); i-- > 0;) {
    stack.push_back(atom.args[i].get());
  }
  while (!stack.empty()) {
    const Term* term = stack.back();
    stack.pop_back();
    if (term->IsVariable()) {
      if (seen->insert(term->var_id()).second) {
        order->push_back(term->var_id());
      }
      continue;
    }
    for (size_t i = term->args().size(); i-- > 0;) {
      stack.push_back(term->args()[i].get());
    }
  }
}

}  // namespace

Rule CompactRuleVariables(const Rule& rule) {
  std::vector<int> order;
  std::set<int> seen;
  CollectAtomVarsInOrder(rule.head, &order, &seen);
  for (const Literal& lit : rule.body) {
    CollectAtomVarsInOrder(lit.atom, &order, &seen);
  }
  std::map<int, int> mapping;
  Rule out;
  out.var_names.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    mapping[order[i]] = static_cast<int>(i);
    out.var_names.push_back(rule.VarName(order[i]));
  }
  out.head.predicate = rule.head.predicate;
  for (const TermPtr& arg : rule.head.args) {
    out.head.args.push_back(RenameVars(arg, mapping));
  }
  for (const Literal& lit : rule.body) {
    Literal mapped;
    mapped.positive = lit.positive;
    mapped.atom.predicate = lit.atom.predicate;
    for (const TermPtr& arg : lit.atom.args) {
      mapped.atom.args.push_back(RenameVars(arg, mapping));
    }
    out.body.push_back(std::move(mapped));
  }
  return out;
}

Rule ApplySubstitutionToRule(const Rule& rule, const Substitution& subst) {
  Rule substituted;
  substituted.var_names = rule.var_names;
  substituted.head.predicate = rule.head.predicate;
  for (const TermPtr& arg : rule.head.args) {
    substituted.head.args.push_back(subst.Apply(arg));
  }
  for (const Literal& lit : rule.body) {
    Literal mapped;
    mapped.positive = lit.positive;
    mapped.atom.predicate = lit.atom.predicate;
    for (const TermPtr& arg : lit.atom.args) {
      mapped.atom.args.push_back(subst.Apply(arg));
    }
    substituted.body.push_back(std::move(mapped));
  }
  return CompactRuleVariables(substituted);
}

}  // namespace termilog
