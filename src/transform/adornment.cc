#include "transform/adornment.h"

#include <deque>
#include <map>
#include <set>
#include <utility>

#include "program/modes.h"
#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

AdornmentCloneResult CloneConflictingAdornments(const Program& program,
                                                const PredId& query,
                                                const Adornment& adornment) {
  AdornmentCloneResult result;
  result.query = query;
  ModeAnalysisResult probe = InferModes(program, query, adornment);
  if (!probe.HasConflicts()) {
    result.program = program;
    return result;
  }
  const std::set<PredId>& conflicted = probe.conflicted;

  Program out(program.symbols_ptr());
  for (const ModeDecl& decl : program.mode_decls()) out.AddModeDecl(decl);

  // Clone name per (conflicted pred, adornment).
  std::map<std::pair<PredId, Adornment>, int> clone_symbol;
  auto clone_name = [&](const PredId& pred,
                        const Adornment& pred_adornment) -> int {
    auto key = std::make_pair(pred, pred_adornment);
    auto it = clone_symbol.find(key);
    if (it != clone_symbol.end()) return it->second;
    std::string name = StrCat(out.symbols().Name(pred.symbol), "__",
                              AdornmentToString(pred_adornment));
    int symbol = out.symbols().Intern(name);
    clone_symbol.emplace(key, symbol);
    result.log.push_back(StrCat("adornment clone ", program.PredName(pred),
                                " -> ", name));
    return symbol;
  };

  // Worklist over (pred, adornment) pairs reachable from the query.
  std::set<std::pair<PredId, Adornment>> visited;
  std::deque<std::pair<PredId, Adornment>> worklist;
  worklist.emplace_back(query, adornment);
  visited.insert({query, adornment});

  while (!worklist.empty()) {
    auto [pred, pred_adornment] = worklist.front();
    worklist.pop_front();
    bool head_cloned = conflicted.count(pred) != 0;
    int head_symbol =
        head_cloned ? clone_name(pred, pred_adornment) : pred.symbol;
    for (int rule_index : program.RuleIndicesFor(pred)) {
      Rule rule = program.rules()[rule_index];
      rule.head.predicate = head_symbol;
      std::set<int> bound;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (pred_adornment[i] == Mode::kBound) {
          rule.head.args[i]->CollectVariables(&bound);
        }
      }
      for (Literal& lit : rule.body) {
        PredId callee = lit.atom.pred_id();
        if (program.IsDefined(callee)) {
          Adornment callee_adornment = AtomAdornment(lit.atom, bound);
          if (conflicted.count(callee) != 0) {
            lit.atom.predicate = clone_name(callee, callee_adornment);
          }
          if (visited.insert({callee, callee_adornment}).second) {
            worklist.emplace_back(callee, callee_adornment);
          }
        }
        if (lit.positive) lit.atom.CollectVariables(&bound);
      }
      out.AddRule(std::move(rule));
    }
  }

  // Keep rules of predicates the query never reaches (harmless, preserves
  // the program for other queries). Rules of conflicted predicates were
  // replaced by their clones above; unreached unconflicted rules are
  // copied verbatim.
  std::set<PredId> emitted;
  for (const auto& [pred, pred_adornment] : visited) {
    (void)pred_adornment;
    emitted.insert(pred);
  }
  for (const Rule& rule : program.rules()) {
    if (emitted.count(rule.head.pred_id()) == 0) {
      out.AddRule(rule);
    }
  }

  if (conflicted.count(query) != 0) {
    result.query.symbol = clone_name(query, adornment);
    result.query.arity = query.arity;
  }
  result.program = std::move(out);
  result.changed = true;
  return result;
}

}  // namespace termilog
