#include "transform/reorder.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "util/string_util.h"

namespace termilog {
namespace {

// Number of recursive SCCs the report failed to prove (the hill-climbing
// objective; 0 means fully proved).
int FailingSccCount(const TerminationReport& report) {
  int failing = 0;
  for (const SccReport& scc : report.sccs) {
    if (scc.status != SccStatus::kProved &&
        scc.status != SccStatus::kNonRecursive) {
      ++failing;
    }
  }
  return failing;
}

// Maps a (possibly adornment-cloned) predicate of the analyzed program
// back to the predicate whose rules live in `program`.
PredId MapToSource(const Program& program, const PredId& pred) {
  if (!program.RuleIndicesFor(pred).empty()) return pred;
  const std::string& name = program.symbols().Name(pred.symbol);
  size_t cut = name.rfind("__");
  if (cut == std::string::npos) return pred;
  int base = program.symbols().Lookup(name.substr(0, cut));
  if (base < 0) return pred;
  return PredId{base, pred.arity};
}

}  // namespace

Result<ReorderResult> FindTerminatingOrder(const Program& program,
                                           const PredId& query,
                                           const Adornment& adornment,
                                           const ReorderOptions& options) {
  TerminationAnalyzer analyzer(options.analysis);
  ReorderResult result;
  result.program = program;

  Result<TerminationReport> initial =
      analyzer.Analyze(result.program, query, adornment);
  if (!initial.ok()) return initial.status();
  ++result.attempts;
  result.report = std::move(initial).value();
  result.proved = result.report.proved;
  if (result.proved) return result;

  int best_score = FailingSccCount(result.report);
  bool improved = true;
  while (improved && !result.proved &&
         result.attempts < options.max_attempts) {
    improved = false;
    // Rules whose head belongs to a failing SCC are permutation candidates.
    std::set<PredId> failing;
    for (const SccReport& scc : result.report.sccs) {
      if (scc.status == SccStatus::kProved ||
          scc.status == SccStatus::kNonRecursive) {
        continue;
      }
      for (const PredId& pred : scc.preds) {
        failing.insert(MapToSource(result.program, pred));
      }
    }
    for (size_t r = 0;
         r < result.program.rules().size() && !improved && !result.proved;
         ++r) {
      const Rule& rule = result.program.rules()[r];
      size_t body_size = rule.body.size();
      if (failing.count(rule.head.pred_id()) == 0 || body_size < 2 ||
          body_size > static_cast<size_t>(options.max_body_length)) {
        continue;
      }
      std::vector<int> order(body_size);
      std::iota(order.begin(), order.end(), 0);
      while (std::next_permutation(order.begin(), order.end())) {
        if (result.attempts >= options.max_attempts) break;
        Program candidate = result.program;
        Rule& mutated = candidate.mutable_rules()[r];
        std::vector<Literal> body;
        body.reserve(body_size);
        for (int index : order) body.push_back(rule.body[index]);
        mutated.body = std::move(body);

        Result<TerminationReport> attempt =
            analyzer.Analyze(candidate, query, adornment);
        ++result.attempts;
        if (!attempt.ok()) continue;  // e.g. blowup on this order: skip
        int score = FailingSccCount(*attempt);
        if (attempt->proved || score < best_score) {
          result.log.push_back(
              StrCat("reordered rule: ",
                     candidate.rules()[r].ToString(candidate.symbols())));
          result.program = std::move(candidate);
          result.report = std::move(attempt).value();
          result.proved = result.report.proved;
          best_score = score;
          improved = true;
          break;
        }
      }
    }
  }
  return result;
}

Result<ReorderResult> FindTerminatingOrder(const Program& program,
                                           std::string_view query_spec,
                                           const ReorderOptions& options) {
  Result<std::pair<PredId, Adornment>> query =
      ParseQuerySpec(program, query_spec);
  if (!query.ok()) return query.status();
  return FindTerminatingOrder(program, query->first, query->second, options);
}

}  // namespace termilog
