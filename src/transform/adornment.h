#ifndef TERMILOG_TRANSFORM_ADORNMENT_H_
#define TERMILOG_TRANSFORM_ADORNMENT_H_

#include <string>
#include <utility>
#include <vector>

#include "program/ast.h"
#include "util/status.h"

namespace termilog {

/// Adornment cloning: the paper assumes "every predicate has the same
/// bound-free adornment" (Section 3), attainable "by known syntactic
/// transformations". This is that transformation: when the mode dataflow
/// reaches a predicate with two or more adornments (e.g. append is called
/// as append(f,f,b) and append(b,b,f) in Example 3.1's perm), each
/// conflicted predicate is cloned once per adornment (append__ffb,
/// append__bbf), rule bodies are rewritten to call the clone matching the
/// call site's adornment, and the (possibly renamed) query is returned.
///
/// Cloning is applied only to conflicted predicates; everything else keeps
/// its name. Inter-argument size constraints are adornment-independent, so
/// the [VG90] inference simply runs on the cloned program.
struct AdornmentCloneResult {
  Program program;
  PredId query;
  std::vector<std::string> log;
  bool changed = false;
};

AdornmentCloneResult CloneConflictingAdornments(const Program& program,
                                                const PredId& query,
                                                const Adornment& adornment);

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_ADORNMENT_H_
