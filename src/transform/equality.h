#ifndef TERMILOG_TRANSFORM_EQUALITY_H_
#define TERMILOG_TRANSFORM_EQUALITY_H_

#include "program/ast.h"

namespace termilog {

/// Eliminates positive equality subgoals (Appendix A): a positive literal
/// `T1 = T2` is removed by unifying T1 and T2 and applying the unifier to
/// the rest of the rule (e.g. `r(Z) :- U = f(Z), p(U)` becomes
/// `r(Z) :- p(f(Z))`). A rule whose equality subgoal cannot unify is
/// dropped (its body can never succeed). Negative equality subgoals are
/// left alone — they bind nothing.
Program EliminatePositiveEquality(const Program& program);

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_EQUALITY_H_
