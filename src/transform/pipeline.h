#ifndef TERMILOG_TRANSFORM_PIPELINE_H_
#define TERMILOG_TRANSFORM_PIPELINE_H_

#include <string>
#include <vector>

#include "program/ast.h"
#include "util/governor.h"
#include "util/status.h"

namespace termilog {

/// Knobs for the Appendix A preprocessing pipeline.
struct TransformOptions {
  /// Number of alternating safe-unfolding / predicate-splitting phase
  /// pairs. The paper: "run alternate phases of safe unfolding and
  /// predicate splitting, and halt after a fixed number of phases, say 3
  /// of each."
  int phases = 3;
  int max_splits_per_phase = 8;
  int max_rules = 2000;
  /// Charged per phase and per unfolding step. A trip aborts the pipeline
  /// with kResourceExhausted; the caller can retry untransformed (the
  /// analyzer does exactly that).
  const ResourceGovernor* governor = nullptr;
};

/// Runs positive-equality elimination once, then alternates safe unfolding
/// and predicate splitting for `options.phases` rounds (stopping early when
/// a round changes nothing). `protected_preds` (the query predicates) are
/// never unfolded away. Appends a human-readable action log to `log` when
/// non-null.
Result<Program> RunTransformPipeline(const Program& program,
                                     const std::vector<PredId>& protected_preds,
                                     const TransformOptions& options,
                                     std::vector<std::string>* log = nullptr);

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_PIPELINE_H_
