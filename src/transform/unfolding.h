#ifndef TERMILOG_TRANSFORM_UNFOLDING_H_
#define TERMILOG_TRANSFORM_UNFOLDING_H_

#include <set>
#include <string>
#include <vector>

#include "program/ast.h"
#include "util/governor.h"

namespace termilog {

/// Result of a safe-unfolding pass.
struct UnfoldResult {
  Program program;
  bool changed = false;
  std::vector<std::string> log;
};

/// Safe unfolding (Appendix A): for a predicate p none of whose rules has a
/// p subgoal (not directly recursive), every positive p subgoal in other
/// predicates' rules is resolved against all of p's rules; p thereby leaves
/// its SCC, which is what makes repeated application terminate. Rules for p
/// itself are kept while p is referenced or protected (query predicates
/// must never be unfolded away) and discarded otherwise.
///
/// Predicates occurring under negation are not unfolded (resolution through
/// negation is unsound). `max_rules` caps the program growth. A non-null
/// `governor` is charged one work tick per unfolding step; tripping it
/// stops unfolding gracefully (each step preserves the program's meaning,
/// so a partial result is still usable).
UnfoldResult SafeUnfolding(const Program& program,
                           const std::set<PredId>& protected_preds,
                           int max_rules = 2000,
                           const ResourceGovernor* governor = nullptr);

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_UNFOLDING_H_
