#ifndef TERMILOG_TRANSFORM_TERM_REWRITE_H_
#define TERMILOG_TRANSFORM_TERM_REWRITE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "program/ast.h"
#include "term/unify.h"

namespace termilog {

/// Applies a substitution to every argument of every atom of the rule and
/// renumbers the surviving variables densely from 0, regenerating
/// var_names. Transformations (Appendix A) use this after each resolution
/// or equality-elimination step so rules stay in the canonical
/// dense-variable form the rest of the library expects.
Rule ApplySubstitutionToRule(const Rule& rule, const Substitution& subst);

/// Renumbers the rule's variables densely (no substitution). Also useful
/// after body splicing.
Rule CompactRuleVariables(const Rule& rule);

}  // namespace termilog

#endif  // TERMILOG_TRANSFORM_TERM_REWRITE_H_
