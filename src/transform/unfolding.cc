#include "transform/unfolding.h"

#include <utility>

#include "term/unify.h"
#include "transform/term_rewrite.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace termilog {
namespace {

// True when some rule of `pred` has a `pred` subgoal (direct recursion);
// such predicates cannot be safely unfolded.
bool DirectlyRecursive(const Program& program, const PredId& pred) {
  for (int index : program.RuleIndicesFor(pred)) {
    for (const Literal& lit : program.rules()[index].body) {
      if (lit.atom.pred_id() == pred) return true;
    }
  }
  return false;
}

// True when `pred` occurs as a negative subgoal anywhere.
bool OccursNegatively(const Program& program, const PredId& pred) {
  for (const Rule& rule : program.rules()) {
    for (const Literal& lit : rule.body) {
      if (!lit.positive && lit.atom.pred_id() == pred) return true;
    }
  }
  return false;
}

// True when `pred` occurs positively in the body of a rule whose head is a
// different predicate.
bool HasOutsideCallers(const Program& program, const PredId& pred) {
  for (const Rule& rule : program.rules()) {
    if (rule.head.pred_id() == pred) continue;
    for (const Literal& lit : rule.body) {
      if (lit.positive && lit.atom.pred_id() == pred) return true;
    }
  }
  return false;
}

// Resolves body literal `position` of `caller` against `callee` (a rule
// for the subgoal's predicate). Returns true and the resolvent on success.
bool Resolve(const Rule& caller, size_t position, const Rule& callee,
             Rule* out) {
  const Atom& call = caller.body[position].atom;
  int offset = caller.num_vars();
  // Merged variable space: caller's vars then callee's shifted vars.
  Rule merged;
  merged.var_names = caller.var_names;
  for (const std::string& name : callee.var_names) {
    merged.var_names.push_back(StrCat(name, "'"));
  }
  Substitution subst;
  for (size_t i = 0; i < call.args.size(); ++i) {
    TermPtr head_arg = OffsetVariables(callee.head.args[i], offset);
    if (!subst.Unify(call.args[i], head_arg, /*occurs_check=*/true)) {
      return false;
    }
  }
  merged.head = caller.head;
  for (size_t i = 0; i < caller.body.size(); ++i) {
    if (i == position) {
      for (const Literal& lit : callee.body) {
        Literal shifted;
        shifted.positive = lit.positive;
        shifted.atom.predicate = lit.atom.predicate;
        for (const TermPtr& arg : lit.atom.args) {
          shifted.atom.args.push_back(OffsetVariables(arg, offset));
        }
        merged.body.push_back(std::move(shifted));
      }
    } else {
      merged.body.push_back(caller.body[i]);
    }
  }
  *out = ApplySubstitutionToRule(merged, subst);
  return true;
}

}  // namespace

UnfoldResult SafeUnfolding(const Program& program,
                           const std::set<PredId>& protected_preds,
                           int max_rules, const ResourceGovernor* governor) {
  UnfoldResult result;
  result.program = program;

  // Appendix A argues repeated safe unfolding terminates because SCCs
  // shrink; the iteration cap is a defensive backstop on top of max_rules.
  int iteration_budget = 64 + 4 * static_cast<int>(program.rules().size());
  while (iteration_budget-- > 0) {
    // Each step preserves the program's meaning, so a budget trip just
    // stops early with whatever has been unfolded so far.
    if (TERMILOG_FAILPOINT_HIT("transform.unfold")) {
      result.log.push_back("unfolding stopped by failpoint transform.unfold");
      break;
    }
    if (governor != nullptr && !governor->Charge("transform.unfold").ok()) {
      result.log.push_back("unfolding stopped: resource budget exhausted");
      break;
    }
    Program& current = result.program;
    // Pick an unfoldable predicate.
    PredId target;
    bool found = false;
    for (const PredId& pred : current.DefinedPredicates()) {
      // Protected (query) predicates may still be unfolded at their call
      // sites -- Example A.1 unfolds the analyzed predicate p -- they just
      // keep their own rules (see the discard step below).
      if (DirectlyRecursive(current, pred)) continue;
      if (OccursNegatively(current, pred)) continue;
      if (!HasOutsideCallers(current, pred)) continue;
      target = pred;
      found = true;
      break;
    }
    if (!found) break;

    result.log.push_back(
        StrCat("safe-unfold ", current.PredName(target)));
    std::vector<int> callee_indices = current.RuleIndicesFor(target);
    Program next(current.symbols_ptr());
    for (const ModeDecl& decl : current.mode_decls()) next.AddModeDecl(decl);
    for (const Rule& rule : current.rules()) {
      // Rules of the target predicate are carried over for now; dead ones
      // are swept below.
      bool has_call = false;
      size_t position = 0;
      if (!(rule.head.pred_id() == target)) {
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (rule.body[i].positive &&
              rule.body[i].atom.pred_id() == target) {
            has_call = true;
            position = i;
            break;
          }
        }
      }
      if (!has_call) {
        next.AddRule(rule);
        continue;
      }
      for (int callee_index : callee_indices) {
        Rule resolvent;
        if (Resolve(rule, position, current.rules()[callee_index],
                    &resolvent)) {
          next.AddRule(std::move(resolvent));
        }
      }
    }
    // A single pass unfolds one call site per rule; keep going until no
    // outside caller of `target` remains (new resolvents may still call it
    // when the callee body mentions other predicates that call target --
    // but never target itself, since target is not directly recursive, so
    // this loop strictly reduces the number of target call sites).
    result.program = std::move(next);
    result.changed = true;
    if (static_cast<int>(result.program.rules().size()) > max_rules) {
      result.log.push_back("rule budget exceeded; unfolding stopped");
      break;
    }
    // Drop the target's own rules once nothing references it.
    if (protected_preds.count(target) == 0 &&
        !HasOutsideCallers(result.program, target)) {
      bool referenced = false;
      for (const Rule& rule : result.program.rules()) {
        for (const Literal& lit : rule.body) {
          if (lit.atom.pred_id() == target) referenced = true;
        }
      }
      if (!referenced) {
        Program swept(result.program.symbols_ptr());
        for (const ModeDecl& decl : result.program.mode_decls()) {
          swept.AddModeDecl(decl);
        }
        for (const Rule& rule : result.program.rules()) {
          if (!(rule.head.pred_id() == target)) swept.AddRule(rule);
        }
        result.program = std::move(swept);
        result.log.push_back(
            StrCat("discarded unreferenced ", program.PredName(target)));
      }
    }
  }
  return result;
}

}  // namespace termilog
