#ifndef TERMILOG_RATIONAL_BIGINT_H_
#define TERMILOG_RATIONAL_BIGINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"
#include "util/status.h"

namespace termilog {

/// Small-buffer vector of 32-bit limbs. Polyhedral computations churn
/// through enormous numbers of small integers; values up to 128 bits live
/// inline with no heap traffic, larger magnitudes spill to the heap.
class LimbVector {
 public:
  static constexpr size_t kInline = 4;

  LimbVector() = default;
  LimbVector(size_t count, uint32_t value) { resize(count, value); }
  LimbVector(const LimbVector& other) { CopyFrom(other); }
  LimbVector& operator=(const LimbVector& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  LimbVector(LimbVector&& other) noexcept { MoveFrom(std::move(other)); }
  LimbVector& operator=(LimbVector&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~LimbVector() { Release(); }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  uint32_t operator[](size_t i) const {
    TERMILOG_DCHECK(i < size_);
    return data()[i];
  }
  uint32_t& operator[](size_t i) {
    TERMILOG_DCHECK(i < size_);
    return data()[i];
  }
  uint32_t back() const {
    TERMILOG_DCHECK(size_ > 0);
    return data()[size_ - 1];
  }

  void push_back(uint32_t value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = value;
  }
  void pop_back() {
    TERMILOG_DCHECK(size_ > 0);
    --size_;
  }
  void clear() { size_ = 0; }

  void resize(size_t count, uint32_t value = 0) {
    if (count > capacity_) Grow(count);
    for (size_t i = size_; i < count; ++i) data()[i] = value;
    size_ = count;
  }
  void reserve(size_t count) {
    if (count > capacity_) Grow(count);
  }

  const uint32_t* data() const { return heap_ ? heap_ : inline_; }
  uint32_t* data() { return heap_ ? heap_ : inline_; }
  const uint32_t* begin() const { return data(); }
  const uint32_t* end() const { return data() + size_; }

 private:
  void Grow(size_t min_capacity) {
    size_t capacity = capacity_;
    while (capacity < min_capacity) capacity *= 2;
    uint32_t* storage = new uint32_t[capacity];
    std::memcpy(storage, data(), size_ * sizeof(uint32_t));
    Release();
    heap_ = storage;
    capacity_ = capacity;
  }
  void CopyFrom(const LimbVector& other) {
    size_ = other.size_;
    if (size_ <= kInline) {
      heap_ = nullptr;
      capacity_ = kInline;
      std::memcpy(inline_, other.data(), size_ * sizeof(uint32_t));
    } else {
      capacity_ = other.size_;
      heap_ = new uint32_t[capacity_];
      std::memcpy(heap_, other.heap_, size_ * sizeof(uint32_t));
    }
  }
  void MoveFrom(LimbVector&& other) {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = kInline;
    } else {
      heap_ = nullptr;
      capacity_ = kInline;
      std::memcpy(inline_, other.inline_, size_ * sizeof(uint32_t));
      other.size_ = 0;
    }
  }
  void Release() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInline;
  }

  uint32_t inline_[kInline];
  uint32_t* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = kInline;
};

/// Arbitrary-precision signed integer, sign-and-magnitude over 32-bit limbs
/// (little-endian). Fourier-Motzkin elimination and exact simplex multiply
/// coefficients pairwise, so fixed-width integers overflow on realistic
/// inputs; every numeric path in the library goes through this type.
///
/// Invariants: magnitude has no trailing zero limbs; zero is represented as
/// an empty magnitude with negative_ == false.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;
  /// Converts from a machine integer.
  BigInt(int64_t value);  // NOLINT(runtime/explicit): numeric literal ergonomics

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses an optionally signed decimal string.
  static Result<BigInt> FromString(std::string_view text);

  /// Converts from a 128-bit integer (used by Rational's fast path).
  static BigInt FromInt128(__int128 value);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_positive() const { return !negative_ && !limbs_.empty(); }
  /// True iff the value is exactly 1 (cheaper than Compare(BigInt(1))).
  bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Returns -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  /// Three-way compare; negative / zero / positive like strcmp.
  int Compare(const BigInt& other) const;

  BigInt operator-() const;
  /// Flips the sign in place (no-op on zero); the allocation-free form of
  /// unary negation for expression temporaries.
  BigInt& Negate() {
    if (!limbs_.empty()) negative_ = !negative_;
    return *this;
  }
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// Checked failure on division by zero.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C semantics).
  BigInt operator%(const BigInt& other) const;

  /// In-place compound ops: accumulate directly into this value's limb
  /// storage (no temporary BigInt, no allocation while the result fits the
  /// current capacity). Self-aliasing (`x += x`, `x *= x`) is supported.
  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  BigInt Abs() const;

  /// Greatest common divisor of the magnitudes; Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one division (truncated semantics).
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  /// True if the value fits in int64_t.
  bool FitsInt64() const;
  /// Converts to int64_t; checked failure if out of range.
  int64_t ToInt64() const;

  /// Decimal rendering with leading '-' when negative.
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

  /// Thread-local high-water mark: the largest limb count of any arithmetic
  /// result produced since the last reset. The ResourceGovernor samples
  /// this as a memory-growth proxy — FM and simplex blow up through
  /// coefficient magnitude long before they exhaust row budgets.
  static int64_t LimbHighWater();
  static void ResetLimbHighWater();

 private:
  static void NoteLimbs(size_t limbs);

  static int CompareMagnitude(const LimbVector& a,
                              const LimbVector& b);
  static LimbVector AddMagnitude(const LimbVector& a,
                                            const LimbVector& b);
  // Requires |a| >= |b|.
  static LimbVector SubMagnitude(const LimbVector& a,
                                            const LimbVector& b);
  static LimbVector MulMagnitude(const LimbVector& a,
                                            const LimbVector& b);
  // In-place magnitude ops reusing a's (small-buffer) storage.
  // a += b; safe when &b == a.
  static void AddMagnitudeInPlace(LimbVector* a, const LimbVector& b);
  // a -= b; requires |a| >= |b| (checked); safe when &b == a.
  static void SubMagnitudeInPlace(LimbVector* a, const LimbVector& b);
  // a = b - a; requires |b| >= |a| (checked).
  static void RSubMagnitudeInPlace(LimbVector* a, const LimbVector& b);
  // Shared body of operator+= / operator-=: adds other with its sign
  // optionally flipped.
  BigInt& AddSignedInPlace(const BigInt& other, bool flip_other_sign);
  void Trim();

  bool negative_ = false;
  LimbVector limbs_;
};

}  // namespace termilog

#endif  // TERMILOG_RATIONAL_BIGINT_H_
