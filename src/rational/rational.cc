#include "rational/rational.h"

#include <ostream>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  TERMILOG_CHECK_MSG(!den_.is_zero(), "rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_.is_negative()) {
    num_.Negate();
    den_.Negate();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.is_one()) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Result<Rational> Rational::FromString(std::string_view text) {
  text = StripWhitespace(text);
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    Result<BigInt> n = BigInt::FromString(text);
    if (!n.ok()) return n.status();
    return Rational(std::move(n).value());
  }
  Result<BigInt> n = BigInt::FromString(text.substr(0, slash));
  if (!n.ok()) return n.status();
  Result<BigInt> d = BigInt::FromString(text.substr(slash + 1));
  if (!d.ok()) return d.status();
  if (d->is_zero()) return Status::InvalidArgument("zero denominator");
  return Rational(std::move(n).value(), std::move(d).value());
}

namespace {

// True when every component of both operands fits a machine word, making
// the __int128 fast path exact (|a|,|b| < 2^63 so all cross products and
// their sums fit comfortably in 128 bits).
inline bool BothSmall(const Rational& a, const Rational& b) {
  return a.num().FitsInt64() && a.den().FitsInt64() &&
         b.num().FitsInt64() && b.den().FitsInt64();
}

inline unsigned __int128 UAbs128(__int128 v) {
  return v < 0 ? -static_cast<unsigned __int128>(v)
               : static_cast<unsigned __int128>(v);
}

inline uint64_t Gcd64(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

inline unsigned __int128 Gcd128(unsigned __int128 a, unsigned __int128 b) {
  // 128-bit division is a library call (~10x a native divide), so drop to
  // the 64-bit loop as soon as both operands fit a machine word. Euclid
  // shrinks the larger operand below the smaller each step, so at most a
  // couple of wide iterations ever run.
  while (b != 0) {
    if ((a >> 64) == 0 && (b >> 64) == 0) {
      return Gcd64(static_cast<uint64_t>(a), static_cast<uint64_t>(b));
    }
    unsigned __int128 r = a % b;
    a = b;
    b = r;
  }
  return a;
}

}  // namespace

Rational Rational::FromInt128(__int128 num, __int128 den) {
  // Callers guarantee den > 0 (it is a product of positive denominators).
  if (num == 0) return Rational();
  if (den != 1) {
    unsigned __int128 g =
        Gcd128(UAbs128(num), static_cast<unsigned __int128>(den));
    if (g != 1) {
      num /= static_cast<__int128>(g);
      den /= static_cast<__int128>(g);
    }
  }
  return Rational(BigInt::FromInt128(num), BigInt::FromInt128(den),
                  AlreadyNormalizedTag{});
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_.Negate();
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  if (BothSmall(*this, other)) {
    __int128 an = num_.ToInt64(), ad = den_.ToInt64();
    __int128 bn = other.num_.ToInt64(), bd = other.den_.ToInt64();
    return FromInt128(an * bd + bn * ad, ad * bd);
  }
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  if (BothSmall(*this, other)) {
    __int128 an = num_.ToInt64(), ad = den_.ToInt64();
    __int128 bn = other.num_.ToInt64(), bd = other.den_.ToInt64();
    return FromInt128(an * bd - bn * ad, ad * bd);
  }
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  if (BothSmall(*this, other)) {
    __int128 an = num_.ToInt64(), ad = den_.ToInt64();
    __int128 bn = other.num_.ToInt64(), bd = other.den_.ToInt64();
    return FromInt128(an * bn, ad * bd);
  }
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  TERMILOG_CHECK_MSG(!other.is_zero(), "rational division by zero");
  if (BothSmall(*this, other)) {
    __int128 an = num_.ToInt64(), ad = den_.ToInt64();
    __int128 bn = other.num_.ToInt64(), bd = other.den_.ToInt64();
    __int128 num = an * bd, den = ad * bn;
    if (den < 0) {
      num = -num;
      den = -den;
    }
    return FromInt128(num, den);
  }
  return Rational(num_ * other.den_, den_ * other.num_);
}

int Rational::Compare(const Rational& other) const {
  // Sign-only shortcut: denominators are positive, so differing numerator
  // signs settle the comparison without touching any product.
  int sa = num_.sign();
  int sb = other.num_.sign();
  if (sa != sb) return sa < sb ? -1 : 1;
  if (sa == 0) return 0;
  if (BothSmall(*this, other)) {
    __int128 lhs = static_cast<__int128>(num_.ToInt64()) * other.den_.ToInt64();
    __int128 rhs = static_cast<__int128>(other.num_.ToInt64()) * den_.ToInt64();
    return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  }
  // Cross-multiply; denominators are positive so ordering is preserved.
  return (num_ * other.den_).Compare(other.num_ * den_);
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.num_ = out.num_.Abs();
  return out;
}

Rational Rational::Inverse() const {
  TERMILOG_CHECK_MSG(!is_zero(), "inverse of zero");
  return Rational(den_, num_);
}

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return StrCat(num_.ToString(), "/", den_.ToString());
}

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15u + (h << 6) + (h >> 2);
  return h;
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace termilog
