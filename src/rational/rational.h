#ifndef TERMILOG_RATIONAL_RATIONAL_H_
#define TERMILOG_RATIONAL_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "rational/bigint.h"
#include "util/status.h"

namespace termilog {

/// Exact rational number: normalized numerator/denominator pair of BigInts
/// with denominator > 0 and gcd(|num|, den) == 1. All polyhedral and LP
/// arithmetic in the library is done in this type, so every verdict the
/// analyzer emits is exact.
class Rational {
 public:
  /// Constructs zero.
  Rational() : num_(0), den_(1) {}
  /// Converts from an integer.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT(runtime/explicit)
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  /// Constructs num/den; checked failure on zero denominator.
  Rational(BigInt num, BigInt den);
  Rational(int64_t num, int64_t den) : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "a", "-a", or "a/b" decimal forms.
  static Result<Rational> FromString(std::string_view text);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  /// Sign-only query on the normalized denominator (no BigInt compare).
  bool is_integer() const { return den_.is_one(); }
  int sign() const { return num_.sign(); }

  Rational operator-() const;
  /// Flips the sign in place (no-op on zero); normalization is preserved
  /// because only the numerator's sign bit changes.
  Rational& Negate() {
    num_.Negate();
    return *this;
  }
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Checked failure on division by zero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  int Compare(const Rational& other) const;
  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  Rational Abs() const;
  /// Multiplicative inverse; checked failure on zero.
  Rational Inverse() const;

  /// Renders "a" for integers, "a/b" otherwise.
  std::string ToString() const;

  size_t Hash() const;

 private:
  struct AlreadyNormalizedTag {};
  Rational(BigInt num, BigInt den, AlreadyNormalizedTag)
      : num_(std::move(num)), den_(std::move(den)) {}

  void Normalize();
  /// Builds a Rational from an exact 128-bit fraction, reducing with a
  /// native gcd (the fast path for the small values that dominate
  /// polyhedral computations).
  static Rational FromInt128(__int128 num, __int128 den);

  BigInt num_;
  BigInt den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace termilog

#endif  // TERMILOG_RATIONAL_RATIONAL_H_
