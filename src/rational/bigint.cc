#include "rational/bigint.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"
#include "util/string_util.h"

namespace termilog {

namespace {
constexpr uint64_t kBase = uint64_t{1} << 32;

thread_local int64_t g_limb_high_water = 0;
}  // namespace

int64_t BigInt::LimbHighWater() { return g_limb_high_water; }

void BigInt::ResetLimbHighWater() { g_limb_high_water = 0; }

void BigInt::NoteLimbs(size_t limbs) {
  if (static_cast<int64_t>(limbs) > g_limb_high_water) {
    g_limb_high_water = static_cast<int64_t>(limbs);
  }
}

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  size_t i = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) {
    return Status::InvalidArgument("sign without digits");
  }
  BigInt value;
  const BigInt ten(10);
  for (; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      return Status::InvalidArgument(
          StrCat("bad digit '", text[i], "' in integer literal"));
    }
    value = value * ten + BigInt(text[i] - '0');
  }
  if (negative && !value.is_zero()) value.negative_ = true;
  return value;
}

BigInt BigInt::FromInt128(__int128 value) {
  BigInt out;
  if (value == 0) return out;
  out.negative_ = value < 0;
  unsigned __int128 mag = out.negative_
                              ? -static_cast<unsigned __int128>(value)
                              : static_cast<unsigned __int128>(value);
  while (mag != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
    mag >>= 32;
  }
  return out;
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const LimbVector& a,
                             const LimbVector& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

LimbVector BigInt::AddMagnitude(const LimbVector& a,
                                           const LimbVector& b) {
  LimbVector out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

LimbVector BigInt::SubMagnitude(const LimbVector& a,
                                           const LimbVector& b) {
  TERMILOG_CHECK(CompareMagnitude(a, b) >= 0);
  LimbVector out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

LimbVector BigInt::MulMagnitude(const LimbVector& a,
                                           const LimbVector& b) {
  if (a.empty() || b.empty()) return {};
  LimbVector out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::AddMagnitudeInPlace(LimbVector* a, const LimbVector& b) {
  // Self-aliasing (&b == a) is safe: each element is read before it is
  // written and resize() is a no-op when the sizes already match.
  size_t n = std::max(a->size(), b.size());
  size_t b_size = b.size();
  a->resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + (*a)[i];
    if (i < b_size) sum += b[i];
    (*a)[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry) a->push_back(static_cast<uint32_t>(carry));
}

void BigInt::SubMagnitudeInPlace(LimbVector* a, const LimbVector& b) {
  TERMILOG_CHECK(CompareMagnitude(*a, b) >= 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    int64_t diff = static_cast<int64_t>((*a)[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

void BigInt::RSubMagnitudeInPlace(LimbVector* a, const LimbVector& b) {
  TERMILOG_CHECK(CompareMagnitude(b, *a) >= 0);
  size_t a_size = a->size();
  a->resize(b.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < b.size(); ++i) {
    int64_t diff = static_cast<int64_t>(b[i]) - borrow -
                   (i < a_size ? static_cast<int64_t>((*a)[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<uint32_t>(diff);
  }
  while (!a->empty() && a->back() == 0) a->pop_back();
}

BigInt& BigInt::AddSignedInPlace(const BigInt& other, bool flip_other_sign) {
  bool other_negative =
      other.limbs_.empty() ? false
                           : (flip_other_sign ? !other.negative_
                                              : other.negative_);
  if (negative_ == other_negative) {
    AddMagnitudeInPlace(&limbs_, other.limbs_);
  } else if (CompareMagnitude(limbs_, other.limbs_) >= 0) {
    SubMagnitudeInPlace(&limbs_, other.limbs_);
  } else {
    RSubMagnitudeInPlace(&limbs_, other.limbs_);
    negative_ = other_negative;
  }
  Trim();
  NoteLimbs(limbs_.size());
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  return AddSignedInPlace(other, /*flip_other_sign=*/false);
}

BigInt& BigInt::operator-=(const BigInt& other) {
  return AddSignedInPlace(other, /*flip_other_sign=*/true);
}

BigInt& BigInt::operator*=(const BigInt& other) {
  // Schoolbook multiplication cannot reuse its input storage, so the
  // product is built out of line and moved in; this still avoids the full
  // temporary BigInt of `*this = *this * other`. Reading other.negative_
  // before the move keeps `x *= x` correct.
  bool product_negative = negative_ != other.negative_;
  limbs_ = MulMagnitude(limbs_, other.limbs_);
  negative_ = !limbs_.empty() && product_negative;
  NoteLimbs(limbs_.size());
  return *this;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  if (negative_ == other.negative_) {
    out.limbs_ = AddMagnitude(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else if (CompareMagnitude(limbs_, other.limbs_) >= 0) {
    out.limbs_ = SubMagnitude(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else {
    out.limbs_ = SubMagnitude(other.limbs_, limbs_);
    out.negative_ = other.negative_;
  }
  out.Trim();
  NoteLimbs(out.limbs_.size());
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out;
  out.limbs_ = MulMagnitude(limbs_, other.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != other.negative_);
  NoteLimbs(out.limbs_.size());
  return out;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  TERMILOG_CHECK_MSG(!divisor.is_zero(), "division by zero");
  int mag = CompareMagnitude(dividend.limbs_, divisor.limbs_);
  if (mag < 0) {
    *quotient = BigInt();
    *remainder = dividend;
    return;
  }
  // Single-limb divisor: fast short division.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    LimbVector q(dividend.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    BigInt qq, rr;
    qq.limbs_ = std::move(q);
    qq.Trim();
    rr = BigInt(static_cast<int64_t>(rem));
    qq.negative_ = !qq.is_zero() && (dividend.negative_ != divisor.negative_);
    if (dividend.negative_ && !rr.is_zero()) rr.negative_ = true;
    *quotient = std::move(qq);
    *remainder = std::move(rr);
    return;
  }
  // Multi-limb divisor: binary shift-and-subtract long division on
  // magnitudes. Coefficient bit-lengths in this library stay modest, so the
  // O(bits * limbs) cost is acceptable and the code is simple to audit.
  LimbVector rem;  // running remainder magnitude
  LimbVector quot(dividend.limbs_.size(), 0);
  for (size_t bit_index = dividend.limbs_.size() * 32; bit_index-- > 0;) {
    // rem = rem * 2 + bit
    uint32_t carry =
        (dividend.limbs_[bit_index / 32] >> (bit_index % 32)) & 1u;
    for (size_t i = 0; i < rem.size(); ++i) {
      uint32_t next_carry = rem[i] >> 31;
      rem[i] = (rem[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry) rem.push_back(carry);
    if (CompareMagnitude(rem, divisor.limbs_) >= 0) {
      rem = SubMagnitude(rem, divisor.limbs_);
      quot[bit_index / 32] |= uint32_t{1} << (bit_index % 32);
    }
  }
  BigInt qq, rr;
  qq.limbs_ = std::move(quot);
  qq.Trim();
  rr.limbs_ = std::move(rem);
  rr.Trim();
  qq.negative_ = !qq.is_zero() && (dividend.negative_ != divisor.negative_);
  rr.negative_ = !rr.is_zero() && dividend.negative_;
  *quotient = std::move(qq);
  *remainder = std::move(rr);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return r;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  // Fast path: both magnitudes fit in native words.
  if (a.limbs_.size() <= 2 && b.limbs_.size() <= 2) {
    auto magnitude = [](const BigInt& v) -> uint64_t {
      uint64_t mag = v.limbs_.empty() ? 0 : v.limbs_[0];
      if (v.limbs_.size() == 2) mag |= static_cast<uint64_t>(v.limbs_[1]) << 32;
      return mag;
    };
    uint64_t x = magnitude(a), y = magnitude(b);
    while (y != 0) {
      uint64_t r = x % y;
      x = y;
      y = r;
    }
    return FromInt128(static_cast<__int128>(static_cast<unsigned __int128>(x)));
  }
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() < 2) return true;
  if (limbs_.size() > 2) return false;
  uint64_t mag = (static_cast<uint64_t>(limbs_[1]) << 32) | limbs_[0];
  return negative_ ? mag <= (uint64_t{1} << 63)
                   : mag <= (uint64_t{1} << 63) - 1;
}

int64_t BigInt::ToInt64() const {
  TERMILOG_CHECK_MSG(FitsInt64(), "BigInt out of int64_t range");
  uint64_t mag = 0;
  if (!limbs_.empty()) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    // |INT64_MIN| == 2^63 passes FitsInt64 but negating it in signed space
    // is signed overflow (UB); return the boundary value explicitly.
    if (mag == (uint64_t{1} << 63)) return INT64_MIN;
    return -static_cast<int64_t>(mag);
  }
  return static_cast<int64_t>(mag);
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeated short division by 1e9 produces 9 decimal digits per step.
  LimbVector mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::Hash() const {
  size_t h = negative_ ? 0x9e3779b97f4a7c15u : 0;
  // Fast path for the <= 2-limb values that dominate polyhedral workloads:
  // the loop below unrolled by hand, producing bit-identical hashes (the
  // differential fuzz suite asserts this).
  size_t n = limbs_.size();
  if (n <= 2) {
    if (n >= 1) h ^= limbs_[0] + 0x9e3779b97f4a7c15u + (h << 6) + (h >> 2);
    if (n == 2) h ^= limbs_[1] + 0x9e3779b97f4a7c15u + (h << 6) + (h >> 2);
    return h;
  }
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15u + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace termilog
