// E6: Fourier-Motzkin elimination cost. The paper claims a polynomial
// bound via LP theory but observes that "in practice, Fourier-Motzkin
// elimination is simple and adequate"; this benchmark quantifies that on
// random systems and on the analyzer's own dual systems, and ablates the
// LP-based redundancy pruning.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }

 private:
  uint64_t state_;
};

ConstraintSystem RandomSystem(Rng* rng, int num_vars, int num_rows,
                              int density_percent) {
  ConstraintSystem sys(num_vars);
  for (int r = 0; r < num_rows; ++r) {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.resize(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      if (rng->Range(0, 99) < density_percent) {
        row.coeffs[v] = Rational(rng->Range(-3, 3));
      }
    }
    row.constant = Rational(rng->Range(-5, 5));
    sys.Add(std::move(row));
  }
  return sys;
}

void BM_ProjectRandom(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  const int num_rows = static_cast<int>(state.range(1));
  Rng rng(42);
  ConstraintSystem sys = RandomSystem(&rng, num_vars, num_rows, 50);
  std::vector<int> keep = {0, 1};
  for (auto _ : state) {
    Result<ConstraintSystem> out = FourierMotzkin::Project(sys, keep);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetComplexityN(num_vars);
}

void BM_ProjectWithPruning(benchmark::State& state, bool prune) {
  Rng rng(7);
  ConstraintSystem sys = RandomSystem(&rng, 6, 14, 60);
  std::vector<int> keep = {0, 1};
  FmOptions options;
  options.lp_prune = prune;
  options.lp_prune_threshold = prune ? 16 : 1000000;
  for (auto _ : state) {
    Result<ConstraintSystem> out = FourierMotzkin::Project(sys, keep, options);
    benchmark::DoNotOptimize(out.ok());
  }
}

void BM_EliminateSingleVariable(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0));
  // `pairs` lower and upper bounds on x0: elimination creates pairs^2 rows.
  ConstraintSystem base(3);
  for (int i = 1; i <= pairs; ++i) {
    Constraint lo;
    lo.rel = Relation::kGe;
    lo.coeffs = {Rational(1), Rational(-i), Rational(0)};
    lo.constant = Rational(i);
    base.Add(std::move(lo));
    Constraint hi;
    hi.rel = Relation::kGe;
    hi.coeffs = {Rational(-1), Rational(0), Rational(i)};
    hi.constant = Rational(i);
    base.Add(std::move(hi));
  }
  FmOptions options;
  options.lp_prune = false;  // measure raw quadratic growth
  for (auto _ : state) {
    ConstraintSystem sys = base;
    Status status = FourierMotzkin::EliminateVariable(&sys, 0, options);
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetComplexityN(pairs);
}

// The analyzer's real workload: eliminating the dual w variables of the
// perm rule system (Example 4.1) repeatedly.
void BM_DualElimination(benchmark::State& state) {
  const CorpusEntry& entry = *FindCorpusEntry("perm");
  Program program = ParseProgram(entry.source).value();
  ArgSizeDb db;
  PredId append{program.symbols().Lookup("append"), 3};
  db.Set(append, ArgSizeDb::ParseSpec(3, "a1 + a2 = a3").value());
  std::map<PredId, Adornment> modes;
  PredId perm{program.symbols().Lookup("perm"), 2};
  modes[perm] = {Mode::kBound, Mode::kFree};
  modes[append] = {Mode::kFree, Mode::kFree, Mode::kBound};
  RuleSystemBuilder builder(program, modes, db);
  RuleSubgoalSystem sys = builder.BuildOne(1, 2).value();
  std::map<PredId, int> counts{{perm, 1}};
  ThetaSpace space(counts);
  for (auto _ : state) {
    Result<DerivedConstraints> derived = BuildDerivedConstraints(sys, space);
    benchmark::DoNotOptimize(derived.ok());
  }
}

BENCHMARK(BM_ProjectRandom)
    ->Args({3, 6})
    ->Args({4, 8})
    ->Args({5, 10})
    ->Args({6, 12})
    ->Complexity();
BENCHMARK_CAPTURE(BM_ProjectWithPruning, with_lp_prune, true);
BENCHMARK_CAPTURE(BM_ProjectWithPruning, without_lp_prune, false);
BENCHMARK(BM_EliminateSingleVariable)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Complexity();
BENCHMARK(BM_DualElimination);

void PrintGrowthTable() {
  std::printf("==== E6: FM row growth, pruned vs unpruned ====\n");
  std::printf("%-10s %-12s %-14s\n", "vars", "rows(pruned)",
              "rows(unpruned)");
  for (int n : {3, 4, 5, 6}) {
    Rng rng(n);
    ConstraintSystem sys = RandomSystem(&rng, n, 2 * n, 50);
    FmOptions pruned;
    pruned.lp_prune_threshold = 8;
    FmOptions unpruned;
    unpruned.lp_prune = false;
    Result<ConstraintSystem> a = FourierMotzkin::Project(sys, {0, 1}, pruned);
    Result<ConstraintSystem> b =
        FourierMotzkin::Project(sys, {0, 1}, unpruned);
    std::printf("%-10d %-12s %-14s\n", n,
                a.ok() ? std::to_string(a->size()).c_str() : "blowup",
                b.ok() ? std::to_string(b->size()).c_str() : "blowup");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintGrowthTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
