// E11: batch-engine throughput and cache effectiveness. Runs the full
// corpus through the parallel batch engine (docs/engine.md) at jobs =
// 1/2/4/8, cold cache and warm (an immediate rerun on the same engine),
// and emits one machine-readable JSON object on stdout — the repo's
// BENCH_engine.json trajectory point. The interesting columns: wall-clock
// scaling with jobs, and the warm-run SCC cache hit rate (the fraction of
// per-SCC tasks served without re-solving).
//
// E12 (--phases): per-phase time shares for the paper's worked examples,
// measured with the span tracer (docs/observability.md). For each example
// the tracer is reset, the example runs alone through the engine at
// jobs=1, and the finished spans are aggregated by name; "share" is a
// phase's self time (its duration minus its children's) as a fraction of
// the request span. Needs a TERMILOG_OBS=ON build.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "termilog/termilog.h"

#ifndef TERMILOG_BUILD_TYPE
#define TERMILOG_BUILD_TYPE "unspecified"
#endif

using namespace termilog;

namespace {

constexpr int kSchemaVersion = 2;
constexpr int kJobsLevels[] = {1, 2, 4, 8};

std::vector<BatchRequest> CorpusRequests() {
  std::vector<BatchRequest> requests;
  for (const CorpusEntry& entry : Corpus()) {
    Program program = ParseProgram(entry.source).value();
    auto query = ParseQuerySpec(program, entry.query).value();
    BatchRequest request;
    request.name = entry.name;
    request.program = std::move(program);
    request.query = query.first;
    request.adornment = query.second;
    request.options.apply_transformations = entry.needs_transformations;
    request.options.allow_negative_deltas = entry.needs_negative_deltas;
    request.options.supplied_constraints = entry.supplied_constraints;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::string MetaJson(size_t corpus_requests) {
  std::string jobs;
  for (int j : kJobsLevels) {
    if (!jobs.empty()) jobs += ',';
    jobs += std::to_string(j);
  }
  return StrCat("{\"schema_version\":", kSchemaVersion,
                ",\"build_type\":\"", JsonEscape(TERMILOG_BUILD_TYPE),
                "\",\"jobs\":[", jobs,
                "],\"corpus_requests\":", corpus_requests, "}");
}

struct RunSample {
  int64_t wall_ms = 0;
  int64_t scc_tasks = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

// EngineStats accumulate across Run calls; the warm sample is the delta
// between the post-warm and post-cold snapshots.
RunSample Delta(const EngineStats& after, const EngineStats& before) {
  RunSample sample;
  sample.wall_ms = after.wall_ms;  // wall_ms is per-Run, not cumulative
  sample.scc_tasks = after.scc_tasks - before.scc_tasks;
  sample.cache_hits = after.cache_hits - before.cache_hits;
  sample.cache_misses = after.cache_misses - before.cache_misses;
  return sample;
}

std::string SampleJson(const RunSample& sample, size_t requests) {
  double seconds = static_cast<double>(sample.wall_ms) / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  double hit_rate =
      sample.scc_tasks > 0
          ? static_cast<double>(sample.cache_hits) /
                static_cast<double>(sample.scc_tasks)
          : 0.0;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"wall_ms\":%lld,\"scc_tasks\":%lld,\"cache_hits\":%lld,"
                "\"cache_misses\":%lld,\"requests_per_s\":%.2f,"
                "\"scc_hit_rate\":%.4f}",
                static_cast<long long>(sample.wall_ms),
                static_cast<long long>(sample.scc_tasks),
                static_cast<long long>(sample.cache_hits),
                static_cast<long long>(sample.cache_misses), throughput,
                hit_rate);
  return buffer;
}

int RunThroughput() {
  std::vector<BatchRequest> requests = CorpusRequests();

  std::string out = StrCat("{\"bench\":\"engine\",\"meta\":",
                           MetaJson(requests.size()), ",\"runs\":[");
  bool first = true;
  for (int jobs : kJobsLevels) {
    BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});

    engine.Run(requests);
    EngineStats cold_stats = engine.stats();
    RunSample cold = Delta(cold_stats, EngineStats());

    engine.Run(requests);
    RunSample warm = Delta(engine.stats(), cold_stats);

    if (!first) out += ',';
    first = false;
    out += StrCat("{\"jobs\":", jobs, ",\"cold\":",
                  SampleJson(cold, requests.size()),
                  ",\"warm\":", SampleJson(warm, requests.size()), "}");
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
  return 0;
}

// The paper's four worked examples (Ex 3.1/4.1, Ex 5.1, Ex 6.1, A.1).
constexpr const char* kPhaseExamples[] = {"perm", "merge", "expr_parser",
                                          "example_a1"};

int RunPhases() {
  if (!obs::kCompiledIn) {
    std::fprintf(stderr,
                 "bench_engine: --phases needs a TERMILOG_OBS=ON build\n");
    return 1;
  }
  std::vector<BatchRequest> all = CorpusRequests();
  std::string out = StrCat("{\"bench\":\"engine_phases\",\"meta\":",
                           MetaJson(all.size()), ",\"examples\":[");
  bool first_example = true;
  for (const char* name : kPhaseExamples) {
    const BatchRequest* request = nullptr;
    for (const BatchRequest& candidate : all) {
      if (candidate.name == name) {
        request = &candidate;
        break;
      }
    }
    if (request == nullptr) {
      std::fprintf(stderr, "bench_engine: corpus entry %s not found\n", name);
      return 1;
    }
    // Fresh engine and fresh trace per example: no cache warm-up, no spans
    // bleeding across examples. jobs=1 keeps self-times additive.
    obs::Tracer::Global().Enable();
    {
      BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/false});
      std::vector<BatchRequest> one;
      one.push_back(*request);
      engine.Run(one);
    }
    obs::Tracer::Global().Disable();
    auto aggregate = obs::Tracer::Global().AggregateByName();
    auto request_it = aggregate.find("request");
    int64_t request_us =
        request_it == aggregate.end() ? 0 : request_it->second.total_us;

    if (!first_example) out += ',';
    first_example = false;
    out += StrCat("{\"name\":\"", JsonEscape(name),
                  "\",\"request_us\":", request_us, ",\"phases\":{");
    bool first_phase = true;
    for (const auto& [phase, agg] : aggregate) {
      double share =
          request_us > 0
              ? static_cast<double>(agg.self_us) /
                    static_cast<double>(request_us)
              : 0.0;
      char share_text[32];
      std::snprintf(share_text, sizeof(share_text), "%.4f", share);
      if (!first_phase) out += ',';
      first_phase = false;
      out += StrCat("\"", JsonEscape(phase), "\":{\"count\":", agg.count,
                    ",\"total_us\":", agg.total_us,
                    ",\"self_us\":", agg.self_us, ",\"share\":", share_text,
                    "}");
    }
    out += "}}";
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--phases") == 0) return RunPhases();
  if (argc > 1) {
    std::fprintf(stderr, "usage: bench_engine [--phases]\n");
    return 1;
  }
  return RunThroughput();
}
