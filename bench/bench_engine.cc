// E11: batch-engine throughput and cache effectiveness. Runs the full
// corpus through the parallel batch engine (docs/engine.md) at jobs =
// 1/2/4/8, cold cache and warm, and emits one machine-readable JSON
// object on stdout — the repo's BENCH_engine.json trajectory point.
//
// Schema v3 measures each (jobs, cold|warm) cell as the median of
// --repeats timed runs (cold on a fresh engine every repeat; warm on one
// engine after a discarded warm-up run) and reports the min alongside.
// Schema v2 took single samples, and on a corpus-sized workload the
// run-to-run noise exceeded the cold/warm gap — the seed trajectory point
// recorded warm (7913 ms) *slower* than cold (7522 ms) at jobs=1, which
// is physically backwards: a warm run does strictly less SCC solving.
// (The gap is small in the first place because per-request preparation —
// parsing is already done, but deep-copying, condensation, and the
// transform pipeline are not cached — dominates corpus wall time.)
//
// v3 also adds a "stress" section: a generated workload (src/gen) of
// --stress-requests mixed-verdict requests per jobs level, reporting
// saturation requests/s and the p50/p95/p99/max of per-request service
// latency (BatchItemResult::latency_us — prep start to last SCC task,
// excluding queue wait, so the distribution measures service time, not
// batch position).
//
// E12 (--phases): per-phase time shares for the paper's worked examples,
// measured with the span tracer (docs/observability.md). For each example
// the tracer is reset, the example runs alone through the engine at
// jobs=1, and the finished spans are aggregated by name; "share" is a
// phase's self time (its duration minus its children's) as a fraction of
// the request span. Needs a TERMILOG_OBS=ON build.
//
// E14 (--chaos [SEED]): robustness replay. A generated all-provable
// workload runs repeatedly at jobs=4 on one engine while each round
// enables a seeded random failpoint spec (the TERMILOG_FAILPOINTS
// syntax, driven through FailpointRegistry::EnableFromSpec — the same
// parser the env var feeds). Asserted per round: no request errors (a
// forced trip must degrade along the governor ladder, never fail the
// run), and SccCache::SelfCheck passes (no abandoned single-flight
// slots, no retained RESOURCE_LIMIT outcome). A final clean round must
// prove every request — a cached poisoned verdict would surface here.
// Needs a TERMILOG_FAILPOINTS=ON build (the default).
//
// v3 chaos adds "store_rounds": persistent-store fault replay
// (docs/persistence.md). Each round builds a fresh store with a cold
// jobs=1 run (append order, hence file bytes, are deterministic), injures
// it — seeded bit flip, seeded truncation, or a kill-mid-write replay via
// the "persist.append" failpoint — then warm-restarts and asserts the
// recovery invariants: the corruption is *detected* (record quarantined,
// tail truncated, or file set aside), the warm run's report lines are
// byte-identical to the uninjured baseline (a bad store entry degrades to
// a cache miss, never to a wrong verdict), and zero request errors.
//
// Schema v4 follows the engine's parallel-inference refactor
// (docs/engine.md): throughput cells gain the inference-cache counters
// (inference_cache_hits / inference_cache_misses) and a "suspect" flag on
// any warm-slower-than-cold inversion (a warm run does strictly less
// work — inference and SCC solving are both cached — so an inversion
// means the measurement is noise-dominated and should not be trended).
// The stress section reports two distributions: latency_us is per-request
// service cost in thread-CPU microseconds (comparable across jobs levels
// even on fewer cores than workers), and e2e_us is the admission-to-
// completion wall interval that the scheduling-fairness fix (child tasks
// drain before new preparations) is accountable to.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "termilog/termilog.h"

#ifndef TERMILOG_BUILD_TYPE
#define TERMILOG_BUILD_TYPE "unspecified"
#endif

using namespace termilog;

namespace {

constexpr int kSchemaVersion = 4;
constexpr int kJobsLevels[] = {1, 2, 4, 8};

int g_repeats = 3;
int g_stress_requests = 10000;

std::vector<BatchRequest> CorpusRequests() {
  std::vector<BatchRequest> requests;
  for (const CorpusEntry& entry : Corpus()) {
    Program program = ParseProgram(entry.source).value();
    auto query = ParseQuerySpec(program, entry.query).value();
    BatchRequest request;
    request.name = entry.name;
    request.program = std::move(program);
    request.query = query.first;
    request.adornment = query.second;
    request.options.apply_transformations = entry.needs_transformations;
    request.options.allow_negative_deltas = entry.needs_negative_deltas;
    request.options.supplied_constraints = entry.supplied_constraints;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::string MetaJson(size_t corpus_requests) {
  std::string jobs;
  for (int j : kJobsLevels) {
    if (!jobs.empty()) jobs += ',';
    jobs += std::to_string(j);
  }
  return StrCat("{\"schema_version\":", kSchemaVersion,
                ",\"build_type\":\"", JsonEscape(TERMILOG_BUILD_TYPE),
                "\",\"jobs\":[", jobs,
                "],\"corpus_requests\":", corpus_requests,
                ",\"repeats\":", g_repeats,
                ",\"stress_requests\":", g_stress_requests, "}");
}

struct RunSample {
  int64_t wall_ms = 0;      // median across repeats
  int64_t min_wall_ms = 0;  // best repeat
  int64_t scc_tasks = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t inference_cache_hits = 0;
  int64_t inference_cache_misses = 0;
};

int64_t MedianOf(std::vector<int64_t> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

std::string SampleJson(const RunSample& sample, size_t requests) {
  double seconds = static_cast<double>(sample.wall_ms) / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  double hit_rate =
      sample.scc_tasks > 0
          ? static_cast<double>(sample.cache_hits) /
                static_cast<double>(sample.scc_tasks)
          : 0.0;
  char buffer[448];
  std::snprintf(buffer, sizeof(buffer),
                "{\"wall_ms\":%lld,\"min_wall_ms\":%lld,\"scc_tasks\":%lld,"
                "\"cache_hits\":%lld,\"cache_misses\":%lld,"
                "\"inference_cache_hits\":%lld,"
                "\"inference_cache_misses\":%lld,"
                "\"requests_per_s\":%.2f,\"scc_hit_rate\":%.4f}",
                static_cast<long long>(sample.wall_ms),
                static_cast<long long>(sample.min_wall_ms),
                static_cast<long long>(sample.scc_tasks),
                static_cast<long long>(sample.cache_hits),
                static_cast<long long>(sample.cache_misses),
                static_cast<long long>(sample.inference_cache_hits),
                static_cast<long long>(sample.inference_cache_misses),
                throughput, hit_rate);
  return buffer;
}

// One (jobs) row of the corpus-throughput section. Cold: a fresh engine
// per repeat, so every repeat pays the full miss cost. Warm: one engine,
// one cold run to populate the cache, one *discarded* warm-up run (page
// the cache and thread pool in), then the timed repeats.
std::string ThroughputRow(int jobs, const std::vector<BatchRequest>& requests) {
  RunSample cold;
  {
    std::vector<int64_t> walls;
    for (int r = 0; r < g_repeats; ++r) {
      BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
      engine.Run(requests);
      walls.push_back(engine.stats().wall_ms);
      if (r == 0) {
        cold.scc_tasks = engine.stats().scc_tasks;
        cold.cache_hits = engine.stats().cache_hits;
        cold.cache_misses = engine.stats().cache_misses;
        cold.inference_cache_hits = engine.stats().inference_cache_hits;
        cold.inference_cache_misses = engine.stats().inference_cache_misses;
      }
    }
    cold.wall_ms = MedianOf(walls);
    cold.min_wall_ms = *std::min_element(walls.begin(), walls.end());
  }

  RunSample warm;
  {
    BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
    engine.Run(requests);  // populate the cache
    engine.Run(requests);  // warm-up, discarded
    std::vector<int64_t> walls;
    for (int r = 0; r < g_repeats; ++r) {
      EngineStats before = engine.stats();
      engine.Run(requests);
      walls.push_back(engine.stats().wall_ms);
      if (r == 0) {
        warm.scc_tasks = engine.stats().scc_tasks - before.scc_tasks;
        warm.cache_hits = engine.stats().cache_hits - before.cache_hits;
        warm.cache_misses = engine.stats().cache_misses - before.cache_misses;
        warm.inference_cache_hits =
            engine.stats().inference_cache_hits - before.inference_cache_hits;
        warm.inference_cache_misses = engine.stats().inference_cache_misses -
                                      before.inference_cache_misses;
      }
    }
    warm.wall_ms = MedianOf(walls);
    warm.min_wall_ms = *std::min_element(walls.begin(), walls.end());
  }

  // A warm run does strictly less work than a cold one (inference and SCC
  // solving both served from cache), so warm median > cold median can only
  // be measurement noise. Flag the row rather than silently recording a
  // physically backwards trajectory point.
  const bool suspect = warm.wall_ms > cold.wall_ms;
  return StrCat("{\"jobs\":", jobs,
                ",\"cold\":", SampleJson(cold, requests.size()),
                ",\"warm\":", SampleJson(warm, requests.size()),
                ",\"suspect\":", suspect ? "true" : "false", "}");
}

// Mixed-verdict generated workload for the stress section: unique
// programs (dup=0), so the cache cannot shortcut the work and the row
// measures saturation throughput of *distinct* requests.
gen::GenParams StressParams() {
  gen::GenParams params;
  params.seed = 2026;
  params.count = g_stress_requests;
  params.min_sccs = 1;
  params.max_sccs = 3;
  params.min_scc_size = 1;
  params.max_scc_size = 3;
  params.mix_proved = 70;
  params.mix_not_proved = 25;
  params.mix_resource_limit = 5;
  params.name_prefix = "stress";
  return params;
}

std::string StressRow(int jobs, const std::vector<BatchRequest>& requests) {
  BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
  std::vector<BatchItemResult> results = engine.Run(requests);
  std::vector<int64_t> latencies;
  std::vector<int64_t> e2e;
  latencies.reserve(results.size());
  e2e.reserve(results.size());
  int64_t proved = 0, limited = 0, errors = 0;
  for (const BatchItemResult& item : results) {
    latencies.push_back(item.latency_us);
    e2e.push_back(item.e2e_us);
    if (!item.status.ok()) {
      ++errors;
    } else if (item.report.resource_limited) {
      ++limited;
    } else if (item.report.proved) {
      ++proved;
    }
  }
  gen::LatencySummary latency = gen::SummarizeLatencies(std::move(latencies));
  gen::LatencySummary e2e_summary = gen::SummarizeLatencies(std::move(e2e));
  int64_t wall_ms = engine.stats().wall_ms;
  double seconds = static_cast<double>(wall_ms) / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(requests.size()) / seconds : 0.0;
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"jobs\":%d,\"requests\":%zu,\"wall_ms\":%lld,"
      "\"requests_per_s\":%.1f,\"proved\":%lld,\"resource_limited\":%lld,"
      "\"errors\":%lld,\"latency_us\":{\"p50\":%lld,\"p95\":%lld,"
      "\"p99\":%lld,\"max\":%lld},\"e2e_us\":{\"p50\":%lld,\"p95\":%lld,"
      "\"p99\":%lld,\"max\":%lld}}",
      jobs, requests.size(), static_cast<long long>(wall_ms), throughput,
      static_cast<long long>(proved), static_cast<long long>(limited),
      static_cast<long long>(errors), static_cast<long long>(latency.p50_us),
      static_cast<long long>(latency.p95_us),
      static_cast<long long>(latency.p99_us),
      static_cast<long long>(latency.max_us),
      static_cast<long long>(e2e_summary.p50_us),
      static_cast<long long>(e2e_summary.p95_us),
      static_cast<long long>(e2e_summary.p99_us),
      static_cast<long long>(e2e_summary.max_us));
  return buffer;
}

int RunThroughput() {
  std::vector<BatchRequest> corpus = CorpusRequests();

  std::string out = StrCat("{\"bench\":\"engine\",\"meta\":",
                           MetaJson(corpus.size()), ",\"runs\":[");
  bool first = true;
  for (int jobs : kJobsLevels) {
    if (!first) out += ',';
    first = false;
    out += ThroughputRow(jobs, corpus);
  }
  out += "],\"stress\":{\"spec\":\"";

  gen::GenParams params = StressParams();
  out += JsonEscape(gen::GenSpecToString(params));
  out += "\",\"rows\":[";
  gen::GeneratedWorkload workload = gen::Generate(params);
  std::vector<BatchRequest> requests =
      gen::WorkloadToBatchRequests(workload).value();
  first = true;
  for (int jobs : kJobsLevels) {
    if (!first) out += ',';
    first = false;
    out += StressRow(jobs, requests);
  }
  out += "]}}";
  std::printf("%s\n", out.c_str());
  return 0;
}

// The paper's four worked examples (Ex 3.1/4.1, Ex 5.1, Ex 6.1, A.1).
constexpr const char* kPhaseExamples[] = {"perm", "merge", "expr_parser",
                                          "example_a1"};

int RunPhases() {
  if (!obs::kCompiledIn) {
    std::fprintf(stderr,
                 "bench_engine: --phases needs a TERMILOG_OBS=ON build\n");
    return 1;
  }
  std::vector<BatchRequest> all = CorpusRequests();
  std::string out = StrCat("{\"bench\":\"engine_phases\",\"meta\":",
                           MetaJson(all.size()), ",\"examples\":[");
  bool first_example = true;
  for (const char* name : kPhaseExamples) {
    const BatchRequest* request = nullptr;
    for (const BatchRequest& candidate : all) {
      if (candidate.name == name) {
        request = &candidate;
        break;
      }
    }
    if (request == nullptr) {
      std::fprintf(stderr, "bench_engine: corpus entry %s not found\n", name);
      return 1;
    }
    // Fresh engine and fresh trace per example: no cache warm-up, no spans
    // bleeding across examples. jobs=1 keeps self-times additive.
    obs::Tracer::Global().Enable();
    {
      BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/false});
      std::vector<BatchRequest> one;
      one.push_back(*request);
      engine.Run(one);
    }
    obs::Tracer::Global().Disable();
    auto aggregate = obs::Tracer::Global().AggregateByName();
    auto request_it = aggregate.find("request");
    int64_t request_us =
        request_it == aggregate.end() ? 0 : request_it->second.total_us;

    if (!first_example) out += ',';
    first_example = false;
    out += StrCat("{\"name\":\"", JsonEscape(name),
                  "\",\"request_us\":", request_us, ",\"phases\":{");
    bool first_phase = true;
    for (const auto& [phase, agg] : aggregate) {
      double share =
          request_us > 0
              ? static_cast<double>(agg.self_us) /
                    static_cast<double>(request_us)
              : 0.0;
      char share_text[32];
      std::snprintf(share_text, sizeof(share_text), "%.4f", share);
      if (!first_phase) out += ',';
      first_phase = false;
      out += StrCat("\"", JsonEscape(phase), "\":{\"count\":", agg.count,
                    ",\"total_us\":", agg.total_us,
                    ",\"self_us\":", agg.self_us, ",\"share\":", share_text,
                    "}");
    }
    out += "}}";
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
  return 0;
}

// Every failpoint site in the library (grep TERMILOG_FAILPOINT under
// src/). A chaos round draws a subset of these.
constexpr const char* kChaosSites[] = {
    "analyzer.scc",   "dual.build",         "fm.eliminate",
    "inference.run",  "inference.sweep",    "interp.bottom_up",
    "lp.pivot",       "sld.step",           "transform.phase",
    "transform.pipeline", "transform.unfold"};
constexpr int kChaosSiteCount =
    static_cast<int>(sizeof(kChaosSites) / sizeof(kChaosSites[0]));

// Builds a seeded TERMILOG_FAILPOINTS spec ("a=3,b") for one round: one
// to three distinct sites, each failing either the first 1..64 hits or
// every hit.
std::string ChaosSpec(gen::Rng& rng) {
  int count = rng.NextInt(1, 3);
  std::vector<int> picked;
  while (static_cast<int>(picked.size()) < count) {
    int site = rng.NextInt(0, kChaosSiteCount - 1);
    bool seen = false;
    for (int p : picked) seen = seen || p == site;
    if (!seen) picked.push_back(site);
  }
  std::string spec;
  for (int site : picked) {
    if (!spec.empty()) spec += ',';
    spec += kChaosSites[site];
    if (rng.Chance(75)) {
      spec += '=';
      spec += std::to_string(rng.NextInt(1, 64));
    }
  }
  return spec;
}

// One jobs=1 run over `requests` on a fresh engine, optionally attached
// to the store at `store_path` and optionally under a failpoint spec.
// jobs=1 makes the append order — and therefore the store's bytes —
// deterministic, so seeded injuries hit reproducible offsets. Returns
// the per-request report lines (the byte-identity surface; stats never
// appear in them) plus the store's recovery/append counters.
struct StoreRunResult {
  std::vector<std::string> lines;
  int64_t proved = 0;
  int64_t errors = 0;
  int64_t persisted_loaded = 0;
  int64_t persisted_hits = 0;
  persist::StoreStats store_stats;
  int64_t store_entries = 0;
  bool attach_ok = true;
};

StoreRunResult RunWithStore(const std::vector<BatchRequest>& requests,
                            const std::string& store_path,
                            const std::string& failpoint_spec) {
  StoreRunResult result;
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  if (!store_path.empty()) {
    Result<std::unique_ptr<persist::PersistentStore>> store =
        persist::PersistentStore::Open(store_path);
    if (!store.ok()) {
      result.attach_ok = false;
      return result;
    }
    if (!engine.AttachStore(std::move(*store)).ok()) {
      result.attach_ok = false;
      return result;
    }
  }
  if (!failpoint_spec.empty()) {
    FailpointRegistry::Global().EnableFromSpec(failpoint_spec);
  }
  std::vector<BatchItemResult> results = engine.Run(requests);
  // Drain the write-behind queue while the failpoint is still armed, so
  // a "persist.append" spec tears the appends of *this* run.
  (void)engine.FlushStore();
  if (!failpoint_spec.empty()) FailpointRegistry::Global().Clear();
  for (const BatchItemResult& item : results) {
    result.lines.push_back(
        ReportToJsonLine(item.name, "", item.status, item.report));
    if (!item.status.ok()) {
      ++result.errors;
    } else if (item.report.proved) {
      ++result.proved;
    }
  }
  result.persisted_loaded = engine.stats().persisted_loaded;
  result.persisted_hits = engine.stats().persisted_hits;
  if (engine.store() != nullptr) {
    result.store_stats = engine.store()->stats();
    result.store_entries = engine.store()->size();
  }
  return result;
}

void RemoveStoreFiles(const std::string& store_path) {
  std::error_code ec;
  std::filesystem::remove(store_path, ec);
  std::filesystem::remove(store_path + ".quarantined", ec);
  std::filesystem::remove(store_path + ".tmp", ec);
}

bool FlipStoreByte(const std::string& store_path, int64_t offset) {
  std::fstream file(store_path,
                    std::ios::in | std::ios::out | std::ios::binary);
  if (!file) return false;
  file.seekg(offset);
  char byte = 0;
  if (!file.get(byte)) return false;
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(offset);
  file.put(byte);
  return static_cast<bool>(file);
}

// Store-fault replay (the "store_rounds" section). `baseline` is the
// uninjured run's report lines; every injured round must reproduce them
// byte for byte.
std::string StoreChaosRounds(const std::vector<BatchRequest>& requests,
                             gen::Rng& rng, bool* failed) {
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "termilog_bench_chaos.store")
          .string();

  auto round_json = [](const char* name, const StoreRunResult& warm,
                       bool detected, bool verdicts_ok, bool ok) {
    return StrCat("{\"fault\":\"", name, "\",\"proved\":", warm.proved,
                  ",\"errors\":", warm.errors,
                  ",\"persisted_loaded\":", warm.persisted_loaded,
                  ",\"persisted_hits\":", warm.persisted_hits,
                  ",\"records_quarantined\":",
                  warm.store_stats.records_quarantined,
                  ",\"tail_bytes_truncated\":",
                  warm.store_stats.tail_bytes_truncated,
                  ",\"file_quarantined\":",
                  warm.store_stats.file_quarantined ? "true" : "false",
                  ",\"fault_detected\":", detected ? "true" : "false",
                  ",\"verdicts_identical\":", verdicts_ok ? "true" : "false",
                  ",\"ok\":", ok ? "true" : "false", "}");
  };

  // Baseline: the same requests, same jobs=1 engine shape, no store.
  // Verdicts are deterministic, so every store round must reproduce
  // exactly these lines.
  StoreRunResult baseline = RunWithStore(requests, "", "");

  std::string out;

  // Round 1 — roundtrip: cold run populates the store, warm restart must
  // serve recovered entries (nonzero persisted hits) with identical
  // reports.
  int64_t full_entries = 0;
  {
    RemoveStoreFiles(store_path);
    StoreRunResult cold = RunWithStore(requests, store_path, "");
    StoreRunResult warm = RunWithStore(requests, store_path, "");
    full_entries = warm.store_entries;
    bool verdicts_ok =
        cold.lines == baseline.lines && warm.lines == baseline.lines;
    bool ok = cold.attach_ok && warm.attach_ok && verdicts_ok &&
              warm.errors == 0 && cold.store_stats.appends > 0 &&
              warm.persisted_loaded > 0 && warm.persisted_hits > 0 &&
              warm.store_stats.records_quarantined == 0;
    *failed = *failed || !ok;
    out += round_json("none", warm, /*detected=*/true, verdicts_ok, ok);
  }

  // Round 2 — seeded bit flip. Wherever it lands (header, frame length,
  // CRC, payload), recovery must *notice* — quarantined record, truncated
  // tail, or file set aside — and the warm run must still be exact.
  {
    RemoveStoreFiles(store_path);
    StoreRunResult cold = RunWithStore(requests, store_path, "");
    int64_t size = static_cast<int64_t>(
        std::filesystem::file_size(store_path));
    int64_t offset = rng.NextInt(0, static_cast<int>(size - 1));
    bool flipped = FlipStoreByte(store_path, offset);
    StoreRunResult warm = RunWithStore(requests, store_path, "");
    bool detected = warm.store_stats.records_quarantined > 0 ||
                    warm.store_stats.tail_bytes_truncated > 0 ||
                    warm.store_stats.file_quarantined;
    bool verdicts_ok = warm.lines == baseline.lines;
    bool ok = cold.attach_ok && warm.attach_ok && flipped && detected &&
              verdicts_ok && warm.errors == 0;
    *failed = *failed || !ok;
    out += ',';
    out += round_json("bit_flip", warm, detected, verdicts_ok, ok);
  }

  // Round 3 — seeded truncation (crash between appends, or a filesystem
  // that lost the tail). The surviving prefix loads; the rest degrades to
  // cache misses.
  {
    RemoveStoreFiles(store_path);
    StoreRunResult cold = RunWithStore(requests, store_path, "");
    int64_t size = static_cast<int64_t>(
        std::filesystem::file_size(store_path));
    int64_t cut = rng.NextInt(17, static_cast<int>(size - 1));
    std::filesystem::resize_file(store_path, cut);
    StoreRunResult warm = RunWithStore(requests, store_path, "");
    bool detected = warm.store_stats.tail_bytes_truncated > 0 ||
                    warm.persisted_loaded < full_entries;
    bool verdicts_ok = warm.lines == baseline.lines;
    bool ok = cold.attach_ok && warm.attach_ok && detected && verdicts_ok &&
              warm.errors == 0;
    *failed = *failed || !ok;
    out += ',';
    out += round_json("truncate", warm, detected, verdicts_ok, ok);
  }

  // Round 4 — kill mid-write, replayed with the "persist.append"
  // failpoint: the first append writes half a frame and the handle goes
  // broken, exactly a kill -9 between the bytes of a write. Reopen must
  // truncate the torn tail and the run must not miss a beat.
  {
    RemoveStoreFiles(store_path);
    StoreRunResult torn = RunWithStore(requests, store_path,
                                       "persist.append");
    StoreRunResult warm = RunWithStore(requests, store_path, "");
    bool detected = warm.store_stats.tail_bytes_truncated > 0;
    bool verdicts_ok =
        torn.lines == baseline.lines && warm.lines == baseline.lines;
    bool ok = torn.attach_ok && warm.attach_ok && detected && verdicts_ok &&
              torn.errors == 0 && warm.errors == 0;
    *failed = *failed || !ok;
    out += ',';
    out += round_json("torn_write", warm, detected, verdicts_ok, ok);
  }

  RemoveStoreFiles(store_path);
  return out;
}

int RunChaos(uint64_t seed) {
  constexpr int kRounds = 8;
  constexpr int kChaosJobs = 4;

  // All-provable workload with unlimited budgets: every RESOURCE_LIMIT or
  // NOT_PROVED outcome below is *caused by an injected fault*, and the
  // final clean round must prove everything or the engine retained
  // poisoned state.
  gen::GenParams params;
  params.seed = seed;
  params.count = 200;
  params.mix_proved = 100;
  params.mix_not_proved = 0;
  params.mix_resource_limit = 0;
  params.name_prefix = "chaos";
  gen::GeneratedWorkload workload = gen::Generate(params);
  std::vector<BatchRequest> requests =
      gen::WorkloadToBatchRequests(workload).value();

  BatchEngine engine(EngineOptions{kChaosJobs, /*use_cache=*/true});
  gen::Rng rng = gen::Rng::Stream(seed, /*stream=*/0xC4A05ULL);

  std::string out =
      StrCat("{\"bench\":\"engine_chaos\",\"meta\":", MetaJson(0),
             ",\"seed\":", seed, ",\"jobs\":", kChaosJobs,
             ",\"requests_per_round\":", requests.size(), ",\"rounds\":[");
  bool failed = false;
  for (int round = 0; round < kRounds; ++round) {
    std::string spec = ChaosSpec(rng);
    FailpointRegistry::Global().EnableFromSpec(spec);
    std::vector<BatchItemResult> results = engine.Run(requests);
    FailpointRegistry::Global().Clear();

    int64_t proved = 0, limited = 0, not_proved = 0, errors = 0;
    for (const BatchItemResult& item : results) {
      if (!item.status.ok()) {
        ++errors;
      } else if (item.report.resource_limited) {
        ++limited;
      } else if (item.report.proved) {
        ++proved;
      } else {
        ++not_proved;
      }
    }
    Status cache_check = engine.cache().SelfCheck();
    bool round_ok = errors == 0 && cache_check.ok();
    failed = failed || !round_ok;

    if (round > 0) out += ',';
    out += StrCat("{\"spec\":\"", JsonEscape(spec), "\",\"proved\":", proved,
                  ",\"resource_limited\":", limited,
                  ",\"not_proved\":", not_proved, ",\"errors\":", errors,
                  ",\"cache_self_check\":\"",
                  cache_check.ok() ? "ok" : JsonEscape(cache_check.ToString()),
                  "\",\"ok\":", round_ok ? "true" : "false", "}");
  }

  // Store-fault replay: build, injure, recover (see the header comment).
  out += "],\"store_rounds\":[";
  out += StoreChaosRounds(requests, rng, &failed);

  // Clean verification round: no failpoints. Every request must prove —
  // an injected RESOURCE_LIMIT verdict that leaked into the cache, or an
  // abandoned single-flight slot, would break this.
  std::vector<BatchItemResult> clean = engine.Run(requests);
  int64_t clean_proved = 0;
  for (const BatchItemResult& item : clean) {
    if (item.status.ok() && item.report.proved) ++clean_proved;
  }
  Status final_check = engine.cache().SelfCheck();
  bool clean_ok = clean_proved == static_cast<int64_t>(clean.size()) &&
                  final_check.ok();
  failed = failed || !clean_ok;

  out += StrCat("],\"clean_round\":{\"proved\":", clean_proved,
                ",\"requests\":", clean.size(), ",\"cache_self_check\":\"",
                final_check.ok() ? "ok" : JsonEscape(final_check.ToString()),
                "\",\"ok\":", clean_ok ? "true" : "false",
                "},\"ok\":", failed ? "false" : "true", "}");
  std::printf("%s\n", out.c_str());
  if (failed) {
    std::fprintf(stderr, "bench_engine: chaos run FAILED (see JSON)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool phases = false, chaos = false;
  uint64_t chaos_seed = 7;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--phases") {
      phases = true;
    } else if (arg == "--chaos") {
      chaos = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        chaos_seed = std::strtoull(argv[++i], nullptr, 10);
      }
    } else if (arg == "--repeats" && i + 1 < argc) {
      g_repeats = std::atoi(argv[++i]);
      if (g_repeats < 1) g_repeats = 1;
    } else if (arg == "--stress-requests" && i + 1 < argc) {
      g_stress_requests = std::atoi(argv[++i]);
      if (g_stress_requests < 1) g_stress_requests = 1;
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine [--phases | --chaos [SEED]] "
                   "[--repeats N] [--stress-requests N]\n");
      return 1;
    }
  }
  if (phases) return RunPhases();
  if (chaos) return RunChaos(chaos_seed);
  return RunThroughput();
}
