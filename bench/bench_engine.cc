// E11: batch-engine throughput and cache effectiveness. Runs the full
// corpus through the parallel batch engine (docs/engine.md) at jobs =
// 1/2/4/8, cold cache and warm (an immediate rerun on the same engine),
// and emits one machine-readable JSON object on stdout — the repo's
// BENCH_engine.json trajectory point. The interesting columns: wall-clock
// scaling with jobs, and the warm-run SCC cache hit rate (the fraction of
// per-SCC tasks served without re-solving).

#include <cstdio>
#include <string>
#include <vector>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

std::vector<BatchRequest> CorpusRequests() {
  std::vector<BatchRequest> requests;
  for (const CorpusEntry& entry : Corpus()) {
    Program program = ParseProgram(entry.source).value();
    auto query = ParseQuerySpec(program, entry.query).value();
    BatchRequest request;
    request.name = entry.name;
    request.program = std::move(program);
    request.query = query.first;
    request.adornment = query.second;
    request.options.apply_transformations = entry.needs_transformations;
    request.options.allow_negative_deltas = entry.needs_negative_deltas;
    request.options.supplied_constraints = entry.supplied_constraints;
    requests.push_back(std::move(request));
  }
  return requests;
}

struct RunSample {
  int64_t wall_ms = 0;
  int64_t scc_tasks = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

// EngineStats accumulate across Run calls; the warm sample is the delta
// between the post-warm and post-cold snapshots.
RunSample Delta(const EngineStats& after, const EngineStats& before) {
  RunSample sample;
  sample.wall_ms = after.wall_ms;  // wall_ms is per-Run, not cumulative
  sample.scc_tasks = after.scc_tasks - before.scc_tasks;
  sample.cache_hits = after.cache_hits - before.cache_hits;
  sample.cache_misses = after.cache_misses - before.cache_misses;
  return sample;
}

std::string SampleJson(const RunSample& sample, size_t requests) {
  double seconds = static_cast<double>(sample.wall_ms) / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  double hit_rate =
      sample.scc_tasks > 0
          ? static_cast<double>(sample.cache_hits) /
                static_cast<double>(sample.scc_tasks)
          : 0.0;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"wall_ms\":%lld,\"scc_tasks\":%lld,\"cache_hits\":%lld,"
                "\"cache_misses\":%lld,\"requests_per_s\":%.2f,"
                "\"scc_hit_rate\":%.4f}",
                static_cast<long long>(sample.wall_ms),
                static_cast<long long>(sample.scc_tasks),
                static_cast<long long>(sample.cache_hits),
                static_cast<long long>(sample.cache_misses), throughput,
                hit_rate);
  return buffer;
}

}  // namespace

int main() {
  std::vector<BatchRequest> requests = CorpusRequests();

  std::string out = "{\"bench\":\"engine\",\"corpus_requests\":" +
                    std::to_string(requests.size()) + ",\"runs\":[";
  bool first = true;
  for (int jobs : {1, 2, 4, 8}) {
    BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});

    engine.Run(requests);
    EngineStats cold_stats = engine.stats();
    RunSample cold = Delta(cold_stats, EngineStats());

    engine.Run(requests);
    RunSample warm = Delta(engine.stats(), cold_stats);

    if (!first) out += ',';
    first = false;
    out += "{\"jobs\":" + std::to_string(jobs) +
           ",\"cold\":" + SampleJson(cold, requests.size()) +
           ",\"warm\":" + SampleJson(warm, requests.size()) + "}";
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
  return 0;
}
