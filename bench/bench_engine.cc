// E11: batch-engine throughput and cache effectiveness. Runs the full
// corpus through the parallel batch engine (docs/engine.md) at jobs =
// 1/2/4/8, cold cache and warm, and emits one machine-readable JSON
// object on stdout — the repo's BENCH_engine.json trajectory point.
//
// Schema v3 measures each (jobs, cold|warm) cell as the median of
// --repeats timed runs (cold on a fresh engine every repeat; warm on one
// engine after a discarded warm-up run) and reports the min alongside.
// Schema v2 took single samples, and on a corpus-sized workload the
// run-to-run noise exceeded the cold/warm gap — the seed trajectory point
// recorded warm (7913 ms) *slower* than cold (7522 ms) at jobs=1, which
// is physically backwards: a warm run does strictly less SCC solving.
// (The gap is small in the first place because per-request preparation —
// parsing is already done, but deep-copying, condensation, and the
// transform pipeline are not cached — dominates corpus wall time.)
//
// v3 also adds a "stress" section: a generated workload (src/gen) of
// --stress-requests mixed-verdict requests per jobs level, reporting
// saturation requests/s and the p50/p95/p99/max of per-request service
// latency (BatchItemResult::latency_us — prep start to last SCC task,
// excluding queue wait, so the distribution measures service time, not
// batch position).
//
// E12 (--phases): per-phase time shares for the paper's worked examples,
// measured with the span tracer (docs/observability.md). For each example
// the tracer is reset, the example runs alone through the engine at
// jobs=1, and the finished spans are aggregated by name; "share" is a
// phase's self time (its duration minus its children's) as a fraction of
// the request span. Needs a TERMILOG_OBS=ON build.
//
// E14 (--chaos [SEED]): robustness replay. A generated all-provable
// workload runs repeatedly at jobs=4 on one engine while each round
// enables a seeded random failpoint spec (the TERMILOG_FAILPOINTS
// syntax, driven through FailpointRegistry::EnableFromSpec — the same
// parser the env var feeds). Asserted per round: no request errors (a
// forced trip must degrade along the governor ladder, never fail the
// run), and SccCache::SelfCheck passes (no abandoned single-flight
// slots, no retained RESOURCE_LIMIT outcome). A final clean round must
// prove every request — a cached poisoned verdict would surface here.
// Needs a TERMILOG_FAILPOINTS=ON build (the default).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "termilog/termilog.h"

#ifndef TERMILOG_BUILD_TYPE
#define TERMILOG_BUILD_TYPE "unspecified"
#endif

using namespace termilog;

namespace {

constexpr int kSchemaVersion = 3;
constexpr int kJobsLevels[] = {1, 2, 4, 8};

int g_repeats = 3;
int g_stress_requests = 10000;

std::vector<BatchRequest> CorpusRequests() {
  std::vector<BatchRequest> requests;
  for (const CorpusEntry& entry : Corpus()) {
    Program program = ParseProgram(entry.source).value();
    auto query = ParseQuerySpec(program, entry.query).value();
    BatchRequest request;
    request.name = entry.name;
    request.program = std::move(program);
    request.query = query.first;
    request.adornment = query.second;
    request.options.apply_transformations = entry.needs_transformations;
    request.options.allow_negative_deltas = entry.needs_negative_deltas;
    request.options.supplied_constraints = entry.supplied_constraints;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::string MetaJson(size_t corpus_requests) {
  std::string jobs;
  for (int j : kJobsLevels) {
    if (!jobs.empty()) jobs += ',';
    jobs += std::to_string(j);
  }
  return StrCat("{\"schema_version\":", kSchemaVersion,
                ",\"build_type\":\"", JsonEscape(TERMILOG_BUILD_TYPE),
                "\",\"jobs\":[", jobs,
                "],\"corpus_requests\":", corpus_requests,
                ",\"repeats\":", g_repeats,
                ",\"stress_requests\":", g_stress_requests, "}");
}

struct RunSample {
  int64_t wall_ms = 0;      // median across repeats
  int64_t min_wall_ms = 0;  // best repeat
  int64_t scc_tasks = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

int64_t MedianOf(std::vector<int64_t> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

std::string SampleJson(const RunSample& sample, size_t requests) {
  double seconds = static_cast<double>(sample.wall_ms) / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  double hit_rate =
      sample.scc_tasks > 0
          ? static_cast<double>(sample.cache_hits) /
                static_cast<double>(sample.scc_tasks)
          : 0.0;
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "{\"wall_ms\":%lld,\"min_wall_ms\":%lld,\"scc_tasks\":%lld,"
                "\"cache_hits\":%lld,\"cache_misses\":%lld,"
                "\"requests_per_s\":%.2f,\"scc_hit_rate\":%.4f}",
                static_cast<long long>(sample.wall_ms),
                static_cast<long long>(sample.min_wall_ms),
                static_cast<long long>(sample.scc_tasks),
                static_cast<long long>(sample.cache_hits),
                static_cast<long long>(sample.cache_misses), throughput,
                hit_rate);
  return buffer;
}

// One (jobs) row of the corpus-throughput section. Cold: a fresh engine
// per repeat, so every repeat pays the full miss cost. Warm: one engine,
// one cold run to populate the cache, one *discarded* warm-up run (page
// the cache and thread pool in), then the timed repeats.
std::string ThroughputRow(int jobs, const std::vector<BatchRequest>& requests) {
  RunSample cold;
  {
    std::vector<int64_t> walls;
    for (int r = 0; r < g_repeats; ++r) {
      BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
      engine.Run(requests);
      walls.push_back(engine.stats().wall_ms);
      if (r == 0) {
        cold.scc_tasks = engine.stats().scc_tasks;
        cold.cache_hits = engine.stats().cache_hits;
        cold.cache_misses = engine.stats().cache_misses;
      }
    }
    cold.wall_ms = MedianOf(walls);
    cold.min_wall_ms = *std::min_element(walls.begin(), walls.end());
  }

  RunSample warm;
  {
    BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
    engine.Run(requests);  // populate the cache
    engine.Run(requests);  // warm-up, discarded
    std::vector<int64_t> walls;
    for (int r = 0; r < g_repeats; ++r) {
      EngineStats before = engine.stats();
      engine.Run(requests);
      walls.push_back(engine.stats().wall_ms);
      if (r == 0) {
        warm.scc_tasks = engine.stats().scc_tasks - before.scc_tasks;
        warm.cache_hits = engine.stats().cache_hits - before.cache_hits;
        warm.cache_misses = engine.stats().cache_misses - before.cache_misses;
      }
    }
    warm.wall_ms = MedianOf(walls);
    warm.min_wall_ms = *std::min_element(walls.begin(), walls.end());
  }

  return StrCat("{\"jobs\":", jobs,
                ",\"cold\":", SampleJson(cold, requests.size()),
                ",\"warm\":", SampleJson(warm, requests.size()), "}");
}

// Mixed-verdict generated workload for the stress section: unique
// programs (dup=0), so the cache cannot shortcut the work and the row
// measures saturation throughput of *distinct* requests.
gen::GenParams StressParams() {
  gen::GenParams params;
  params.seed = 2026;
  params.count = g_stress_requests;
  params.min_sccs = 1;
  params.max_sccs = 3;
  params.min_scc_size = 1;
  params.max_scc_size = 3;
  params.mix_proved = 70;
  params.mix_not_proved = 25;
  params.mix_resource_limit = 5;
  params.name_prefix = "stress";
  return params;
}

std::string StressRow(int jobs, const std::vector<BatchRequest>& requests) {
  BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
  std::vector<BatchItemResult> results = engine.Run(requests);
  std::vector<int64_t> latencies;
  latencies.reserve(results.size());
  int64_t proved = 0, limited = 0, errors = 0;
  for (const BatchItemResult& item : results) {
    latencies.push_back(item.latency_us);
    if (!item.status.ok()) {
      ++errors;
    } else if (item.report.resource_limited) {
      ++limited;
    } else if (item.report.proved) {
      ++proved;
    }
  }
  gen::LatencySummary latency = gen::SummarizeLatencies(std::move(latencies));
  int64_t wall_ms = engine.stats().wall_ms;
  double seconds = static_cast<double>(wall_ms) / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(requests.size()) / seconds : 0.0;
  char buffer[448];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"jobs\":%d,\"requests\":%zu,\"wall_ms\":%lld,"
      "\"requests_per_s\":%.1f,\"proved\":%lld,\"resource_limited\":%lld,"
      "\"errors\":%lld,\"latency_us\":{\"p50\":%lld,\"p95\":%lld,"
      "\"p99\":%lld,\"max\":%lld}}",
      jobs, requests.size(), static_cast<long long>(wall_ms), throughput,
      static_cast<long long>(proved), static_cast<long long>(limited),
      static_cast<long long>(errors), static_cast<long long>(latency.p50_us),
      static_cast<long long>(latency.p95_us),
      static_cast<long long>(latency.p99_us),
      static_cast<long long>(latency.max_us));
  return buffer;
}

int RunThroughput() {
  std::vector<BatchRequest> corpus = CorpusRequests();

  std::string out = StrCat("{\"bench\":\"engine\",\"meta\":",
                           MetaJson(corpus.size()), ",\"runs\":[");
  bool first = true;
  for (int jobs : kJobsLevels) {
    if (!first) out += ',';
    first = false;
    out += ThroughputRow(jobs, corpus);
  }
  out += "],\"stress\":{\"spec\":\"";

  gen::GenParams params = StressParams();
  out += JsonEscape(gen::GenSpecToString(params));
  out += "\",\"rows\":[";
  gen::GeneratedWorkload workload = gen::Generate(params);
  std::vector<BatchRequest> requests =
      gen::WorkloadToBatchRequests(workload).value();
  first = true;
  for (int jobs : kJobsLevels) {
    if (!first) out += ',';
    first = false;
    out += StressRow(jobs, requests);
  }
  out += "]}}";
  std::printf("%s\n", out.c_str());
  return 0;
}

// The paper's four worked examples (Ex 3.1/4.1, Ex 5.1, Ex 6.1, A.1).
constexpr const char* kPhaseExamples[] = {"perm", "merge", "expr_parser",
                                          "example_a1"};

int RunPhases() {
  if (!obs::kCompiledIn) {
    std::fprintf(stderr,
                 "bench_engine: --phases needs a TERMILOG_OBS=ON build\n");
    return 1;
  }
  std::vector<BatchRequest> all = CorpusRequests();
  std::string out = StrCat("{\"bench\":\"engine_phases\",\"meta\":",
                           MetaJson(all.size()), ",\"examples\":[");
  bool first_example = true;
  for (const char* name : kPhaseExamples) {
    const BatchRequest* request = nullptr;
    for (const BatchRequest& candidate : all) {
      if (candidate.name == name) {
        request = &candidate;
        break;
      }
    }
    if (request == nullptr) {
      std::fprintf(stderr, "bench_engine: corpus entry %s not found\n", name);
      return 1;
    }
    // Fresh engine and fresh trace per example: no cache warm-up, no spans
    // bleeding across examples. jobs=1 keeps self-times additive.
    obs::Tracer::Global().Enable();
    {
      BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/false});
      std::vector<BatchRequest> one;
      one.push_back(*request);
      engine.Run(one);
    }
    obs::Tracer::Global().Disable();
    auto aggregate = obs::Tracer::Global().AggregateByName();
    auto request_it = aggregate.find("request");
    int64_t request_us =
        request_it == aggregate.end() ? 0 : request_it->second.total_us;

    if (!first_example) out += ',';
    first_example = false;
    out += StrCat("{\"name\":\"", JsonEscape(name),
                  "\",\"request_us\":", request_us, ",\"phases\":{");
    bool first_phase = true;
    for (const auto& [phase, agg] : aggregate) {
      double share =
          request_us > 0
              ? static_cast<double>(agg.self_us) /
                    static_cast<double>(request_us)
              : 0.0;
      char share_text[32];
      std::snprintf(share_text, sizeof(share_text), "%.4f", share);
      if (!first_phase) out += ',';
      first_phase = false;
      out += StrCat("\"", JsonEscape(phase), "\":{\"count\":", agg.count,
                    ",\"total_us\":", agg.total_us,
                    ",\"self_us\":", agg.self_us, ",\"share\":", share_text,
                    "}");
    }
    out += "}}";
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
  return 0;
}

// Every failpoint site in the library (grep TERMILOG_FAILPOINT under
// src/). A chaos round draws a subset of these.
constexpr const char* kChaosSites[] = {
    "analyzer.scc",   "dual.build",         "fm.eliminate",
    "inference.run",  "inference.sweep",    "interp.bottom_up",
    "lp.pivot",       "sld.step",           "transform.phase",
    "transform.pipeline", "transform.unfold"};
constexpr int kChaosSiteCount =
    static_cast<int>(sizeof(kChaosSites) / sizeof(kChaosSites[0]));

// Builds a seeded TERMILOG_FAILPOINTS spec ("a=3,b") for one round: one
// to three distinct sites, each failing either the first 1..64 hits or
// every hit.
std::string ChaosSpec(gen::Rng& rng) {
  int count = rng.NextInt(1, 3);
  std::vector<int> picked;
  while (static_cast<int>(picked.size()) < count) {
    int site = rng.NextInt(0, kChaosSiteCount - 1);
    bool seen = false;
    for (int p : picked) seen = seen || p == site;
    if (!seen) picked.push_back(site);
  }
  std::string spec;
  for (int site : picked) {
    if (!spec.empty()) spec += ',';
    spec += kChaosSites[site];
    if (rng.Chance(75)) {
      spec += '=';
      spec += std::to_string(rng.NextInt(1, 64));
    }
  }
  return spec;
}

int RunChaos(uint64_t seed) {
  constexpr int kRounds = 8;
  constexpr int kChaosJobs = 4;

  // All-provable workload with unlimited budgets: every RESOURCE_LIMIT or
  // NOT_PROVED outcome below is *caused by an injected fault*, and the
  // final clean round must prove everything or the engine retained
  // poisoned state.
  gen::GenParams params;
  params.seed = seed;
  params.count = 200;
  params.mix_proved = 100;
  params.mix_not_proved = 0;
  params.mix_resource_limit = 0;
  params.name_prefix = "chaos";
  gen::GeneratedWorkload workload = gen::Generate(params);
  std::vector<BatchRequest> requests =
      gen::WorkloadToBatchRequests(workload).value();

  BatchEngine engine(EngineOptions{kChaosJobs, /*use_cache=*/true});
  gen::Rng rng = gen::Rng::Stream(seed, /*stream=*/0xC4A05ULL);

  std::string out =
      StrCat("{\"bench\":\"engine_chaos\",\"meta\":", MetaJson(0),
             ",\"seed\":", seed, ",\"jobs\":", kChaosJobs,
             ",\"requests_per_round\":", requests.size(), ",\"rounds\":[");
  bool failed = false;
  for (int round = 0; round < kRounds; ++round) {
    std::string spec = ChaosSpec(rng);
    FailpointRegistry::Global().EnableFromSpec(spec);
    std::vector<BatchItemResult> results = engine.Run(requests);
    FailpointRegistry::Global().Clear();

    int64_t proved = 0, limited = 0, not_proved = 0, errors = 0;
    for (const BatchItemResult& item : results) {
      if (!item.status.ok()) {
        ++errors;
      } else if (item.report.resource_limited) {
        ++limited;
      } else if (item.report.proved) {
        ++proved;
      } else {
        ++not_proved;
      }
    }
    Status cache_check = engine.cache().SelfCheck();
    bool round_ok = errors == 0 && cache_check.ok();
    failed = failed || !round_ok;

    if (round > 0) out += ',';
    out += StrCat("{\"spec\":\"", JsonEscape(spec), "\",\"proved\":", proved,
                  ",\"resource_limited\":", limited,
                  ",\"not_proved\":", not_proved, ",\"errors\":", errors,
                  ",\"cache_self_check\":\"",
                  cache_check.ok() ? "ok" : JsonEscape(cache_check.ToString()),
                  "\",\"ok\":", round_ok ? "true" : "false", "}");
  }

  // Clean verification round: no failpoints. Every request must prove —
  // an injected RESOURCE_LIMIT verdict that leaked into the cache, or an
  // abandoned single-flight slot, would break this.
  std::vector<BatchItemResult> clean = engine.Run(requests);
  int64_t clean_proved = 0;
  for (const BatchItemResult& item : clean) {
    if (item.status.ok() && item.report.proved) ++clean_proved;
  }
  Status final_check = engine.cache().SelfCheck();
  bool clean_ok = clean_proved == static_cast<int64_t>(clean.size()) &&
                  final_check.ok();
  failed = failed || !clean_ok;

  out += StrCat("],\"clean_round\":{\"proved\":", clean_proved,
                ",\"requests\":", clean.size(), ",\"cache_self_check\":\"",
                final_check.ok() ? "ok" : JsonEscape(final_check.ToString()),
                "\",\"ok\":", clean_ok ? "true" : "false",
                "},\"ok\":", failed ? "false" : "true", "}");
  std::printf("%s\n", out.c_str());
  if (failed) {
    std::fprintf(stderr, "bench_engine: chaos run FAILED (see JSON)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool phases = false, chaos = false;
  uint64_t chaos_seed = 7;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--phases") {
      phases = true;
    } else if (arg == "--chaos") {
      chaos = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        chaos_seed = std::strtoull(argv[++i], nullptr, 10);
      }
    } else if (arg == "--repeats" && i + 1 < argc) {
      g_repeats = std::atoi(argv[++i]);
      if (g_repeats < 1) g_repeats = 1;
    } else if (arg == "--stress-requests" && i + 1 < argc) {
      g_stress_requests = std::atoi(argv[++i]);
      if (g_stress_requests < 1) g_stress_requests = 1;
    } else {
      std::fprintf(stderr,
                   "usage: bench_engine [--phases | --chaos [SEED]] "
                   "[--repeats N] [--stress-requests N]\n");
      return 1;
    }
  }
  if (phases) return RunPhases();
  if (chaos) return RunChaos(chaos_seed);
  return RunThroughput();
}
