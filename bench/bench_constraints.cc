// E7: cost and precision of the [VG90] inter-argument inference the paper
// imports. Prints the inferred constraint store for the key corpus
// programs with fixpoint statistics, ablates the widening delay, and times
// the fixpoint per program.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

void PrintInference(const char* name) {
  const CorpusEntry& entry = *FindCorpusEntry(name);
  Program program = ParseProgram(entry.source).value();
  ArgSizeDb db;
  std::map<PredId, InferenceStats> stats;
  Status status =
      ConstraintInference::Run(program, &db, InferenceOptions(), &stats);
  std::printf("---- %s ----\n", name);
  if (!status.ok()) {
    std::printf("  %s\n", status.ToString().c_str());
    return;
  }
  std::printf("%s", db.ToString(program).c_str());
  for (const auto& [pred, s] : stats) {
    std::printf("  SCC of %s: %d sweeps%s\n",
                program.PredName(pred).c_str(), s.sweeps,
                s.widened ? " (widened)" : "");
  }
  std::printf("\n");
}

void PrintWideningAblation() {
  std::printf("==== widening-delay ablation (split/3 of mergesort) ====\n");
  std::printf("%-12s %-8s %-40s\n", "widen_delay", "sweeps",
              "keeps a1 = a2 + a3?");
  const CorpusEntry& entry = *FindCorpusEntry("mergesort");
  for (int delay : {1, 2, 3, 5}) {
    Program program = ParseProgram(entry.source).value();
    ArgSizeDb db;
    InferenceOptions options;
    options.widen_delay = delay;
    std::map<PredId, InferenceStats> stats;
    Status status = ConstraintInference::Run(program, &db, options, &stats);
    if (!status.ok()) {
      std::printf("%-12d %-8s %s\n", delay, "-", status.ToString().c_str());
      continue;
    }
    PredId split{program.symbols().Lookup("split"), 3};
    Constraint key;
    key.coeffs = {Rational(1), Rational(-1), Rational(-1)};
    key.constant = Rational(0);
    key.rel = Relation::kEq;
    int sweeps = 0;
    for (const auto& [pred, s] : stats) {
      if (pred == split) sweeps = s.sweeps;
    }
    std::printf("%-12d %-8d %-40s\n", delay, sweeps,
                db.Get(split).Entails(key) ? "yes" : "NO (precision lost)");
  }
  std::printf("\n");
}

void BM_Inference(benchmark::State& state, const char* name) {
  const CorpusEntry& entry = *FindCorpusEntry(name);
  Program program = ParseProgram(entry.source).value();
  for (auto _ : state) {
    ArgSizeDb db;
    Status status = ConstraintInference::Run(program, &db);
    benchmark::DoNotOptimize(status.ok());
  }
}

void BM_ConvexHullJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Polyhedron a = Polyhedron::NonNegativeOrthant(n);
  Polyhedron b = Polyhedron::NonNegativeOrthant(n);
  {
    Constraint row;
    row.coeffs.assign(n, Rational(1));
    row.constant = Rational(0);
    row.rel = Relation::kEq;
    a.AddConstraint(row);
  }
  {
    Constraint row;
    row.coeffs.assign(n, Rational(1));
    row.coeffs[0] = Rational(2);
    row.constant = Rational(-4);
    row.rel = Relation::kEq;
    b.AddConstraint(row);
  }
  for (auto _ : state) {
    Result<Polyhedron> hull = Polyhedron::ConvexHull(a, b);
    benchmark::DoNotOptimize(hull.ok());
  }
  state.SetComplexityN(n);
}

BENCHMARK_CAPTURE(BM_Inference, append, "append");
BENCHMARK_CAPTURE(BM_Inference, quicksort, "quicksort");
BENCHMARK_CAPTURE(BM_Inference, mergesort, "mergesort");
BENCHMARK_CAPTURE(BM_Inference, expr_parser, "expr_parser");
BENCHMARK_CAPTURE(BM_Inference, gcd_subtract, "gcd_subtract");
BENCHMARK(BM_ConvexHullJoin)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E7: inferred inter-argument constraints ====\n\n");
  for (const char* name :
       {"append", "perm", "quicksort", "mergesort", "expr_parser",
        "gcd_subtract", "naive_reverse"}) {
    PrintInference(name);
  }
  PrintWideningAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
