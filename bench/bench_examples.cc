// E1-E3: regenerates the paper's worked examples (3.1/4.1, 5.1, 6.1) --
// the verdicts, certificates, forced deltas and reduced constraints the
// paper prints -- and times the end-to-end analysis of each.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

const CorpusEntry& Entry(const char* name) {
  const CorpusEntry* entry = FindCorpusEntry(name);
  if (entry == nullptr) {
    std::fprintf(stderr, "missing corpus entry %s\n", name);
    std::abort();
  }
  return *entry;
}

TerminationReport AnalyzeEntry(const CorpusEntry& entry) {
  Program program = ParseProgram(entry.source).value();
  AnalysisOptions options;
  options.apply_transformations = entry.needs_transformations;
  options.allow_negative_deltas = entry.needs_negative_deltas;
  options.supplied_constraints = entry.supplied_constraints;
  TerminationAnalyzer analyzer(options);
  return analyzer.Analyze(program, entry.query).value();
}

void PrintExperiment(const char* id, const char* name,
                     const char* paper_expectation) {
  const CorpusEntry& entry = Entry(name);
  TerminationReport report = AnalyzeEntry(entry);
  std::printf("---- %s: %s (%s) ----\n", id, name, entry.paper_ref.c_str());
  std::printf("paper: %s\n", paper_expectation);
  std::printf("measured:\n%s\n", report.ToString().c_str());
}

void BM_AnalyzeExample(benchmark::State& state, const char* name) {
  const CorpusEntry& entry = Entry(name);
  Program program = ParseProgram(entry.source).value();
  AnalysisOptions options;
  options.apply_transformations = entry.needs_transformations;
  options.allow_negative_deltas = entry.needs_negative_deltas;
  options.supplied_constraints = entry.supplied_constraints;
  TerminationAnalyzer analyzer(options);
  for (auto _ : state) {
    Result<TerminationReport> report = analyzer.Analyze(program, entry.query);
    benchmark::DoNotOptimize(report.ok());
  }
}

// Analysis WITHOUT the inference phase (constraints supplied), isolating
// the Section 4-6 pipeline cost.
void BM_AnalyzePermSuppliedConstraints(benchmark::State& state) {
  const CorpusEntry& entry = Entry("perm");
  Program program = ParseProgram(entry.source).value();
  AnalysisOptions options;
  options.run_inference = false;
  options.supplied_constraints = {{"append/3", "a1 + a2 = a3"},
                                  {"append__ffb/3", "a1 + a2 = a3"},
                                  {"append__bbf/3", "a1 + a2 = a3"}};
  TerminationAnalyzer analyzer(options);
  for (auto _ : state) {
    Result<TerminationReport> report = analyzer.Analyze(program, entry.query);
    benchmark::DoNotOptimize(report.ok());
  }
}

BENCHMARK_CAPTURE(BM_AnalyzeExample, e1_perm, "perm");
BENCHMARK_CAPTURE(BM_AnalyzeExample, e2_merge, "merge");
BENCHMARK_CAPTURE(BM_AnalyzeExample, e3_expr_parser, "expr_parser");
BENCHMARK(BM_AnalyzePermSuppliedConstraints);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== E1-E3: the paper's worked examples ====\n\n");
  PrintExperiment(
      "E1", "perm",
      "PROVED; imported append1+append2=append3; reduced constraint "
      "2*theta >= 1; certificate theta = 1/2 (Examples 3.1/4.1)");
  PrintExperiment(
      "E2", "merge",
      "PROVED; theta1 = theta2 >= 1/2: the SUM of the two bound arguments "
      "decreases on every recursive call (Example 5.1)");
  PrintExperiment(
      "E3", "expr_parser",
      "PROVED; imported t1 >= 2+t2; delta_et = delta_tn = 0 forced, "
      "delta_ne = 1; alpha = beta = gamma = 1/2 (Example 6.1)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
