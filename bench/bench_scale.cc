// E6 (third part): end-to-end analysis scaling with program size. The
// paper claims a (theoretical) polynomial bound for the whole method;
// these sweeps measure the practical growth on three program families:
//   - a chain of K independent list-consuming SCCs (breadth),
//   - one SCC with K mutually recursive predicates (SCC width),
//   - one predicate with K rules (rule count).

#include <benchmark/benchmark.h>

#include <string>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

// p0 calls p1 calls ... calls p{K-1}; each walks its own list.
std::string ChainProgram(int k) {
  std::string source;
  for (int i = 0; i < k; ++i) {
    std::string p = "p" + std::to_string(i);
    source += p + "([], []).\n";
    source += p + "([X|Xs], [X|Ys]) :- " +
              (i + 1 < k ? "p" + std::to_string(i + 1) + "(Xs, Zs), " : "") +
              p + "(Xs, Ys).\n";
  }
  return source;
}

// q0 -> q1 -> ... -> q{K-1} -> q0, all walking the same list.
std::string MutualProgram(int k) {
  std::string source;
  for (int i = 0; i < k; ++i) {
    std::string self = "q" + std::to_string(i);
    std::string next = "q" + std::to_string((i + 1) % k);
    source += self + "([], done).\n";
    source += self + "([X|Xs], R) :- " + next + "(Xs, R).\n";
  }
  return source;
}

// One predicate with K recursive rules, each consuming a different prefix.
std::string WideProgram(int k) {
  std::string source = "w([], []).\n";
  for (int i = 1; i <= k; ++i) {
    std::string prefix = "[X1";
    for (int j = 2; j <= i; ++j) prefix += ",X" + std::to_string(j);
    prefix += "|Xs]";
    source += "w(" + prefix + ", [X1|Ys]) :- w(Xs, Ys).\n";
  }
  return source;
}

void RunAnalysis(benchmark::State& state, const std::string& source,
                 const std::string& query) {
  Program program = ParseProgram(source).value();
  TerminationAnalyzer analyzer;
  for (auto _ : state) {
    Result<TerminationReport> report = analyzer.Analyze(program, query);
    bool proved = report.ok() && report->proved;
    if (!proved) state.SkipWithError("expected PROVED");
    benchmark::DoNotOptimize(proved);
  }
}

void BM_ScaleSccChain(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  RunAnalysis(state, ChainProgram(k), "p0(b,f)");
  state.SetComplexityN(k);
}

void BM_ScaleMutualScc(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  RunAnalysis(state, MutualProgram(k), "q0(b,f)");
  state.SetComplexityN(k);
}

void BM_ScaleRuleCount(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  RunAnalysis(state, WideProgram(k), "w(b,f)");
  state.SetComplexityN(k);
}

BENCHMARK(BM_ScaleSccChain)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleMutualScc)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleRuleCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
