// E15: socket-transport throughput and behavior under load
// (docs/serve.md). Spins up the real NetServer (src/net/) on a Unix
// socket inside this process, replays a generated workload through the
// built-in load client at 1/2/4/8 concurrent connections, and emits one
// machine-readable JSON object on stdout — the repo's BENCH_serve.json
// trajectory point.
//
// Three sections, each asserting the transport's contract while it
// measures:
//   rows     — per client level: saturation requests/s and p50/p95/p99/
//              max send-to-response latency, plus "batch_match": the
//              response lines, as a multiset, must be byte-identical to
//              what ProcessServeChunk (the --batch path) produces for the
//              same manifest on a fresh engine. The transport may
//              interleave clients but must never change a byte.
//   overload — queue_limit=2 with the processor held until every line is
//              in: the shed/accept split becomes a pure function of the
//              limit (exactly queue_limit served, the rest answered with
//              the deterministic overload shape), and every request still
//              gets a response — bounded latency, not an unbounded queue.
//   drain    — SIGTERM raised mid-load against a server with an attached
//              persistent store: Run() must return OK, the store must
//              flush, and a reopen must recover every record with zero
//              quarantined — the kill -9 drill's graceful sibling.
//
// Latency here is send-to-response per request measured by the client
// under pipelining, so it includes server queue time — the service
// latency a real peer sees, unlike bench_engine's in-process latency_us.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "termilog/termilog.h"

#ifndef TERMILOG_BUILD_TYPE
#define TERMILOG_BUILD_TYPE "unspecified"
#endif

using namespace termilog;

namespace {

constexpr int kSchemaVersion = 1;
constexpr int kClientLevels[] = {1, 2, 4, 8};
constexpr int kServerJobs = 4;

int g_requests = 400;
int g_window = 8;

std::string SocketPath(const char* row) {
  return (std::filesystem::temp_directory_path() /
          (std::string("termilog_bench_serve_") + row + ".sock"))
      .string();
}

// The generated workload: unique mixed-verdict programs (dup=0), so the
// cache cannot shortcut the work and rows measure distinct-request
// throughput — the same shape as bench_engine's stress section.
gen::GenParams WorkloadParams() {
  gen::GenParams params;
  params.seed = 2026;
  params.count = g_requests;
  params.min_sccs = 1;
  params.max_sccs = 3;
  params.min_scc_size = 1;
  params.max_scc_size = 3;
  params.mix_proved = 70;
  params.mix_not_proved = 25;
  params.mix_resource_limit = 5;
  params.name_prefix = "serve";
  return params;
}

std::vector<std::string> ManifestLines(const gen::GeneratedWorkload& workload) {
  std::vector<std::string> lines;
  for (const gen::GeneratedRequest& request : workload.requests) {
    lines.push_back(gen::RequestToManifestLine(request));
  }
  return lines;
}

// What --batch would answer: the same manifest through ProcessServeChunk
// on a fresh engine, sorted (the transport only promises per-connection
// order, so identity is a multiset claim).
std::vector<std::string> SortedReference(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) text += line + "\n";
  std::vector<gen::ManifestEntry> entries =
      gen::ParseManifestJsonl(text).value();
  std::vector<ServeItem> items;
  for (size_t i = 0; i < entries.size(); ++i) {
    items.push_back(ServeItem{static_cast<int64_t>(i), entries[i]});
  }
  BatchEngine engine(EngineOptions{kServerJobs, /*use_cache=*/true});
  std::vector<std::string> reference;
  ProcessServeChunk(engine, std::move(items), AnalysisOptions(),
                    [&](int64_t, std::string line) {
                      reference.push_back(std::move(line));
                    });
  std::sort(reference.begin(), reference.end());
  return reference;
}

std::string MetaJson() {
  std::string levels;
  for (int c : kClientLevels) {
    if (!levels.empty()) levels += ',';
    levels += std::to_string(c);
  }
  return StrCat("{\"schema_version\":", kSchemaVersion,
                ",\"build_type\":\"", JsonEscape(TERMILOG_BUILD_TYPE),
                "\",\"clients\":[", levels, "],\"requests\":", g_requests,
                ",\"window\":", g_window, ",\"server_jobs\":", kServerJobs,
                ",\"spec\":\"", JsonEscape(gen::GenSpecToString(WorkloadParams())),
                "\"}");
}

std::string LatencyJson(const gen::LatencySummary& latency) {
  return StrCat("{\"p50\":", latency.p50_us, ",\"p95\":", latency.p95_us,
                ",\"p99\":", latency.p99_us, ",\"max\":", latency.max_us, "}");
}

// One client level: fresh engine + server (cold cache every row, so the
// levels are comparable), full replay, byte-identity check.
std::string ThroughputRow(int clients, const std::vector<std::string>& lines,
                          const std::vector<std::string>& reference,
                          bool* failed) {
  const std::string path = SocketPath("row");
  std::error_code ec;
  std::filesystem::remove(path, ec);

  BatchEngine engine(EngineOptions{kServerJobs, /*use_cache=*/true});
  net::NetServerOptions options;
  net::NetServer server(engine, options);
  Status listening =
      server.Listen(net::ParseNetAddress("unix:" + path).value());
  if (!listening.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n", listening.ToString().c_str());
    *failed = true;
    return "{\"ok\":false}";
  }
  Status run_status;
  std::thread server_thread([&] { run_status = server.Run(); });

  net::LoadClientOptions client_options;
  client_options.clients = clients;
  client_options.window = g_window;
  std::vector<std::string> responses;
  client_options.responses = &responses;
  Result<net::LoadClientStats> stats = net::RunLoadClient(
      net::ParseNetAddress("unix:" + path).value(), lines, client_options);

  server.BeginDrain();
  server_thread.join();
  std::filesystem::remove(path, ec);

  if (!stats.ok()) {
    std::fprintf(stderr, "bench_serve: %s\n",
                 stats.status().ToString().c_str());
    *failed = true;
    return "{\"ok\":false}";
  }
  std::sort(responses.begin(), responses.end());
  bool batch_match = responses == reference;
  bool ok = run_status.ok() && batch_match &&
            stats->received == static_cast<int64_t>(lines.size()) &&
            stats->errors == 0 && stats->shed == 0;
  *failed = *failed || !ok;

  double seconds = stats->elapsed_ms / 1000.0;
  double throughput =
      seconds > 0 ? static_cast<double>(stats->received) / seconds : 0.0;
  gen::LatencySummary latency = gen::SummarizeLatencies(stats->latencies_us);
  char throughput_text[64];
  std::snprintf(throughput_text, sizeof(throughput_text), "%.1f", throughput);
  char elapsed_text[64];
  std::snprintf(elapsed_text, sizeof(elapsed_text), "%.1f",
                stats->elapsed_ms);
  return StrCat("{\"clients\":", clients, ",\"sent\":", stats->sent,
                ",\"received\":", stats->received,
                ",\"elapsed_ms\":", elapsed_text,
                ",\"requests_per_s\":", throughput_text,
                ",\"latency_us\":", LatencyJson(latency),
                ",\"batch_match\":", batch_match ? "true" : "false",
                ",\"ok\":", ok ? "true" : "false", "}");
}

// Overload: freeze the processor until every line has been admitted or
// shed, so the split is deterministic — exactly queue_limit requests
// served, the rest answered immediately with the overload shape. The
// load client still gets a response for every request it sent.
std::string OverloadRow(const std::vector<std::string>& lines, bool* failed) {
  constexpr int kQueueLimit = 2, kOverloadClients = 4;
  const std::string path = SocketPath("overload");
  std::error_code ec;
  std::filesystem::remove(path, ec);

  BatchEngine engine(EngineOptions{kServerJobs, /*use_cache=*/true});
  net::NetServerOptions options;
  options.serve.queue_limit = kQueueLimit;
  options.hold_processing = true;
  net::NetServer server(engine, options);
  Status listening =
      server.Listen(net::ParseNetAddress("unix:" + path).value());
  if (!listening.ok()) {
    *failed = true;
    return "{\"ok\":false}";
  }
  Status run_status;
  std::thread server_thread([&] { run_status = server.Run(); });

  net::LoadClientOptions client_options;
  client_options.clients = kOverloadClients;
  // A window wider than each client's slice: every line is on the wire
  // before any response is needed, so the hold cannot deadlock the send.
  client_options.window =
      static_cast<int>(lines.size() / kOverloadClients) + 1;
  Result<net::LoadClientStats> stats =
      Status::Internal("load client did not run");
  std::thread client_thread([&] {
    stats = net::RunLoadClient(net::ParseNetAddress("unix:" + path).value(),
                               lines, client_options);
  });
  // Release only after the server has seen every line; until then the
  // waiting room holds kQueueLimit and everything else sheds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server.stats().lines < static_cast<int64_t>(lines.size()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.ReleaseProcessing();
  client_thread.join();
  server.BeginDrain();
  server_thread.join();
  std::filesystem::remove(path, ec);

  net::NetStats net_stats = server.stats();
  const int64_t expected_shed =
      static_cast<int64_t>(lines.size()) - kQueueLimit;
  bool ok = stats.ok() && run_status.ok() &&
            stats->received == static_cast<int64_t>(lines.size()) &&
            net_stats.served == kQueueLimit &&
            net_stats.shed == expected_shed && stats->shed == expected_shed;
  *failed = *failed || !ok;
  if (!stats.ok()) return "{\"ok\":false}";
  return StrCat("{\"queue_limit\":", kQueueLimit,
                ",\"clients\":", kOverloadClients,
                ",\"sent\":", stats->sent, ",\"received\":", stats->received,
                ",\"served\":", net_stats.served,
                ",\"shed\":", net_stats.shed,
                ",\"all_answered\":",
                stats->received == stats->sent ? "true" : "false",
                ",\"ok\":", ok ? "true" : "false", "}");
}

// Drain: SIGTERM lands mid-load on a server with an attached store —
// the real shutdown path, handler and all. The client may see fewer
// responses than it sent (the listener closes); what matters is that
// Run() returns OK, the flush completes, and the reopened store recovers
// everything with zero quarantined records.
std::string DrainRow(const std::vector<std::string>& lines, bool* failed) {
  const std::string path = SocketPath("drain");
  const std::string store_path =
      (std::filesystem::temp_directory_path() / "termilog_bench_serve.store")
          .string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(store_path, ec);
  std::filesystem::remove(store_path + ".quarantined", ec);
  std::filesystem::remove(store_path + ".tmp", ec);

  Status run_status, flushed;
  int64_t flushed_entries = 0, served = 0;
  Result<net::LoadClientStats> stats =
      Status::Internal("load client did not run");
  {
    // Engine and server scoped so the store's write handle closes before
    // the verification reopen below.
    BatchEngine engine(EngineOptions{kServerJobs, /*use_cache=*/true});
    Result<std::unique_ptr<persist::PersistentStore>> store =
        persist::PersistentStore::Open(store_path);
    if (!store.ok() || !engine.AttachStore(std::move(*store)).ok()) {
      *failed = true;
      return "{\"ok\":false}";
    }
    net::NetServerOptions options;
    net::NetServer server(engine, options);
    Status listening =
        server.Listen(net::ParseNetAddress("unix:" + path).value());
    Status installed = server.InstallSignalHandlers();
    if (!listening.ok() || !installed.ok()) {
      *failed = true;
      return "{\"ok\":false}";
    }
    std::thread server_thread([&] { run_status = server.Run(); });

    net::LoadClientOptions client_options;
    client_options.clients = 4;
    client_options.window = g_window;
    std::thread client_thread([&] {
      stats = net::RunLoadClient(net::ParseNetAddress("unix:" + path).value(),
                                 lines, client_options);
    });
    // Let real work land, then deliver the signal the deployment would.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.stats().served < 20 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::raise(SIGTERM);
    server_thread.join();
    client_thread.join();
    std::filesystem::remove(path, ec);

    flushed = engine.FlushStore();
    flushed_entries = engine.store()->size();
    served = server.stats().served;
  }

  Result<std::unique_ptr<persist::PersistentStore>> reopened =
      persist::PersistentStore::Open(store_path);
  bool store_clean = reopened.ok() &&
                     (*reopened)->stats().records_quarantined == 0 &&
                     (*reopened)->stats().tail_bytes_truncated == 0 &&
                     (*reopened)->size() == flushed_entries &&
                     flushed_entries > 0;
  bool ok = stats.ok() && run_status.ok() && flushed.ok() && store_clean &&
            stats->received <= stats->sent && served >= 20;
  *failed = *failed || !ok;
  if (!stats.ok()) {
    std::filesystem::remove(store_path, ec);
    return "{\"ok\":false}";
  }
  std::string row =
      StrCat("{\"sent\":", stats->sent, ",\"received\":", stats->received,
             ",\"served\":", served,
             ",\"run_ok\":", run_status.ok() ? "true" : "false",
             ",\"store_entries\":", flushed_entries,
             ",\"records_quarantined\":",
             reopened.ok() ? (*reopened)->stats().records_quarantined : -1,
             ",\"store_clean\":", store_clean ? "true" : "false",
             ",\"ok\":", ok ? "true" : "false", "}");
  std::filesystem::remove(store_path, ec);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) {
      g_requests = std::atoi(argv[++i]);
      if (g_requests < 8) g_requests = 8;
    } else if (arg == "--window" && i + 1 < argc) {
      g_window = std::atoi(argv[++i]);
      if (g_window < 1) g_window = 1;
    } else {
      std::fprintf(stderr, "usage: bench_serve [--requests N] [--window N]\n");
      return 1;
    }
  }

  gen::GeneratedWorkload workload = gen::Generate(WorkloadParams());
  std::vector<std::string> lines = ManifestLines(workload);
  std::vector<std::string> reference = SortedReference(lines);

  bool failed = false;
  std::string out =
      StrCat("{\"bench\":\"serve\",\"meta\":", MetaJson(), ",\"rows\":[");
  bool first = true;
  for (int clients : kClientLevels) {
    if (!first) out += ',';
    first = false;
    out += ThroughputRow(clients, lines, reference, &failed);
  }
  out += "],\"overload\":";
  out += OverloadRow(lines, &failed);
  out += ",\"drain\":";
  out += DrainRow(lines, &failed);
  out += StrCat(",\"ok\":", failed ? "false" : "true", "}");
  std::printf("%s\n", out.c_str());
  if (failed) {
    std::fprintf(stderr, "bench_serve: run FAILED (see JSON)\n");
    return 1;
  }
  return 0;
}
