// E6 (second half): exact-rational simplex cost on random LPs of growing
// size and on the analyzer's final feasibility systems. The paper reduces
// the termination condition to "a feasibility problem in linear
// programming"; this is what that costs with exact arithmetic.

#include <benchmark/benchmark.h>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }

 private:
  uint64_t state_;
};

// Random feasible LP: constraints a.x <= b with b >= 0 keep x = 0 feasible.
ConstraintSystem RandomFeasible(Rng* rng, int num_vars, int num_rows) {
  ConstraintSystem sys(num_vars);
  for (int r = 0; r < num_rows; ++r) {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.resize(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      row.coeffs[v] = Rational(-rng->Range(0, 4));
    }
    row.constant = Rational(rng->Range(1, 20));
    sys.Add(std::move(row));
  }
  return sys;
}

void BM_SimplexMaximize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ConstraintSystem sys = RandomFeasible(&rng, n, 2 * n);
  std::vector<Rational> objective(n, Rational(1));
  for (auto _ : state) {
    LpResult r = SimplexSolver::Maximize(sys, objective);
    benchmark::DoNotOptimize(r.status);
  }
  state.SetComplexityN(n);
}

void BM_SimplexFeasibility(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 99);
  ConstraintSystem sys = RandomFeasible(&rng, n, 2 * n);
  for (auto _ : state) {
    LpResult r = SimplexSolver::FindFeasible(sys);
    benchmark::DoNotOptimize(r.status);
  }
  state.SetComplexityN(n);
}

void BM_SimplexWithEqualities(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 7);
  ConstraintSystem sys = RandomFeasible(&rng, n, n);
  // Chain equalities x0 = x1 + 1, x1 = x2 + 1, ...
  for (int i = 0; i + 1 < n; ++i) {
    Constraint row;
    row.rel = Relation::kEq;
    row.coeffs.resize(n);
    row.coeffs[i] = Rational(1);
    row.coeffs[i + 1] = Rational(-1);
    row.constant = Rational(-1);
    sys.Add(std::move(row));
  }
  std::vector<Rational> objective(n);
  objective[0] = Rational(1);
  for (auto _ : state) {
    LpResult r = SimplexSolver::Minimize(sys, objective);
    benchmark::DoNotOptimize(r.status);
  }
  state.SetComplexityN(n);
}

// The analyzer's actual final system for merge (Example 5.1) solved in a
// loop: global theta feasibility.
void BM_MergeFinalFeasibility(benchmark::State& state) {
  ConstraintSystem sys(2);
  auto ge = [&sys](std::vector<int64_t> c, int64_t k) {
    Constraint row;
    for (int64_t v : c) row.coeffs.emplace_back(v);
    row.constant = Rational(k);
    row.rel = Relation::kGe;
    sys.Add(std::move(row));
  };
  ge({1, 0}, 0);
  ge({1, -1}, 0);
  ge({-1, 1}, 0);
  ge({0, 2}, -1);
  ge({0, 1}, 0);
  ge({2, 0}, -1);
  for (auto _ : state) {
    LpResult r = SimplexSolver::FindFeasible(sys);
    benchmark::DoNotOptimize(r.status);
  }
}

BENCHMARK(BM_SimplexMaximize)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Complexity();
BENCHMARK(BM_SimplexFeasibility)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Complexity();
BENCHMARK(BM_SimplexWithEqualities)->Arg(4)->Arg(8)->Arg(12)->Complexity();
BENCHMARK(BM_MergeFinalFeasibility);

}  // namespace

BENCHMARK_MAIN();
