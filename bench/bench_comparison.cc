// E5: the method x corpus comparison matrix behind the paper's headline
// claim ("Several programs that could not be shown to terminate by earlier
// published methods are handled successfully"), plus per-method total
// analysis-time benchmarks over the corpus.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

struct LoadedEntry {
  const CorpusEntry* entry;
  Program program;
  PredId query;
  Adornment adornment;
  ArgSizeDb db;
};

std::vector<LoadedEntry>& AllLoaded() {
  static std::vector<LoadedEntry>& loaded =
      *new std::vector<LoadedEntry>([] {
        std::vector<LoadedEntry> out;
        for (const CorpusEntry& entry : Corpus()) {
          LoadedEntry l{&entry, ParseProgram(entry.source).value(), {}, {},
                        {}};
          size_t open = entry.query.find('(');
          std::string name = entry.query.substr(0, open);
          for (char c : entry.query.substr(open)) {
            if (c == 'b') l.adornment.push_back(Mode::kBound);
            if (c == 'f') l.adornment.push_back(Mode::kFree);
          }
          l.query = PredId{l.program.symbols().Intern(name),
                           static_cast<int>(l.adornment.size())};
          for (const auto& [spec, text] : entry.supplied_constraints) {
            size_t slash = spec.find('/');
            PredId pred{l.program.symbols().Intern(spec.substr(0, slash)),
                        std::atoi(spec.c_str() + slash + 1)};
            l.db.Set(pred, ArgSizeDb::ParseSpec(pred.arity, text).value());
          }
          (void)ConstraintInference::Run(l.program, &l.db);
          out.push_back(std::move(l));
        }
        return out;
      }());
  return loaded;
}

void PrintMatrix() {
  std::printf("==== E5: method x corpus matrix ====\n\n");
  std::printf("%-22s %-6s %-11s %-7s %-7s %-7s\n", "program", "truth",
              "this-paper", "naish", "uvg", "argmap");
  int counts[4] = {0, 0, 0, 0};
  int terminating = 0;
  for (LoadedEntry& l : AllLoaded()) {
    AnalysisOptions options;
    options.apply_transformations = l.entry->needs_transformations;
    options.allow_negative_deltas = l.entry->needs_negative_deltas;
    options.supplied_constraints = l.entry->supplied_constraints;
    TerminationAnalyzer analyzer(options);
    bool ours = analyzer.Analyze(l.program, l.query, l.adornment)
                    .value()
                    .proved;
    BaselineVerdict naish =
        NaishAnalyzer::Analyze(l.program, l.query, l.adornment).verdict;
    BaselineVerdict uvg =
        UvgAnalyzer::Analyze(l.program, l.query, l.adornment).verdict;
    BaselineVerdict argmap =
        ArgMapAnalyzer::Analyze(l.program, l.query, l.adornment, l.db)
            .verdict;
    if (l.entry->terminating) ++terminating;
    counts[0] += ours;
    counts[1] += naish == BaselineVerdict::kProved;
    counts[2] += uvg == BaselineVerdict::kProved;
    counts[3] += argmap == BaselineVerdict::kProved;
    auto cell = [](BaselineVerdict v) {
      return v == BaselineVerdict::kProved
                 ? "proved"
                 : v == BaselineVerdict::kUnsupported ? "n/a" : "-";
    };
    std::printf("%-22s %-6s %-11s %-7s %-7s %-7s\n", l.entry->name.c_str(),
                l.entry->terminating ? "term" : "loops",
                ours ? "proved" : "-", cell(naish), cell(uvg), cell(argmap));
  }
  std::printf("\nproved counts over %d terminating programs: this-paper=%d "
              "naish=%d uvg=%d argmap=%d\n",
              terminating, counts[0], counts[1], counts[2], counts[3]);
  std::printf("paper's claim preserved iff this-paper strictly dominates "
              "every baseline and proves perm/merge/expr_parser: %s\n\n",
              (counts[0] > counts[1] && counts[0] > counts[2] &&
               counts[0] > counts[3])
                  ? "YES"
                  : "NO");
}

void BM_CorpusThisPaper(benchmark::State& state) {
  for (auto _ : state) {
    int proved = 0;
    for (LoadedEntry& l : AllLoaded()) {
      AnalysisOptions options;
      options.apply_transformations = l.entry->needs_transformations;
      options.allow_negative_deltas = l.entry->needs_negative_deltas;
      options.supplied_constraints = l.entry->supplied_constraints;
      TerminationAnalyzer analyzer(options);
      proved += analyzer.Analyze(l.program, l.query, l.adornment)
                    .value()
                    .proved;
    }
    benchmark::DoNotOptimize(proved);
  }
}

void BM_CorpusNaish(benchmark::State& state) {
  for (auto _ : state) {
    int proved = 0;
    for (LoadedEntry& l : AllLoaded()) {
      proved += NaishAnalyzer::Analyze(l.program, l.query, l.adornment)
                    .verdict == BaselineVerdict::kProved;
    }
    benchmark::DoNotOptimize(proved);
  }
}

void BM_CorpusUvg(benchmark::State& state) {
  for (auto _ : state) {
    int proved = 0;
    for (LoadedEntry& l : AllLoaded()) {
      proved += UvgAnalyzer::Analyze(l.program, l.query, l.adornment)
                    .verdict == BaselineVerdict::kProved;
    }
    benchmark::DoNotOptimize(proved);
  }
}

void BM_CorpusArgMap(benchmark::State& state) {
  for (auto _ : state) {
    int proved = 0;
    for (LoadedEntry& l : AllLoaded()) {
      proved += ArgMapAnalyzer::Analyze(l.program, l.query, l.adornment,
                                        l.db)
                    .verdict == BaselineVerdict::kProved;
    }
    benchmark::DoNotOptimize(proved);
  }
}

BENCHMARK(BM_CorpusThisPaper)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CorpusNaish)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CorpusUvg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CorpusArgMap)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
