// E4: the Appendix A transformation pipeline on Example A.1. The paper's
// storyline: the raw rules defeat the method; one safe-unfolding phase, a
// predicate split and another unfolding phase expose that p is not
// genuinely recursive, after which termination is easily detected.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

const char* kSource = R"(
  p(g(X)) :- e(X).
  p(g(X)) :- q(f(X)).
  q(Y) :- p(Y).
  q(f(Z)) :- p(Z), q(Z).
)";

void PrintReport() {
  std::printf("==== E4: Example A.1 and the Appendix A pipeline ====\n\n");
  Program raw = ParseProgram(kSource).value();
  std::printf("---- raw program (%zu rules) ----\n%s\n", raw.rules().size(),
              raw.ToString().c_str());

  TerminationAnalyzer plain;
  TerminationReport raw_report = plain.Analyze(raw, "p(b)").value();
  std::printf("paper: raw form NOT detected terminating\nmeasured: %s\n\n",
              raw_report.proved ? "PROVED (MISMATCH)" : "not proved (match)");

  PredId p_pred{raw.symbols().Lookup("p"), 1};
  std::vector<std::string> log;
  Program transformed =
      RunTransformPipeline(raw, {p_pred}, TransformOptions(), &log).value();
  std::printf("---- pipeline log ----\n");
  for (const std::string& line : log) std::printf("  %s\n", line.c_str());
  std::printf("---- transformed program (%zu rules) ----\n%s\n",
              transformed.rules().size(), transformed.ToString().c_str());

  AnalysisOptions options;
  options.apply_transformations = true;
  TerminationAnalyzer analyzer(options);
  TerminationReport report = analyzer.Analyze(raw, "p(b)").value();
  std::printf(
      "paper: after the transformations, 'the fact that p is not genuinely "
      "recursive has been exposed' and termination is detected\n"
      "measured:\n%s\n",
      report.ToString().c_str());
}

void BM_PipelineOnly(benchmark::State& state) {
  Program raw = ParseProgram(kSource).value();
  PredId p_pred{raw.symbols().Lookup("p"), 1};
  for (auto _ : state) {
    Result<Program> out =
        RunTransformPipeline(raw, {p_pred}, TransformOptions());
    benchmark::DoNotOptimize(out.ok());
  }
}

void BM_TransformAndAnalyze(benchmark::State& state) {
  Program raw = ParseProgram(kSource).value();
  AnalysisOptions options;
  options.apply_transformations = true;
  TerminationAnalyzer analyzer(options);
  for (auto _ : state) {
    Result<TerminationReport> report = analyzer.Analyze(raw, "p(b)");
    benchmark::DoNotOptimize(report.ok());
  }
}

// Scaling: chains of k split/unfold-requiring predicates.
void BM_PipelineChain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::string source;
  for (int i = 0; i < k; ++i) {
    // pi(a). pi(X) :- q_i(X, Y), pi(Y). ri(Z) :- pi(f(Z)).
    std::string p = "p" + std::to_string(i);
    source += p + "(a). " + p + "(X) :- edge" + std::to_string(i) +
              "(X, Y), " + p + "(Y). r" + std::to_string(i) + "(Z) :- " + p +
              "(f(Z)).\n";
  }
  Program program = ParseProgram(source).value();
  for (auto _ : state) {
    Result<Program> out = RunTransformPipeline(program, {},
                                               TransformOptions());
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetComplexityN(k);
}

// Capture-rule reordering (paper introduction / [Ull85]): un-scramble a
// quicksort whose partition follows the recursive calls.
void BM_ReorderScrambledQuicksort(benchmark::State& state) {
  Program scrambled = ParseProgram(R"(
    qs([], []).
    qs([X|Xs], S) :- qs(L, SL), qs(G, SG), part(X, Xs, L, G),
                     append(SL, [X|SG], S).
    part(P, [], [], []).
    part(P, [X|Xs], [X|L], G) :- X =< P, part(P, Xs, L, G).
    part(P, [X|Xs], L, [X|G]) :- P < X, part(P, Xs, L, G).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )").value();
  for (auto _ : state) {
    ReorderOptions options;
    options.max_attempts = 128;
    Result<ReorderResult> r =
        FindTerminatingOrder(scrambled, "qs(b,f)", options);
    benchmark::DoNotOptimize(r.ok() && r->proved);
  }
}

BENCHMARK(BM_PipelineOnly);
BENCHMARK(BM_ReorderScrambledQuicksort)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransformAndAnalyze);
BENCHMARK(BM_PipelineChain)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
