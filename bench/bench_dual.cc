// E9 (ablation): the paper's key derivation shortcut. Because a, A, b, B
// are nonnegative, the dual variables u and v can be eliminated by direct
// substitution (u := theta, v := -eta), going straight to Eq. 9. The
// alternative keeps u and v as explicit columns in Eq. 8 and runs general
// Fourier-Motzkin on them. This benchmark implements the general path,
// verifies both produce semantically identical constraint sets, and
// measures the saved eliminations.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

// The general Eq. 8 route: columns [u (nx) | v (ny) | w (M) | theta | delta],
// rows:
//   theta - u >= 0                  (paper row 1: -I u + I theta >= 0)
//   -v - eta >= 0                   (paper row 2)
//   A^T u + B^T v + C^T w >= 0      (per phi column)
//   a^T u + b^T v + c^T w - delta >= 0
// then FM-eliminate u, v, w.
Result<ConstraintSystem> GeneralEq8(const RuleSubgoalSystem& sys,
                                    const ThetaSpace& space,
                                    const FmOptions& options = FmOptions()) {
  const int nx = sys.nx(), ny = sys.ny(), M = sys.num_imported();
  const int T = space.total();
  const int u0 = 0, v0 = nx, w0 = nx + ny, t0 = nx + ny + M;
  const int delta_col = t0 + T;
  const int width = delta_col + 1;
  ConstraintSystem system(width);
  auto add = [&system](Constraint row) { system.Add(std::move(row)); };
  for (int i = 0; i < nx; ++i) {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.assign(width, Rational());
    row.coeffs[u0 + i] = Rational(-1);
    row.coeffs[t0 + space.Column(sys.head_pred, i)] += Rational(1);
    add(std::move(row));
  }
  for (int j = 0; j < ny; ++j) {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.assign(width, Rational());
    row.coeffs[v0 + j] = Rational(-1);
    row.coeffs[t0 + space.Column(sys.subgoal_pred, j)] -= Rational(1);
    add(std::move(row));
  }
  for (int k = 0; k < sys.num_phi(); ++k) {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.assign(width, Rational());
    for (int i = 0; i < nx; ++i) row.coeffs[u0 + i] = sys.A.At(i, k);
    for (int j = 0; j < ny; ++j) row.coeffs[v0 + j] = sys.B.At(j, k);
    for (int m = 0; m < M; ++m) row.coeffs[w0 + m] = sys.C.At(m, k);
    add(std::move(row));
  }
  {
    Constraint row;
    row.rel = Relation::kGe;
    row.coeffs.assign(width, Rational());
    for (int i = 0; i < nx; ++i) row.coeffs[u0 + i] = sys.a[i];
    for (int j = 0; j < ny; ++j) row.coeffs[v0 + j] = sys.b[j];
    for (int m = 0; m < M; ++m) row.coeffs[w0 + m] = sys.c[m];
    row.coeffs[delta_col] = Rational(-1);
    add(std::move(row));
  }
  std::vector<int> keep;
  for (int t = 0; t <= T; ++t) keep.push_back(t0 + t);
  return FourierMotzkin::Project(system, keep, options);
}

struct Prepared {
  RuleSubgoalSystem sys;
  ThetaSpace space;
};

Prepared PreparePerm() {
  const CorpusEntry& entry = *FindCorpusEntry("perm");
  Program program = ParseProgram(entry.source).value();
  ArgSizeDb db;
  PredId append{program.symbols().Lookup("append"), 3};
  db.Set(append, ArgSizeDb::ParseSpec(3, "a1 + a2 = a3").value());
  std::map<PredId, Adornment> modes;
  PredId perm{program.symbols().Lookup("perm"), 2};
  modes[perm] = {Mode::kBound, Mode::kFree};
  modes[append] = {Mode::kFree, Mode::kFree, Mode::kBound};
  RuleSystemBuilder builder(program, modes, db);
  std::map<PredId, int> counts{{perm, 1}};
  return {builder.BuildOne(1, 2).value(), ThetaSpace(counts)};
}

Prepared PrepareMerge() {
  const CorpusEntry& entry = *FindCorpusEntry("merge");
  Program program = ParseProgram(entry.source).value();
  ArgSizeDb db;
  std::map<PredId, Adornment> modes;
  PredId merge{program.symbols().Lookup("merge"), 3};
  modes[merge] = {Mode::kBound, Mode::kBound, Mode::kFree};
  RuleSystemBuilder builder(program, modes, db);
  std::map<PredId, int> counts{{merge, 2}};
  return {builder.BuildOne(2, 1).value(), ThetaSpace(counts)};
}

void BM_DirectEq9(benchmark::State& state, Prepared (*prepare)()) {
  Prepared prepared = prepare();
  for (auto _ : state) {
    Result<DerivedConstraints> derived =
        BuildDerivedConstraints(prepared.sys, prepared.space);
    benchmark::DoNotOptimize(derived.ok());
  }
}

void BM_GeneralEq8(benchmark::State& state, Prepared (*prepare)()) {
  Prepared prepared = prepare();
  for (auto _ : state) {
    Result<ConstraintSystem> out = GeneralEq8(prepared.sys, prepared.space);
    benchmark::DoNotOptimize(out.ok());
  }
}

BENCHMARK_CAPTURE(BM_DirectEq9, perm, PreparePerm);
BENCHMARK_CAPTURE(BM_GeneralEq8, perm, PreparePerm);
BENCHMARK_CAPTURE(BM_DirectEq9, merge, PrepareMerge);
BENCHMARK_CAPTURE(BM_GeneralEq8, merge, PrepareMerge);

// Equivalence check: both routes must admit exactly the same minimal theta
// at delta = 1.
void PrintEquivalence() {
  std::printf("==== E9: direct Eq. 9 vs general FM on Eq. 8 ====\n\n");
  for (auto [name, prepare] :
       {std::pair<const char*, Prepared (*)()>{"perm", PreparePerm},
        std::pair<const char*, Prepared (*)()>{"merge", PrepareMerge}}) {
    Prepared prepared = prepare();
    const int T = prepared.space.total();
    Result<DerivedConstraints> direct =
        BuildDerivedConstraints(prepared.sys, prepared.space);
    Result<ConstraintSystem> general = GeneralEq8(prepared.sys,
                                                  prepared.space);
    if (!direct.ok() || !general.ok()) {
      std::printf("%s: construction failed\n", name);
      continue;
    }
    // Direct rows -> system with delta := 1.
    ConstraintSystem direct_sys(T);
    for (const ThetaRow& row : direct->rows) {
      Constraint c;
      c.rel = Relation::kGe;
      c.coeffs = row.theta_coeffs;
      c.constant = row.constant + row.delta_coeff;
      direct_sys.Add(std::move(c));
    }
    ConstraintSystem general_sys(T);
    for (const Constraint& row : general->rows()) {
      Constraint c;
      c.rel = row.rel;
      c.coeffs.assign(row.coeffs.begin(), row.coeffs.begin() + T);
      c.constant = row.constant + row.coeffs[T];  // delta := 1
      general_sys.Add(std::move(c));
    }
    std::vector<Rational> objective(T, Rational(1));
    LpResult a = SimplexSolver::Minimize(direct_sys, objective);
    LpResult b = SimplexSolver::Minimize(general_sys, objective);
    bool same = a.status == b.status &&
                (a.status != LpStatus::kOptimal || a.objective == b.objective);
    std::printf("%-8s direct rows=%zu general rows=%zu min(sum theta): "
                "direct=%s general=%s -> %s\n",
                name, direct->rows.size(), general->rows().size(),
                a.status == LpStatus::kOptimal ? a.objective.ToString().c_str()
                                               : "?",
                b.status == LpStatus::kOptimal ? b.objective.ToString().c_str()
                                               : "?",
                same ? "EQUIVALENT" : "MISMATCH");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintEquivalence();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
