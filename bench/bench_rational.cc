// E9 (ablation): the cost of exact rational arithmetic, the foundation the
// verifier stands on. Compares BigInt/Rational operations against native
// int64 equivalents and measures coefficient growth along FM-style row
// combinations -- the reason fixed-width arithmetic is unsound here.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

void BM_RationalDotProduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Rational> a, b;
  for (int i = 0; i < n; ++i) {
    a.emplace_back(i + 1, 3);
    b.emplace_back(2 * i + 1, 7);
  }
  for (auto _ : state) {
    Rational sum;
    for (int i = 0; i < n; ++i) sum += a[i] * b[i];
    benchmark::DoNotOptimize(sum.is_zero());
  }
  state.SetComplexityN(n);
}

void BM_Int64DotProduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int64_t> a, b;
  for (int i = 0; i < n; ++i) {
    a.push_back(i + 1);
    b.push_back(2 * i + 1);
  }
  for (auto _ : state) {
    int64_t sum = 0;
    for (int i = 0; i < n; ++i) sum += a[i] * b[i];
    benchmark::DoNotOptimize(sum);
  }
  state.SetComplexityN(n);
}

void BM_BigIntMultiply(benchmark::State& state) {
  const int digits = static_cast<int>(state.range(0));
  std::string sa(digits, '7'), sb(digits, '3');
  BigInt a = BigInt::FromString(sa).value();
  BigInt b = BigInt::FromString(sb).value();
  for (auto _ : state) {
    BigInt c = a * b;
    benchmark::DoNotOptimize(c.is_zero());
  }
  state.SetComplexityN(digits);
}

void BM_BigIntDivMod(benchmark::State& state) {
  const int digits = static_cast<int>(state.range(0));
  BigInt a = BigInt::FromString(std::string(2 * digits, '9')).value();
  BigInt b = BigInt::FromString(std::string(digits, '7')).value();
  for (auto _ : state) {
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(q.is_zero());
  }
  state.SetComplexityN(digits);
}

void BM_RationalGcdNormalization(benchmark::State& state) {
  // The normalization that keeps FM coefficients small.
  Constraint row;
  for (int i = 1; i <= 12; ++i) {
    row.coeffs.emplace_back(6 * i, 35);
  }
  row.constant = Rational(30, 7);
  row.rel = Relation::kGe;
  for (auto _ : state) {
    Constraint copy = row;
    copy.Normalize();
    benchmark::DoNotOptimize(copy.constant.is_zero());
  }
}

BENCHMARK(BM_RationalDotProduct)->Arg(8)->Arg(32)->Arg(128)->Complexity();
BENCHMARK(BM_Int64DotProduct)->Arg(8)->Arg(32)->Arg(128)->Complexity();
BENCHMARK(BM_BigIntMultiply)->Arg(9)->Arg(36)->Arg(144)->Complexity();
BENCHMARK(BM_BigIntDivMod)->Arg(9)->Arg(36)->Complexity();
BENCHMARK(BM_RationalGcdNormalization);

void PrintCoefficientGrowth() {
  std::printf("==== E9: coefficient growth under repeated FM combination ====\n");
  std::printf("(why int64 is unsound: numerator bit-length after k "
              "combination rounds)\n");
  // Combine rows pairwise like FM does, without normalization.
  Rational x(3, 7), y(5, 11);
  std::printf("%-8s %-20s\n", "round", "numerator digits");
  Rational acc = x;
  for (int round = 1; round <= 24; ++round) {
    acc = acc * y + x;  // mimic multiplier-scaled row addition
    if (round % 4 == 0) {
      std::printf("%-8d %-20zu\n", round, acc.num().ToString().size());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintCoefficientGrowth();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
