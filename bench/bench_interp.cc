// E8: empirical soundness validation. For every corpus entry the analyzer
// PROVES, run its validation queries under full-tree SLD resolution and
// confirm the search exhausts (terminates); for nonterminating entries,
// confirm the budget trips. Also benchmarks interpreter throughput.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "termilog/termilog.h"

using namespace termilog;

namespace {

void PrintValidation() {
  std::printf("==== E8: SLD validation of analyzer verdicts ====\n\n");
  std::printf("%-22s %-8s %-34s %-10s %-9s %s\n", "program", "verdict",
              "query", "solutions", "steps", "tree");
  int proved_and_validated = 0, proved_total = 0, mismatches = 0;
  for (const CorpusEntry& entry : Corpus()) {
    Program program = ParseProgram(entry.source).value();
    AnalysisOptions options;
    options.apply_transformations = entry.needs_transformations;
    options.allow_negative_deltas = entry.needs_negative_deltas;
    options.supplied_constraints = entry.supplied_constraints;
    TerminationAnalyzer analyzer(options);
    bool proved = analyzer.Analyze(program, entry.query).value().proved;
    if (proved) ++proved_total;
    bool all_exhausted = true;
    for (const std::string& query : entry.validation_queries) {
      SldResult run = RunQuery(program, query).value();
      bool exhausted = run.outcome == SldOutcome::kExhausted;
      all_exhausted = all_exhausted && exhausted;
      std::printf("%-22s %-8s %-34s %-10zu %-9lld %s\n", entry.name.c_str(),
                  proved ? "proved" : "-", query.c_str(), run.num_solutions,
                  static_cast<long long>(run.steps),
                  exhausted ? "exhausted" : "BUDGET/DEPTH");
    }
    if (proved && !entry.validation_queries.empty()) {
      if (all_exhausted) {
        ++proved_and_validated;
      } else {
        ++mismatches;
      }
    }
  }
  std::printf(
      "\nproved entries: %d; proved entries with validation queries all "
      "exhausted: %d; SOUNDNESS VIOLATIONS: %d\n\n",
      proved_total, proved_and_validated, mismatches);
}

void BM_SldQuery(benchmark::State& state, const char* corpus_name,
                 const char* query) {
  const CorpusEntry& entry = *FindCorpusEntry(corpus_name);
  Program program = ParseProgram(entry.source).value();
  for (auto _ : state) {
    Result<SldResult> run = RunQuery(program, query);
    benchmark::DoNotOptimize(run.ok());
  }
}

void BM_SldQuicksortScaling(benchmark::State& state) {
  const CorpusEntry& entry = *FindCorpusEntry("quicksort");
  Program program = ParseProgram(entry.source).value();
  const int n = static_cast<int>(state.range(0));
  std::string query = "qs([";
  for (int i = n; i >= 1; --i) {
    query += std::to_string(i);
    if (i > 1) query += ",";
  }
  query += "],S)";
  for (auto _ : state) {
    Result<SldResult> run = RunQuery(program, query);
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetComplexityN(n);
}

void BM_BottomUpAppend(benchmark::State& state) {
  Program program = ParseProgram(R"(
    item(a).
    list([]).
    list([X|Xs]) :- item(X), list(Xs).
    append([], Ys, Ys) :- list(Ys).
    append([X|Xs], Ys, [X|Zs]) :- item(X), append(Xs, Ys, Zs).
  )").value();
  BottomUpOptions options;
  options.max_term_size = static_cast<int>(state.range(0));
  BottomUpEvaluator eval(program, options);
  for (auto _ : state) {
    auto facts = eval.Evaluate();
    benchmark::DoNotOptimize(facts.ok());
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK_CAPTURE(BM_SldQuery, perm_abc, "perm", "perm([a,b,c],Q)");
BENCHMARK_CAPTURE(BM_SldQuery, merge, "merge", "merge([1,3,5],[2,4],R)");
BENCHMARK_CAPTURE(BM_SldQuery, hanoi3, "hanoi",
                  "hanoi(s(s(s(z))), a, b, c)");
BENCHMARK(BM_SldQuicksortScaling)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Complexity();
BENCHMARK(BM_BottomUpAppend)->Arg(8)->Arg(10)->Arg(12)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  PrintValidation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
