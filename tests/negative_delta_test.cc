// Appendix C in depth: free deltas with positive-cycle path constraints.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "interp/sld.h"
#include "program/parser.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TerminationReport Analyze(const Program& p, const char* query,
                          bool negative_deltas) {
  AnalysisOptions options;
  options.allow_negative_deltas = negative_deltas;
  TerminationAnalyzer analyzer(options);
  Result<TerminationReport> report = analyzer.Analyze(p, query);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

TEST(NegativeDeltaTest, TwoNodeUpDownCycle) {
  // a grows by 1, b shrinks by 2: integral deltas fail, free deltas prove.
  Program p = MustParse("a(X) :- b(g(X)). b(g(g(X))) :- a(X).");
  EXPECT_FALSE(Analyze(p, "a(b)", false).proved);
  TerminationReport r = Analyze(p, "a(b)", true);
  ASSERT_TRUE(r.proved) << r.ToString();
  // The a->b delta must be negative, the cycle sum positive.
  Rational ab, ba;
  for (const auto& [edge, value] : r.sccs[0].certificate.delta) {
    const std::string& from =
        r.analyzed_program.symbols().Name(edge.first.symbol);
    if (from == "a") ab = value;
    if (from == "b") ba = value;
  }
  EXPECT_LT(ab, Rational(0));
  EXPECT_GT(ab + ba, Rational(0));
}

TEST(NegativeDeltaTest, ThreeNodeCycleWithOneBigDrop) {
  // a -> b grows by 1, b -> c grows by 1, c -> a shrinks by 3.
  Program p = MustParse(R"(
    a(X) :- b(g(X)).
    b(Y) :- c(g(Y)).
    c(g(g(g(X)))) :- a(X).
  )");
  EXPECT_FALSE(Analyze(p, "a(b)", false).proved);
  TerminationReport r = Analyze(p, "a(b)", true);
  ASSERT_TRUE(r.proved) << r.ToString();
  EXPECT_TRUE(r.sccs[0].used_negative_deltas);
  // Every simple cycle in this SCC is the 3-cycle; its delta sum must be
  // >= 1 via the sigma path constraints.
  Rational total;
  for (const auto& [edge, value] : r.sccs[0].certificate.delta) {
    (void)edge;
    total += value;
  }
  EXPECT_GE(total, Rational(1));
}

TEST(NegativeDeltaTest, UpDownProgramsActuallyTerminate) {
  Program p = MustParse(R"(
    a(X) :- b(g(X)).
    b(Y) :- c(g(Y)).
    c(g(g(g(X)))) :- a(X).
  )");
  SldResult r = RunQuery(p, "a(g(g(g(g(g(g(k)))))))").value();
  EXPECT_EQ(r.outcome, SldOutcome::kExhausted);
}

TEST(NegativeDeltaTest, GenuinelyDivergentUpDownStillRejected) {
  // Grows by 2, shrinks by 1: diverges; even free deltas must fail
  // (every cycle has guaranteed decrease <= -1 < 1).
  Program p = MustParse("a(g(X)) :- b(X). b(Y) :- a(g(g(Y))).");
  EXPECT_FALSE(Analyze(p, "a(b)", true).proved);
  SldOptions options;
  options.max_depth = 300;
  SldResult r = RunQuery(p, "a(g(k))", options).value();
  EXPECT_NE(r.outcome, SldOutcome::kExhausted);
}

TEST(NegativeDeltaTest, BalancedCycleRejected) {
  // Grows by 1, shrinks by 1: net zero around the cycle; diverges.
  Program p = MustParse("a(X) :- b(g(X)). b(g(X)) :- a(X).");
  EXPECT_FALSE(Analyze(p, "a(b)", false).proved);
  EXPECT_FALSE(Analyze(p, "a(b)", true).proved);
}

TEST(NegativeDeltaTest, ModeIsNoWorseOnOrdinaryPrograms) {
  // Enabling Appendix C must not lose ordinary proofs.
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  EXPECT_TRUE(Analyze(p, "append(b,f,f)", true).proved);
}

TEST(NegativeDeltaTest, MutualRecursionMixedWithSelfLoop) {
  // Self-loop forces its own progress; the mutual cycle borrows from the
  // big drop.
  Program p = MustParse(R"(
    a([X|Xs]) :- a(Xs).
    a(X) :- b(g(X)).
    b(g(g(X))) :- a(X).
  )");
  TerminationReport r = Analyze(p, "a(b)", true);
  EXPECT_TRUE(r.proved) << r.ToString();
}

}  // namespace
}  // namespace termilog
