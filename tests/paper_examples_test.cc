// End-to-end reproduction of the paper's four worked examples, asserting
// the specific intermediate artifacts and certificates the paper reports.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "corpus/corpus.h"
#include "program/parser.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TerminationReport Analyze(const CorpusEntry& entry) {
  Program program = MustParse(entry.source);
  AnalysisOptions options;
  options.apply_transformations = entry.needs_transformations;
  options.allow_negative_deltas = entry.needs_negative_deltas;
  options.supplied_constraints = entry.supplied_constraints;
  TerminationAnalyzer analyzer(options);
  Result<TerminationReport> report = analyzer.Analyze(program, entry.query);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

const SccReport* FindProvedScc(const TerminationReport& report,
                               const char* pred_name) {
  for (const SccReport& scc : report.sccs) {
    for (const PredId& pred : scc.preds) {
      std::string name = report.analyzed_program.symbols().Name(pred.symbol);
      if (name == pred_name ||
          name.rfind(std::string(pred_name) + "__", 0) == 0) {
        return &scc;
      }
    }
  }
  return nullptr;
}

TEST(PaperExamplesTest, Example31PermProvedWithThetaHalf) {
  // "termination can be demonstrated using theta = 1/2" (Example 4.1) --
  // the feasible point the solver finds must satisfy 2*theta >= 1, and
  // the minimal solution is exactly 1/2 (checked in dual_builder_test);
  // here we assert the end-to-end verdict and a valid certificate.
  const CorpusEntry* entry = FindCorpusEntry("perm");
  ASSERT_NE(entry, nullptr);
  TerminationReport r = Analyze(*entry);
  EXPECT_TRUE(r.proved) << r.ToString();
  const SccReport* perm = FindProvedScc(r, "perm");
  ASSERT_NE(perm, nullptr);
  EXPECT_EQ(perm->status, SccStatus::kProved);
  const auto& theta = perm->certificate.theta.begin()->second;
  ASSERT_EQ(theta.size(), 1u);
  EXPECT_GE(theta[0], Rational(1, 2));
  // The imported feasibility constraint was the inferred
  // append1 + append2 = append3.
  bool append_known = false;
  for (const auto& [pred, poly] : r.arg_sizes.entries()) {
    std::string name = r.analyzed_program.symbols().Name(pred.symbol);
    if (name.rfind("append", 0) == 0 && pred.arity == 3) {
      Constraint row;
      row.coeffs = {Rational(1), Rational(1), Rational(-1)};
      row.constant = Rational(0);
      row.rel = Relation::kEq;
      if (poly.Entails(row)) append_known = true;
    }
  }
  EXPECT_TRUE(append_known);
}

TEST(PaperExamplesTest, Example51MergeProvedWithEqualWeights) {
  // "theta1 = theta2 >= 1/2 ... the sum of two bound arguments always
  // decreases in every recursive call."
  const CorpusEntry* entry = FindCorpusEntry("merge");
  ASSERT_NE(entry, nullptr);
  TerminationReport r = Analyze(*entry);
  EXPECT_TRUE(r.proved) << r.ToString();
  const SccReport* merge = FindProvedScc(r, "merge");
  ASSERT_NE(merge, nullptr);
  const auto& theta = merge->certificate.theta.begin()->second;
  ASSERT_EQ(theta.size(), 2u);
  EXPECT_EQ(theta[0], theta[1]);
  EXPECT_GE(theta[0], Rational(1, 2));
}

TEST(PaperExamplesTest, Example61ParserProvedWithDeltaPattern) {
  // Mutual + nonlinear recursion; delta_et = delta_tn = 0 forced,
  // delta_ne = 1, all predicates get theta >= 1/2.
  const CorpusEntry* entry = FindCorpusEntry("expr_parser");
  ASSERT_NE(entry, nullptr);
  TerminationReport r = Analyze(*entry);
  EXPECT_TRUE(r.proved) << r.ToString();
  const SccReport* scc = FindProvedScc(r, "e");
  ASSERT_NE(scc, nullptr);
  EXPECT_EQ(scc->preds.size(), 3u);
  const SymbolTable& symbols = r.analyzed_program.symbols();
  auto delta_of = [&](const char* from, const char* to) {
    for (const auto& [edge, value] : scc->certificate.delta) {
      if (symbols.Name(edge.first.symbol) == from &&
          symbols.Name(edge.second.symbol) == to) {
        return value;
      }
    }
    ADD_FAILURE() << "missing delta " << from << "->" << to;
    return Rational(-999);
  };
  EXPECT_EQ(delta_of("e", "t"), Rational(0));
  EXPECT_EQ(delta_of("t", "n"), Rational(0));
  EXPECT_EQ(delta_of("n", "e"), Rational(1));
  EXPECT_EQ(delta_of("e", "e"), Rational(1));
  EXPECT_EQ(delta_of("t", "t"), Rational(1));
  for (const auto& [pred, theta] : scc->certificate.theta) {
    (void)pred;
    ASSERT_EQ(theta.size(), 1u);
    EXPECT_GE(theta[0], Rational(1, 2));
  }
}

TEST(PaperExamplesTest, ExampleA1RawFormNotProved) {
  // "Our algorithm does not detect termination of these rules in their
  // present form."
  const CorpusEntry* entry = FindCorpusEntry("example_a1_raw");
  ASSERT_NE(entry, nullptr);
  TerminationReport r = Analyze(*entry);
  EXPECT_FALSE(r.proved);
}

TEST(PaperExamplesTest, ExampleA1ProvedAfterTransformations) {
  // "a sequence of automatic syntactic transformations puts the rules into
  // a form in which termination is easily detected."
  const CorpusEntry* entry = FindCorpusEntry("example_a1");
  ASSERT_NE(entry, nullptr);
  TerminationReport r = Analyze(*entry);
  EXPECT_TRUE(r.proved) << r.ToString();
  // p must have been exposed as non-recursive.
  const SymbolTable& symbols = r.analyzed_program.symbols();
  for (const SccReport& scc : r.sccs) {
    for (const PredId& pred : scc.preds) {
      if (symbols.Name(pred.symbol) == "p") {
        EXPECT_EQ(scc.status, SccStatus::kNonRecursive);
      }
    }
  }
}

}  // namespace
}  // namespace termilog
