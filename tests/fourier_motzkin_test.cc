#include "fm/fourier_motzkin.h"

#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace termilog {
namespace {

Constraint Ge(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row;
  for (int64_t c : coeffs) row.coeffs.emplace_back(c);
  row.constant = Rational(constant);
  row.rel = Relation::kGe;
  return row;
}

Constraint Eq(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row = Ge(std::move(coeffs), constant);
  row.rel = Relation::kEq;
  return row;
}

TEST(FourierMotzkinTest, EliminateBetweenBounds) {
  // x1 <= x0, x1 >= x2  --(eliminate x1)-->  x0 >= x2.
  ConstraintSystem sys(3);
  sys.Add(Ge({1, -1, 0}, 0));
  sys.Add(Ge({0, 1, -1}, 0));
  ASSERT_TRUE(FourierMotzkin::EliminateVariable(&sys, 1).ok());
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.rows()[0].coeffs[0], Rational(1));
  EXPECT_EQ(sys.rows()[0].coeffs[1], Rational(0));
  EXPECT_EQ(sys.rows()[0].coeffs[2], Rational(-1));
}

TEST(FourierMotzkinTest, EliminateUnpairedRowsDrop) {
  // Only lower bounds on x0: projection is the whole plane.
  ConstraintSystem sys(2);
  sys.Add(Ge({1, -1}, 0));
  sys.Add(Ge({1, 0}, -2));
  ASSERT_TRUE(FourierMotzkin::EliminateVariable(&sys, 0).ok());
  EXPECT_TRUE(sys.rows().empty());
}

TEST(FourierMotzkinTest, EqualityPivotUsed) {
  // x0 = x1 + 1, x0 <= 5  ->  x1 <= 4.
  ConstraintSystem sys(2);
  sys.Add(Eq({1, -1}, -1));
  sys.Add(Ge({-1, 0}, 5));
  ASSERT_TRUE(FourierMotzkin::EliminateVariable(&sys, 0).ok());
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.rows()[0].coeffs[1], Rational(-1));
  EXPECT_EQ(sys.rows()[0].constant, Rational(4));
}

TEST(FourierMotzkinTest, ProjectCompactsColumns) {
  // x0 >= 0, x1 = x0 + 2, keep x1: x1 >= 2.
  ConstraintSystem sys(2);
  sys.Add(Ge({1, 0}, 0));
  sys.Add(Eq({-1, 1}, -2));
  Result<ConstraintSystem> projected = FourierMotzkin::Project(sys, {1});
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(projected->num_vars(), 1);
  ASSERT_EQ(projected->size(), 1u);
  EXPECT_EQ(projected->rows()[0].coeffs[0], Rational(1));
  EXPECT_EQ(projected->rows()[0].constant, Rational(-2));
}

TEST(FourierMotzkinTest, ProjectionPreservesFeasiblePoints) {
  // Random-ish 4-var system; any feasible point's projection must satisfy
  // the projected system, and any projected-feasible point must extend.
  ConstraintSystem sys(4);
  sys.Add(Ge({1, 1, 0, 0}, -2));   // x0 + x1 >= 2
  sys.Add(Ge({-1, 0, 1, 0}, 3));   // x2 >= x0 - 3
  sys.Add(Ge({0, -2, 0, 1}, 1));   // x3 >= 2 x1 - 1
  sys.Add(Eq({1, -1, 0, 0}, 0));   // x0 = x1
  Result<ConstraintSystem> projected = FourierMotzkin::Project(sys, {0, 2});
  ASSERT_TRUE(projected.ok());
  // (x0, x2) = (1, 0): from x0=x1=1, x2 >= -2 ok, pick x3 >= 1.
  EXPECT_TRUE(projected->SatisfiedBy({Rational(1), Rational(0)}));
  // Verify semantic equivalence by LP on a grid of objective directions.
  std::vector<bool> free4(4, true), free2(2, true);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dz = -1; dz <= 1; ++dz) {
      std::vector<Rational> obj4 = {Rational(dx), Rational(), Rational(dz),
                                    Rational()};
      std::vector<Rational> obj2 = {Rational(dx), Rational(dz)};
      LpResult full = SimplexSolver::Minimize(sys, obj4, free4);
      LpResult proj = SimplexSolver::Minimize(*projected, obj2, free2);
      ASSERT_EQ(full.status, proj.status);
      if (full.status == LpStatus::kOptimal) {
        EXPECT_EQ(full.objective, proj.objective);
      }
    }
  }
}

TEST(FourierMotzkinTest, InfeasibilityPreserved) {
  // x0 >= 1, x0 <= 0: eliminating x0 leaves a violated constant row.
  ConstraintSystem sys(1);
  sys.Add(Ge({1}, -1));
  sys.Add(Ge({-1}, 0));
  Result<ConstraintSystem> projected = FourierMotzkin::Project(sys, {});
  ASSERT_TRUE(projected.ok());
  // Projection onto no variables: infeasible iff Simplify fails.
  ConstraintSystem out = *projected;
  EXPECT_FALSE(out.Simplify());
}

TEST(FourierMotzkinTest, RowLimitTriggersResourceExhausted) {
  // Many pos/neg pairs on x0 with a tiny limit.
  ConstraintSystem sys(2);
  for (int i = 1; i <= 12; ++i) {
    sys.Add(Ge({1, static_cast<int64_t>(-i)}, 0));
    sys.Add(Ge({-1, static_cast<int64_t>(i)}, 1));
  }
  FmOptions options;
  options.row_limit = 10;
  Status status = FourierMotzkin::EliminateVariable(&sys, 0, options);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(FourierMotzkinTest, LpPruneRemovesRedundantRow) {
  ConstraintSystem sys(2);
  sys.Add(Ge({1, 0}, 0));    // x0 >= 0
  sys.Add(Ge({0, 1}, 0));    // x1 >= 0
  sys.Add(Ge({1, 1}, 0));    // redundant: sum of the others
  FourierMotzkin::LpPruneRedundant(&sys);
  EXPECT_EQ(sys.size(), 2u);
}

TEST(FourierMotzkinTest, LpPruneKeepsBindingRows) {
  ConstraintSystem sys(2);
  sys.Add(Ge({1, 0}, 0));
  sys.Add(Ge({0, 1}, 0));
  sys.Add(Ge({-1, -1}, 5));  // x0 + x1 <= 5: binding
  size_t before = sys.size();
  FourierMotzkin::LpPruneRedundant(&sys);
  EXPECT_EQ(sys.size(), before);
}

// Reference implementation of LpPruneRedundant as it was historically
// written: per-row vector::erase, iterating from the end. The production
// version defers removal to one stable compaction pass; the surviving rows
// and their order must be identical.
void ReferenceLpPrune(ConstraintSystem* system) {
  std::vector<bool> all_free(system->num_vars(), true);
  for (size_t i = system->rows().size(); i-- > 0;) {
    const Constraint row = system->rows()[i];
    if (row.rel == Relation::kEq) continue;
    ConstraintSystem rest(system->num_vars());
    for (size_t j = 0; j < system->rows().size(); ++j) {
      if (j != i) rest.Add(system->rows()[j]);
    }
    LpResult lp = SimplexSolver::Minimize(rest, row.coeffs, all_free);
    bool redundant = false;
    if (lp.status == LpStatus::kInfeasible) {
      redundant = true;
    } else if (lp.status == LpStatus::kOptimal) {
      redundant = (lp.objective + row.constant).sign() >= 0;
    }
    if (redundant) {
      system->mutable_rows().erase(system->mutable_rows().begin() + i);
    }
  }
}

TEST(FourierMotzkinTest, LpPruneMatchesEraseReferenceAndKeepsOrder) {
  // Deterministic pseudo-random systems with deliberately redundant rows
  // (weakened copies and positive combinations of earlier rows).
  uint64_t state = 12345;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 8; ++round) {
    ConstraintSystem sys(3);
    for (int r = 0; r < 5; ++r) {
      Constraint row;
      row.rel = Relation::kGe;
      for (int v = 0; v < 3; ++v) {
        row.coeffs.emplace_back(static_cast<int64_t>(next() % 7) - 3);
      }
      row.constant = Rational(static_cast<int64_t>(next() % 9) - 2);
      sys.Add(std::move(row));
    }
    // Weakened duplicate of row 0 and the sum of rows 1 and 2: redundant.
    Constraint weak = sys.rows()[0];
    weak.constant += Rational(static_cast<int64_t>(next() % 4) + 1);
    sys.Add(std::move(weak));
    Constraint combo = sys.rows()[1];
    for (int v = 0; v < 3; ++v) combo.coeffs[v] += sys.rows()[2].coeffs[v];
    combo.constant += sys.rows()[2].constant;
    sys.Add(std::move(combo));

    ConstraintSystem expected = sys;
    ReferenceLpPrune(&expected);
    FourierMotzkin::LpPruneRedundant(&sys);
    ASSERT_EQ(sys.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < sys.size(); ++i) {
      EXPECT_TRUE(sys.rows()[i] == expected.rows()[i])
          << "round " << round << " row " << i;
    }
  }
}

TEST(FourierMotzkinTest, CombineMultipliersAreGcdReduced) {
  // Eliminating x0 from 4*x0 - x1 >= 0 and -6*x0 + x2 >= 0: the raw FM
  // multipliers (6, 4) reduce by gcd 2 to (3, 2), so before Simplify the
  // combined row is -3*x1 + 2*x2 >= 0 (not -6*x1 + 4*x2).
  ConstraintSystem sys(3);
  sys.Add(Ge({4, -1, 0}, 0));
  sys.Add(Ge({-6, 0, 1}, 0));
  ASSERT_TRUE(FourierMotzkin::EliminateVariable(&sys, 0).ok());
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.rows()[0].coeffs[0], Rational(0));
  EXPECT_EQ(sys.rows()[0].coeffs[1], Rational(-3));
  EXPECT_EQ(sys.rows()[0].coeffs[2], Rational(2));
  EXPECT_EQ(sys.rows()[0].constant, Rational(0));
}

TEST(FourierMotzkinTest, PaperExample41Elimination) {
  // The w1/w2 elimination of Example 4.1: columns (w1, w2, theta, eta).
  //   -w1            + theta          >= 0     (P)
  //    w1                             >= 0     (X)
  //    w1 + w2                        >= 0     (E)  [x2]
  //   -w2                      - eta  >= 0     (P1)
  //   2 w1                            >= delta (const row; delta = 1)
  ConstraintSystem sys(4);
  sys.Add(Ge({-1, 0, 1, 0}, 0));
  sys.Add(Ge({1, 0, 0, 0}, 0));
  sys.Add(Ge({1, 1, 0, 0}, 0));
  sys.Add(Ge({1, 1, 0, 0}, 0));
  sys.Add(Ge({0, -1, 0, -1}, 0));
  sys.Add(Ge({2, 0, 0, 0}, -1));
  Result<ConstraintSystem> projected = FourierMotzkin::Project(sys, {2, 3});
  ASSERT_TRUE(projected.ok());
  // With eta = theta the system must reduce to 2*theta >= 1 (+ theta >= eta
  // variants); check the binding facts via LP: min theta subject to system
  // and theta = eta is 1/2.
  ConstraintSystem check = *projected;
  check.Add(Eq({1, -1}, 0));
  std::vector<bool> free2(2, true);
  LpResult r = SimplexSolver::Minimize(check, {Rational(1), Rational(0)},
                                       free2);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(1, 2));
}

}  // namespace
}  // namespace termilog
