#include "program/parser.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(ParserTest, FactAndRule) {
  Program p = MustParse("p(a). q(X) :- p(X).");
  ASSERT_EQ(p.rules().size(), 2u);
  EXPECT_TRUE(p.rules()[0].body.empty());
  EXPECT_EQ(p.rules()[1].body.size(), 1u);
  EXPECT_EQ(p.rules()[1].ToString(p.symbols()), "q(X) :- p(X).");
}

TEST(ParserTest, VariablesScopePerClause) {
  Program p = MustParse("p(X) :- q(X). r(X).");
  EXPECT_EQ(p.rules()[0].num_vars(), 1);
  EXPECT_EQ(p.rules()[1].num_vars(), 1);
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  Program p = MustParse("p(_, _).");
  EXPECT_EQ(p.rules()[0].num_vars(), 2);
}

TEST(ParserTest, ListsDesugarToCons) {
  Program p = MustParse("p([a,b|T]).");
  const TermPtr& arg = p.rules()[0].head.args[0];
  ASSERT_TRUE(arg->IsCompound());
  EXPECT_EQ(p.symbols().Name(arg->functor()), kConsName);
  EXPECT_EQ(arg->ToString(p.symbols(),
                          [](int) { return std::string("T"); }),
            "[a,b|T]");
}

TEST(ParserTest, EmptyListConstant) {
  Program p = MustParse("p([]).");
  EXPECT_TRUE(p.rules()[0].head.args[0]->IsConstant());
}

TEST(ParserTest, QuotedAtoms) {
  Program p = MustParse("t(L, ['+'|C]).");
  EXPECT_EQ(p.rules()[0].head.args[1]->args()[0]->IsConstant(), true);
  EXPECT_EQ(p.symbols().Name(
                p.rules()[0].head.args[1]->args()[0]->functor()),
            "+");
}

TEST(ParserTest, ComparisonOperatorsAsGoals) {
  Program p = MustParse("m(X,Y) :- X =< Y, m(Y, X).");
  ASSERT_EQ(p.rules()[0].body.size(), 2u);
  EXPECT_EQ(p.symbols().Name(p.rules()[0].body[0].atom.predicate), "=<");
  EXPECT_EQ(p.rules()[0].body[0].atom.args.size(), 2u);
}

TEST(ParserTest, EqualityGoal) {
  Program p = MustParse("r(Z) :- U = f(Z), p(U).");
  EXPECT_EQ(p.symbols().Name(p.rules()[0].body[0].atom.predicate), "=");
}

TEST(ParserTest, NegatedSubgoal) {
  Program p = MustParse("f(X) :- \\+ bad(X), g(X).");
  EXPECT_FALSE(p.rules()[0].body[0].positive);
  EXPECT_TRUE(p.rules()[0].body[1].positive);
}

TEST(ParserTest, ZeroArityPredicates) {
  Program p = MustParse("p :- p.");
  EXPECT_EQ(p.rules()[0].head.args.size(), 0u);
  EXPECT_EQ(p.rules()[0].body[0].atom.args.size(), 0u);
}

TEST(ParserTest, IntegersAreConstants) {
  Program p = MustParse("age(42).");
  EXPECT_TRUE(p.rules()[0].head.args[0]->IsConstant());
  EXPECT_EQ(p.symbols().Name(p.rules()[0].head.args[0]->functor()), "42");
}

TEST(ParserTest, Comments) {
  Program p = MustParse(R"(
    % line comment
    p(a). /* block
             comment */ q(b).
  )");
  EXPECT_EQ(p.rules().size(), 2u);
}

TEST(ParserTest, ModeDirective) {
  Program p = MustParse(":- mode(append(b, f, f)). append([],Y,Y).");
  ASSERT_EQ(p.mode_decls().size(), 1u);
  EXPECT_EQ(p.mode_decls()[0].pred.arity, 3);
  EXPECT_EQ(AdornmentToString(p.mode_decls()[0].adornment), "bff");
}

TEST(ParserTest, UnknownDirectiveWarns) {
  std::vector<std::string> warnings;
  Result<Program> p = ParseProgram(":- dynamic(foo). p(a).", &warnings);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(warnings.size(), 1u);
}

TEST(ParserTest, ErrorsCarryPosition) {
  Result<Program> p = ParseProgram("p(a)");  // missing dot
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, ErrorOnBareVariableGoal) {
  EXPECT_FALSE(ParseProgram("p(a) :- X.").ok());
}

TEST(ParserTest, ErrorOnUnterminatedQuote) {
  EXPECT_FALSE(ParseProgram("p('abc).").ok());
}

TEST(ParserTest, ErrorOnUnterminatedBlockComment) {
  EXPECT_FALSE(ParseProgram("/* p(a).").ok());
}

TEST(ParserTest, ParseTermHelper) {
  SymbolTable symbols;
  std::vector<std::string> names;
  Result<TermPtr> t = ParseTerm("f(X, [Y|X])", &symbols, &names);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(names.size(), 2u);
  EXPECT_EQ((*t)->arity(), 2);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* source =
      "perm(P,[X|L]) :- append(E,[X|F],P), append(E,F,P1), perm(P1,L).";
  Program p1 = MustParse(source);
  std::string printed = p1.rules()[0].ToString(p1.symbols());
  Program p2 = MustParse(printed);
  EXPECT_EQ(p2.rules()[0].ToString(p2.symbols()), printed);
}

TEST(ParserTest, ConsInPrefixForm) {
  Program p = MustParse("p('.'(H, T)) :- q(H, T).");
  const TermPtr& arg = p.rules()[0].head.args[0];
  EXPECT_EQ(p.symbols().Name(arg->functor()), kConsName);
  EXPECT_EQ(arg->arity(), 2);
}

}  // namespace
}  // namespace termilog
