#include "rational/rational.h"

#include <vector>

#include <gtest/gtest.h>

namespace termilog {
namespace {

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), BigInt(3));
  EXPECT_EQ(r.den(), BigInt(4));
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), BigInt(-1));
  EXPECT_EQ(neg.den(), BigInt(2));
  Rational zero(0, -7);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.den(), BigInt(1));
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, ToStringForms) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-5).ToString(), "-5");
  EXPECT_EQ(Rational(1, 2).ToString(), "1/2");
  EXPECT_EQ(Rational(-1, 2).ToString(), "-1/2");
  EXPECT_EQ(Rational().ToString(), "0");
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::FromString("3/4").value(), Rational(3, 4));
  EXPECT_EQ(Rational::FromString("-3/4").value(), Rational(-3, 4));
  EXPECT_EQ(Rational::FromString("17").value(), Rational(17));
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(RationalTest, InverseAndAbs) {
  EXPECT_EQ(Rational(-2, 3).Inverse(), Rational(-3, 2));
  EXPECT_EQ(Rational(-2, 3).Abs(), Rational(2, 3));
  EXPECT_EQ(Rational(5).Inverse(), Rational(1, 5));
}

TEST(RationalTest, IsInteger) {
  EXPECT_TRUE(Rational(4, 2).is_integer());
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_TRUE(Rational().is_integer());
}

TEST(RationalTest, FieldAxiomsRandom) {
  unsigned seed = 7;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    int64_t num = static_cast<int64_t>(seed % 41) - 20;
    seed = seed * 1103515245 + 12345;
    int64_t den = 1 + static_cast<int64_t>(seed % 19);
    return Rational(num, den);
  };
  for (int i = 0; i < 200; ++i) {
    Rational a = next(), b = next(), c = next();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(), a);
    EXPECT_EQ(a * Rational(1), a);
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.Inverse(), Rational(1));
    }
  }
}

TEST(RationalTest, NoPrecisionLossOnLongChains) {
  // 1/3 summed 3000 times is exactly 1000.
  Rational sum;
  for (int i = 0; i < 3000; ++i) sum += Rational(1, 3);
  EXPECT_EQ(sum, Rational(1000));
}

TEST(RationalTest, NegateInPlace) {
  Rational r(3, 7);
  EXPECT_EQ(r.Negate(), Rational(-3, 7));
  EXPECT_EQ(r.Negate(), Rational(3, 7));
  Rational zero;
  zero.Negate();
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero, Rational());
}

// Reference implementations over plain BigInt cross-multiplication: the
// __int128 fast path must agree with these on every input, in particular
// around the int64 boundary where BothSmall flips between true and false.
Rational RefAdd(const Rational& a, const Rational& b) {
  return Rational(a.num() * b.den() + b.num() * a.den(), a.den() * b.den());
}
Rational RefSub(const Rational& a, const Rational& b) {
  return Rational(a.num() * b.den() - b.num() * a.den(), a.den() * b.den());
}
Rational RefMul(const Rational& a, const Rational& b) {
  return Rational(a.num() * b.num(), a.den() * b.den());
}
Rational RefDiv(const Rational& a, const Rational& b) {
  return Rational(a.num() * b.den(), a.den() * b.num());
}
int RefCompare(const Rational& a, const Rational& b) {
  return (a.num() * b.den()).Compare(b.num() * a.den());
}

void CheckWellFormed(const Rational& r) {
  ASSERT_TRUE(r.den().is_positive());
  EXPECT_TRUE(BigInt::Gcd(r.num(), r.den()).is_one() || r.is_zero());
  if (r.is_zero()) {
    EXPECT_TRUE(r.den().is_one());
  }
}

TEST(RationalTest, FastPathMatchesSlowPathAtInt64Boundary) {
  // Numerators straddling ±2^63 and ±2^31; denominators straddling the
  // same bands. Pairs where every component fits int64 take the __int128
  // fast path, the rest the BigInt slow path — results must be identical.
  std::vector<BigInt> nums;
  for (const char* s :
       {"0", "1", "-1", "3", "2147483647", "2147483648", "-2147483648",
        "-2147483649", "9223372036854775806", "9223372036854775807",
        "9223372036854775808", "9223372036854775809",
        "-9223372036854775807", "-9223372036854775808",
        "-9223372036854775809"}) {
    nums.push_back(BigInt::FromString(s).value());
  }
  std::vector<BigInt> dens;
  for (const char* s : {"1", "2", "3", "2147483647", "4294967295",
                        "9223372036854775807", "9223372036854775808"}) {
    dens.push_back(BigInt::FromString(s).value());
  }
  std::vector<Rational> values;
  for (const BigInt& n : nums) {
    for (const BigInt& d : dens) {
      values.emplace_back(n, d);
    }
  }
  // Quadratic over the full set is too slow; stride through pairs.
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i % 7; j < values.size(); j += 7) {
      const Rational& a = values[i];
      const Rational& b = values[j];
      Rational sum = a + b;
      ASSERT_EQ(sum, RefAdd(a, b)) << a << " + " << b;
      CheckWellFormed(sum);
      Rational diff = a - b;
      ASSERT_EQ(diff, RefSub(a, b)) << a << " - " << b;
      CheckWellFormed(diff);
      Rational prod = a * b;
      ASSERT_EQ(prod, RefMul(a, b)) << a << " * " << b;
      CheckWellFormed(prod);
      ASSERT_EQ(a.Compare(b), RefCompare(a, b)) << a << " <=> " << b;
      if (!b.is_zero()) {
        Rational quot = a / b;
        ASSERT_EQ(quot, RefDiv(a, b)) << a << " / " << b;
        CheckWellFormed(quot);
      }
      // Equal values must hash equally regardless of which path built them.
      EXPECT_EQ(sum.Hash(), RefAdd(a, b).Hash());
    }
  }
}

}  // namespace
}  // namespace termilog
