#include "rational/rational.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), BigInt(3));
  EXPECT_EQ(r.den(), BigInt(4));
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), BigInt(-1));
  EXPECT_EQ(neg.den(), BigInt(2));
  Rational zero(0, -7);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.den(), BigInt(1));
}

TEST(RationalTest, Arithmetic) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, ToStringForms) {
  EXPECT_EQ(Rational(5).ToString(), "5");
  EXPECT_EQ(Rational(-5).ToString(), "-5");
  EXPECT_EQ(Rational(1, 2).ToString(), "1/2");
  EXPECT_EQ(Rational(-1, 2).ToString(), "-1/2");
  EXPECT_EQ(Rational().ToString(), "0");
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::FromString("3/4").value(), Rational(3, 4));
  EXPECT_EQ(Rational::FromString("-3/4").value(), Rational(-3, 4));
  EXPECT_EQ(Rational::FromString("17").value(), Rational(17));
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(RationalTest, InverseAndAbs) {
  EXPECT_EQ(Rational(-2, 3).Inverse(), Rational(-3, 2));
  EXPECT_EQ(Rational(-2, 3).Abs(), Rational(2, 3));
  EXPECT_EQ(Rational(5).Inverse(), Rational(1, 5));
}

TEST(RationalTest, IsInteger) {
  EXPECT_TRUE(Rational(4, 2).is_integer());
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_TRUE(Rational().is_integer());
}

TEST(RationalTest, FieldAxiomsRandom) {
  unsigned seed = 7;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    int64_t num = static_cast<int64_t>(seed % 41) - 20;
    seed = seed * 1103515245 + 12345;
    int64_t den = 1 + static_cast<int64_t>(seed % 19);
    return Rational(num, den);
  };
  for (int i = 0; i < 200; ++i) {
    Rational a = next(), b = next(), c = next();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(), a);
    EXPECT_EQ(a * Rational(1), a);
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.Inverse(), Rational(1));
    }
  }
}

TEST(RationalTest, NoPrecisionLossOnLongChains) {
  // 1/3 summed 3000 times is exactly 1000.
  Rational sum;
  for (int i = 0; i < 3000; ++i) sum += Rational(1, 3);
  EXPECT_EQ(sum, Rational(1000));
}

}  // namespace
}  // namespace termilog
