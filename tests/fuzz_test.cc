// Robustness sweeps: malformed and randomized inputs must produce error
// Statuses (or clean verdicts), never crashes or checked-invariant
// failures. Deterministic seeds keep failures reproducible.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "interp/sld.h"
#include "program/parser.h"
#include "rational/rational.h"

namespace termilog {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }

 private:
  uint64_t state_;
};

// --- Differential fuzz: Rational __int128 fast path vs BigInt slow path ---
//
// Every Rational operation has two implementations: the __int128 fast path
// (taken when all four components fit int64) and the BigInt slow path. The
// fuzzer drives random values concentrated in the bands around ±2^63 and
// ±2^31 where the paths hand over, and checks each operation against a
// reference computed with plain BigInt cross-multiplication (which never
// enters the fast path).

Rational FuzzRefAdd(const Rational& a, const Rational& b) {
  return Rational(a.num() * b.den() + b.num() * a.den(), a.den() * b.den());
}
Rational FuzzRefMul(const Rational& a, const Rational& b) {
  return Rational(a.num() * b.num(), a.den() * b.den());
}

class RationalDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RationalDifferentialFuzz, FastPathAgreesWithBigIntReference) {
  class Rng {
   public:
    explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
    uint64_t Next() {
      state_ ^= state_ << 13;
      state_ ^= state_ >> 7;
      state_ ^= state_ << 17;
      return state_;
    }

   private:
    uint64_t state_;
  };
  Rng rng(GetParam() + 3100);
  auto boundary_value = [&rng]() {
    // A base magnitude at one of the interesting scales, jittered by a few
    // units so values land on both sides of each boundary.
    static const uint64_t kBands[] = {0,
                                      3,
                                      uint64_t{1} << 31,
                                      uint64_t{1} << 32,
                                      uint64_t{1} << 62,
                                      uint64_t{1} << 63,
                                      (uint64_t{1} << 63) + (uint64_t{1} << 10)};
    uint64_t mag = kBands[rng.Next() % 7] + rng.Next() % 5;
    BigInt value =
        BigInt(static_cast<int64_t>(mag >> 1)) + BigInt(static_cast<int64_t>(mag >> 1)) +
        BigInt(static_cast<int64_t>(mag & 1));
    if (rng.Next() % 2) value.Negate();
    return value;
  };
  auto boundary_rational = [&]() {
    BigInt num = boundary_value();
    BigInt den = boundary_value();
    if (den.is_zero()) den = BigInt(1);
    return Rational(std::move(num), std::move(den));
  };
  for (int round = 0; round < 60; ++round) {
    Rational a = boundary_rational();
    Rational b = boundary_rational();
    // Addition / multiplication against the reference.
    Rational sum = a + b;
    ASSERT_EQ(sum, FuzzRefAdd(a, b)) << a << " + " << b;
    Rational prod = a * b;
    ASSERT_EQ(prod, FuzzRefMul(a, b)) << a << " * " << b;
    // Subtraction and division via algebraic identities (they share the
    // fast-path plumbing but exercise the sign handling differently).
    ASSERT_EQ(a - b, FuzzRefAdd(a, -b)) << a << " - " << b;
    if (!b.is_zero()) {
      Rational quot = a / b;
      ASSERT_EQ(quot * b, a) << a << " / " << b;
    }
    // Compare must match the sign of the BigInt cross-product difference.
    int cmp = a.Compare(b);
    ASSERT_EQ(cmp, (a.num() * b.den() - b.num() * a.den()).sign())
        << a << " <=> " << b;
    // Normalization invariants hold on every result.
    for (const Rational* r : {&sum, &prod}) {
      ASSERT_TRUE(r->den().is_positive());
      ASSERT_TRUE(r->is_zero() || BigInt::Gcd(r->num(), r->den()).is_one());
    }
    // Hash is path-independent: equal values hash equally.
    ASSERT_EQ(sum.Hash(), FuzzRefAdd(a, b).Hash());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalDifferentialFuzz,
                         ::testing::Range(1, 13));

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, TokenSoupNeverCrashes) {
  Rng rng(GetParam());
  static const char* kTokens[] = {
      "p",  "q(",  ")",   "[",  "]",  ",",  "|",  ".",  ":-", "X",
      "Y",  "_",   "42",  "'a'", "=",  "=<", "\\+", "f(", "(",  " ",
      "%c\n", "/*", "*/", "foo", "Bar"};
  for (int round = 0; round < 50; ++round) {
    std::string soup;
    int len = static_cast<int>(rng.Range(1, 30));
    for (int i = 0; i < len; ++i) {
      soup += kTokens[rng.Range(0, 24)];
    }
    // Must return, with either a program or an error status.
    Result<Program> result = ParseProgram(soup);
    if (result.ok()) {
      // Whatever parsed must round-trip through the printer.
      std::string printed = result->ToString();
      EXPECT_LE(printed.size(), soup.size() * 20 + 64);
    }
  }
}

TEST_P(ParserFuzz, ValidProgramsRoundTrip) {
  // Generate structurally valid random programs and reparse their
  // pretty-printed form.
  Rng rng(GetParam() + 500);
  std::string source;
  int num_rules = static_cast<int>(rng.Range(1, 6));
  for (int r = 0; r < num_rules; ++r) {
    std::string head = "p" + std::to_string(rng.Range(0, 2));
    source += head + "(";
    int arity = 2;
    for (int a = 0; a < arity; ++a) {
      if (a) source += ",";
      switch (rng.Range(0, 3)) {
        case 0: source += "X"; break;
        case 1: source += "[X|Xs]"; break;
        case 2: source += "f(Y)"; break;
        default: source += "c"; break;
      }
    }
    source += ")";
    if (rng.Range(0, 1)) {
      source += " :- p" + std::to_string(rng.Range(0, 2)) + "(X, Xs)";
    }
    source += ".\n";
  }
  Result<Program> first = ParseProgram(source);
  ASSERT_TRUE(first.ok()) << source;
  Result<Program> second = ParseProgram(first->ToString());
  ASSERT_TRUE(second.ok()) << first->ToString();
  EXPECT_EQ(first->rules().size(), second->rules().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 16));

class AnalyzerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AnalyzerFuzz, RandomListProgramsAnalyzeCleanly) {
  // Random recursive list-walking programs: the analyzer must return a
  // report (never crash), and whenever it proves, the interpreter must
  // agree on a concrete query.
  Rng rng(GetParam() + 900);
  std::string source = "walk([], []).\n";
  // Recursive rule with randomized consumption/production.
  int consume = static_cast<int>(rng.Range(0, 2));   // extra elements eaten
  bool swap = rng.Range(0, 1) == 1;
  std::string lhs = "[X";
  for (int i = 0; i < consume; ++i) lhs += ",Y" + std::to_string(i);
  lhs += "|Xs]";
  source += "walk(" + lhs + ", [X|Zs]) :- walk(" +
            std::string(swap ? "Zs, Xs" : "Xs, Zs") + ").\n";
  // With swap the second argument is free output fed back in: analysis
  // may or may not prove, but must not crash and must not prove a
  // diverging program.
  Result<Program> program = ParseProgram(source);
  ASSERT_TRUE(program.ok()) << source;
  TerminationAnalyzer analyzer;
  Result<TerminationReport> report = analyzer.Analyze(*program, "walk(b,f)");
  ASSERT_TRUE(report.ok()) << source;
  if (report->proved) {
    SldOptions options;
    options.max_depth = 2000;
    Result<SldResult> run =
        RunQuery(*program, "walk([a,b,c,d,e,f], W)", options);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->outcome, SldOutcome::kExhausted) << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerFuzz, ::testing::Range(1, 21));

TEST(AnalyzerEdgeCases, EmptyProgramQueryFails) {
  Program empty;
  TerminationAnalyzer analyzer;
  EXPECT_FALSE(analyzer.Analyze(empty, "p(b)").ok());
}

TEST(AnalyzerEdgeCases, FactOnlyPredicateProved) {
  Result<Program> p = ParseProgram("p(a). p(b).");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> r = analyzer.Analyze(*p, "p(b)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proved);
}

TEST(AnalyzerEdgeCases, SelfUnifyingHeadHandled) {
  // Repeated variables in heads stress the size-equation builder.
  Result<Program> p =
      ParseProgram("dup([X,X|Xs]) :- dup(Xs). dup([]). dup([X]).");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> r = analyzer.Analyze(*p, "dup(b)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proved);
}

TEST(ParserDepthGuard, PathologicalNestingReturnsResourceExhausted) {
  // 3000 levels of f(...) — far beyond the parser's recursion cap. Must
  // come back as a structured error, not a C++ stack overflow.
  std::string source = "p(";
  for (int i = 0; i < 3000; ++i) source += "f(";
  source += "a";
  for (int i = 0; i < 3000; ++i) source += ")";
  source += ").";
  Result<Program> result = ParseProgram(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("depth"), std::string::npos);
}

TEST(ParserDepthGuard, ModerateNestingStillParses) {
  // 300 levels is deep but within the cap.
  std::string source = "p(";
  for (int i = 0; i < 300; ++i) source += "f(";
  source += "a";
  for (int i = 0; i < 300; ++i) source += ")";
  source += ").";
  Result<Program> result = ParseProgram(source);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->rules().size(), 1u);
}

TEST(AnalyzerEdgeCases, DeepTermsInRules) {
  std::string deep = "f(";
  std::string close = ")";
  for (int i = 0; i < 40; ++i) {
    deep += "g(";
    close += ")";
  }
  std::string source = "p(" + deep + "X" + close + ") :- p(X).";
  Result<Program> p = ParseProgram(source);
  ASSERT_TRUE(p.ok());
  TerminationAnalyzer analyzer;
  Result<TerminationReport> r = analyzer.Analyze(*p, "p(b)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proved);  // argument shrinks by 41 every call
}

}  // namespace
}  // namespace termilog
