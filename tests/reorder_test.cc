// The capture-rule reordering search (paper introduction / [Ull85]).

#include "transform/reorder.h"

#include <gtest/gtest.h>

#include "interp/sld.h"
#include "program/parser.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(ReorderTest, AlreadyProvedIsUntouched) {
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  Result<ReorderResult> r = FindTerminatingOrder(p, "append(b,f,f)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proved);
  EXPECT_EQ(r->attempts, 1);
  EXPECT_TRUE(r->log.empty());
}

TEST(ReorderTest, MovesProducerBeforeRecursiveCall) {
  // As written, the recursive tc(Z,Y)... wait: t(X) :- t(Y), edge(X,Y).
  // calls t with an UNBOUND argument; moving edge(X,Y) first binds Y and
  // the supplied well-founded edge constraint proves termination.
  Program p = MustParse("t(X) :- t(Y), edge(X, Y). t(X) :- leafish(X).");
  ReorderOptions options;
  options.analysis.supplied_constraints = {{"edge/2", "a1 >= 1 + a2"}};
  Result<ReorderResult> r = FindTerminatingOrder(p, "t(b)", options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proved) << r->report.ToString();
  ASSERT_EQ(r->log.size(), 1u);
  EXPECT_NE(r->log[0].find("t(X) :- edge(X,Y), t(Y)."), std::string::npos)
      << r->log[0];
}

TEST(ReorderTest, QuicksortWithPartitionLast) {
  // Partition after the recursive calls: the recursive arguments are
  // unbound and unconstrained. The search must move part/4 to the front.
  Program p = MustParse(R"(
    qs([], []).
    qs([X|Xs], S) :- qs(L, SL), qs(G, SG), part(X, Xs, L, G),
                     append(SL, [X|SG], S).
    part(P, [], [], []).
    part(P, [X|Xs], [X|L], G) :- X =< P, part(P, Xs, L, G).
    part(P, [X|Xs], L, [X|G]) :- P < X, part(P, Xs, L, G).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  ReorderOptions options;
  options.max_attempts = 128;
  Result<ReorderResult> r = FindTerminatingOrder(p, "qs(b,f)", options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->proved) << r->report.ToString();
  // The reordered program must actually run top-down.
  Result<SldResult> run = RunQuery(r->program, "qs([3,1,2],S)");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcome, SldOutcome::kExhausted);
  EXPECT_EQ(run->num_solutions, 1u);
}

TEST(ReorderTest, HopelessProgramReportsNotProved) {
  Program p = MustParse("q(X) :- q(f(X)), e(X).");
  Result<ReorderResult> r = FindTerminatingOrder(p, "q(b)");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->proved);
  EXPECT_GE(r->attempts, 2);  // it did try the other order
}

TEST(ReorderTest, AttemptBudgetRespected) {
  Program p = MustParse(
      "q(X) :- a(X), b(X), c(X), d(X), q(f(X)).");
  ReorderOptions options;
  options.max_attempts = 5;
  Result<ReorderResult> r = FindTerminatingOrder(p, "q(b)", options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->proved);
  EXPECT_LE(r->attempts, 5);
}

TEST(ReorderTest, LongBodiesSkipped) {
  Program p = MustParse(
      "q(X) :- a(X), b(X), c(X), d(X), e(X), f(X), q(g(X)).");
  ReorderOptions options;
  options.max_body_length = 5;
  Result<ReorderResult> r = FindTerminatingOrder(p, "q(b)", options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->proved);
  EXPECT_EQ(r->attempts, 1);  // 7-literal body is out of scope
}

}  // namespace
}  // namespace termilog
