#include "core/rule_system.h"

#include <gtest/gtest.h>

#include "constraints/inference.h"
#include "program/parser.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

PredId Pred(const Program& p, const char* name, int arity) {
  return PredId{p.symbols().Lookup(name), arity};
}

TEST(RuleSystemTest, PaperExample31PermMatrices) {
  // Example 3.1: the a/A, b/B, c/C blocks for the perm rule.
  Program p = MustParse(R"(
    perm([], []).
    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  ArgSizeDb db;
  db.Set(Pred(p, "append", 3), ArgSizeDb::ParseSpec(3, "a1 + a2 = a3").value());
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "perm", 2)] = {Mode::kBound, Mode::kFree};
  modes[Pred(p, "append", 3)] = {Mode::kFree, Mode::kFree, Mode::kBound};
  RuleSystemBuilder builder(p, modes, db);
  // Rule index 1 is the recursive perm rule; subgoal index 2 is perm(P1,L).
  Result<RuleSubgoalSystem> sys = builder.BuildOne(1, 2);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();
  EXPECT_EQ(sys->nx(), 1);
  EXPECT_EQ(sys->ny(), 1);
  EXPECT_EQ(sys->num_imported(), 2);  // two append subgoals
  // phi = (P, X, L, E, F, P1): all logical variables, no slacks (equality
  // imports need none).
  EXPECT_EQ(sys->num_phi(), 6);
  // a = (0), A = row of 1 on P's column.
  EXPECT_EQ(sys->a[0], Rational(0));
  int p_col = -1, p1_col = -1, x_col = -1, e_col = -1, f_col = -1;
  for (int k = 0; k < sys->num_phi(); ++k) {
    if (sys->phi[k].name == "P") p_col = k;
    if (sys->phi[k].name == "P1") p1_col = k;
    if (sys->phi[k].name == "X") x_col = k;
    if (sys->phi[k].name == "E") e_col = k;
    if (sys->phi[k].name == "F") f_col = k;
  }
  ASSERT_GE(p_col, 0);
  ASSERT_GE(p1_col, 0);
  EXPECT_EQ(sys->A.At(0, p_col), Rational(1));
  EXPECT_EQ(sys->b[0], Rational(0));
  EXPECT_EQ(sys->B.At(0, p1_col), Rational(1));
  // First append import: 0 = 2 + E + X + F - P (the paper's c = [2],
  // C = [-1 1 0 1 1 0] row over (P,X,L,E,F,P1)); rows are equalities, so
  // compare up to a global sign.
  Rational sign = sys->c[0].sign() >= 0 ? Rational(1) : Rational(-1);
  EXPECT_EQ(sys->c[0] * sign, Rational(2));
  EXPECT_EQ(sys->C.At(0, e_col) * sign, Rational(1));
  EXPECT_EQ(sys->C.At(0, x_col) * sign, Rational(1));
  EXPECT_EQ(sys->C.At(0, f_col) * sign, Rational(1));
  EXPECT_EQ(sys->C.At(0, p_col) * sign, Rational(-1));
}

TEST(RuleSystemTest, PaperExample51MergeMatrices) {
  Program p = MustParse(R"(
    merge([], Ys, Ys).
    merge(Xs, [], Xs).
    merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
    merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
  )");
  ArgSizeDb db;
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "merge", 3)] = {Mode::kBound, Mode::kBound, Mode::kFree};
  RuleSystemBuilder builder(p, modes, db);
  Result<RuleSubgoalSystem> sys = builder.BuildOne(2, 1);
  ASSERT_TRUE(sys.ok());
  // Paper: a = (2,2), b = (2,0); C empty (X =< Y contributes nothing).
  EXPECT_EQ(sys->nx(), 2);
  EXPECT_EQ(sys->a[0], Rational(2));
  EXPECT_EQ(sys->a[1], Rational(2));
  EXPECT_EQ(sys->b[0], Rational(2));
  EXPECT_EQ(sys->b[1], Rational(0));
  EXPECT_EQ(sys->num_imported(), 0);
  // phi = (X, Xs, Y, Ys, Zs).
  EXPECT_EQ(sys->num_phi(), 5);
  EXPECT_TRUE(sys->A.AllNonNegative());
  EXPECT_TRUE(sys->B.AllNonNegative());
}

TEST(RuleSystemTest, InequalityImportGetsSlack) {
  // Example 6.1 rule 1: the t import t1 >= 2 + t2 becomes an equality with
  // one slack column.
  Program p = MustParse(R"(
    e(L, T) :- t(L, ['+'|C]), e(C, T).
    t(L, T) :- z(L, T).
  )");
  ArgSizeDb db;
  db.Set(Pred(p, "t", 2), ArgSizeDb::ParseSpec(2, "a1 >= 2 + a2").value());
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "e", 2)] = {Mode::kBound, Mode::kFree};
  modes[Pred(p, "t", 2)] = {Mode::kBound, Mode::kFree};
  RuleSystemBuilder builder(p, modes, db);
  Result<RuleSubgoalSystem> sys = builder.BuildOne(0, 1);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys->num_imported(), 1);
  // phi = (L, T, C) + one slack.
  EXPECT_EQ(sys->num_phi(), 4);
  EXPECT_EQ(sys->phi.back().kind, PhiVar::Kind::kSlack);
}

TEST(RuleSystemTest, BuildForSccFindsAllPairs) {
  Program p = MustParse(R"(
    ms([], []).
    ms([X,Y|Zs], S) :- split(Zs, Xs, Ys), ms([X|Xs], S1), ms([Y|Ys], S2).
    split([], [], []).
    split([X|Xs], [X|Ys], Zs) :- split(Xs, Zs, Ys).
  )");
  ArgSizeDb db;
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "ms", 2)] = {Mode::kBound, Mode::kFree};
  modes[Pred(p, "split", 3)] = {Mode::kBound, Mode::kFree, Mode::kFree};
  RuleSystemBuilder builder(p, modes, db);
  Result<std::vector<RuleSubgoalSystem>> systems =
      builder.BuildForScc({Pred(p, "ms", 2)});
  ASSERT_TRUE(systems.ok());
  EXPECT_EQ(systems->size(), 2u);  // the two recursive ms subgoals
  EXPECT_EQ((*systems)[0].subgoal_index, 1);
  EXPECT_EQ((*systems)[1].subgoal_index, 2);
}

TEST(RuleSystemTest, NegativePrecedingSubgoalDiscarded) {
  // Appendix D: \+ guard before the recursive call contributes nothing.
  Program p = MustParse(R"(
    f([X|Xs], Ys) :- \+ bad(X), f(Xs, Ys).
  )");
  ArgSizeDb db;
  db.Set(PredId{p.symbols().Lookup("bad"), 1},
         ArgSizeDb::ParseSpec(1, "a1 >= 100").value());
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "f", 2)] = {Mode::kBound, Mode::kFree};
  RuleSystemBuilder builder(p, modes, db);
  Result<RuleSubgoalSystem> sys = builder.BuildOne(0, 1);
  ASSERT_TRUE(sys.ok());
  EXPECT_EQ(sys->num_imported(), 0);
}

TEST(RuleSystemTest, NegativeRecursiveSubgoalTreatedAsPositive) {
  Program p = MustParse("win(X) :- move(X, Y), \\+ win(Y).");
  ArgSizeDb db;
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "win", 1)] = {Mode::kBound};
  RuleSystemBuilder builder(p, modes, db);
  Result<std::vector<RuleSubgoalSystem>> systems =
      builder.BuildForScc({Pred(p, "win", 1)});
  ASSERT_TRUE(systems.ok());
  ASSERT_EQ(systems->size(), 1u);
  EXPECT_EQ((*systems)[0].subgoal_index, 1);
}

TEST(RuleSystemTest, UnreachablePairGetsContradictoryImport) {
  // The preceding subgoal's knowledge is empty: the pair is encoded as
  // primal-infeasible (0 = 1).
  Program p = MustParse("q(X) :- r(X), q(X).");
  ArgSizeDb db;
  db.Set(PredId{p.symbols().Lookup("r"), 1}, Polyhedron::Empty(1));
  std::map<PredId, Adornment> modes;
  modes[Pred(p, "q", 1)] = {Mode::kBound};
  RuleSystemBuilder builder(p, modes, db);
  Result<RuleSubgoalSystem> sys = builder.BuildOne(0, 1);
  ASSERT_TRUE(sys.ok());
  ASSERT_EQ(sys->num_imported(), 1);
  EXPECT_EQ(sys->c[0], Rational(1));
  for (int k = 0; k < sys->num_phi(); ++k) {
    EXPECT_EQ(sys->C.At(0, k), Rational(0));
  }
}

}  // namespace
}  // namespace termilog
