#include "linalg/linear_expr.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

TEST(LinearExprTest, ZeroDefault) {
  LinearExpr e;
  EXPECT_TRUE(e.IsZero());
  EXPECT_TRUE(e.IsConstant());
  EXPECT_EQ(e.MaxVar(), -1);
}

TEST(LinearExprTest, VariableAndCoeffs) {
  LinearExpr e = LinearExpr::Variable(3);
  EXPECT_EQ(e.Coeff(3), Rational(1));
  EXPECT_EQ(e.Coeff(2), Rational(0));
  EXPECT_EQ(e.MaxVar(), 3);
  e.SetCoeff(3, Rational(0));
  EXPECT_TRUE(e.IsZero());
}

TEST(LinearExprTest, AdditionMergesTerms) {
  LinearExpr a = LinearExpr::Variable(0) + LinearExpr::Variable(1);
  LinearExpr b = LinearExpr::Variable(1) * Rational(2) + LinearExpr(Rational(5));
  LinearExpr sum = a + b;
  EXPECT_EQ(sum.Coeff(0), Rational(1));
  EXPECT_EQ(sum.Coeff(1), Rational(3));
  EXPECT_EQ(sum.constant(), Rational(5));
}

TEST(LinearExprTest, SubtractionCancelsToZero) {
  LinearExpr a = LinearExpr::Variable(0) * Rational(2) + LinearExpr(Rational(1));
  LinearExpr diff = a - a;
  EXPECT_TRUE(diff.IsZero());
  EXPECT_TRUE(diff.coeffs().empty());  // no stored zero entries
}

TEST(LinearExprTest, ScaleByZeroClears) {
  LinearExpr a = LinearExpr::Variable(0) + LinearExpr(Rational(7));
  EXPECT_TRUE((a * Rational(0)).IsZero());
}

TEST(LinearExprTest, Substitute) {
  // 2*x0 + x1 + 1 with x0 := x2 + 3  ->  2*x2 + x1 + 7.
  LinearExpr e = LinearExpr::Variable(0) * Rational(2) +
                 LinearExpr::Variable(1) + LinearExpr(Rational(1));
  LinearExpr replacement = LinearExpr::Variable(2) + LinearExpr(Rational(3));
  LinearExpr out = e.Substitute(0, replacement);
  EXPECT_EQ(out.Coeff(0), Rational(0));
  EXPECT_EQ(out.Coeff(1), Rational(1));
  EXPECT_EQ(out.Coeff(2), Rational(2));
  EXPECT_EQ(out.constant(), Rational(7));
}

TEST(LinearExprTest, SubstituteAbsentVarIsIdentity) {
  LinearExpr e = LinearExpr::Variable(1);
  EXPECT_EQ(e.Substitute(0, LinearExpr(Rational(9))), e);
}

TEST(LinearExprTest, Evaluate) {
  LinearExpr e = LinearExpr::Variable(0) * Rational(2) +
                 LinearExpr::Variable(2) * Rational(-1) +
                 LinearExpr(Rational(4));
  std::vector<Rational> point = {Rational(3), Rational(100), Rational(5)};
  EXPECT_EQ(e.Evaluate(point), Rational(5));  // 6 - 5 + 4
}

TEST(LinearExprTest, ToStringReadable) {
  LinearExpr e = LinearExpr(Rational(3)) + LinearExpr::Variable(0) +
                 LinearExpr::Variable(4) * Rational(2) +
                 LinearExpr::Variable(5) * Rational(-1);
  EXPECT_EQ(e.ToString(), "3 + x0 + 2*x4 - x5");
  LinearExpr zero;
  EXPECT_EQ(zero.ToString(), "0");
}

}  // namespace
}  // namespace termilog
