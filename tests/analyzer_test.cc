#include "core/analyzer.h"

#include <gtest/gtest.h>

#include "program/parser.h"
#include "util/failpoint.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TerminationReport MustAnalyze(const Program& program, const char* query,
                              AnalysisOptions options = AnalysisOptions()) {
  TerminationAnalyzer analyzer(std::move(options));
  Result<TerminationReport> report = analyzer.Analyze(program, query);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

TEST(AnalyzerTest, AppendProved) {
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  TerminationReport r = MustAnalyze(p, "append(b,f,f)");
  EXPECT_TRUE(r.proved) << r.ToString();
  ASSERT_EQ(r.sccs.size(), 1u);
  EXPECT_EQ(r.sccs[0].status, SccStatus::kProved);
  // The certificate assigns a positive weight to the single bound arg.
  const auto& theta = r.sccs[0].certificate.theta.begin()->second;
  ASSERT_EQ(theta.size(), 1u);
  EXPECT_GT(theta[0].sign(), 0);
}

TEST(AnalyzerTest, NonRecursiveProgramTriviallyProved) {
  Program p = MustParse("f(X) :- g(X). g(X) :- e(X).");
  TerminationReport r = MustAnalyze(p, "f(b)");
  EXPECT_TRUE(r.proved);
  for (const SccReport& scc : r.sccs) {
    EXPECT_EQ(scc.status, SccStatus::kNonRecursive);
  }
}

TEST(AnalyzerTest, GrowRejectedWithNonPositiveCycle) {
  Program p = MustParse("q(X) :- q(f(X)).");
  TerminationReport r = MustAnalyze(p, "q(b)");
  EXPECT_FALSE(r.proved);
  ASSERT_EQ(r.sccs.size(), 1u);
  EXPECT_EQ(r.sccs[0].status, SccStatus::kNonPositiveCycle);
}

TEST(AnalyzerTest, ZeroArityLoopRejected) {
  Program p = MustParse("p :- p.");
  TerminationReport r = MustAnalyze(p, "p()");
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.sccs[0].status, SccStatus::kNonPositiveCycle);
}

TEST(AnalyzerTest, AdornmentCloningRepairsConflicts) {
  // perm uses append under two adornments; the analyzer must clone and
  // still prove termination.
  Program p = MustParse(R"(
    perm([], []).
    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  TerminationReport r = MustAnalyze(p, "perm(b,f)");
  EXPECT_TRUE(r.proved) << r.ToString();
  // Two append clones must exist in the analyzed program.
  int clones = 0;
  for (const auto& [pred, adornment] : r.modes) {
    (void)adornment;
    std::string name =
        r.analyzed_program.symbols().Name(pred.symbol);
    if (name.rfind("append__", 0) == 0) ++clones;
  }
  EXPECT_EQ(clones, 2);
}

TEST(AnalyzerTest, SuppliedConstraintsWithoutInference) {
  // The paper's manual mode (Section 8): constraints supplied, inference
  // off.
  Program p = MustParse(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
  )");
  AnalysisOptions options;
  options.run_inference = false;
  options.supplied_constraints = {{"edge/2", "a1 >= 1 + a2"}};
  TerminationReport r = MustAnalyze(p, "tc(b,f)", options);
  EXPECT_TRUE(r.proved) << r.ToString();
}

TEST(AnalyzerTest, UnknownEdbNotProved) {
  Program p = MustParse(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Y) :- edge(X, Z), tc(Z, Y).
  )");
  TerminationReport r = MustAnalyze(p, "tc(b,f)");
  EXPECT_FALSE(r.proved);
  // With nothing known about edge, a = b = c = 0 for the recursive pair, so
  // the paper's step-1 rule forces delta_tc,tc = 0: a zero-weight self
  // cycle ("strong evidence of nontermination" -- indeed tc diverges on
  // cyclic EDB graphs).
  EXPECT_EQ(r.sccs.back().status, SccStatus::kNonPositiveCycle);
}

TEST(AnalyzerTest, CertificateValidationRuns) {
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  AnalysisOptions options;
  options.validate_certificates = true;
  TerminationReport r = MustAnalyze(p, "append(b,f,f)", options);
  ASSERT_TRUE(r.proved);
  bool noted = false;
  for (const std::string& note : r.sccs[0].notes) {
    if (note.find("validated") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(AnalyzerTest, NegativeDeltaModeProvesUpdown) {
  Program p = MustParse("a(X) :- b(g(X)). b(g(g(X))) :- a(X).");
  // Integral mode fails...
  TerminationReport integral = MustAnalyze(p, "a(b)");
  EXPECT_FALSE(integral.proved);
  // ...Appendix C mode succeeds.
  AnalysisOptions options;
  options.allow_negative_deltas = true;
  TerminationReport negative = MustAnalyze(p, "a(b)", options);
  EXPECT_TRUE(negative.proved) << negative.ToString();
  ASSERT_EQ(negative.sccs.size(), 1u);
  EXPECT_TRUE(negative.sccs[0].used_negative_deltas);
  // Some delta must actually be negative.
  bool has_negative = false;
  for (const auto& [edge, value] : negative.sccs[0].certificate.delta) {
    (void)edge;
    if (value.sign() < 0) has_negative = true;
  }
  EXPECT_TRUE(has_negative);
}

TEST(AnalyzerTest, QuerySpecErrors) {
  Program p = MustParse("p(a).");
  TerminationAnalyzer analyzer;
  EXPECT_FALSE(analyzer.Analyze(p, "nosuch(b)").ok());
  EXPECT_FALSE(analyzer.Analyze(p, "p(b,b)").ok());  // wrong arity
  EXPECT_FALSE(analyzer.Analyze(p, "p(x)").ok());    // bad mode letter
  EXPECT_FALSE(analyzer.Analyze(p, "p").ok());       // missing parens
}

TEST(AnalyzerTest, ReportToStringMentionsVerdictAndModes) {
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  TerminationReport r = MustAnalyze(p, "append(b,f,f)");
  std::string text = r.ToString();
  EXPECT_NE(text.find("TERMINATES"), std::string::npos);
  EXPECT_NE(text.find("append/3"), std::string::npos);
  EXPECT_NE(text.find("bff"), std::string::npos);
  EXPECT_NE(text.find("PROVED"), std::string::npos);
}

TEST(AnalyzerTest, MultipleSccsAnalyzedCalleesFirst) {
  Program p = MustParse(R"(
    outer([X|Xs]) :- inner(X), outer(Xs).
    inner(f(Y)) :- inner(Y).
    inner(a).
  )");
  TerminationReport r = MustAnalyze(p, "outer(b)");
  EXPECT_TRUE(r.proved);
  ASSERT_EQ(r.sccs.size(), 2u);
  // Callee SCC (inner) first.
  EXPECT_EQ(r.analyzed_program.symbols().Name(r.sccs[0].preds[0].symbol),
            "inner");
}

TEST(AnalyzerTest, BoundArgumentChoiceMatters) {
  // Terminates with the first argument bound, not provable with only the
  // second bound.
  Program p = MustParse("walk([X|Xs], Y) :- walk(Xs, f(Y)).");
  TerminationReport with_first = MustAnalyze(p, "walk(b,f)");
  EXPECT_TRUE(with_first.proved);
  TerminationReport with_second = MustAnalyze(p, "walk(f,b)");
  EXPECT_FALSE(with_second.proved);
}

TEST(AnalyzerTest, AnalyzeDeclaredModesRunsEachDirective) {
  // append terminates with the first argument bound AND with the third
  // bound (different adornments, different certificates); with all free it
  // enumerates forever.
  Program p = MustParse(R"(
    :- mode(append(b, f, f)).
    :- mode(append(f, f, b)).
    :- mode(append(f, f, f)).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  TerminationAnalyzer analyzer;
  auto reports = analyzer.AnalyzeDeclaredModes(p);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 3u);
  EXPECT_TRUE((*reports)[0].second.proved);   // bff: first arg descends
  EXPECT_TRUE((*reports)[1].second.proved);   // ffb: third arg descends
  EXPECT_FALSE((*reports)[2].second.proved);  // fff: nothing bound
}

TEST(AnalyzerTest, AnalyzeDeclaredModesNeedsDirectives) {
  Program p = MustParse("p(a).");
  TerminationAnalyzer analyzer;
  EXPECT_FALSE(analyzer.AnalyzeDeclaredModes(p).ok());
}

bool HasNoteContaining(const std::vector<std::string>& notes,
                       const char* needle) {
  for (const std::string& note : notes) {
    if (note.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(AnalyzerDegradation, TinyWorkBudgetProducesValidPartialReport) {
  // A genuinely exhausted budget (not a failpoint): Analyze must still
  // return a well-formed report where every starved SCC is RESOURCE_LIMIT
  // with a spend snapshot, never an error Status.
  Program p = MustParse(R"(
    rev([], []).
    rev([X|Xs], Ys) :- rev(Xs, Zs), append(Zs, [X], Ys).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  AnalysisOptions options;
  options.run_inference = false;
  options.limits.work_budget = 1;
  TerminationAnalyzer analyzer(options);
  Result<TerminationReport> r = analyzer.Analyze(p, "rev(b,f)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->proved);
  EXPECT_TRUE(r->resource_limited);
  EXPECT_FALSE(r->first_resource_trip.empty());
  int limited = 0;
  for (const SccReport& scc : r->sccs) {
    if (scc.status != SccStatus::kResourceLimit) continue;
    ++limited;
    EXPECT_TRUE(HasNoteContaining(scc.notes, "resource spend:"))
        << r->ToString();
  }
  EXPECT_GE(limited, 1);
}

#ifdef TERMILOG_FAILPOINTS_ENABLED

TEST(AnalyzerDegradation, DualBuildTripDegradesOneSccOnly) {
  // rev calls append, and SCCs are analyzed callees first, so the single
  // forced dual.build failure lands on append's SCC. rev's own descent
  // (first argument shrinks) needs nothing from append, so its SCC must
  // still get a real PROVED verdict.
  Program p = MustParse(R"(
    rev([], []).
    rev([X|Xs], Ys) :- rev(Xs, Zs), append(Zs, [X], Ys).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  ScopedFailpoint fp("dual.build", /*max_fails=*/1);
  TerminationReport r = MustAnalyze(p, "rev(b,f)");
  EXPECT_FALSE(r.proved);
  EXPECT_TRUE(r.resource_limited);
  EXPECT_FALSE(r.first_resource_trip.empty());
  int limited = 0;
  int proved = 0;
  for (const SccReport& scc : r.sccs) {
    if (scc.status == SccStatus::kResourceLimit) {
      ++limited;
      EXPECT_TRUE(HasNoteContaining(scc.notes, "resource spend:"))
          << r.ToString();
    }
    if (scc.status == SccStatus::kProved) ++proved;
  }
  EXPECT_EQ(limited, 1) << r.ToString();
  EXPECT_EQ(proved, 1) << r.ToString();
}

TEST(AnalyzerDegradation, PivotTripBecomesResourceLimitNotNotProved) {
  // A pivot-limit outcome is "unanswered", not "condition failed": the SCC
  // must be RESOURCE_LIMIT, never a silent NOT_PROVED.
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  AnalysisOptions options;
  options.run_inference = false;
  TerminationAnalyzer analyzer(options);
  ScopedFailpoint fp("lp.pivot");
  Result<TerminationReport> r = analyzer.Analyze(p, "append(b,f,f)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->sccs.size(), 1u);
  EXPECT_EQ(r->sccs[0].status, SccStatus::kResourceLimit) << r->ToString();
  EXPECT_TRUE(r->resource_limited);
}

TEST(AnalyzerDegradation, TransformTripFallsBackToUntransformedProgram) {
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  AnalysisOptions options;
  options.apply_transformations = true;
  ScopedFailpoint fp("transform.pipeline");
  TerminationReport r = MustAnalyze(p, "append(b,f,f)", options);
  EXPECT_TRUE(r.proved) << r.ToString();
  EXPECT_TRUE(r.resource_limited);
  EXPECT_TRUE(HasNoteContaining(r.notes, "transformations abandoned"))
      << r.ToString();
}

TEST(AnalyzerDegradation, InferenceTripLeavesPredicatesUnconstrained) {
  // A budget trip during constraint inference leaves the predicates out of
  // the ArgSizeDb (the sound top approximation) and warns; append's direct
  // structural descent still proves.
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  ScopedFailpoint fp("inference.sweep");
  TerminationReport r = MustAnalyze(p, "append(b,f,f)");
  EXPECT_TRUE(r.proved) << r.ToString();
  EXPECT_TRUE(r.resource_limited);
  EXPECT_TRUE(HasNoteContaining(r.notes, "inference skipped for SCC"))
      << r.ToString();
}

TEST(AnalyzerDegradation, DeclaredModesIsolateResourceTrips) {
  Program p = MustParse(R"(
    :- mode(append(b, f, f)).
    :- mode(append(f, f, b)).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  ScopedFailpoint fp("analyzer.scc", /*max_fails=*/1);
  TerminationAnalyzer analyzer;
  auto reports = analyzer.AnalyzeDeclaredModes(p);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 2u);
  // The forced trip lands on the first mode's only SCC; the second mode's
  // analysis is untouched.
  EXPECT_FALSE((*reports)[0].second.proved);
  EXPECT_TRUE((*reports)[0].second.resource_limited);
  EXPECT_TRUE((*reports)[1].second.proved)
      << (*reports)[1].second.ToString();
  EXPECT_FALSE((*reports)[1].second.resource_limited);
}

#endif  // TERMILOG_FAILPOINTS_ENABLED

TEST(AnalyzerTest, SecondArgumentDescent) {
  Program p = MustParse(R"(
    subseq([], []).
    subseq([X|T], [X|S]) :- subseq(T, S).
    subseq(T, [X|S]) :- subseq(T, S).
  )");
  TerminationReport r = MustAnalyze(p, "subseq(f,b)");
  EXPECT_TRUE(r.proved) << r.ToString();
}

}  // namespace
}  // namespace termilog
