#include "term/unify.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

class UnifyTest : public ::testing::Test {
 protected:
  TermPtr Var(int v) { return Term::MakeVariable(v); }
  TermPtr C(const char* name) {
    return Term::MakeConstant(symbols_.Intern(name));
  }
  TermPtr F(const char* name, std::vector<TermPtr> args) {
    return Term::MakeCompound(symbols_.Intern(name), std::move(args));
  }
  SymbolTable symbols_;
};

TEST_F(UnifyTest, VariableBindsToConstant) {
  Substitution s;
  EXPECT_TRUE(s.Unify(Var(0), C("a")));
  EXPECT_TRUE(Term::Equal(s.Apply(Var(0)), C("a")));
}

TEST_F(UnifyTest, SymmetricBinding) {
  Substitution s;
  EXPECT_TRUE(s.Unify(C("a"), Var(0)));
  EXPECT_TRUE(Term::Equal(s.Apply(Var(0)), C("a")));
}

TEST_F(UnifyTest, FunctorClashFails) {
  Substitution s;
  EXPECT_FALSE(s.Unify(C("a"), C("b")));
  Substitution s2;
  EXPECT_FALSE(s2.Unify(F("f", {Var(0)}), F("g", {Var(0)})));
  Substitution s3;
  EXPECT_FALSE(s3.Unify(F("f", {Var(0)}), F("f", {Var(0), Var(1)})));
}

TEST_F(UnifyTest, ChainedVariables) {
  Substitution s;
  EXPECT_TRUE(s.Unify(Var(0), Var(1)));
  EXPECT_TRUE(s.Unify(Var(1), C("a")));
  EXPECT_TRUE(Term::Equal(s.Apply(Var(0)), C("a")));
}

TEST_F(UnifyTest, StructuralDecomposition) {
  // f(X, g(Y)) = f(a, g(b)).
  Substitution s;
  EXPECT_TRUE(s.Unify(F("f", {Var(0), F("g", {Var(1)})}),
                      F("f", {C("a"), F("g", {C("b")})})));
  EXPECT_TRUE(Term::Equal(s.Apply(Var(0)), C("a")));
  EXPECT_TRUE(Term::Equal(s.Apply(Var(1)), C("b")));
}

TEST_F(UnifyTest, SharedVariableConstraint) {
  // f(X, X) = f(a, b) must fail.
  Substitution s;
  EXPECT_FALSE(s.Unify(F("f", {Var(0), Var(0)}), F("f", {C("a"), C("b")})));
  // f(X, X) = f(Y, a) binds both to a.
  Substitution s2;
  EXPECT_TRUE(s2.Unify(F("f", {Var(0), Var(0)}), F("f", {Var(1), C("a")})));
  EXPECT_TRUE(Term::Equal(s2.Apply(Var(1)), C("a")));
}

TEST_F(UnifyTest, OccursCheck) {
  Substitution with;
  EXPECT_FALSE(with.Unify(Var(0), F("f", {Var(0)}), /*occurs_check=*/true));
  Substitution without;
  EXPECT_TRUE(without.Unify(Var(0), F("f", {Var(0)}),
                            /*occurs_check=*/false));
}

TEST_F(UnifyTest, SelfUnifyVariable) {
  Substitution s;
  EXPECT_TRUE(s.Unify(Var(0), Var(0)));
  EXPECT_EQ(s.size(), 0u);
}

TEST_F(UnifyTest, UnifiableDoesNotLeakBindings) {
  EXPECT_TRUE(Unifiable(Var(0), C("a")));
  EXPECT_FALSE(Unifiable(C("a"), C("b")));
}

TEST_F(UnifyTest, OffsetVariables) {
  TermPtr t = F("f", {Var(0), F("g", {Var(2)})});
  TermPtr shifted = OffsetVariables(t, 10);
  std::set<int> vars;
  shifted->CollectVariables(&vars);
  EXPECT_EQ(vars, (std::set<int>{10, 12}));
}

TEST_F(UnifyTest, ApplyIsIdempotent) {
  Substitution s;
  ASSERT_TRUE(s.Unify(Var(0), F("f", {Var(1)})));
  ASSERT_TRUE(s.Unify(Var(1), C("a")));
  TermPtr once = s.Apply(Var(0));
  TermPtr twice = s.Apply(once);
  EXPECT_TRUE(Term::Equal(once, twice));
  EXPECT_TRUE(once->IsGround());
}

}  // namespace
}  // namespace termilog
