// Cross-module integration checks: analyzer verdicts vs interpreter
// behaviour, certificate semantics along real derivations, and the
// manual-vs-inferred constraint modes agreeing.

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "corpus/corpus.h"
#include "interp/sld.h"
#include "program/parser.h"
#include "term/size.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

TEST(IntegrationTest, ProvedProgramsExhaustSearchOnLargeInputs) {
  Program p = MustParse(R"(
    qs([], []).
    qs([X|Xs], S) :- part(X, Xs, L, G), qs(L, SL), qs(G, SG),
                     append(SL, [X|SG], S).
    part(P, [], [], []).
    part(P, [X|Xs], [X|L], G) :- X =< P, part(P, Xs, L, G).
    part(P, [X|Xs], L, [X|G]) :- P < X, part(P, Xs, L, G).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> report = analyzer.Analyze(p, "qs(b,f)");
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->proved) << report->ToString();
  SldResult r =
      RunQuery(p, "qs([9,3,7,1,8,2,6,4,5,10,0],S)").value();
  EXPECT_EQ(r.outcome, SldOutcome::kExhausted);
  EXPECT_EQ(r.num_solutions, 1u);
  EXPECT_EQ(r.solutions[0]->args()[1]->ToString(p.symbols()),
            "[0,1,2,3,4,5,6,7,8,9,10]");
}

TEST(IntegrationTest, CertificateDecreasesAlongConcreteDerivation) {
  // For append with theta from the certificate, the measured level
  // theta . |bound args| strictly decreases call by call.
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> report = analyzer.Analyze(p, "append(b,f,f)");
  ASSERT_TRUE(report.ok() && report->proved);
  const auto& theta = report->sccs[0].certificate.theta.begin()->second;
  ASSERT_EQ(theta.size(), 1u);
  // Simulate the call chain append([a,b,c],...) -> append([b,c],...) -> ...
  std::vector<int64_t> arg_sizes = {6, 4, 2, 0};
  for (size_t i = 0; i + 1 < arg_sizes.size(); ++i) {
    Rational level_here = theta[0] * Rational(arg_sizes[i]);
    Rational level_next = theta[0] * Rational(arg_sizes[i + 1]);
    EXPECT_GE(level_here - level_next, Rational(1));  // delta_ii = 1
  }
}

TEST(IntegrationTest, ManualAndInferredConstraintsAgreeOnPerm) {
  const char* source = R"(
    perm([], []).
    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )";
  // Mode 1: automatic inference.
  {
    Program p = MustParse(source);
    TerminationAnalyzer analyzer;
    Result<TerminationReport> r = analyzer.Analyze(p, "perm(b,f)");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->proved);
  }
  // Mode 2: the paper's manual mode with the constraint supplied for both
  // adornment clones.
  {
    Program p = MustParse(source);
    AnalysisOptions options;
    options.run_inference = false;
    options.supplied_constraints = {
        {"append__ffb/3", "a1 + a2 = a3"},
        {"append__bbf/3", "a1 + a2 = a3"},
        {"append/3", "a1 + a2 = a3"}};
    TerminationAnalyzer analyzer(options);
    Result<TerminationReport> r = analyzer.Analyze(p, "perm(b,f)");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->proved) << r->ToString();
  }
}

TEST(IntegrationTest, TransformationsPreserveSolutions) {
  // Example A.1 transformed and raw agree on concrete query answers.
  const char* source = R"(
    p(g(X)) :- e(X).
    p(g(X)) :- q(f(X)).
    q(Y) :- p(Y).
    q(f(Z)) :- p(Z), q(Z).
    e(a). e(f(g(a))).
  )";
  Program raw = MustParse(source);
  AnalysisOptions options;
  options.apply_transformations = true;
  TerminationAnalyzer analyzer(options);
  Result<TerminationReport> report = analyzer.Analyze(raw, "p(b)");
  ASSERT_TRUE(report.ok());
  Program transformed = report->analyzed_program;
  for (const char* query : {"p(g(a))", "p(g(f(g(a))))", "p(g(b))", "p(a)"}) {
    SldOptions sld;
    sld.max_depth = 300;
    Result<SldResult> raw_result = RunQuery(raw, query, sld);
    Result<SldResult> transformed_result = RunQuery(transformed, query, sld);
    ASSERT_TRUE(raw_result.ok() && transformed_result.ok());
    ASSERT_EQ(raw_result->outcome, SldOutcome::kExhausted) << query;
    ASSERT_EQ(transformed_result->outcome, SldOutcome::kExhausted) << query;
    EXPECT_EQ(raw_result->num_solutions > 0,
              transformed_result->num_solutions > 0)
        << query;
  }
}

TEST(IntegrationTest, NotProvedDoesNotMeanNonterminating) {
  // Ackermann terminates on small inputs even though the analyzer cannot
  // prove it (sufficient condition only).
  Program p = MustParse(R"(
    ack(z, N, s(N)).
    ack(s(M), z, R) :- ack(M, s(z), R).
    ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).
  )");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> report = analyzer.Analyze(p, "ack(b,b,f)");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->proved);
  SldResult r = RunQuery(p, "ack(s(s(z)), s(s(z)), R)").value();
  EXPECT_EQ(r.outcome, SldOutcome::kExhausted);
  EXPECT_EQ(r.num_solutions, 1u);
}

TEST(IntegrationTest, NonPositiveCycleProgramsActuallyDiverge) {
  Program p = MustParse("q(X) :- q(f(X)).");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> report = analyzer.Analyze(p, "q(b)");
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->sccs[0].status, SccStatus::kNonPositiveCycle);
  SldOptions sld;
  sld.max_depth = 500;
  SldResult r = RunQuery(p, "q(a)", sld).value();
  EXPECT_NE(r.outcome, SldOutcome::kExhausted);
}

TEST(IntegrationTest, WholeCorpusStyleEndToEnd) {
  // gcd end-to-end: proved, and the interpreter computes gcd(4,6) = 2.
  Program p = MustParse(R"(
    minus(X, z, X).
    minus(s(X), s(Y), Z) :- minus(X, Y, Z).
    leq(z, Y).
    leq(s(X), s(Y)) :- leq(X, Y).
    gcd(X, z, X).
    gcd(z, Y, Y).
    gcd(s(X), s(Y), G) :- leq(X, Y), minus(Y, X, D), gcd(s(X), D, G).
    gcd(s(X), s(Y), G) :- leq(s(Y), X), minus(X, Y, D), gcd(D, s(Y), G).
  )");
  TerminationAnalyzer analyzer;
  Result<TerminationReport> report = analyzer.Analyze(p, "gcd(b,b,f)");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->proved) << report->ToString();
  SldResult r = RunQuery(
      p, "gcd(s(s(s(s(z)))), s(s(s(s(s(s(z)))))), G)").value();
  EXPECT_EQ(r.outcome, SldOutcome::kExhausted);
  ASSERT_GE(r.num_solutions, 1u);
  EXPECT_EQ(r.solutions[0]->args()[2]->ToString(p.symbols()), "s(s(z))");
}

// Runs every corpus entry under `limits` and checks the degradation
// contract: Analyze never errors, every RESOURCE_LIMIT SCC carries a spend
// note, and a resource-limited report names its first trip.
void SweepCorpusUnderBudget(const GovernorLimits& limits,
                            bool expect_a_trip) {
  int resource_limited_entries = 0;
  for (const CorpusEntry& entry : Corpus()) {
    Result<Program> program = ParseProgram(entry.source);
    ASSERT_TRUE(program.ok()) << entry.name;
    AnalysisOptions options;
    options.apply_transformations = entry.needs_transformations;
    options.allow_negative_deltas = entry.needs_negative_deltas;
    options.supplied_constraints = entry.supplied_constraints;
    options.limits = limits;
    TerminationAnalyzer analyzer(options);
    Result<TerminationReport> report =
        analyzer.Analyze(*program, entry.query);
    ASSERT_TRUE(report.ok())
        << entry.name << ": " << report.status().ToString();
    EXPECT_FALSE(report->ToString().empty());
    if (report->resource_limited) {
      ++resource_limited_entries;
      EXPECT_FALSE(report->first_resource_trip.empty()) << entry.name;
    }
    for (const SccReport& scc : report->sccs) {
      if (scc.status != SccStatus::kResourceLimit) continue;
      EXPECT_TRUE(report->resource_limited) << entry.name;
      bool has_spend = false;
      for (const std::string& note : scc.notes) {
        if (note.find("resource spend:") != std::string::npos) {
          has_spend = true;
        }
      }
      EXPECT_TRUE(has_spend) << entry.name << "\n" << report->ToString();
    }
    // A budget trip must never flip a verdict to PROVED spuriously: when
    // the ground truth is nontermination, the partial report still must
    // not prove.
    if (!entry.terminating) {
      EXPECT_FALSE(report->proved) << entry.name;
    }
  }
  // A tiny work budget must actually bite somewhere on a 47-program
  // corpus — otherwise this sweep tests nothing. (Wall-clock and limb
  // budgets depend on the machine, so their sweeps only check the
  // contract.)
  if (expect_a_trip) {
    EXPECT_GE(resource_limited_entries, 1);
  }
}

TEST(IntegrationTest, CorpusSweepUnderTinyWorkBudget) {
  GovernorLimits limits;
  limits.work_budget = 200;
  SweepCorpusUnderBudget(limits, /*expect_a_trip=*/true);
}

TEST(IntegrationTest, CorpusSweepUnderMillisecondDeadline) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  SweepCorpusUnderBudget(limits, /*expect_a_trip=*/false);
}

TEST(IntegrationTest, CorpusSweepUnderLimbLimit) {
  GovernorLimits limits;
  limits.bigint_limb_limit = 8;
  SweepCorpusUnderBudget(limits, /*expect_a_trip=*/false);
}

}  // namespace
}  // namespace termilog
