#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace termilog {
namespace {

Constraint Ge(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row;
  for (int64_t c : coeffs) row.coeffs.emplace_back(c);
  row.constant = Rational(constant);
  row.rel = Relation::kGe;
  return row;
}

Constraint Eq(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row = Ge(std::move(coeffs), constant);
  row.rel = Relation::kEq;
  return row;
}

std::vector<Rational> Obj(std::vector<int64_t> values) {
  std::vector<Rational> out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

TEST(SimplexTest, SimpleMaximize) {
  // max x0 + x1 s.t. x0 + 2 x1 <= 4, 3 x0 + x1 <= 6, x >= 0.
  ConstraintSystem sys(2);
  sys.Add(Ge({-1, -2}, 4));
  sys.Add(Ge({-3, -1}, 6));
  LpResult r = SimplexSolver::Maximize(sys, Obj({1, 1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(14, 5));  // x = (8/5, 6/5)
}

TEST(SimplexTest, SimpleMinimize) {
  // min x0 s.t. x0 >= 3.
  ConstraintSystem sys(1);
  sys.Add(Ge({1}, -3));
  LpResult r = SimplexSolver::Minimize(sys, Obj({1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(3));
  EXPECT_EQ(r.point[0], Rational(3));
}

TEST(SimplexTest, InfeasibleDetected) {
  // x0 >= 3 and x0 <= 1.
  ConstraintSystem sys(1);
  sys.Add(Ge({1}, -3));
  sys.Add(Ge({-1}, 1));
  EXPECT_EQ(SimplexSolver::FindFeasible(sys).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x0 with no upper bound.
  ConstraintSystem sys(1);
  sys.Add(Ge({1}, 0));
  EXPECT_EQ(SimplexSolver::Maximize(sys, Obj({1})).status,
            LpStatus::kUnbounded);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x0 + x1 s.t. x0 + x1 = 10, x0 - x1 = 2.
  ConstraintSystem sys(2);
  sys.Add(Eq({1, 1}, -10));
  sys.Add(Eq({1, -1}, -2));
  LpResult r = SimplexSolver::Minimize(sys, Obj({1, 1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.point[0], Rational(6));
  EXPECT_EQ(r.point[1], Rational(4));
}

TEST(SimplexTest, FreeVariablesCanGoNegative) {
  // min x0 s.t. x0 >= -5 with x0 free.
  ConstraintSystem sys(1);
  sys.Add(Ge({1}, 5));
  LpResult r = SimplexSolver::Minimize(sys, Obj({1}), {true});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(-5));
}

TEST(SimplexTest, FreeVariableEquality) {
  // x0 free, x1 >= 0: x0 + x1 = -3, min x1 -> x1 = 0, x0 = -3.
  ConstraintSystem sys(2);
  sys.Add(Eq({1, 1}, 3));
  LpResult r = SimplexSolver::Minimize(sys, Obj({0, 1}), {true, false});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.point[0], Rational(-3));
  EXPECT_EQ(r.point[1], Rational(0));
}

TEST(SimplexTest, ExactRationalOptimum) {
  // max 2 x0 + 3 x1 s.t. 3 x0 + 4 x1 <= 1, x >= 0 -> 3/4 at (0, 1/4).
  ConstraintSystem sys(2);
  sys.Add(Ge({-3, -4}, 1));
  LpResult r = SimplexSolver::Maximize(sys, Obj({2, 3}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(3, 4));
}

TEST(SimplexTest, RedundantRowsHandled) {
  ConstraintSystem sys(2);
  sys.Add(Eq({1, 1}, -4));
  sys.Add(Eq({2, 2}, -8));  // same hyperplane
  LpResult r = SimplexSolver::Minimize(sys, Obj({1, 0}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(0));
}

TEST(SimplexTest, DegenerateCyclingGuard) {
  // Klee-Minty-flavored degenerate system; Bland's rule must terminate.
  ConstraintSystem sys(3);
  sys.Add(Ge({-1, 0, 0}, 5));
  sys.Add(Ge({-4, -1, 0}, 25));
  sys.Add(Ge({-8, -4, -1}, 125));
  LpResult r = SimplexSolver::Maximize(sys, Obj({4, 2, 1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(125));
}

TEST(SimplexTest, FeasiblePointSatisfiesSystem) {
  ConstraintSystem sys(3);
  sys.Add(Ge({1, 1, 1}, -6));
  sys.Add(Ge({-1, 2, 0}, 3));
  sys.Add(Eq({0, 1, -1}, 0));
  LpResult r = SimplexSolver::FindFeasible(sys);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_TRUE(sys.SatisfiedBy(r.point));
}

TEST(SimplexTest, MinimizeEqualsNegatedMaximize) {
  ConstraintSystem sys(2);
  sys.Add(Ge({-1, -1}, 10));
  LpResult mx = SimplexSolver::Maximize(sys, Obj({3, 2}));
  LpResult mn = SimplexSolver::Minimize(sys, Obj({-3, -2}));
  ASSERT_EQ(mx.status, LpStatus::kOptimal);
  ASSERT_EQ(mn.status, LpStatus::kOptimal);
  EXPECT_EQ(mx.objective, -mn.objective);
}

TEST(SimplexTest, ExhaustedGovernorYieldsPivotLimit) {
  // A governor that has already tripped makes the solve return kPivotLimit
  // before the first pivot — the resource outcome, never a wrong verdict.
  GovernorLimits limits;
  limits.work_budget = 1;
  ResourceGovernor governor(limits);
  ASSERT_TRUE(governor.Charge("setup").ok());
  ASSERT_FALSE(governor.Charge("setup").ok());  // pre-exhaust
  ConstraintSystem sys(2);
  sys.Add(Ge({-1, -2}, 4));
  sys.Add(Ge({-3, -1}, 6));
  LpResult r = SimplexSolver::Minimize(sys, Obj({1, 1}), {}, &governor);
  EXPECT_EQ(r.status, LpStatus::kPivotLimit);
  EXPECT_EQ(SimplexSolver::FindFeasible(sys, {}, &governor).status,
            LpStatus::kPivotLimit);
}

#ifdef TERMILOG_FAILPOINTS_ENABLED
TEST(SimplexTest, PivotFailpointForcesPivotLimit) {
  ScopedFailpoint fp("lp.pivot");
  ConstraintSystem sys(1);
  sys.Add(Ge({1}, -3));
  LpResult r = SimplexSolver::Minimize(sys, Obj({1}));
  EXPECT_EQ(r.status, LpStatus::kPivotLimit);
}
#endif

TEST(SimplexTest, RowGcdScalingLeavesResultsUnchanged) {
  // Scaling input rows by large positive factors does not change the
  // feasible set; AddRow's gcd normalization must collapse the scaled rows
  // so the objective AND the solution point come out identical.
  auto scale = [](Constraint row, int64_t factor) {
    for (Rational& c : row.coeffs) c = c * Rational(factor);
    row.constant = row.constant * Rational(factor);
    return row;
  };
  ConstraintSystem plain(2);
  plain.Add(Ge({-1, -2}, 4));
  plain.Add(Ge({-3, -1}, 6));
  plain.Add(Eq({1, -1}, 0));
  ConstraintSystem scaled(2);
  scaled.Add(scale(Ge({-1, -2}, 4), 1000003));
  scaled.Add(scale(Ge({-3, -1}, 6), 999999999989));
  scaled.Add(scale(Eq({1, -1}, 0), 77));
  LpResult a = SimplexSolver::Maximize(plain, Obj({1, 1}));
  LpResult b = SimplexSolver::Maximize(scaled, Obj({1, 1}));
  ASSERT_EQ(a.status, LpStatus::kOptimal);
  ASSERT_EQ(b.status, LpStatus::kOptimal);
  EXPECT_EQ(a.objective, b.objective);
  ASSERT_EQ(a.point.size(), b.point.size());
  for (size_t i = 0; i < a.point.size(); ++i) {
    EXPECT_EQ(a.point[i], b.point[i]) << "x" << i;
  }
  // Fractional rows normalize too: 1/6 x0 + 1/3 x1 <= 2/3 is the same row
  // as x0 + 2 x1 <= 4.
  ConstraintSystem fractional(2);
  Constraint frac;
  frac.rel = Relation::kGe;
  frac.coeffs = {Rational(-1, 6), Rational(-1, 3)};
  frac.constant = Rational(2, 3);
  fractional.Add(std::move(frac));
  fractional.Add(Ge({-3, -1}, 6));
  fractional.Add(Eq({1, -1}, 0));
  LpResult c = SimplexSolver::Maximize(fractional, Obj({1, 1}));
  ASSERT_EQ(c.status, LpStatus::kOptimal);
  EXPECT_EQ(a.objective, c.objective);
}

TEST(SimplexTest, DualityGapIsZero) {
  // Primal: min c.x st Ax >= b, x >= 0; dual: max b.y st A^T y <= c, y>=0.
  // A = [[1,2],[3,1]], b = (4,6), c = (5,4).
  ConstraintSystem primal(2);
  primal.Add(Ge({1, 2}, -4));
  primal.Add(Ge({3, 1}, -6));
  LpResult p = SimplexSolver::Minimize(primal, Obj({5, 4}));
  ConstraintSystem dual(2);
  dual.Add(Ge({-1, -3}, 5));
  dual.Add(Ge({-2, -1}, 4));
  LpResult d = SimplexSolver::Maximize(dual, Obj({4, 6}));
  ASSERT_EQ(p.status, LpStatus::kOptimal);
  ASSERT_EQ(d.status, LpStatus::kOptimal);
  EXPECT_EQ(p.objective, d.objective);
}

}  // namespace
}  // namespace termilog
