// Termination-condition inference suite (docs/conditions.md): the mode
// lattice and frontier antichains, sweep results on known programs,
// pruning soundness against brute-force enumeration, byte-identity of
// the JSON report across --jobs, warm persistent-store reuse, and the
// generator's exact expect_modes declarations.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "condinf/condinf.h"
#include "condinf/lattice.h"
#include "engine/engine.h"
#include "gen/gen.h"
#include "persist/store.h"
#include "program/parser.h"

namespace termilog {
namespace condinf {
namespace {

constexpr const char* kAppendSource =
    "app([],L,L).\n"
    "app([H|T],L,[H|R]) :- app(T,L,R).\n";

// Arity-4 descent on the first argument only: the sweep's necessity probe
// (fbbb fails) closes the whole no-first-arg half of the lattice, and the
// bfff evaluation closes the other half, so most of the 16 patterns are
// implied rather than analyzed.
constexpr const char* kWalk4Source =
    "walk([],_,_,_).\n"
    "walk([X|T],A,B,C) :- walk(T,A,B,C).\n";

Program MustParse(const std::string& source) {
  Result<Program> parsed = ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(*parsed);
}

ConditionsReport SweepOne(BatchEngine& engine, const std::string& name,
                          const std::string& source,
                          ConditionsOptions options = {}) {
  std::vector<ConditionsSweep> sweeps;
  sweeps.emplace_back(name, MustParse(source), options);
  std::vector<ConditionsReport> reports = RunConditionsSweeps(engine, sweeps);
  EXPECT_EQ(reports.size(), 1u);
  return std::move(reports[0]);
}

const PredConditions& FindPred(const ConditionsReport& report,
                               const std::string& name) {
  for (const PredConditions& pc : report.preds) {
    if (pc.name == name) return pc;
  }
  ADD_FAILURE() << "predicate " << name << " missing from report "
                << report.name;
  static const PredConditions kEmpty;
  return kEmpty;
}

TEST(ModeLatticeTest, OrderAndConversions) {
  EXPECT_EQ(TopMode(0), 0u);
  EXPECT_EQ(TopMode(3), 0b111u);
  EXPECT_TRUE(ModeLeq(0b001, 0b011));
  EXPECT_FALSE(ModeLeq(0b100, 0b011));
  EXPECT_TRUE(ModeLeq(0b101, 0b101));
  EXPECT_EQ(BoundCount(0b1011), 3);
  EXPECT_EQ(ModeBitsToString(0b101, 3), "bfb");
  EXPECT_EQ(AdornmentToBits(BitsToAdornment(0b110, 3)), 0b110u);
  Adornment adornment = BitsToAdornment(0b01, 2);
  EXPECT_EQ(adornment[0], Mode::kBound);
  EXPECT_EQ(adornment[1], Mode::kFree);
}

TEST(ModeFrontierTest, AntichainsAbsorbDominatedEntries) {
  ModeFrontier frontier;
  frontier.RecordProved(0b111);
  frontier.RecordProved(0b011);  // weaker: replaces 0b111
  frontier.RecordProved(0b101);  // incomparable with 0b011: kept
  ASSERT_EQ(frontier.minimal_proved().size(), 2u);
  EXPECT_EQ(frontier.minimal_proved()[0], 0b011u);
  EXPECT_EQ(frontier.minimal_proved()[1], 0b101u);
  EXPECT_TRUE(frontier.ImpliedProved(0b111));
  EXPECT_TRUE(frontier.ImpliedProved(0b011));
  EXPECT_FALSE(frontier.ImpliedProved(0b010));

  frontier.RecordFailed(0b000);
  frontier.RecordFailed(0b010);  // stronger failure: replaces 0b000
  ASSERT_EQ(frontier.maximal_failed().size(), 1u);
  EXPECT_EQ(frontier.maximal_failed()[0], 0b010u);
  EXPECT_TRUE(frontier.ImpliedFailed(0b000));
  EXPECT_TRUE(frontier.ImpliedFailed(0b010));
  EXPECT_FALSE(frontier.ImpliedFailed(0b110));
}

TEST(ConditionsSweepTest, AppendMinimalModes) {
  BatchEngine engine;
  ConditionsReport report = SweepOne(engine, "append", kAppendSource);
  EXPECT_TRUE(report.status.ok());
  ASSERT_EQ(report.preds.size(), 1u);
  const PredConditions& pc = report.preds[0];
  EXPECT_EQ(pc.name, "app/3");
  ASSERT_EQ(pc.minimal_modes.size(), 2u);
  EXPECT_EQ(ModeBitsToString(pc.minimal_modes[0], 3), "bff");
  EXPECT_EQ(ModeBitsToString(pc.minimal_modes[1], 3), "ffb");
  // Full accounting: every lattice point classified, none unknown.
  EXPECT_EQ(pc.lattice_size, 8);
  EXPECT_EQ(pc.evaluated + pc.implied_proved + pc.implied_failed, 8);
  EXPECT_EQ(pc.unknown, 0);
  EXPECT_FALSE(pc.truncated);
  // Either list argument suffices, so neither is individually required.
  EXPECT_TRUE(pc.required_bound.empty());
  // One witness per minimal mode, carrying a proved certificate report.
  ASSERT_EQ(pc.witnesses.size(), 2u);
  EXPECT_TRUE(pc.witnesses[0].report.proved);
  EXPECT_TRUE(pc.witnesses[1].report.proved);
}

TEST(ConditionsSweepTest, NecessityProbeClosesLatticeWithoutEnumeration) {
  BatchEngine engine;
  ConditionsReport report = SweepOne(engine, "walk4", kWalk4Source);
  ASSERT_EQ(report.preds.size(), 1u);
  const PredConditions& pc = report.preds[0];
  EXPECT_EQ(pc.name, "walk/4");
  ASSERT_EQ(pc.minimal_modes.size(), 1u);
  EXPECT_EQ(ModeBitsToString(pc.minimal_modes[0], 4), "bfff");
  // The first argument is the unique descent: freeing it fails top, so
  // the necessity probe marks it required for the whole lattice.
  ASSERT_EQ(pc.required_bound.size(), 1u);
  EXPECT_EQ(pc.required_bound[0], 0);
  // Pruning did real work: 16 patterns, far fewer analyzed.
  EXPECT_EQ(pc.lattice_size, 16);
  EXPECT_EQ(pc.evaluated + pc.implied_proved + pc.implied_failed, 16);
  EXPECT_EQ(pc.unknown, 0);
  EXPECT_LE(pc.evaluated, 8);
  EXPECT_GT(pc.implied_proved, 0);
  EXPECT_GT(pc.implied_failed, 0);
}

// Pruning soundness: the frontier's classification of every lattice point
// must agree with analyzing that mode directly.
TEST(ConditionsSweepTest, FrontierAgreesWithBruteForceEnumeration) {
  BatchEngine engine;
  ConditionsReport report = SweepOne(engine, "walk4", kWalk4Source);
  const PredConditions& pc = FindPred(report, "walk/4");

  Program program = MustParse(kWalk4Source);
  PredId pred{program.symbols().Lookup("walk"), 4};
  std::vector<BatchRequest> requests;
  for (ModeBits m = 0; m <= TopMode(4); ++m) {
    BatchRequest request;
    request.name = ModeBitsToString(m, 4);
    request.program = program;
    request.query = pred;
    request.adornment = BitsToAdornment(m, 4);
    requests.push_back(std::move(request));
  }
  BatchEngine brute;
  std::vector<BatchItemResult> results = brute.Run(requests);
  for (ModeBits m = 0; m <= TopMode(4); ++m) {
    ASSERT_TRUE(results[m].status.ok()) << results[m].name;
    bool implied_proved = false;
    for (ModeBits minimal : pc.minimal_modes) {
      implied_proved = implied_proved || ModeLeq(minimal, m);
    }
    EXPECT_EQ(results[m].report.proved, implied_proved)
        << "mode " << ModeBitsToString(m, 4)
        << ": sweep classification disagrees with direct analysis";
  }
}

TEST(ConditionsSweepTest, ZeroArityAndWideArityEdges) {
  const char* source =
      "loop :- loop.\n"
      "wide(A,B,C,D,E,F,G,H,I,J,K,L,M,N,O,P,Q,R) :- "
      "wide(A,B,C,D,E,F,G,H,I,J,K,L,M,N,O,P,Q,R).\n";
  BatchEngine engine;
  ConditionsReport report = SweepOne(engine, "edges", source);
  const PredConditions& loop = FindPred(report, "loop/0");
  EXPECT_TRUE(loop.minimal_modes.empty());
  EXPECT_EQ(loop.lattice_size, 1);
  EXPECT_EQ(loop.evaluated, 1);
  // Arity 18 exceeds the sweep bound: reported truncated, not swept.
  const PredConditions& wide = FindPred(report, "wide/18");
  EXPECT_TRUE(wide.truncated);
  EXPECT_EQ(wide.evaluated, 0);
  EXPECT_TRUE(wide.minimal_modes.empty());
}

std::string CorpusLikeSweepJson(int jobs) {
  std::vector<std::pair<std::string, std::string>> programs = {
      {"append", kAppendSource},
      {"walk4", kWalk4Source},
      {"perm",
       "perm([],[]).\n"
       "perm(L,[H|T]) :- sel(H,L,R), perm(R,T).\n"
       "sel(X,[X|T],T).\n"
       "sel(X,[H|T],[H|R]) :- sel(X,T,R).\n"},
      {"grow", "grow(T) :- grow([c|T]).\n"},
  };
  BatchEngine engine(EngineOptions{jobs, /*use_cache=*/true});
  std::vector<ConditionsSweep> sweeps;
  for (const auto& [name, source] : programs) {
    sweeps.emplace_back(name, MustParse(source), ConditionsOptions{});
  }
  std::vector<ConditionsReport> reports = RunConditionsSweeps(engine, sweeps);
  std::string out;
  for (const ConditionsReport& report : reports) {
    out += ConditionsReportToJsonLine(report);
    out += '\n';
  }
  return out;
}

TEST(ConditionsSweepTest, ReportBytesIdenticalAcrossJobs) {
  std::string serial = CorpusLikeSweepJson(1);
  std::string parallel = CorpusLikeSweepJson(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"minimal_modes\":[\"bff\",\"ffb\"]"),
            std::string::npos);
  // The growing predicate has no terminating pattern at all.
  EXPECT_NE(serial.find("\"pred\":\"grow/1\",\"arity\":1,\"lattice_size\":2,"
                        "\"evaluated\":2"),
            std::string::npos);
}

TEST(ConditionsSweepTest, WarmStoreServesSweepFromPersistedEntries) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::path(::testing::TempDir()) / "condinf_store.log").string();
  std::remove(path.c_str());

  auto sweep_bytes = [&](BatchEngine& engine) {
    std::vector<ConditionsSweep> sweeps;
    sweeps.emplace_back("append", MustParse(kAppendSource),
                        ConditionsOptions{});
    sweeps.emplace_back("walk4", MustParse(kWalk4Source),
                        ConditionsOptions{});
    std::string out;
    for (const ConditionsReport& report :
         RunConditionsSweeps(engine, sweeps)) {
      out += ConditionsReportToJsonLine(report);
      out += '\n';
    }
    return out;
  };

  std::string cold;
  {
    BatchEngine engine;
    auto store = persist::PersistentStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(engine.AttachStore(std::move(*store)).ok());
    cold = sweep_bytes(engine);
    ASSERT_TRUE(engine.FlushStore().ok());
    EXPECT_EQ(engine.stats().persisted_hits, 0);
  }
  {
    BatchEngine engine;
    auto store = persist::PersistentStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(engine.AttachStore(std::move(*store)).ok());
    std::string warm = sweep_bytes(engine);
    EXPECT_EQ(cold, warm);
    EXPECT_GT(engine.stats().persisted_loaded, 0);
    EXPECT_GT(engine.stats().persisted_hits, 0);
    EXPECT_EQ(engine.stats().cache_misses, 0);
  }
  std::remove(path.c_str());
}

TEST(ConditionsSweepTest, GeneratorExpectModesAreExact) {
  gen::GenParams params;
  params.seed = 11;
  params.count = 8;
  params.min_sccs = 1;
  params.max_sccs = 3;
  params.max_arity = 3;
  params.modes_cycle = 2;
  params.mix_proved = 60;
  params.mix_not_proved = 30;
  params.mix_resource_limit = 10;  // folded into proved for modes runs
  gen::GeneratedWorkload workload = gen::Generate(params);
  ASSERT_EQ(workload.requests.size(), 8u);

  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  std::vector<ConditionsSweep> sweeps;
  for (const gen::GeneratedRequest& request : workload.requests) {
    EXPECT_EQ(request.kind, "conditions");
    EXPECT_FALSE(request.expect_modes.empty());
    sweeps.emplace_back(request.name, MustParse(request.source),
                        ConditionsOptions{});
  }
  std::vector<ConditionsReport> reports = RunConditionsSweeps(engine, sweeps);
  for (size_t i = 0; i < reports.size(); ++i) {
    std::vector<std::string> messages;
    EXPECT_EQ(CountExpectModeMismatches(
                  reports[i], workload.requests[i].expect_modes, &messages),
              0)
        << (messages.empty() ? "?" : messages[0]);
  }
}

TEST(ConditionsSweepTest, ManifestRoundTripsKindAndExpectModes) {
  gen::GenParams params;
  params.seed = 3;
  params.count = 1;
  params.modes_cycle = 2;
  gen::GeneratedWorkload workload = gen::Generate(params);
  std::string line = gen::RequestToManifestLine(workload.requests[0]);
  gen::ManifestEntry entry = gen::ParseManifestLine(line, 1);
  ASSERT_TRUE(entry.error.ok()) << entry.error.ToString();
  EXPECT_EQ(entry.kind, "conditions");
  EXPECT_EQ(entry.expect_modes.size(),
            workload.requests[0].expect_modes.size());

  gen::ManifestEntry unknown = gen::ParseManifestLine(
      "{\"name\":\"x\",\"kind\":\"frobnicate\",\"source\":\"p(a).\"}", 7);
  EXPECT_FALSE(unknown.error.ok());
  EXPECT_NE(unknown.error.ToString().find("unknown request kind"),
            std::string::npos);
  EXPECT_NE(unknown.error.ToString().find("frobnicate"), std::string::npos);
}

TEST(ConditionsSweepTest, ExpectMismatchesAreCounted) {
  BatchEngine engine;
  ConditionsReport report = SweepOne(engine, "append", kAppendSource);
  ExpectedModes right = {{"app/3", {"bff", "ffb"}}};
  EXPECT_EQ(CountExpectModeMismatches(report, right, nullptr), 0);
  ExpectedModes wrong = {{"app/3", {"bff"}}, {"ghost/2", {"bf"}}};
  std::vector<std::string> messages;
  EXPECT_EQ(CountExpectModeMismatches(report, wrong, &messages), 2);
  EXPECT_EQ(messages.size(), 2u);
}

TEST(ConditionsSweepTest, ResourceLimitedSweepIsFlaggedAndNotProved) {
  ConditionsOptions options;
  options.analysis.limits.work_budget = 1;  // trips on any recursive SCC
  BatchEngine engine;
  ConditionsReport report = SweepOne(engine, "append", kAppendSource,
                                     options);
  EXPECT_TRUE(report.status.ok());
  EXPECT_TRUE(report.resource_limited);
  const PredConditions& pc = FindPred(report, "app/3");
  EXPECT_TRUE(pc.resource_limited);
  // Budget-limited verdicts count as not proved, so nothing proves.
  EXPECT_TRUE(pc.minimal_modes.empty());
}

}  // namespace
}  // namespace condinf
}  // namespace termilog
