// Differential stress harness over generated workloads (ctest label
// "stress"; docs/generator.md): the engine's verdicts must match the
// generator's declared expectations request for request, and the JSONL
// output stream must be byte-identical across jobs levels.
//
// Size scales with the TERMILOG_STRESS_REQUESTS env var so one binary
// serves two roles: the default (200 requests, a few seconds) rides in
// tier-1 behind the "stress" label, and scripts/check.sh --stress reruns
// it at full size alongside the 10k CLI harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/report_json.h"
#include "gen/gen.h"

namespace termilog {
namespace {

int StressRequestCount() {
  const char* env = std::getenv("TERMILOG_STRESS_REQUESTS");
  if (env == nullptr || *env == '\0') return 200;
  int value = std::atoi(env);
  return value >= 1 ? value : 200;
}

gen::GeneratedWorkload MixedWorkload(uint64_t seed, int count,
                                     int dup_percent = 0) {
  gen::GenParams params;
  params.seed = seed;
  params.count = count;
  params.mix_proved = 70;
  params.mix_not_proved = 25;
  params.mix_resource_limit = 5;
  params.dup_percent = dup_percent;
  params.name_prefix = "stress";
  return gen::Generate(params);
}

// The full JSONL stream a --batch run would emit for these results, via
// the shared serializer.
std::string ResultStream(const std::vector<BatchItemResult>& results,
                         const gen::GeneratedWorkload& workload) {
  std::string out;
  for (size_t i = 0; i < results.size(); ++i) {
    out += ReportToJsonLine(results[i].name, workload.requests[i].query,
                            results[i].status, results[i].report);
    out += '\n';
  }
  return out;
}

TEST(StressTest, EngineVerdictsMatchGeneratorDeclarations) {
  int count = StressRequestCount();
  gen::GeneratedWorkload workload = MixedWorkload(1234, count);
  Result<std::vector<BatchRequest>> requests =
      gen::WorkloadToBatchRequests(workload);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();

  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  std::vector<BatchItemResult> results = engine.Run(*requests);
  ASSERT_EQ(results.size(), workload.requests.size());

  int mismatches = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    const BatchItemResult& item = results[i];
    const gen::GeneratedRequest& expected = workload.requests[i];
    ASSERT_TRUE(item.status.ok())
        << item.name << ": " << item.status.ToString();
    if (!gen::OutcomeMatchesExpect(expected.expect, item.report.proved,
                                   item.report.resource_limited)) {
      ++mismatches;
      ADD_FAILURE() << item.name << " declared "
                    << gen::ExpectedVerdictName(expected.expect)
                    << " but got proved=" << item.report.proved
                    << " resource_limited=" << item.report.resource_limited
                    << "\n"
                    << expected.source;
    }
    // Service latency is measured for every completed request.
    EXPECT_GE(item.latency_us, 0) << item.name;
  }
  EXPECT_EQ(mismatches, 0) << "out of " << results.size() << " requests";

  Status cache_check = engine.cache().SelfCheck();
  EXPECT_TRUE(cache_check.ok()) << cache_check.ToString();
}

TEST(StressTest, OutputStreamByteIdenticalAcrossJobsLevels) {
  // The differential pair from the issue: jobs=1 vs jobs=8 over the same
  // generated manifest must render byte-identical JSONL.
  int count = StressRequestCount();
  gen::GeneratedWorkload workload = MixedWorkload(777, count);
  Result<std::vector<BatchRequest>> requests =
      gen::WorkloadToBatchRequests(workload);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();

  BatchEngine serial(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  std::string serial_stream = ResultStream(serial.Run(*requests), workload);

  BatchEngine parallel(EngineOptions{/*jobs=*/8, /*use_cache=*/true});
  std::string parallel_stream =
      ResultStream(parallel.Run(*requests), workload);

  ASSERT_EQ(serial_stream.size(), parallel_stream.size());
  EXPECT_TRUE(serial_stream == parallel_stream)
      << "jobs=1 and jobs=8 streams diverge";
}

TEST(StressTest, DuplicatedRequestsAreServedByTheCache) {
  // dup=40: a cache-friendly workload. Repeated programs must hit the
  // content-addressed cache without changing any verdict.
  gen::GeneratedWorkload workload =
      MixedWorkload(55, std::min(StressRequestCount(), 400), 40);
  Result<std::vector<BatchRequest>> requests =
      gen::WorkloadToBatchRequests(workload);
  ASSERT_TRUE(requests.ok());

  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  std::vector<BatchItemResult> results = engine.Run(*requests);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok()) << results[i].name;
    EXPECT_TRUE(gen::OutcomeMatchesExpect(workload.requests[i].expect,
                                          results[i].report.proved,
                                          results[i].report.resource_limited))
        << results[i].name;
  }
  EXPECT_GT(engine.stats().cache_hits, 0)
      << "a dup=40 workload must produce cache hits";
}

}  // namespace
}  // namespace termilog
