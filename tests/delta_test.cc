#include "core/delta.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

ThetaRow Row(std::vector<int64_t> theta, int64_t delta, int64_t constant) {
  ThetaRow row;
  for (int64_t t : theta) row.theta_coeffs.emplace_back(t);
  row.delta_coeff = Rational(delta);
  row.constant = Rational(constant);
  return row;
}

DerivedConstraints Pair(PredId i, PredId j, std::vector<ThetaRow> rows) {
  DerivedConstraints d;
  d.i = i;
  d.j = j;
  d.rows = std::move(rows);
  return d;
}

const PredId kP{0, 1};
const PredId kQ{1, 1};
const PredId kR{2, 1};

TEST(DeltaTest, SelfLoopDefaultsToOne) {
  // theta - delta >= 0: positive theta coefficient, not forced.
  auto d = Pair(kP, kP, {Row({1}, -1, 0)});
  DeltaAssignment a = AssignDeltas({d}, {kP});
  EXPECT_EQ(a.values.at({kP, kP}), 1);
  EXPECT_FALSE(a.non_positive_cycle);
}

TEST(DeltaTest, ForcedZeroWhenNoPositiveCompensation) {
  // -delta >= 0 (all theta coeffs zero): the paper's rule-2/4 case in
  // Example 6.1.
  auto d = Pair(kP, kQ, {Row({0, 0}, -1, 0)});
  auto back = Pair(kQ, kP, {Row({0, 0}, -1, 2)});  // 2 - delta >= 0: free
  DeltaAssignment a = AssignDeltas({d, back}, {kP, kQ});
  EXPECT_EQ(a.values.at({kP, kQ}), 0);
  EXPECT_EQ(a.values.at({kQ, kP}), 1);
  ASSERT_EQ(a.forced_zero.size(), 1u);
  EXPECT_FALSE(a.non_positive_cycle);  // cycle weight 0 + 1 = 1
}

TEST(DeltaTest, PositiveConstantPreventsForcing) {
  auto d = Pair(kP, kP, {Row({0}, -1, 2)});  // 2 - delta >= 0: delta=1 fine
  DeltaAssignment a = AssignDeltas({d}, {kP});
  EXPECT_EQ(a.values.at({kP, kP}), 1);
}

TEST(DeltaTest, NegativeThetaCoeffForcesZero) {
  // -theta - delta >= 0 with theta >= 0: delta must be 0.
  auto d = Pair(kP, kP, {Row({-1}, -1, 0)});
  DeltaAssignment a = AssignDeltas({d}, {kP});
  EXPECT_EQ(a.values.at({kP, kP}), 0);
  EXPECT_TRUE(a.non_positive_cycle);
  EXPECT_EQ(a.cycle_witness, kP);
}

TEST(DeltaTest, ZeroWeightTwoCycleDetected) {
  auto ab = Pair(kP, kQ, {Row({0, 0}, -1, 0)});
  auto ba = Pair(kQ, kP, {Row({0, 0}, -1, 0)});
  DeltaAssignment a = AssignDeltas({ab, ba}, {kP, kQ});
  EXPECT_TRUE(a.non_positive_cycle);
}

TEST(DeltaTest, Example61Pattern) {
  // delta_et = delta_tn = 0 forced; delta_ne = 1: the e->t->n->e cycle has
  // weight 1, accepted.
  auto et = Pair(kP, kQ, {Row({0, 0, 0}, -1, 0)});
  auto tn = Pair(kQ, kR, {Row({0, 0, 0}, -1, 0)});
  auto ne = Pair(kR, kP, {Row({0, 0, 2}, -1, 0)});
  auto ee = Pair(kP, kP, {Row({4, 0, 0}, -1, 0)});
  auto tt = Pair(kQ, kQ, {Row({0, 4, 0}, -1, 0)});
  DeltaAssignment a = AssignDeltas({et, tn, ne, ee, tt}, {kP, kQ, kR});
  EXPECT_EQ(a.values.at({kP, kQ}), 0);
  EXPECT_EQ(a.values.at({kQ, kR}), 0);
  EXPECT_EQ(a.values.at({kR, kP}), 1);
  EXPECT_EQ(a.values.at({kP, kP}), 1);
  EXPECT_FALSE(a.non_positive_cycle);
}

TEST(DeltaTest, MultipleRowsAnyForcingRowWins) {
  auto d = Pair(kP, kP, {Row({1}, -1, 0), Row({0}, -1, 0)});
  DeltaAssignment a = AssignDeltas({d}, {kP});
  EXPECT_EQ(a.values.at({kP, kP}), 0);
  EXPECT_TRUE(a.non_positive_cycle);
}

TEST(DeltaTest, RowsWithoutDeltaNeverForce) {
  auto d = Pair(kP, kP, {Row({-1}, 0, -5), Row({1}, -1, 0)});
  DeltaAssignment a = AssignDeltas({d}, {kP});
  EXPECT_EQ(a.values.at({kP, kP}), 1);
}

}  // namespace
}  // namespace termilog
