// Chaos regression for the batch engine (docs/generator.md): a generated
// workload runs repeatedly while seeded TERMILOG_FAILPOINTS-style specs
// force kResourceExhausted at library failpoints. The invariants under
// test, for every round:
//   - no request errors: a forced trip degrades along the governor ladder
//     (docs/robustness.md) to a valid, possibly RESOURCE_LIMIT, verdict;
//   - a resource-limited report names its first trip;
//   - SccCache::SelfCheck passes (no abandoned single-flight slot, no
//     retained RESOURCE_LIMIT outcome);
// and once injection stops, a clean run on the *same engine* must match
// the generator's declared verdicts exactly — the cache-poisoning check.
//
// This file lives in termilog_engine_tests so the ASan and TSan trees
// exercise it (scripts/check.sh): fault injection at jobs=4 is exactly
// where a leaked entry or a lock-order mistake would surface.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.h"
#include "gen/gen.h"
#include "util/failpoint.h"

namespace termilog {
namespace {

std::vector<BatchRequest> ProvableRequests(uint64_t seed, int count) {
  gen::GenParams params;
  params.seed = seed;
  params.count = count;
  params.mix_proved = 100;
  params.mix_not_proved = 0;
  params.mix_resource_limit = 0;
  params.name_prefix = "chaos";
  Result<std::vector<BatchRequest>> requests =
      gen::WorkloadToBatchRequests(gen::Generate(params));
  EXPECT_TRUE(requests.ok()) << requests.status().ToString();
  return std::move(requests).value();
}

// The failpoint sites that sit on the analysis path of generated
// programs (interpreter sites excluded: the analyzer never runs them).
constexpr const char* kSites[] = {"analyzer.scc", "dual.build",
                                  "fm.eliminate", "inference.run",
                                  "inference.sweep", "lp.pivot",
                                  "transform.phase", "transform.pipeline"};

std::string SeededSpec(gen::Rng& rng) {
  std::string spec(kSites[rng.NextBelow(sizeof(kSites) / sizeof(kSites[0]))]);
  if (rng.Chance(70)) {
    spec += '=';
    spec += std::to_string(rng.NextInt(1, 32));
  }
  return spec;
}

TEST(ChaosTest, InjectedFaultsDegradeAndNeverPoisonTheCache) {
  std::vector<BatchRequest> requests = ProvableRequests(97, 40);
  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  gen::Rng rng = gen::Rng::Stream(97, 1);

  for (int round = 0; round < 5; ++round) {
    std::string spec = SeededSpec(rng);
    SCOPED_TRACE("round " + std::to_string(round) + " spec " + spec);
    FailpointRegistry::Global().EnableFromSpec(spec);
    std::vector<BatchItemResult> results = engine.Run(requests);
    FailpointRegistry::Global().Clear();

    ASSERT_EQ(results.size(), requests.size());
    for (const BatchItemResult& item : results) {
      // Ladder, not failure: a forced trip must never surface as a
      // request error.
      EXPECT_TRUE(item.status.ok())
          << item.name << ": " << item.status.ToString();
      if (item.report.resource_limited) {
        EXPECT_FALSE(item.report.first_resource_trip.empty()) << item.name;
      }
    }
    Status cache_check = engine.cache().SelfCheck();
    EXPECT_TRUE(cache_check.ok()) << cache_check.ToString();
  }

  // Injection over: the same engine must now prove everything. A cached
  // RESOURCE_LIMIT outcome or an abandoned single-flight slot from the
  // chaos rounds would break this.
  std::vector<BatchItemResult> clean = engine.Run(requests);
  for (const BatchItemResult& item : clean) {
    ASSERT_TRUE(item.status.ok()) << item.name;
    EXPECT_TRUE(item.report.proved) << item.name;
    EXPECT_FALSE(item.report.resource_limited) << item.name;
  }
  Status final_check = engine.cache().SelfCheck();
  EXPECT_TRUE(final_check.ok()) << final_check.ToString();
}

#ifdef TERMILOG_FAILPOINTS_ENABLED
TEST(ChaosTest, ForcedSccTripsAreNeverCached) {
  // analyzer.scc forces every SCC verdict to RESOURCE_LIMIT outright —
  // the one injection the analyzer cannot route around. Starved verdicts
  // must reach the caller but never the cache.
  std::vector<BatchRequest> requests = ProvableRequests(5, 12);
  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  {
    ScopedFailpoint fp("analyzer.scc");
    std::vector<BatchItemResult> results = engine.Run(requests);
    for (const BatchItemResult& item : results) {
      ASSERT_TRUE(item.status.ok()) << item.name;
      EXPECT_TRUE(item.report.resource_limited) << item.name;
      EXPECT_FALSE(item.report.proved) << item.name;
    }
  }
  // Nothing of those starved verdicts may have been retained.
  EXPECT_EQ(engine.cache().size(), 0);
  Status cache_check = engine.cache().SelfCheck();
  EXPECT_TRUE(cache_check.ok()) << cache_check.ToString();

  // And with the failpoint gone the same engine proves all of them.
  std::vector<BatchItemResult> clean = engine.Run(requests);
  for (const BatchItemResult& item : clean) {
    EXPECT_TRUE(item.report.proved) << item.name;
    EXPECT_FALSE(item.report.resource_limited) << item.name;
  }
}

TEST(ChaosTest, DegradedInferenceMayStillProve) {
  // fm.eliminate sits on the constraint-inference path, not the verdict
  // path: forcing it degrades inference (the report is flagged
  // resource-limited) but the analyzer falls back and can still prove
  // these simple programs — the ladder gives up precision, not verdicts.
  std::vector<BatchRequest> requests = ProvableRequests(5, 12);
  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  {
    ScopedFailpoint fp("fm.eliminate");
    std::vector<BatchItemResult> results = engine.Run(requests);
    for (const BatchItemResult& item : results) {
      ASSERT_TRUE(item.status.ok()) << item.name;
      EXPECT_TRUE(item.report.resource_limited) << item.name;
      EXPECT_FALSE(item.report.first_resource_trip.empty()) << item.name;
    }
  }
  Status cache_check = engine.cache().SelfCheck();
  EXPECT_TRUE(cache_check.ok()) << cache_check.ToString();

  // Degraded-inference outcomes are keyed on the degraded constraint set,
  // so a clean rerun on the same engine computes fresh entries and must
  // come back unflagged.
  std::vector<BatchItemResult> clean = engine.Run(requests);
  for (const BatchItemResult& item : clean) {
    EXPECT_TRUE(item.report.proved) << item.name;
    EXPECT_FALSE(item.report.resource_limited) << item.name;
  }
}

TEST(ChaosTest, BoundedFailpointRecoversMidBatch) {
  // Fail only the first few hits: early requests degrade, later ones
  // compute normally — the ladder is per-task, not per-engine.
  std::vector<BatchRequest> requests = ProvableRequests(6, 30);
  BatchEngine engine(EngineOptions{/*jobs=*/4, /*use_cache=*/true});
  FailpointRegistry::Global().EnableFromSpec("fm.eliminate=3");
  std::vector<BatchItemResult> results = engine.Run(requests);
  FailpointRegistry::Global().Clear();

  int64_t limited = 0, proved = 0;
  for (const BatchItemResult& item : results) {
    ASSERT_TRUE(item.status.ok()) << item.name;
    if (item.report.resource_limited) ++limited;
    if (item.report.proved) ++proved;
  }
  EXPECT_GT(limited, 0);
  EXPECT_GT(proved, 0);
  Status cache_check = engine.cache().SelfCheck();
  EXPECT_TRUE(cache_check.ok()) << cache_check.ToString();
}
#endif  // TERMILOG_FAILPOINTS_ENABLED

}  // namespace
}  // namespace termilog
