#include "constraints/inference.h"

#include <gtest/gtest.h>

#include "program/parser.h"

namespace termilog {
namespace {

Constraint Ge(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row;
  for (int64_t c : coeffs) row.coeffs.emplace_back(c);
  row.constant = Rational(constant);
  row.rel = Relation::kGe;
  return row;
}

Constraint Eq(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row = Ge(std::move(coeffs), constant);
  row.rel = Relation::kEq;
  return row;
}

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

PredId Pred(const Program& p, const char* name, int arity) {
  return PredId{p.symbols().Lookup(name), arity};
}

TEST(InferenceTest, AppendThreeVariableConstraint) {
  // The paper's Section 3 imported constraint:
  // 0 = append1 + append2 - append3.
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  Polyhedron append = db.Get(Pred(p, "append", 3));
  EXPECT_TRUE(append.Entails(Eq({1, 1, -1}, 0)));
  EXPECT_TRUE(append.Entails(Ge({1, 0, 0}, 0)));
}

TEST(InferenceTest, ExprParserSameSccConstraint) {
  // The paper's Example 6.1 imported constraint t1 >= 2 + t2 (and the same
  // for e and n), inferred across the mutually recursive SCC.
  Program p = MustParse(R"(
    e(L, T) :- t(L, ['+'|C]), e(C, T).
    e(L, T) :- t(L, T).
    t(L, T) :- n(L, ['*'|C]), t(C, T).
    t(L, T) :- n(L, T).
    n(['('|A], T) :- e(A, [')'|T]).
    n([L|T], T) :- z(L).
  )");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  for (const char* name : {"e", "t", "n"}) {
    Polyhedron knowledge = db.Get(Pred(p, name, 2));
    EXPECT_TRUE(knowledge.Entails(Ge({1, -1}, -2)))
        << name << ":\n" << knowledge.ToString();
  }
}

TEST(InferenceTest, ReverseLengthEquality) {
  Program p = MustParse(R"(
    rev([], []).
    rev([X|Xs], R) :- rev(Xs, T), append(T, [X], R).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  // |rev1| = |rev2| exactly (reverse preserves size).
  EXPECT_TRUE(db.Get(Pred(p, "rev", 2)).Entails(Eq({1, -1}, 0)));
}

TEST(InferenceTest, PartitionSplitsSizes) {
  Program p = MustParse(R"(
    part(P, [], [], []).
    part(P, [X|Xs], [X|L], G) :- X =< P, part(P, Xs, L, G).
    part(P, [X|Xs], L, [X|G]) :- P < X, part(P, Xs, L, G).
  )");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  // part2 = part3 + part4.
  EXPECT_TRUE(db.Get(Pred(p, "part", 4)).Entails(Eq({0, 1, -1, -1}, 0)));
}

TEST(InferenceTest, MinusArithmeticIdentity) {
  Program p = MustParse(
      "minus(X, z, X). minus(s(X), s(Y), Z) :- minus(X, Y, Z).");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  // minus1 = minus2 + minus3.
  EXPECT_TRUE(db.Get(Pred(p, "minus", 3)).Entails(Eq({1, -1, -1}, 0)));
}

TEST(InferenceTest, EmptyPredicateStaysEmpty) {
  // p has no base case: no derivable facts at all.
  Program p = MustParse("p(f(X)) :- p(X).");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  EXPECT_TRUE(db.Get(Pred(p, "p", 1)).IsEmpty());
}

TEST(InferenceTest, EdbDependentRuleDerivesNothingExtra) {
  // q depends on unknown EDB e: sizes unconstrained beyond nonnegativity,
  // but the +2 from the cons cell survives.
  Program p = MustParse("q([X|Xs]) :- e(X, Xs).");
  ArgSizeDb db;
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  Polyhedron q = db.Get(Pred(p, "q", 1));
  EXPECT_TRUE(q.Entails(Ge({1}, -2)));   // |arg| >= 2
  EXPECT_FALSE(q.Entails(Ge({1}, -3)));
}

TEST(InferenceTest, SuppliedEntriesAreNotOverwritten) {
  Program p = MustParse("q(X) :- e(X).");
  ArgSizeDb db;
  Polyhedron supplied = ArgSizeDb::ParseSpec(1, "a1 >= 7").value();
  db.Set(Pred(p, "e", 1), supplied);
  ASSERT_TRUE(ConstraintInference::Run(p, &db).ok());
  EXPECT_TRUE(db.Get(Pred(p, "e", 1)).Entails(Ge({1}, -7)));
  // And q picked the knowledge up through instantiation.
  EXPECT_TRUE(db.Get(Pred(p, "q", 1)).Entails(Ge({1}, -7)));
}

TEST(InferenceTest, WideningForcesConvergenceOnCounters) {
  // nat grows unboundedly: the loop must converge by widening, keeping
  // nonnegativity but no upper bound.
  Program p = MustParse("nat(z). nat(s(N)) :- nat(N).");
  ArgSizeDb db;
  std::map<PredId, InferenceStats> stats;
  ASSERT_TRUE(
      ConstraintInference::Run(p, &db, InferenceOptions(), &stats).ok());
  Polyhedron nat = db.Get(Pred(p, "nat", 1));
  EXPECT_FALSE(nat.IsEmpty());
  EXPECT_TRUE(nat.Entails(Ge({1}, 0)));
  EXPECT_FALSE(nat.Entails(Ge({-1}, 1000)));  // no fake upper bound
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats.begin()->second.reached_fixpoint);
}

TEST(InferenceTest, StatsReportSweeps) {
  Program p = MustParse(
      "append([],Ys,Ys). append([X|Xs],Ys,[X|Zs]) :- append(Xs,Ys,Zs).");
  ArgSizeDb db;
  std::map<PredId, InferenceStats> stats;
  ASSERT_TRUE(
      ConstraintInference::Run(p, &db, InferenceOptions(), &stats).ok());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GE(stats.begin()->second.sweeps, 2);
}

TEST(InferenceTest, RuleTransferOnEmptyBodyPolyhedronIsEmpty) {
  Program p = MustParse("q(X) :- r(X). r(X) :- r(X).");
  ArgSizeDb db;
  std::map<PredId, Polyhedron> current;
  current.emplace(Pred(p, "r", 1), Polyhedron::Empty(1));
  Result<Polyhedron> q = ConstraintInference::RuleTransfer(
      p, p.rules()[0], current, db, FmOptions());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsEmpty());
}

}  // namespace
}  // namespace termilog
