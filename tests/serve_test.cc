// Serve-loop suite (docs/persistence.md, Serve): the JSONL
// request/response protocol, per-line error isolation, strict response
// ordering, and deterministic overload shedding through the bounded
// waiting room. The shed test uses ServeOptions::drain_input_first so the
// accepted/shed split is a pure function of queue_limit, not of
// scheduler timing — the same determinism discipline as the batch
// engine's byte-identity contract.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/serve.h"
#include "util/json.h"

namespace termilog {
namespace {

constexpr const char* kAppendSource =
    ":- mode(app(b,f,f)). app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R).";

std::string RequestLine(const std::string& name) {
  return "{\"name\":\"" + name + "\",\"source\":\"" + kAppendSource +
         "\",\"query\":\"app(b,f,f)\"}\n";
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Parses one response line and returns (name, ok, error-contains check).
struct Response {
  std::string name;
  bool ok = false;
  std::string error;
};

Response ParseResponse(const std::string& line) {
  Response response;
  Result<JsonValue> parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << line;
  if (!parsed.ok()) return response;
  EXPECT_TRUE(parsed->Has("name")) << line;
  EXPECT_TRUE(parsed->Has("ok")) << line;
  response.name = parsed->At("name").StringOr("");
  response.ok = parsed->At("ok").BoolOr(false);
  response.error = parsed->At("error").StringOr("");
  return response;
}

TEST(ServeTest, AnswersEachRequestInOrder) {
  BatchEngine engine(EngineOptions{/*jobs=*/2, /*use_cache=*/true});
  std::istringstream in(RequestLine("r0") + RequestLine("r1") +
                        "\n" +  // blank lines are skipped, not answered
                        RequestLine("r2"));
  std::ostringstream out;
  ServeOptions options;
  ServeStats stats = Serve(engine, in, out, options);
  EXPECT_EQ(stats.lines, 3);
  EXPECT_EQ(stats.served, 3);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.errors, 0);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    Response response = ParseResponse(lines[i]);
    EXPECT_EQ(response.name, "r" + std::to_string(i));
    EXPECT_TRUE(response.ok) << lines[i];
  }
}

TEST(ServeTest, BadLinesGetErrorResponsesAndTheLoopKeepsServing) {
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  std::istringstream in(RequestLine("good") + "this is not json\n" +
                        "{\"name\":\"nosource\"}\n" + RequestLine("also"));
  std::ostringstream out;
  ServeStats stats = Serve(engine, in, out, ServeOptions());
  EXPECT_EQ(stats.lines, 4);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.errors, 2);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_TRUE(ParseResponse(lines[0]).ok);
  Response garbage = ParseResponse(lines[1]);
  EXPECT_FALSE(garbage.ok);
  // The error names the offending line so a client tailing the stream
  // can find it in its own log.
  EXPECT_NE(garbage.error.find("line 2"), std::string::npos) << lines[1];
  EXPECT_FALSE(ParseResponse(lines[2]).ok);
  EXPECT_TRUE(ParseResponse(lines[3]).ok);
}

TEST(ServeTest, OverloadShedsDeterministicallyBeyondQueueLimit) {
  constexpr int kRequests = 10, kQueueLimit = 3;
  BatchEngine engine(EngineOptions{/*jobs=*/2, /*use_cache=*/true});
  std::string input;
  for (int i = 0; i < kRequests; ++i) {
    input += RequestLine("r" + std::to_string(i));
  }
  std::istringstream in(input);
  std::ostringstream out;
  ServeOptions options;
  options.queue_limit = kQueueLimit;
  // Freeze the processor until the reader has seen all input: exactly
  // queue_limit requests fit the waiting room, the rest must shed.
  options.drain_input_first = true;
  ServeStats stats = Serve(engine, in, out, options);
  EXPECT_EQ(stats.lines, kRequests);
  EXPECT_EQ(stats.served, kQueueLimit);
  EXPECT_EQ(stats.shed, kRequests - kQueueLimit);
  EXPECT_EQ(stats.errors, 0);

  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests));
  std::string shed_line;
  for (int i = 0; i < kRequests; ++i) {
    Response response = ParseResponse(lines[i]);
    // Responses arrive in request order even though shed responses are
    // written by the reader thread and served ones by the processor.
    EXPECT_EQ(response.name, "r" + std::to_string(i));
    if (i < kQueueLimit) {
      EXPECT_TRUE(response.ok) << lines[i];
    } else {
      EXPECT_FALSE(response.ok) << lines[i];
      EXPECT_NE(response.error.find("server overloaded"), std::string::npos);
      EXPECT_NE(response.error.find("retry"), std::string::npos);
      // Deterministic shed bytes: every shed response is identical
      // except for the request name.
      std::string tail = lines[i].substr(lines[i].find("\"ok\""));
      if (shed_line.empty()) {
        shed_line = tail;
      } else {
        EXPECT_EQ(tail, shed_line);
      }
    }
  }
}

TEST(ServeTest, UnknownRequestKindGetsStructuredErrorResponse) {
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  // An unknown "kind" is a protocol error on that line only: the response
  // uses the same structured error shape as any other bad line, names the
  // offending kind, and the loop keeps serving subsequent requests.
  std::string bad = "{\"name\":\"mystery\",\"kind\":\"frobnicate\","
                    "\"source\":\"p(a).\"}\n";
  std::istringstream in(bad + RequestLine("after"));
  std::ostringstream out;
  ServeStats stats = Serve(engine, in, out, ServeOptions());
  EXPECT_EQ(stats.lines, 2);
  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.conditions, 0);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  Response unknown = ParseResponse(lines[0]);
  EXPECT_EQ(unknown.name, "mystery");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown request kind"), std::string::npos)
      << lines[0];
  EXPECT_NE(unknown.error.find("frobnicate"), std::string::npos) << lines[0];
  EXPECT_TRUE(ParseResponse(lines[1]).ok);
}

TEST(ServeTest, ConditionsKindAnswersWithSweepReport) {
  BatchEngine engine(EngineOptions{/*jobs=*/2, /*use_cache=*/true});
  std::string conditions = "{\"name\":\"sweep\",\"kind\":\"conditions\","
                           "\"source\":\"" + std::string(kAppendSource) +
                           "\"}\n";
  std::istringstream in(RequestLine("plain") + conditions);
  std::ostringstream out;
  ServeStats stats = Serve(engine, in, out, ServeOptions());
  EXPECT_EQ(stats.lines, 2);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.errors, 0);
  EXPECT_EQ(stats.conditions, 1);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(ParseResponse(lines[0]).ok);
  Response sweep = ParseResponse(lines[1]);
  EXPECT_EQ(sweep.name, "sweep");
  EXPECT_TRUE(sweep.ok) << lines[1];
  EXPECT_NE(lines[1].find("\"kind\":\"conditions\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"minimal_modes\":[\"bff\",\"ffb\"]"),
            std::string::npos)
      << lines[1];
}

TEST(ServeTest, ConditionsKindReportsUnparseableProgramAsError) {
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  std::istringstream in(std::string("{\"name\":\"broken\",\"kind\":"
                                    "\"conditions\",\"source\":\"p(\"}\n"));
  std::ostringstream out;
  ServeStats stats = Serve(engine, in, out, ServeOptions());
  EXPECT_EQ(stats.served, 0);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.conditions, 0);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  Response broken = ParseResponse(lines[0]);
  EXPECT_EQ(broken.name, "broken");
  EXPECT_FALSE(broken.ok);
  EXPECT_NE(lines[0].find("\"kind\":\"conditions\""), std::string::npos);
}

TEST(ServeTest, OverlongLinesAreDiscardedWithAStructuredError) {
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/true});
  // A 1 MiB request line against a 128-byte cap: the reader must answer
  // with the per-request error shape while buffering at most the cap, and
  // the next (short enough) request must still be served. The short
  // request has to actually fit, so use a trivial program inline.
  std::string tiny = "{\"name\":\"tiny\",\"source\":\"p(a).\","
                     "\"query\":\"p(b)\"}\n";
  ASSERT_LT(tiny.size(), 128u);
  std::istringstream in("{\"name\":\"flood\",\"source\":\"" +
                        std::string(1 << 20, 'x') + "\"}\n" + tiny);
  std::ostringstream out;
  ServeOptions options;
  options.max_line_bytes = 128;
  ServeStats stats = Serve(engine, in, out, options);
  EXPECT_EQ(stats.lines, 2);
  EXPECT_EQ(stats.served, 1);
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.overlong, 1);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  Response flood = ParseResponse(lines[0]);
  // The request name is unknowable (the line was never parsed), so the
  // error names the input position instead.
  EXPECT_EQ(flood.name, "manifest:1");
  EXPECT_FALSE(flood.ok);
  EXPECT_NE(flood.error.find("128-byte line cap"), std::string::npos)
      << lines[0];
  Response tiny_response = ParseResponse(lines[1]);
  EXPECT_EQ(tiny_response.name, "tiny");
  EXPECT_TRUE(tiny_response.ok) << lines[1];
}

TEST(ServeTest, PerRequestLimitsOverrideTheBase) {
  BatchEngine engine(EngineOptions{/*jobs=*/1, /*use_cache=*/false});
  // A work budget of 1 cannot complete the SCC analysis: the report must
  // come back resource-limited, but still as a valid ok:true response.
  std::string line = "{\"name\":\"starved\",\"source\":\"" +
                     std::string(kAppendSource) +
                     "\",\"query\":\"app(b,f,f)\"," +
                     "\"limits\":{\"work_budget\":1}}\n";
  std::istringstream in(line + RequestLine("fed"));
  std::ostringstream out;
  ServeStats stats = Serve(engine, in, out, ServeOptions());
  EXPECT_EQ(stats.served, 2);
  std::vector<std::string> lines = SplitLines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"resource_limited\":true"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"resource_limited\":false"), std::string::npos)
      << lines[1];
}

}  // namespace
}  // namespace termilog
