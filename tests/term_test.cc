#include "term/term.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

class TermTest : public ::testing::Test {
 protected:
  SymbolTable symbols_;
};

TEST_F(TermTest, ConstantsAndCompounds) {
  int f = symbols_.Intern("f");
  int a = symbols_.Intern("a");
  TermPtr ca = Term::MakeConstant(a);
  EXPECT_TRUE(ca->IsConstant());
  EXPECT_TRUE(ca->IsGround());
  TermPtr t = Term::MakeCompound(f, {ca, Term::MakeVariable(0)});
  EXPECT_TRUE(t->IsCompound());
  EXPECT_FALSE(t->IsGround());
  EXPECT_EQ(t->arity(), 2);
  EXPECT_EQ(t->functor(), f);
}

TEST_F(TermTest, CollectVariablesAndMentions) {
  int f = symbols_.Intern("f");
  TermPtr t = Term::MakeCompound(
      f, {Term::MakeVariable(1),
          Term::MakeCompound(f, {Term::MakeVariable(3),
                                 Term::MakeVariable(1)})});
  std::set<int> vars;
  t->CollectVariables(&vars);
  EXPECT_EQ(vars, (std::set<int>{1, 3}));
  EXPECT_TRUE(t->Mentions(3));
  EXPECT_FALSE(t->Mentions(0));
}

TEST_F(TermTest, StructuralEquality) {
  int f = symbols_.Intern("f");
  int g = symbols_.Intern("g");
  TermPtr a = Term::MakeCompound(f, {Term::MakeVariable(0)});
  TermPtr b = Term::MakeCompound(f, {Term::MakeVariable(0)});
  TermPtr c = Term::MakeCompound(g, {Term::MakeVariable(0)});
  TermPtr d = Term::MakeCompound(f, {Term::MakeVariable(1)});
  EXPECT_TRUE(Term::Equal(a, b));
  EXPECT_FALSE(Term::Equal(a, c));
  EXPECT_FALSE(Term::Equal(a, d));
}

TEST_F(TermTest, ListSugarPrinting) {
  TermPtr a = Term::MakeConstant(symbols_.Intern("a"));
  TermPtr b = Term::MakeConstant(symbols_.Intern("b"));
  TermPtr list = MakeList(&symbols_, {a, b});
  EXPECT_EQ(list->ToString(symbols_), "[a,b]");
  TermPtr open = MakeList(&symbols_, {a}, Term::MakeVariable(0));
  EXPECT_EQ(open->ToString(symbols_), "[a|_G0]");
  TermPtr nil = Term::MakeConstant(symbols_.Intern(kNilName));
  EXPECT_EQ(nil->ToString(symbols_), "[]");
}

TEST_F(TermTest, ToStringWithNamer) {
  TermPtr t = Term::MakeCompound(symbols_.Intern("f"),
                                 {Term::MakeVariable(0)});
  std::function<std::string(int)> namer = [](int) { return "X"; };
  EXPECT_EQ(t->ToString(symbols_, namer), "f(X)");
}

}  // namespace
}  // namespace termilog
