#include "rational/bigint.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace termilog {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero, BigInt(0));
  EXPECT_EQ((-zero), zero);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-1234567890123}, INT64_MAX, INT64_MIN + 1,
                    INT64_MIN}) {
    BigInt b(v);
    EXPECT_TRUE(b.FitsInt64());
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ(BigInt(2) + BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(-2) + BigInt(3), BigInt(1));
  EXPECT_EQ(BigInt(2) + BigInt(-3), BigInt(-1));
  EXPECT_EQ(BigInt(-2) + BigInt(-3), BigInt(-5));
  EXPECT_EQ(BigInt(7) + BigInt(-7), BigInt(0));
}

TEST(BigIntTest, SubtractionBasics) {
  EXPECT_EQ(BigInt(10) - BigInt(4), BigInt(6));
  EXPECT_EQ(BigInt(4) - BigInt(10), BigInt(-6));
  EXPECT_EQ(BigInt(-4) - BigInt(-10), BigInt(6));
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_EQ(BigInt(0) * BigInt(-7), BigInt(0));
}

TEST(BigIntTest, CarryPropagation) {
  BigInt a(int64_t{0xffffffff});
  EXPECT_EQ(a + BigInt(1), BigInt(int64_t{0x100000000}));
  BigInt big = BigInt(INT64_MAX) + BigInt(INT64_MAX);
  EXPECT_EQ(big.ToString(), "18446744073709551614");
}

TEST(BigIntTest, LargeMultiplication) {
  // (2^64)^2 = 2^128, well beyond native width.
  BigInt two64 = BigInt(INT64_MAX) + BigInt(INT64_MAX) + BigInt(2);
  EXPECT_EQ(two64.ToString(), "18446744073709551616");
  BigInt sq = two64 * two64;
  EXPECT_EQ(sq.ToString(), "340282366920938463463374607431768211456");
  EXPECT_FALSE(sq.FitsInt64());
}

TEST(BigIntTest, DivModTruncatedSemantics) {
  BigInt q, r;
  BigInt::DivMod(BigInt(7), BigInt(2), &q, &r);
  EXPECT_EQ(q, BigInt(3));
  EXPECT_EQ(r, BigInt(1));
  BigInt::DivMod(BigInt(-7), BigInt(2), &q, &r);
  EXPECT_EQ(q, BigInt(-3));
  EXPECT_EQ(r, BigInt(-1));
  BigInt::DivMod(BigInt(7), BigInt(-2), &q, &r);
  EXPECT_EQ(q, BigInt(-3));
  EXPECT_EQ(r, BigInt(1));
  BigInt::DivMod(BigInt(-7), BigInt(-2), &q, &r);
  EXPECT_EQ(q, BigInt(3));
  EXPECT_EQ(r, BigInt(-1));
}

TEST(BigIntTest, DivisionByLargerDivisor) {
  BigInt q, r;
  BigInt::DivMod(BigInt(3), BigInt(10), &q, &r);
  EXPECT_EQ(q, BigInt(0));
  EXPECT_EQ(r, BigInt(3));
}

TEST(BigIntTest, MultiLimbDivision) {
  BigInt two64 = BigInt::FromString("18446744073709551616").value();
  BigInt big = two64 * two64 + BigInt(12345);
  BigInt q, r;
  BigInt::DivMod(big, two64, &q, &r);
  EXPECT_EQ(q, two64);
  EXPECT_EQ(r, BigInt(12345));
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, CompareTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_LT(BigInt(-2), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt::FromString("99999999999999999999").value());
  EXPECT_LT(BigInt::FromString("-99999999999999999999").value(), BigInt(-5));
}

TEST(BigIntTest, FromStringValid) {
  EXPECT_EQ(BigInt::FromString("0").value(), BigInt(0));
  EXPECT_EQ(BigInt::FromString("-0").value(), BigInt(0));
  EXPECT_EQ(BigInt::FromString("+123").value(), BigInt(123));
  EXPECT_EQ(BigInt::FromString("  42 ").value(), BigInt(42));
  EXPECT_EQ(BigInt::FromString("123456789012345678901234567890").value()
                .ToString(),
            "123456789012345678901234567890");
}

TEST(BigIntTest, FromStringInvalid) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, ToStringRoundTripRandom) {
  unsigned seed = 12345;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return seed;
  };
  for (int i = 0; i < 200; ++i) {
    std::string digits;
    if (next() % 2) digits += '-';
    int len = 1 + next() % 40;
    digits += static_cast<char>('1' + next() % 9);
    for (int d = 1; d < len; ++d) digits += static_cast<char>('0' + next() % 10);
    BigInt value = BigInt::FromString(digits).value();
    EXPECT_EQ(value.ToString(), digits);
  }
}

TEST(BigIntTest, AlgebraicPropertiesRandom) {
  unsigned seed = 999;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return static_cast<int64_t>(seed % 200001) - 100000;
  };
  for (int i = 0; i < 300; ++i) {
    BigInt a(next()), b(next()), c(next());
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b, a + (-b));
    if (!b.is_zero()) {
      BigInt q, r;
      BigInt::DivMod(a, b, &q, &r);
      EXPECT_EQ(q * b + r, a);
      EXPECT_LT(r.Abs(), b.Abs());
    }
  }
}

TEST(BigIntTest, HashDistinguishesSign) {
  EXPECT_NE(BigInt(5).Hash(), BigInt(-5).Hash());
}

}  // namespace
}  // namespace termilog
