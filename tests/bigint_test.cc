#include "rational/bigint.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace termilog {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero, BigInt(0));
  EXPECT_EQ((-zero), zero);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-1234567890123}, INT64_MAX, INT64_MIN + 1,
                    INT64_MIN}) {
    BigInt b(v);
    EXPECT_TRUE(b.FitsInt64());
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ(BigInt(2) + BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(-2) + BigInt(3), BigInt(1));
  EXPECT_EQ(BigInt(2) + BigInt(-3), BigInt(-1));
  EXPECT_EQ(BigInt(-2) + BigInt(-3), BigInt(-5));
  EXPECT_EQ(BigInt(7) + BigInt(-7), BigInt(0));
}

TEST(BigIntTest, SubtractionBasics) {
  EXPECT_EQ(BigInt(10) - BigInt(4), BigInt(6));
  EXPECT_EQ(BigInt(4) - BigInt(10), BigInt(-6));
  EXPECT_EQ(BigInt(-4) - BigInt(-10), BigInt(6));
}

TEST(BigIntTest, MultiplicationSigns) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_EQ(BigInt(0) * BigInt(-7), BigInt(0));
}

TEST(BigIntTest, CarryPropagation) {
  BigInt a(int64_t{0xffffffff});
  EXPECT_EQ(a + BigInt(1), BigInt(int64_t{0x100000000}));
  BigInt big = BigInt(INT64_MAX) + BigInt(INT64_MAX);
  EXPECT_EQ(big.ToString(), "18446744073709551614");
}

TEST(BigIntTest, LargeMultiplication) {
  // (2^64)^2 = 2^128, well beyond native width.
  BigInt two64 = BigInt(INT64_MAX) + BigInt(INT64_MAX) + BigInt(2);
  EXPECT_EQ(two64.ToString(), "18446744073709551616");
  BigInt sq = two64 * two64;
  EXPECT_EQ(sq.ToString(), "340282366920938463463374607431768211456");
  EXPECT_FALSE(sq.FitsInt64());
}

TEST(BigIntTest, DivModTruncatedSemantics) {
  BigInt q, r;
  BigInt::DivMod(BigInt(7), BigInt(2), &q, &r);
  EXPECT_EQ(q, BigInt(3));
  EXPECT_EQ(r, BigInt(1));
  BigInt::DivMod(BigInt(-7), BigInt(2), &q, &r);
  EXPECT_EQ(q, BigInt(-3));
  EXPECT_EQ(r, BigInt(-1));
  BigInt::DivMod(BigInt(7), BigInt(-2), &q, &r);
  EXPECT_EQ(q, BigInt(-3));
  EXPECT_EQ(r, BigInt(1));
  BigInt::DivMod(BigInt(-7), BigInt(-2), &q, &r);
  EXPECT_EQ(q, BigInt(3));
  EXPECT_EQ(r, BigInt(-1));
}

TEST(BigIntTest, DivisionByLargerDivisor) {
  BigInt q, r;
  BigInt::DivMod(BigInt(3), BigInt(10), &q, &r);
  EXPECT_EQ(q, BigInt(0));
  EXPECT_EQ(r, BigInt(3));
}

TEST(BigIntTest, MultiLimbDivision) {
  BigInt two64 = BigInt::FromString("18446744073709551616").value();
  BigInt big = two64 * two64 + BigInt(12345);
  BigInt q, r;
  BigInt::DivMod(big, two64, &q, &r);
  EXPECT_EQ(q, two64);
  EXPECT_EQ(r, BigInt(12345));
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, CompareTotalOrder) {
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_LT(BigInt(-2), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt::FromString("99999999999999999999").value());
  EXPECT_LT(BigInt::FromString("-99999999999999999999").value(), BigInt(-5));
}

TEST(BigIntTest, FromStringValid) {
  EXPECT_EQ(BigInt::FromString("0").value(), BigInt(0));
  EXPECT_EQ(BigInt::FromString("-0").value(), BigInt(0));
  EXPECT_EQ(BigInt::FromString("+123").value(), BigInt(123));
  EXPECT_EQ(BigInt::FromString("  42 ").value(), BigInt(42));
  EXPECT_EQ(BigInt::FromString("123456789012345678901234567890").value()
                .ToString(),
            "123456789012345678901234567890");
}

TEST(BigIntTest, FromStringInvalid) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, ToStringRoundTripRandom) {
  unsigned seed = 12345;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return seed;
  };
  for (int i = 0; i < 200; ++i) {
    std::string digits;
    if (next() % 2) digits += '-';
    int len = 1 + next() % 40;
    digits += static_cast<char>('1' + next() % 9);
    for (int d = 1; d < len; ++d) digits += static_cast<char>('0' + next() % 10);
    BigInt value = BigInt::FromString(digits).value();
    EXPECT_EQ(value.ToString(), digits);
  }
}

TEST(BigIntTest, AlgebraicPropertiesRandom) {
  unsigned seed = 999;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return static_cast<int64_t>(seed % 200001) - 100000;
  };
  for (int i = 0; i < 300; ++i) {
    BigInt a(next()), b(next()), c(next());
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - b, a + (-b));
    if (!b.is_zero()) {
      BigInt q, r;
      BigInt::DivMod(a, b, &q, &r);
      EXPECT_EQ(q * b + r, a);
      EXPECT_LT(r.Abs(), b.Abs());
    }
  }
}

TEST(BigIntTest, HashDistinguishesSign) {
  EXPECT_NE(BigInt(5).Hash(), BigInt(-5).Hash());
}

TEST(BigIntTest, Int64BoundaryRoundTrip) {
  // INT64_MIN has magnitude 2^63: it fits, and converting back must not
  // negate in signed space (that negation was signed-overflow UB).
  BigInt min_value(INT64_MIN);
  ASSERT_TRUE(min_value.FitsInt64());
  EXPECT_EQ(min_value.ToInt64(), INT64_MIN);
  EXPECT_EQ(min_value.ToString(), "-9223372036854775808");
  EXPECT_EQ(BigInt::FromString("-9223372036854775808").value().ToInt64(),
            INT64_MIN);

  BigInt max_value(INT64_MAX);
  ASSERT_TRUE(max_value.FitsInt64());
  EXPECT_EQ(max_value.ToInt64(), INT64_MAX);
  BigInt neg_max(-INT64_MAX);
  ASSERT_TRUE(neg_max.FitsInt64());
  EXPECT_EQ(neg_max.ToInt64(), -INT64_MAX);

  // +2^63 is the first positive value that does not fit.
  BigInt two63 = BigInt::FromString("9223372036854775808").value();
  EXPECT_FALSE(two63.FitsInt64());
  EXPECT_DEATH(two63.ToInt64(), "out of int64_t range");
  // ...and -(2^63 + 1) the first negative one.
  BigInt below_min = BigInt::FromString("-9223372036854775809").value();
  EXPECT_FALSE(below_min.FitsInt64());
}

TEST(BigIntTest, InPlaceOpsMatchOutOfLine) {
  const char* values[] = {"0",
                          "1",
                          "-1",
                          "42",
                          "-99999",
                          "4294967296",
                          "-9223372036854775808",
                          "9223372036854775807",
                          "340282366920938463463374607431768211456",
                          "-340282366920938463463374607431768211455"};
  for (const char* sa : values) {
    for (const char* sb : values) {
      BigInt a = BigInt::FromString(sa).value();
      BigInt b = BigInt::FromString(sb).value();
      BigInt sum = a, diff = a, prod = a;
      sum += b;
      diff -= b;
      prod *= b;
      EXPECT_EQ(sum, a + b) << sa << " += " << sb;
      EXPECT_EQ(diff, a - b) << sa << " -= " << sb;
      EXPECT_EQ(prod, a * b) << sa << " *= " << sb;
    }
  }
}

TEST(BigIntTest, InPlaceOpsSelfAliasing) {
  // `x += x` and friends must read their operand before overwriting it,
  // including across the multi-limb carry/borrow loops.
  const char* values[] = {"0", "7", "-7", "4294967295",
                          "18446744073709551616",
                          "-340282366920938463463374607431768211455"};
  for (const char* s : values) {
    BigInt reference = BigInt::FromString(s).value();
    BigInt doubled = reference;
    doubled += doubled;
    EXPECT_EQ(doubled, reference + reference) << s;
    BigInt zeroed = reference;
    zeroed -= zeroed;
    EXPECT_TRUE(zeroed.is_zero()) << s;
    EXPECT_FALSE(zeroed.is_negative()) << s;
    BigInt squared = reference;
    squared *= squared;
    EXPECT_EQ(squared, reference * reference) << s;
  }
}

TEST(BigIntTest, InPlaceOpsRandomDifferential) {
  unsigned seed = 4242;
  auto next = [&seed]() {
    seed = seed * 1103515245 + 12345;
    return static_cast<int64_t>(seed % 2000001) - 1000000;
  };
  BigInt accum_in_place;
  BigInt accum_copy;
  for (int i = 0; i < 500; ++i) {
    BigInt step(next());
    switch (i % 3) {
      case 0:
        accum_in_place += step;
        accum_copy = accum_copy + step;
        break;
      case 1:
        accum_in_place -= step;
        accum_copy = accum_copy - step;
        break;
      default:
        accum_in_place *= step;
        accum_copy = accum_copy * step;
        break;
    }
    ASSERT_EQ(accum_in_place, accum_copy) << "step " << i;
    ASSERT_EQ(accum_in_place.ToString(), accum_copy.ToString()) << "step " << i;
  }
}

TEST(BigIntTest, NegateInPlace) {
  BigInt v(17);
  EXPECT_EQ(v.Negate(), BigInt(-17));
  EXPECT_EQ(v.Negate(), BigInt(17));
  BigInt zero;
  zero.Negate();
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
}

TEST(BigIntTest, IsOne) {
  EXPECT_TRUE(BigInt(1).is_one());
  EXPECT_FALSE(BigInt(-1).is_one());
  EXPECT_FALSE(BigInt(0).is_one());
  EXPECT_FALSE(BigInt(2).is_one());
  EXPECT_FALSE(BigInt::FromString("4294967297").value().is_one());
}

TEST(BigIntTest, HashUnrolledSmallPathMatchesLoop) {
  // The <= 2-limb hash fast path must be bit-identical to the generic
  // loop. Recompute the loop by hand for representative values.
  for (const char* s : {"1", "-1", "4294967295", "4294967296",
                        "9223372036854775807", "-9223372036854775808"}) {
    BigInt v = BigInt::FromString(s).value();
    size_t h = v.is_negative() ? 0x9e3779b97f4a7c15u : 0;
    BigInt mag = v.Abs();
    // Extract limbs via ToString-independent arithmetic: low 32 bits first.
    while (!mag.is_zero()) {
      BigInt q, r;
      BigInt::DivMod(mag, BigInt(int64_t{1} << 32), &q, &r);
      h ^= static_cast<size_t>(r.ToInt64()) + 0x9e3779b97f4a7c15u + (h << 6) +
           (h >> 2);
      mag = q;
    }
    EXPECT_EQ(v.Hash(), h) << s;
  }
}

}  // namespace
}  // namespace termilog
