#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.At(1, 2), Rational(0));
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m.At(0, 1) = Rational(5);
  m.At(1, 2) = Rational(-7);
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(1, 0), Rational(5));
  EXPECT_EQ(t.At(2, 1), Rational(-7));
}

TEST(MatrixTest, Apply) {
  // [[1,2],[3,4]] * (5,6) = (17, 39).
  Matrix m(2, 2);
  m.At(0, 0) = Rational(1);
  m.At(0, 1) = Rational(2);
  m.At(1, 0) = Rational(3);
  m.At(1, 1) = Rational(4);
  std::vector<Rational> out = m.Apply({Rational(5), Rational(6)});
  EXPECT_EQ(out[0], Rational(17));
  EXPECT_EQ(out[1], Rational(39));
}

TEST(MatrixTest, AllNonNegative) {
  Matrix m(2, 2);
  EXPECT_TRUE(m.AllNonNegative());
  m.At(0, 1) = Rational(3);
  EXPECT_TRUE(m.AllNonNegative());
  m.At(1, 0) = Rational(-1, 2);
  EXPECT_FALSE(m.AllNonNegative());
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix m(3, 2);
  int v = 1;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) m.At(r, c) = Rational(v++);
  }
  Matrix tt = m.Transposed().Transposed();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_EQ(tt.At(r, c), m.At(r, c));
  }
}

}  // namespace
}  // namespace termilog
