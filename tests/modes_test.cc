#include "program/modes.h"

#include <gtest/gtest.h>

#include "program/parser.h"

namespace termilog {
namespace {

Program MustParse(const std::string& source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(program).value();
}

PredId Pred(const Program& p, const char* name, int arity) {
  return PredId{p.symbols().Lookup(name), arity};
}

TEST(ModesTest, SimpleLinearRecursion) {
  Program p = MustParse("append([],Y,Y). append([X|Xs],Y,[X|Zs]) :- "
                        "append(Xs,Y,Zs).");
  ModeAnalysisResult r = InferModes(p, Pred(p, "append", 3),
                                    {Mode::kBound, Mode::kBound, Mode::kFree});
  ASSERT_FALSE(r.HasConflicts());
  EXPECT_EQ(AdornmentToString(r.adornments.at(Pred(p, "append", 3))), "bbf");
}

TEST(ModesTest, PositiveSubgoalBindsItsVariables) {
  Program p = MustParse("q(X,Y) :- e(X,Z), r(Z,Y). r(A,B) :- f(A,B).");
  ModeAnalysisResult r =
      InferModes(p, Pred(p, "q", 2), {Mode::kBound, Mode::kFree});
  // Z is bound after e(X,Z), so r is called as r(b,f).
  EXPECT_EQ(AdornmentToString(r.adornments.at(Pred(p, "r", 2))), "bf");
}

TEST(ModesTest, NegativeSubgoalBindsNothing) {
  Program p = MustParse("q(X,Y) :- \\+ e(X,Z), r(Z,Y). r(A,B) :- f(A,B).");
  ModeAnalysisResult r =
      InferModes(p, Pred(p, "q", 2), {Mode::kBound, Mode::kFree});
  // Z stays free through the negated subgoal.
  EXPECT_EQ(AdornmentToString(r.adornments.at(Pred(p, "r", 2))), "ff");
}

TEST(ModesTest, GroundArgumentIsBound) {
  Program p = MustParse("q(X) :- r([a,b], X). r(A,B) :- e(A,B).");
  ModeAnalysisResult r = InferModes(p, Pred(p, "q", 1), {Mode::kFree});
  EXPECT_EQ(AdornmentToString(r.adornments.at(Pred(p, "r", 2))), "bf");
}

TEST(ModesTest, ConflictDetected) {
  // perm calls append with two different adornments.
  Program p = MustParse(R"(
    perm([], []).
    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
  )");
  ModeAnalysisResult r =
      InferModes(p, Pred(p, "perm", 2), {Mode::kBound, Mode::kFree});
  EXPECT_TRUE(r.HasConflicts());
  EXPECT_EQ(r.conflicted.count(Pred(p, "append", 3)), 1u);
}

TEST(ModesTest, PartiallyBoundCompoundIsFree) {
  // [X|F] with X bound and F free is a free argument.
  Program p = MustParse("q(X) :- r([X|F]). r(A) :- e(A).");
  ModeAnalysisResult r = InferModes(p, Pred(p, "q", 1), {Mode::kBound});
  EXPECT_EQ(AdornmentToString(r.adornments.at(Pred(p, "r", 1))), "f");
}

TEST(ModesTest, BoundVarsAtPositions) {
  Program p = MustParse("q(X,Y) :- e(X,A), f(A,B), g(B,Y).");
  const Rule& rule = p.rules()[0];
  Adornment head = {Mode::kBound, Mode::kFree};
  // Before literal 0: only X (var 0).
  EXPECT_EQ(BoundVarsAt(rule, head, 0).size(), 1u);
  // After e(X,A): X and A.
  EXPECT_EQ(BoundVarsAt(rule, head, 1).size(), 2u);
  // After f(A,B): X, A, B.
  EXPECT_EQ(BoundVarsAt(rule, head, 2).size(), 3u);
  // After g(B,Y): all four.
  EXPECT_EQ(BoundVarsAt(rule, head, 3).size(), 4u);
}

TEST(ModesTest, AtomAdornmentHelper) {
  Program p = MustParse("q(X,Y,Z) :- r(X, [Y|W], a).");
  const Atom& atom = p.rules()[0].body[0].atom;
  std::set<int> bound = {0, 1};  // X, Y bound; W free
  Adornment a = AtomAdornment(atom, bound);
  EXPECT_EQ(AdornmentToString(a), "bfb");
}

TEST(ModesTest, UnreachedPredicatesAbsent) {
  Program p = MustParse("q(X) :- r(X). r(X) :- e(X). s(X) :- s(X).");
  ModeAnalysisResult r = InferModes(p, Pred(p, "q", 1), {Mode::kBound});
  EXPECT_EQ(r.adornments.count(Pred(p, "s", 1)), 0u);
}

}  // namespace
}  // namespace termilog
