#include "linalg/constraint.h"

#include <gtest/gtest.h>

namespace termilog {
namespace {

Constraint MakeGe(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row;
  for (int64_t c : coeffs) row.coeffs.emplace_back(c);
  row.constant = Rational(constant);
  row.rel = Relation::kGe;
  return row;
}

Constraint MakeEq(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row = MakeGe(std::move(coeffs), constant);
  row.rel = Relation::kEq;
  return row;
}

TEST(ConstraintTest, FromExprDense) {
  LinearExpr e = LinearExpr::Variable(1) * Rational(2) - LinearExpr(Rational(3));
  Constraint row = Constraint::FromExpr(e, 3, Relation::kGe);
  EXPECT_EQ(row.num_vars(), 3);
  EXPECT_EQ(row.coeffs[0], Rational(0));
  EXPECT_EQ(row.coeffs[1], Rational(2));
  EXPECT_EQ(row.constant, Rational(-3));
}

TEST(ConstraintTest, SatisfiedBy) {
  Constraint ge = MakeGe({1, -1}, 0);  // x0 - x1 >= 0
  EXPECT_TRUE(ge.SatisfiedBy({Rational(3), Rational(2)}));
  EXPECT_TRUE(ge.SatisfiedBy({Rational(2), Rational(2)}));
  EXPECT_FALSE(ge.SatisfiedBy({Rational(1), Rational(2)}));
  Constraint eq = MakeEq({1, -1}, 0);
  EXPECT_TRUE(eq.SatisfiedBy({Rational(2), Rational(2)}));
  EXPECT_FALSE(eq.SatisfiedBy({Rational(3), Rational(2)}));
}

TEST(ConstraintTest, NormalizeScalesToCopimeIntegers) {
  Constraint row;
  row.coeffs = {Rational(1, 2), Rational(1, 3)};
  row.constant = Rational(5, 6);
  row.rel = Relation::kGe;
  row.Normalize();
  EXPECT_EQ(row.coeffs[0], Rational(3));
  EXPECT_EQ(row.coeffs[1], Rational(2));
  EXPECT_EQ(row.constant, Rational(5));
}

TEST(ConstraintTest, NormalizeEqSignConvention) {
  Constraint row = MakeEq({-2, 4}, -6);
  row.Normalize();
  EXPECT_EQ(row.coeffs[0], Rational(1));
  EXPECT_EQ(row.coeffs[1], Rational(-2));
  EXPECT_EQ(row.constant, Rational(3));
}

TEST(ConstraintTest, NormalizePreservesGeDirection) {
  Constraint row = MakeGe({-2, 2}, 4);  // -2x0 + 2x1 + 4 >= 0
  row.Normalize();
  // Must NOT flip sign: divide by 2 only.
  EXPECT_EQ(row.coeffs[0], Rational(-1));
  EXPECT_EQ(row.coeffs[1], Rational(1));
  EXPECT_EQ(row.constant, Rational(2));
}

TEST(ConstraintSystemTest, SimplifyDropsDuplicatesAndWeakerRows) {
  ConstraintSystem sys(2);
  sys.Add(MakeGe({1, 0}, 0));
  sys.Add(MakeGe({2, 0}, 0));   // same after normalize -> dropped
  sys.Add(MakeGe({1, 0}, 5));   // weaker than constant 0 -> dropped
  sys.Add(MakeGe({0, 1}, -1));
  ASSERT_TRUE(sys.Simplify());
  EXPECT_EQ(sys.size(), 2u);
}

TEST(ConstraintSystemTest, SimplifyKeepsStrongerConstant) {
  ConstraintSystem sys(1);
  sys.Add(MakeGe({1}, 5));
  sys.Add(MakeGe({1}, -3));  // x0 >= 3 is stronger than x0 >= -5
  ASSERT_TRUE(sys.Simplify());
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.rows()[0].constant, Rational(-3));
}

TEST(ConstraintSystemTest, SimplifyDetectsConstantContradiction) {
  ConstraintSystem sys(1);
  Constraint bad;
  bad.coeffs = {Rational(0)};
  bad.constant = Rational(-1);
  bad.rel = Relation::kGe;  // 0 >= 1, false
  sys.Add(bad);
  EXPECT_FALSE(sys.Simplify());
}

TEST(ConstraintSystemTest, SimplifyDetectsEqContradiction) {
  ConstraintSystem sys(1);
  sys.Add(MakeEq({1}, 0));
  sys.Add(MakeEq({1}, 5));  // x0 = 0 and x0 = -5
  EXPECT_FALSE(sys.Simplify());
}

TEST(ConstraintSystemTest, ResizePadsRows) {
  ConstraintSystem sys(1);
  sys.Add(MakeGe({1}, 0));
  sys.Resize(3);
  EXPECT_EQ(sys.num_vars(), 3);
  EXPECT_EQ(sys.rows()[0].coeffs.size(), 3u);
  EXPECT_EQ(sys.rows()[0].coeffs[2], Rational(0));
}

TEST(ConstraintSystemTest, ToStringRendersRelations) {
  ConstraintSystem sys(2);
  sys.Add(MakeGe({1, -1}, 2));
  sys.Add(MakeEq({0, 1}, 0));
  std::string text = sys.ToString();
  EXPECT_NE(text.find(">= 0"), std::string::npos);
  EXPECT_NE(text.find("= 0"), std::string::npos);
}

}  // namespace
}  // namespace termilog
