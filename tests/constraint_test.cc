#include "linalg/constraint.h"

#include <limits>

#include <gtest/gtest.h>

namespace termilog {
namespace {

Constraint MakeGe(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row;
  for (int64_t c : coeffs) row.coeffs.emplace_back(c);
  row.constant = Rational(constant);
  row.rel = Relation::kGe;
  return row;
}

Constraint MakeEq(std::vector<int64_t> coeffs, int64_t constant) {
  Constraint row = MakeGe(std::move(coeffs), constant);
  row.rel = Relation::kEq;
  return row;
}

TEST(ConstraintTest, FromExprDense) {
  LinearExpr e = LinearExpr::Variable(1) * Rational(2) - LinearExpr(Rational(3));
  Constraint row = Constraint::FromExpr(e, 3, Relation::kGe);
  EXPECT_EQ(row.num_vars(), 3);
  EXPECT_EQ(row.coeffs[0], Rational(0));
  EXPECT_EQ(row.coeffs[1], Rational(2));
  EXPECT_EQ(row.constant, Rational(-3));
}

TEST(ConstraintTest, SatisfiedBy) {
  Constraint ge = MakeGe({1, -1}, 0);  // x0 - x1 >= 0
  EXPECT_TRUE(ge.SatisfiedBy({Rational(3), Rational(2)}));
  EXPECT_TRUE(ge.SatisfiedBy({Rational(2), Rational(2)}));
  EXPECT_FALSE(ge.SatisfiedBy({Rational(1), Rational(2)}));
  Constraint eq = MakeEq({1, -1}, 0);
  EXPECT_TRUE(eq.SatisfiedBy({Rational(2), Rational(2)}));
  EXPECT_FALSE(eq.SatisfiedBy({Rational(3), Rational(2)}));
}

TEST(ConstraintTest, NormalizeScalesToCopimeIntegers) {
  Constraint row;
  row.coeffs = {Rational(1, 2), Rational(1, 3)};
  row.constant = Rational(5, 6);
  row.rel = Relation::kGe;
  row.Normalize();
  EXPECT_EQ(row.coeffs[0], Rational(3));
  EXPECT_EQ(row.coeffs[1], Rational(2));
  EXPECT_EQ(row.constant, Rational(5));
}

TEST(ConstraintTest, NormalizeEqSignConvention) {
  Constraint row = MakeEq({-2, 4}, -6);
  row.Normalize();
  EXPECT_EQ(row.coeffs[0], Rational(1));
  EXPECT_EQ(row.coeffs[1], Rational(-2));
  EXPECT_EQ(row.constant, Rational(3));
}

TEST(ConstraintTest, NormalizePreservesGeDirection) {
  Constraint row = MakeGe({-2, 2}, 4);  // -2x0 + 2x1 + 4 >= 0
  row.Normalize();
  // Must NOT flip sign: divide by 2 only.
  EXPECT_EQ(row.coeffs[0], Rational(-1));
  EXPECT_EQ(row.coeffs[1], Rational(1));
  EXPECT_EQ(row.constant, Rational(2));
}

TEST(ConstraintSystemTest, SimplifyDropsDuplicatesAndWeakerRows) {
  ConstraintSystem sys(2);
  sys.Add(MakeGe({1, 0}, 0));
  sys.Add(MakeGe({2, 0}, 0));   // same after normalize -> dropped
  sys.Add(MakeGe({1, 0}, 5));   // weaker than constant 0 -> dropped
  sys.Add(MakeGe({0, 1}, -1));
  ASSERT_TRUE(sys.Simplify());
  EXPECT_EQ(sys.size(), 2u);
}

TEST(ConstraintSystemTest, SimplifyKeepsStrongerConstant) {
  ConstraintSystem sys(1);
  sys.Add(MakeGe({1}, 5));
  sys.Add(MakeGe({1}, -3));  // x0 >= 3 is stronger than x0 >= -5
  ASSERT_TRUE(sys.Simplify());
  ASSERT_EQ(sys.size(), 1u);
  EXPECT_EQ(sys.rows()[0].constant, Rational(-3));
}

TEST(ConstraintSystemTest, SimplifyDetectsConstantContradiction) {
  ConstraintSystem sys(1);
  Constraint bad;
  bad.coeffs = {Rational(0)};
  bad.constant = Rational(-1);
  bad.rel = Relation::kGe;  // 0 >= 1, false
  sys.Add(bad);
  EXPECT_FALSE(sys.Simplify());
}

TEST(ConstraintSystemTest, SimplifyDetectsEqContradiction) {
  ConstraintSystem sys(1);
  sys.Add(MakeEq({1}, 0));
  sys.Add(MakeEq({1}, 5));  // x0 = 0 and x0 = -5
  EXPECT_FALSE(sys.Simplify());
}

TEST(ConstraintSystemTest, ResizePadsRows) {
  ConstraintSystem sys(1);
  sys.Add(MakeGe({1}, 0));
  sys.Resize(3);
  EXPECT_EQ(sys.num_vars(), 3);
  EXPECT_EQ(sys.rows()[0].coeffs.size(), 3u);
  EXPECT_EQ(sys.rows()[0].coeffs[2], Rational(0));
}

TEST(NormalizeRowGcdTest, IntegerRowsReduceToCoprime) {
  std::vector<Rational> coeffs = {Rational(6), Rational(-9), Rational(0)};
  Rational constant(12);
  NormalizeRowGcd(&coeffs, &constant);
  EXPECT_EQ(coeffs[0], Rational(2));
  EXPECT_EQ(coeffs[1], Rational(-3));
  EXPECT_EQ(coeffs[2], Rational(0));
  EXPECT_EQ(constant, Rational(4));
}

TEST(NormalizeRowGcdTest, CoprimeRowIsUntouched) {
  // The steady state: already-coprime machine-word integers. The fast path
  // must recognize this and leave the row bit-for-bit alone.
  std::vector<Rational> coeffs = {Rational(3), Rational(-5)};
  Rational constant(7);
  NormalizeRowGcd(&coeffs, &constant);
  EXPECT_EQ(coeffs[0], Rational(3));
  EXPECT_EQ(coeffs[1], Rational(-5));
  EXPECT_EQ(constant, Rational(7));
}

TEST(NormalizeRowGcdTest, FractionalRowClearsDenominators) {
  std::vector<Rational> coeffs = {Rational(1, 6), Rational(-1, 4)};
  Rational constant(5, 3);
  NormalizeRowGcd(&coeffs, &constant);
  // lcm of denominators is 12; scaled row (2, -3, 20) is already coprime.
  EXPECT_EQ(coeffs[0], Rational(2));
  EXPECT_EQ(coeffs[1], Rational(-3));
  EXPECT_EQ(constant, Rational(20));
}

TEST(NormalizeRowGcdTest, WideIntegersTakeSlowPath) {
  // Coefficients beyond int64: the fast path bails and the BigInt slow
  // path must still find the common factor.
  BigInt big = BigInt::FromString("36893488147419103232").value();  // 2^65
  std::vector<Rational> coeffs = {Rational(big, BigInt(1)),
                                  Rational(big * BigInt(3), BigInt(1))};
  Rational constant(Rational(big * BigInt(5), BigInt(1)));
  NormalizeRowGcd(&coeffs, &constant);
  EXPECT_EQ(coeffs[0], Rational(1));
  EXPECT_EQ(coeffs[1], Rational(3));
  EXPECT_EQ(constant, Rational(5));
}

TEST(NormalizeRowGcdTest, Int64MinCoefficientHandled) {
  // |INT64_MIN| = 2^63 doesn't fit int64, so the fast path's gcd could
  // exceed INT64_MAX; the implementation must fall back rather than
  // overflow. gcd(2^63, 2^62) = 2^62.
  std::vector<Rational> coeffs = {
      Rational(std::numeric_limits<int64_t>::min()),
      Rational(int64_t{1} << 62)};
  Rational constant(0);
  NormalizeRowGcd(&coeffs, &constant);
  EXPECT_EQ(coeffs[0], Rational(-2));
  EXPECT_EQ(coeffs[1], Rational(1));
  EXPECT_EQ(constant, Rational(0));
  // Both entries INT64_MIN: gcd is 2^63 itself.
  std::vector<Rational> pair = {
      Rational(std::numeric_limits<int64_t>::min()),
      Rational(std::numeric_limits<int64_t>::min())};
  Rational zero(0);
  NormalizeRowGcd(&pair, &zero);
  EXPECT_EQ(pair[0], Rational(-1));
  EXPECT_EQ(pair[1], Rational(-1));
}

TEST(NormalizeRowGcdTest, ZeroRowAndEmptyRowAreNoOps) {
  std::vector<Rational> coeffs = {Rational(0), Rational(0)};
  Rational constant(0);
  NormalizeRowGcd(&coeffs, &constant);
  EXPECT_EQ(coeffs[0], Rational(0));
  EXPECT_EQ(constant, Rational(0));
  std::vector<Rational> empty;
  Rational lone(4);
  NormalizeRowGcd(&empty, &lone);
  EXPECT_EQ(lone, Rational(1));  // constant-only row still reduces
}

TEST(ConstraintTest, NormalizeAppliesEqSignConvention) {
  // For kEq rows the first nonzero coefficient is made positive.
  Constraint eq = MakeEq({-4, 6}, -2);
  eq.Normalize();
  EXPECT_EQ(eq.coeffs[0], Rational(2));
  EXPECT_EQ(eq.coeffs[1], Rational(-3));
  EXPECT_EQ(eq.constant, Rational(1));
  // Ge rows must NOT be flipped (that would change their meaning).
  Constraint ge = MakeGe({-4, 6}, -2);
  ge.Normalize();
  EXPECT_EQ(ge.coeffs[0], Rational(-2));
  EXPECT_EQ(ge.coeffs[1], Rational(3));
  EXPECT_EQ(ge.constant, Rational(-1));
}

TEST(ConstraintSystemTest, ToStringRendersRelations) {
  ConstraintSystem sys(2);
  sys.Add(MakeGe({1, -1}, 2));
  sys.Add(MakeEq({0, 1}, 0));
  std::string text = sys.ToString();
  EXPECT_NE(text.find(">= 0"), std::string::npos);
  EXPECT_NE(text.find("= 0"), std::string::npos);
}

}  // namespace
}  // namespace termilog
